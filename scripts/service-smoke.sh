#!/usr/bin/env bash
# service-smoke.sh — end-to-end smoke test of scda-serve against the CLIs.
#
# Builds the binaries, runs scda-sim -scenario scenarios/paper-fig6.json
# to produce the reference CSVs, then starts the service, submits the same
# spec over HTTP, polls the job to completion, and diffs every result CSV
# against the CLI's files byte for byte; re-submits the spec and checks
# the second job is a cache hit and the metrics endpoint recorded it.
# Then the job-group leg: runs scda-bench -scenario-dir over the
# power-save sweep spec, submits the same spec to /v1/groups, and
# byte-diffs the group's aggregate CSVs against the bench's per-variant
# files concatenated in expansion order; a second group submission must be
# all cache hits. Then the fluid-engine leg: the same submit/poll/diff
# cycle over an "engine": "fluid" spec, proving the service serves fluid
# results byte-identical to the CLI with zero service-layer special
# casing. Finally the adaptive-search leg: submits the shipped
# power-save-search spec to /v1/searches twice and asserts the second run
# is a pure cache replay — every evaluation a cache hit, not one new
# simulation computed, and a byte-identical trajectory CSV. CI runs this
# as the service-smoke job; it needs only curl, grep, sed and diff beyond
# the go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

spec=scenarios/paper-fig6.json
name=paper-fig6
addr=127.0.0.1:18080
base="http://$addr"

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building"
go build -o "$tmp/scda-serve" ./cmd/scda-serve
go build -o "$tmp/scda-sim" ./cmd/scda-sim
go build -o "$tmp/scda-bench" ./cmd/scda-bench

echo "== reference run: scda-sim -scenario $spec"
"$tmp/scda-sim" -scenario "$spec" -out "$tmp/cli" >/dev/null

echo "== starting scda-serve on $addr"
"$tmp/scda-serve" -addr "$addr" -jobs 1 -cache-dir "$tmp/cache" &
pid=$!
for _ in $(seq 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

echo "== submitting $spec"
resp="$(curl -fsS -X POST --data-binary @"$spec" "$base/v1/jobs")"
id="$(printf '%s' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$id" ] || { echo "no job id in response: $resp"; exit 1; }
echo "   job $id"

echo "== polling to completion"
state=""
for _ in $(seq 240); do
    state="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) echo "job ended $state"; curl -fsS "$base/v1/jobs/$id"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$state" = done ] || { echo "job still '$state' after timeout"; exit 1; }

echo "== diffing service CSVs against CLI files"
for kind in summary throughput fct-cdf afct; do
    curl -fsS "$base/v1/jobs/$id/result?csv=$kind" > "$tmp/srv-$kind.csv"
    diff "$tmp/cli/$name-$kind.csv" "$tmp/srv-$kind.csv" \
        || { echo "MISMATCH: $kind differs between service and CLI"; exit 1; }
done

echo "== re-submitting: must be a cache hit"
resp2="$(curl -fsS -X POST --data-binary @"$spec" "$base/v1/jobs?wait=true")"
printf '%s' "$resp2" | grep -q '"cacheHit": *true' \
    || { echo "second submission was not a cache hit: $resp2"; exit 1; }

echo "== checking metrics"
curl -fsS "$base/metrics" | grep -E '^scda_cache_hits_total [1-9]' >/dev/null \
    || { echo "metrics did not record the cache hit"; exit 1; }

sweep=scenarios/power-save.json
echo "== reference sweep run: scda-bench -scenario-dir ($sweep)"
mkdir "$tmp/sweep-spec"
cp "$sweep" "$tmp/sweep-spec/"
"$tmp/scda-bench" -scenario-dir "$tmp/sweep-spec" -out "$tmp/bench" >/dev/null
# Expansion order == sweep value order (rscale 0, 1e7, 3e7).
variants="power-save-system-rscale-0 power-save-system-rscale-1e07 power-save-system-rscale-3e07"

echo "== submitting $sweep as a job group"
gresp="$(curl -fsS -X POST --data-binary @"$sweep" "$base/v1/groups")"
gid="$(printf '%s' "$gresp" | grep -m1 '"id"' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$gid" ] || { echo "no group id in response: $gresp"; exit 1; }
echo "   group $gid"

echo "== polling group to completion"
gstate=""
for _ in $(seq 240); do
    gstate="$(curl -fsS "$base/v1/groups/$gid" | grep -m1 '"state"' | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$gstate" in
        done) break ;;
        failed|cancelled) echo "group ended $gstate"; curl -fsS "$base/v1/groups/$gid"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$gstate" = done ] || { echo "group still '$gstate' after timeout"; exit 1; }

echo "== diffing group aggregate CSVs against scda-bench files"
for kind in summary throughput fct-cdf; do
    : > "$tmp/bench-$kind.csv"
    for v in $variants; do
        cat "$tmp/bench/$v-$kind.csv" >> "$tmp/bench-$kind.csv"
    done
    curl -fsS "$base/v1/groups/$gid/result?csv=$kind" > "$tmp/grp-$kind.csv"
    diff "$tmp/bench-$kind.csv" "$tmp/grp-$kind.csv" \
        || { echo "MISMATCH: group $kind differs from scda-bench"; exit 1; }
done

echo "== re-submitting the sweep: every variant must be a cache hit"
gresp2="$(curl -fsS -X POST --data-binary @"$sweep" "$base/v1/groups?wait=true")"
printf '%s' "$gresp2" | grep -q '"cacheHits": *3' \
    || { echo "second group submission was not fully cached: $gresp2"; exit 1; }
curl -fsS "$base/metrics" | grep -E '^scda_groups_done_total\{state="done"\} [1-9]' >/dev/null \
    || { echo "metrics did not record the finished groups"; exit 1; }

# The fluid-engine leg: the service must serve a fluid-backend scenario
# through the identical job/cache path, byte-identical to the CLI. The
# spec is small (hundreds of flows) so the smoke stays fast; the shipped
# scenarios/fluid-100k.json is the scale version of the same engine.
fspec="$tmp/fluid-smoke.json"
cat > "$fspec" <<'EOF'
{
  "version": 1,
  "name": "fluid-smoke",
  "seed": 7,
  "duration": 5,
  "engine": "fluid",
  "workload": [
    {"generator": "pareto", "params": {"ArrivalRate": 60}}
  ]
}
EOF

echo "== reference fluid run: scda-sim -scenario $fspec"
"$tmp/scda-sim" -scenario "$fspec" -out "$tmp/cli" >/dev/null

echo "== submitting $fspec (engine: fluid)"
fresp="$(curl -fsS -X POST --data-binary @"$fspec" "$base/v1/jobs")"
fid="$(printf '%s' "$fresp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$fid" ] || { echo "no job id in response: $fresp"; exit 1; }
echo "   job $fid"

echo "== polling fluid job to completion"
fstate=""
for _ in $(seq 240); do
    fstate="$(curl -fsS "$base/v1/jobs/$fid" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$fstate" in
        done) break ;;
        failed|cancelled) echo "fluid job ended $fstate"; curl -fsS "$base/v1/jobs/$fid"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$fstate" = done ] || { echo "fluid job still '$fstate' after timeout"; exit 1; }

echo "== diffing fluid service CSVs against CLI files"
for kind in summary throughput fct-cdf afct; do
    curl -fsS "$base/v1/jobs/$fid/result?csv=$kind" > "$tmp/srv-fluid-$kind.csv"
    diff "$tmp/cli/fluid-smoke-$kind.csv" "$tmp/srv-fluid-$kind.csv" \
        || { echo "MISMATCH: fluid $kind differs between service and CLI"; exit 1; }
done

# The adaptive-search leg: the shipped constrained search runs its rounds
# as ordinary job groups, so a second identical submission replays the
# whole trajectory from the cache without simulating anything.
sspec=scenarios/power-save-search.json

echo "== submitting $sspec to /v1/searches"
sresp="$(curl -fsS -X POST --data-binary @"$sspec" "$base/v1/searches")"
sid="$(printf '%s' "$sresp" | grep -m1 '"id"' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$sid" ] || { echo "no search id in response: $sresp"; exit 1; }
echo "   search $sid"

echo "== polling search to completion"
sstate=""
for _ in $(seq 240); do
    sstate="$(curl -fsS "$base/v1/searches/$sid" | grep -m1 '"state"' | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$sstate" in
        done) break ;;
        failed|cancelled) echo "search ended $sstate"; curl -fsS "$base/v1/searches/$sid"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$sstate" = done ] || { echo "search still '$sstate' after timeout"; exit 1; }
curl -fsS "$base/v1/searches/$sid/result?csv=trajectory" > "$tmp/traj1.csv"
grep -q '^round,' "$tmp/traj1.csv" || { echo "trajectory CSV has no header"; exit 1; }
misses_after_search="$(curl -fsS "$base/metrics" | sed -n 's/^scda_cache_misses_total \([0-9]*\)$/\1/p')"

echo "== re-submitting the search: must be a pure cache replay"
sresp2="$(curl -fsS -X POST --data-binary @"$sspec" "$base/v1/searches?wait=true")"
sid2="$(printf '%s' "$sresp2" | grep -m1 '"id"' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
evals2="$(printf '%s' "$sresp2" | sed -n 's/.*"evaluations": *\([0-9]*\).*/\1/p')"
hits2="$(printf '%s' "$sresp2" | sed -n 's/.*"cacheHits": *\([0-9]*\).*/\1/p')"
[ -n "$evals2" ] && [ "$evals2" -gt 0 ] && [ "$hits2" = "$evals2" ] \
    || { echo "replayed search was not fully cached: $sresp2"; exit 1; }
misses_after_replay="$(curl -fsS "$base/metrics" | sed -n 's/^scda_cache_misses_total \([0-9]*\)$/\1/p')"
[ "$misses_after_replay" = "$misses_after_search" ] \
    || { echo "replay computed fresh work: misses $misses_after_search -> $misses_after_replay"; exit 1; }
curl -fsS "$base/v1/searches/$sid2/result?csv=trajectory" > "$tmp/traj2.csv"
diff "$tmp/traj1.csv" "$tmp/traj2.csv" \
    || { echo "MISMATCH: replayed trajectory differs"; exit 1; }
curl -fsS "$base/metrics" | grep -E '^scda_search_rounds_total [1-9]' >/dev/null \
    || { echo "metrics did not record the search rounds"; exit 1; }
curl -fsS "$base/metrics" | grep -E '^scda_searches_done_total\{state="done"\} 2' >/dev/null \
    || { echo "metrics did not record both finished searches"; exit 1; }

echo "service smoke OK"
