#!/usr/bin/env bash
# ring-smoke.sh — end-to-end smoke test of scda-serve coordinator mode
# with real processes (the in-process counterpart lives in
# internal/service/ring_e2e_test.go; this script is the one that covers
# kill -9 across OS process boundaries).
#
# Starts a 3-peer ring, then proves the fleet behaves as one service:
# submit paper-fig6 through peer 1 (the edge forwards it to its owner by
# spec hash), poll it through peer 2 and fetch every result CSV through
# peer 3 (ID-routed proxying), and byte-diff the CSVs against
# scda-sim -scenario output. Re-submitting through peer 3 must be a cache
# hit — one compute fleet-wide, wherever requests enter. Then the failure
# leg: kill -9 peer 2 and submit the power-save sweep group through
# peer 1; the group must complete honestly (variants owned by the dead
# peer degrade to local execution) and its aggregate CSVs must still
# byte-match scda-bench -scenario-dir files, with the dead peer reported
# down in peer 1's metrics. CI runs this as the ring-smoke job; it needs
# only curl, grep, sed and diff beyond the go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

addr1=127.0.0.1:18091
addr2=127.0.0.1:18092
addr3=127.0.0.1:18093
base1="http://$addr1"
base2="http://$addr2"
base3="http://$addr3"
peers="$base1,$base2,$base3"

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building"
go build -o "$tmp/scda-serve" ./cmd/scda-serve
go build -o "$tmp/scda-sim" ./cmd/scda-sim
go build -o "$tmp/scda-bench" ./cmd/scda-bench

spec=scenarios/paper-fig6.json
name=paper-fig6
echo "== reference run: scda-sim -scenario $spec"
"$tmp/scda-sim" -scenario "$spec" -out "$tmp/cli" >/dev/null

echo "== starting a 3-peer ring on $peers"
i=0
for base in "$base1" "$base2" "$base3"; do
    i=$((i + 1))
    "$tmp/scda-serve" -addr "${base#http://}" -self "$base" -peers "$peers" \
        -probe-interval 300ms -jobs 1 \
        -cache-dir "$tmp/cache$i" -journal-dir "$tmp/journal$i" \
        >"$tmp/peer$i.log" 2>&1 &
    pids="$pids $!"
done
for base in "$base1" "$base2" "$base3"; do
    for _ in $(seq 50); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && break
        sleep 0.2
    done
    curl -fsS "$base/healthz" >/dev/null
done

echo "== submitting $spec through peer 1"
resp="$(curl -fsS -X POST --data-binary @"$spec" "$base1/v1/jobs")"
id="$(printf '%s' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$id" ] || { echo "no job id in response: $resp"; exit 1; }
echo "   job $id"

echo "== polling through peer 2"
state=""
for _ in $(seq 240); do
    state="$(curl -fsS "$base2/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed|cancelled) echo "job ended $state"; curl -fsS "$base2/v1/jobs/$id"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$state" = done ] || { echo "job still '$state' after timeout"; exit 1; }

echo "== fetching CSVs through peer 3, diffing against CLI files"
for kind in summary throughput fct-cdf afct; do
    curl -fsS "$base3/v1/jobs/$id/result?csv=$kind" > "$tmp/srv-$kind.csv"
    diff "$tmp/cli/$name-$kind.csv" "$tmp/srv-$kind.csv" \
        || { echo "MISMATCH: $kind differs between ring and CLI"; exit 1; }
done

echo "== re-submitting through peer 3: must be a fleet-wide cache hit"
resp2="$(curl -fsS -X POST --data-binary @"$spec" "$base3/v1/jobs?wait=true")"
printf '%s' "$resp2" | grep -q '"cacheHit": *true' \
    || { echo "second submission was not a cache hit: $resp2"; exit 1; }

echo "== checking ring metrics on peer 1"
met="$(curl -fsS "$base1/metrics")"
printf '%s\n' "$met" | grep -q '^scda_ring_peers 3' \
    || { echo "peer 1 does not report a 3-peer ring"; exit 1; }
printf '%s\n' "$met" | grep -c '^scda_ring_peer_up{.*} 1' | grep -q '^3$' \
    || { echo "peer 1 does not see all 3 peers up:"; printf '%s\n' "$met" | grep scda_ring; exit 1; }

sweep=scenarios/power-save.json
echo "== reference sweep run: scda-bench -scenario-dir ($sweep)"
mkdir "$tmp/sweep-spec"
cp "$sweep" "$tmp/sweep-spec/"
"$tmp/scda-bench" -scenario-dir "$tmp/sweep-spec" -out "$tmp/bench" >/dev/null
# Expansion order == sweep value order (rscale 0, 1e7, 3e7).
variants="power-save-system-rscale-0 power-save-system-rscale-1e07 power-save-system-rscale-3e07"

echo "== kill -9 peer 2"
set -- $pids
kill -9 "$2"
sleep 1.5 # two 300ms probe rounds fold the EWMA below the up threshold

echo "== submitting $sweep as a job group through peer 1 (degraded ring)"
gresp="$(curl -fsS -X POST --data-binary @"$sweep" "$base1/v1/groups")"
gid="$(printf '%s' "$gresp" | grep -m1 '"id"' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$gid" ] || { echo "no group id in response: $gresp"; exit 1; }
echo "   group $gid"

echo "== polling group to completion"
gstate=""
for _ in $(seq 240); do
    gstate="$(curl -fsS "$base1/v1/groups/$gid" | grep -m1 '"state"' | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
    case "$gstate" in
        done) break ;;
        failed|cancelled) echo "group ended $gstate"; curl -fsS "$base1/v1/groups/$gid"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$gstate" = done ] || { echo "group still '$gstate' after timeout"; exit 1; }

echo "== diffing group aggregate CSVs against scda-bench files"
for kind in summary throughput fct-cdf; do
    : > "$tmp/bench-$kind.csv"
    for v in $variants; do
        cat "$tmp/bench/$v-$kind.csv" >> "$tmp/bench-$kind.csv"
    done
    curl -fsS "$base1/v1/groups/$gid/result?csv=$kind" > "$tmp/grp-$kind.csv"
    diff "$tmp/bench-$kind.csv" "$tmp/grp-$kind.csv" \
        || { echo "MISMATCH: degraded group $kind differs from scda-bench"; exit 1; }
done

echo "== checking peer 1 sees peer 2 down"
curl -fsS "$base1/metrics" | grep -q "^scda_ring_peer_up{peer=\"$base2\"} 0" \
    || { echo "peer 1 still reports the killed peer up"; curl -fsS "$base1/metrics" | grep scda_ring; exit 1; }

echo "ring smoke OK"
