// Command chaosload is the load/chaos driver behind scripts/chaos-smoke.sh:
// a small traffic generator that abuses one scda-serve instance through the
// retrying client package and verifies the robustness invariants the server
// promises — every request answered (2xx or an honest 429 + Retry-After),
// every accepted job reaching a terminal state, no hangs.
//
//	chaosload -base http://127.0.0.1:18081 -mode hammer -n 40
//
// Modes:
//
//	hammer  — submit -n distinct jobs through the retrying client, wait
//	          for every one to settle, and report terminal-state counts.
//	          Fails if any submission neither settles nor is refused
//	          within the retry budget.
//	burst   — fire -n raw submissions with NO retries as fast as
//	          possible and classify the responses. Fails on any status
//	          outside {200, 201, 429} or on a 429 without Retry-After —
//	          the overload contract.
//	backlog — submit -n slow jobs and exit immediately, leaving them
//	          queued or running; the crash-recovery leg kills the server
//	          now and expects the journal to carry these jobs across.
//	waitall — poll /v1/jobs until every listed job is terminal (or the
//	          -timeout expires), reporting the final tally; used after a
//	          restart to wait out recovered work.
//
// The specs are generated from an embedded template, varied by -distinct
// (seed rotation) so cache behavior is controllable: -distinct 1 makes
// every submission one cache entry, -distinct n makes each unique.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/service/client"
)

// specTemplate is the workload spec, kept tiny so one replicate runs in
// tens of milliseconds; %d slots take the seed and the scenario-name
// suffix. The shape mirrors the service tests' spec.
const specTemplate = `{
  "version": 1,
  "name": "chaosload-%d",
  "seed": %d,
  "duration": %d,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput"]}
}`

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaosload: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "scda-serve base URL")
	mode := flag.String("mode", "hammer", "hammer | burst | backlog | waitall")
	n := flag.Int("n", 20, "submissions (hammer, burst, backlog)")
	distinct := flag.Int("distinct", 4, "distinct specs to rotate through (cache-key cardinality)")
	duration := flag.Int("duration", 6, "simulated seconds per spec (larger = slower jobs)")
	conc := flag.Int("conc", 8, "concurrent submitters")
	deadline := flag.String("deadline", "", "?deadline= to attach to every submission")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall driver timeout")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*base, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Budget:      *timeout,
		Seed:        1,
	}))

	switch *mode {
	case "hammer":
		hammer(ctx, c, *n, *distinct, *duration, *conc, *deadline)
	case "burst":
		burst(ctx, *base, *n, *distinct, *duration, *conc, *deadline)
	case "backlog":
		backlog(ctx, c, *n, *distinct, *duration, *deadline)
	case "waitall":
		waitall(ctx, c)
	default:
		fail("unknown mode %q", *mode)
	}
}

// spec renders the i-th submission's spec bytes.
func spec(i, distinct, duration int) []byte {
	v := i % distinct
	return []byte(fmt.Sprintf(specTemplate, v, v+1, duration))
}

// hammer drives n submissions through the retrying client concurrently
// and waits for each accepted job to settle.
func hammer(ctx context.Context, c *client.Client, n, distinct, duration, conc int, deadline string) {
	var mu sync.Mutex
	tally := map[string]int{}
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			st, err := c.Submit(ctx, spec(i, distinct, duration), client.SubmitOpts{Deadline: deadline})
			if err == nil && !st.Terminal() {
				st, err = c.WaitJob(ctx, st.ID)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				tally["refused"]++
				fmt.Fprintf(os.Stderr, "chaosload: submission %d: %v\n", i, err)
				return
			}
			tally[st.State]++
		}()
	}
	wg.Wait()
	report(tally)
	if tally["queued"]+tally["running"] > 0 {
		fail("jobs left unsettled")
	}
}

// burst fires raw submissions with no retry and asserts the overload
// contract on every response.
func burst(ctx context.Context, base string, n, distinct, duration, conc int, deadline string) {
	hc := &http.Client{Timeout: time.Minute}
	var mu sync.Mutex
	tally := map[string]int{}
	bad := 0
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			url := base + "/v1/jobs"
			if deadline != "" {
				url += "?deadline=" + deadline
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(spec(i, distinct, duration))))
			if err != nil {
				fail("%v", err)
			}
			resp, err := hc.Do(req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				bad++
				fmt.Fprintf(os.Stderr, "chaosload: burst %d: %v\n", i, err)
				return
			}
			resp.Body.Close()
			tally[fmt.Sprint(resp.StatusCode)]++
			switch resp.StatusCode {
			case http.StatusOK, http.StatusCreated:
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					bad++
					fmt.Fprintf(os.Stderr, "chaosload: burst %d: 429 without Retry-After\n", i)
				}
			default:
				bad++
				fmt.Fprintf(os.Stderr, "chaosload: burst %d: unexpected status %d\n", i, resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	report(tally)
	if bad > 0 {
		fail("%d responses broke the overload contract", bad)
	}
	if tally["429"] == 0 {
		fmt.Println("chaosload: note: no submission was shed")
	}
}

// backlog submits slow jobs and leaves them unfinished for the
// crash-recovery leg.
func backlog(ctx context.Context, c *client.Client, n, distinct, duration int, deadline string) {
	accepted := 0
	for i := 0; i < n; i++ {
		st, err := c.Submit(ctx, spec(i, distinct, duration), client.SubmitOpts{Deadline: deadline})
		if err != nil {
			fail("backlog submission %d: %v", i, err)
		}
		fmt.Printf("chaosload: backlog %s state=%s\n", st.ID, st.State)
		accepted++
	}
	fmt.Printf("chaosload: backlog accepted=%d\n", accepted)
}

// waitall polls the job list until everything is terminal.
func waitall(ctx context.Context, c *client.Client) {
	for {
		sts, err := c.Jobs(ctx)
		if err != nil {
			fail("listing jobs: %v", err)
		}
		tally := map[string]int{}
		pending := 0
		for _, st := range sts {
			tally[st.State]++
			if !st.Terminal() {
				pending++
			}
		}
		if pending == 0 {
			report(tally)
			return
		}
		select {
		case <-ctx.Done():
			report(tally)
			fail("%d jobs still unsettled at timeout", pending)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// report prints the tally in a stable, grep-friendly single line.
func report(tally map[string]int) {
	line := "chaosload:"
	for _, k := range []string{"done", "failed", "cancelled", "queued", "running", "refused", "200", "201", "429"} {
		if tally[k] > 0 {
			line += fmt.Sprintf(" %s=%d", k, tally[k])
		}
	}
	fmt.Println(line)
}
