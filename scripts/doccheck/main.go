// Command doccheck fails when exported identifiers lack doc comments.
//
// Usage:
//
//	go run ./scripts/doccheck ./internal/... ./cmd/...
//
// It is a thin compatibility shim over the scda-lint doccomment analyzer
// (internal/lint): the AST gate that started life here is now one analyzer
// of the five-analyzer suite, and `go run ./cmd/scda-lint ./...` is the
// single linting entry point. The shim keeps the historical contract: no
// output and exit 0 means clean; findings print as file:line lines and
// exit 1; load errors exit 2.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, []*lint.Analyzer{lint.DoccommentAnalyzer()})
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(findings))
		os.Exit(1)
	}
}
