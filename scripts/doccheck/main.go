// Command doccheck fails when exported identifiers lack doc comments.
//
// Usage:
//
//	go run ./scripts/doccheck ./internal/... ./cmd/...
//
// It walks the named packages (Go "..." patterns resolved against the
// module root) and reports every package missing a package comment and
// every exported package-level declaration — funcs, methods with exported
// receivers, types, consts, vars — missing a doc comment. CI runs it so
// the godoc surface cannot rot as packages grow. No output and exit 0
// means clean; findings print as file:line lines and exit 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := resolveDirs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(findings))
		os.Exit(1)
	}
}

// resolveDirs expands "./pkg/..." patterns into the directories that
// contain .go files.
func resolveDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if !strings.HasSuffix(p, "/...") {
			add(filepath.Clean(p))
			continue
		}
		root := filepath.Clean(strings.TrimSuffix(p, "/..."))
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != root && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one directory's non-test files and returns findings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// attribute the miss to the package's first file, sorted for
			// stable output
			names := make([]string, 0, len(pkg.Files))
			for name := range pkg.Files {
				names = append(names, name)
			}
			sort.Strings(names)
			report(pkg.Files[names[0]].Package, "package %s has no package comment", pkg.Name)
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// checkDecl reports exported names in one top-level declaration that have
// no doc comment.
func checkDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			return // method on an unexported type: not godoc surface
		}
		kind := "function"
		if d.Recv != nil {
			kind = "method"
		}
		report(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					// a doc on the grouped decl ("// Output kinds: ...")
					// or on the spec or an inline comment all count
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), "exported value %s has no doc comment", name.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver base type is
// exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
