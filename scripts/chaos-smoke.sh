#!/usr/bin/env bash
# chaos-smoke.sh — end-to-end robustness smoke for scda-serve: fault
# injection, overload shedding, and crash recovery against a real server
# process. Three legs:
#
#   panic    — a server with -chaos panic=1 must fail every job with the
#              recovered panic (stack in the job error, panic counter
#              bumped) while /healthz keeps answering.
#   abuse    — a server under probabilistic chaos (handler latency, disk
#              cache faults, dropped streams) plus a tight -slo takes a
#              no-retry burst (every response a 2xx or an honest 429 with
#              Retry-After) and then a retrying-client hammer (every
#              accepted job settles); whatever landed in the disk cache
#              must be complete entries, no half-written debris.
#   crash    — a server with -journal-dir is killed -9 under a backlog of
#              accepted jobs; a restart on the same directories must
#              resubmit the journaled work (scda_jobs_recovered_total),
#              finish all of it, and serve the recovered spec's CSVs
#              byte-identical to a scda-sim CLI run of the same spec.
#
# CI runs this as the chaos-smoke job; it needs only curl, grep and diff
# beyond the go toolchain. The load driver is scripts/chaosload.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18081
base="http://$addr"

wait_up() {
    for _ in $(seq 50); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "server never came up"; exit 1
}

echo "== building"
go build -o "$tmp/scda-serve" ./cmd/scda-serve
go build -o "$tmp/scda-sim" ./cmd/scda-sim
go build -o "$tmp/chaosload" ./scripts/chaosload

# ---------------------------------------------------------------- panic leg
echo "== panic leg: -chaos panic=1"
"$tmp/scda-serve" -addr "$addr" -jobs 1 -chaos "seed=1,panic=1" &
pid=$!
wait_up

spec="$tmp/panic-spec.json"
cat > "$spec" <<'EOF'
{
  "version": 1,
  "name": "chaos-panic",
  "seed": 2,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}]
}
EOF
resp="$(curl -fsS -X POST --data-binary @"$spec" "$base/v1/jobs?wait=true")"
printf '%s' "$resp" | grep -q '"state": *"failed"' \
    || { echo "panicking job did not fail: $resp"; exit 1; }
printf '%s' "$resp" | grep -q 'task panic' \
    || { echo "job error lacks the recovered panic: $resp"; exit 1; }
curl -fsS "$base/healthz" >/dev/null \
    || { echo "server died with the job"; exit 1; }
curl -fsS "$base/metrics" | grep -E '^scda_job_panics_total [1-9]' >/dev/null \
    || { echo "metrics did not count the panic"; exit 1; }
kill "$pid"; wait "$pid" 2>/dev/null || true; pid=""

# ---------------------------------------------------------------- abuse leg
echo "== abuse leg: latency + disk faults + stream drops under a 150ms SLO"
"$tmp/scda-serve" -addr "$addr" -jobs 1 -cache-dir "$tmp/abuse-cache" \
    -slo 150ms -chaos "seed=7,latency=0.3,maxlatency=30ms,diskerr=0.3,drop=0.5" &
pid=$!
wait_up

echo "   prime: one completed compute seeds the admission cost estimate"
"$tmp/chaosload" -base "$base" -mode hammer -n 1 -distinct 1 -duration 30 -conc 1
echo "   burst: raw no-retry submissions past capacity"
"$tmp/chaosload" -base "$base" -mode burst -n 40 -distinct 40 -duration 30 -conc 16 \
    | tee "$tmp/burst.out"
grep -q ' 429=' "$tmp/burst.out" \
    || { echo "overload burst was never shed"; exit 1; }
echo "   hammer: retrying client"
"$tmp/chaosload" -base "$base" -mode hammer -n 12 -distinct 3 -duration 6 -conc 6
echo "   cache entries are complete"
if [ -d "$tmp/abuse-cache" ]; then
    for d in "$tmp/abuse-cache"/*/; do
        [ -e "$d" ] || continue
        case "$(basename "$d")" in .tmp-*) echo "tmp debris left: $d"; exit 1 ;; esac
        [ -s "$d/result.json" ] || { echo "incomplete cache entry: $d"; exit 1; }
    done
fi
kill "$pid"; wait "$pid" 2>/dev/null || true; pid=""

# ---------------------------------------------------------------- crash leg
echo "== crash leg: kill -9 under backlog, recover from the journal"
jdir="$tmp/journal"; cdir="$tmp/crash-cache"
"$tmp/scda-serve" -addr "$addr" -jobs 1 -journal-dir "$jdir" -cache-dir "$cdir" &
pid=$!
wait_up

"$tmp/chaosload" -base "$base" -mode backlog -n 6 -distinct 6 -duration 60
kill -9 "$pid"; wait "$pid" 2>/dev/null || true; pid=""
ls "$jdir"/j*.json >/dev/null 2>&1 \
    || { echo "journal is empty after the crash"; exit 1; }
echo "   journal carries $(ls "$jdir"/j*.json | wc -l) jobs across the crash"

"$tmp/scda-serve" -addr "$addr" -jobs 2 -journal-dir "$jdir" -cache-dir "$cdir" &
pid=$!
wait_up
curl -fsS "$base/metrics" | grep -E '^scda_jobs_recovered_total [1-9]' >/dev/null \
    || { echo "restart recovered nothing"; exit 1; }
echo "   waiting for recovered jobs to settle"
"$tmp/chaosload" -base "$base" -mode waitall -timeout 3m

echo "   recovered results match the CLI byte for byte"
# The same spec chaosload submits as its first backlog job (v=0: name
# chaosload-0, seed 1 — keep in sync with scripts/chaosload/main.go).
rspec="$tmp/recovered-spec.json"
cat > "$rspec" <<'EOF'
{
  "version": 1,
  "name": "chaosload-0",
  "seed": 1,
  "duration": 60,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput"]}
}
EOF
"$tmp/scda-sim" -scenario "$rspec" -out "$tmp/cli" >/dev/null
resp="$(curl -fsS -X POST --data-binary @"$rspec" "$base/v1/jobs?wait=true")"
printf '%s' "$resp" | grep -q '"cacheHit": *true' \
    || { echo "recovered spec was recomputed: $resp"; exit 1; }
rid="$(printf '%s' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
for kind in summary throughput; do
    curl -fsS "$base/v1/jobs/$rid/result?csv=$kind" > "$tmp/srv-$kind.csv"
    diff "$tmp/cli/chaosload-0-$kind.csv" "$tmp/srv-$kind.csv" \
        || { echo "MISMATCH: recovered $kind differs from the CLI"; exit 1; }
done
kill "$pid"; wait "$pid" 2>/dev/null || true; pid=""

echo "chaos smoke OK"
