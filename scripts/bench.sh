#!/usr/bin/env bash
# bench.sh — run the hot-path micro-benchmarks and the serial figure-suite
# benchmark, recording ns/op, B/op and allocs/op into BENCH_hotpath.json so
# every PR leaves a perf trajectory to regress against.
#
# Usage:  scripts/bench.sh [output.json]     (default: BENCH_hotpath.json)
#
# The micro-benchmarks (BenchmarkEventLoop, BenchmarkMaxMinRates,
# BenchmarkPacketForwarding, BenchmarkFluid1000Flows) measure the three hot
# layers in isolation; BenchmarkChurn tracks the incremental max-min
# solver's per-event repair against the full re-solve baseline at 10k
# flows (the "incremental" rows must stay well under the "full" row) and
# its scaling at 100k; BenchmarkServiceSubmitCached is the scda-serve
# cache hot path (HTTP submit of an already-cached spec, no simulation),
# BenchmarkServiceGroupSubmitCached its job-group counterpart (a sweep
# expanded server-side, every variant a cache hit),
# BenchmarkServiceSearchCached the adaptive-search replay (a full search
# converging purely from cached evaluations), and
# BenchmarkServiceSubmitShed the admission-control rejection fast path (a
# server pinned into overload answering 429 before reading the body);
# BenchmarkLintSelf tracks the static-analysis suite's cost per package
# (parse + type-check + all five analyzers over internal/lint itself), so
# the CI lint step's budget stays visible;
# BenchmarkAllFiguresSerial is the end-to-end figure suite at bench scale.
# Compare a fresh run against the committed JSON: ns/op regressions > ~20%
# or any B/op growth on the 0-alloc benchmarks deserve a look before
# merging.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_hotpath.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkEventLoop|BenchmarkMaxMinRates|BenchmarkChurn|BenchmarkPacketForwarding|BenchmarkFluid1000Flows|BenchmarkServiceSubmitCached|BenchmarkServiceGroupSubmitCached|BenchmarkServiceSearchCached|BenchmarkServiceSubmitShed|BenchmarkLintSelf' \
    -benchmem ./internal/sim ./internal/flowsim ./internal/netsim ./internal/service ./internal/lint | tee "$tmp"
go test -run '^$' -bench 'BenchmarkAllFiguresSerial' -benchtime=1x -benchmem . | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, goversion
    first = 1
}
/^Benchmark/ && / ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    b = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      b = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
        name, iters, ns, b, allocs
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
