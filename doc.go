// Package repro is a from-scratch Go reproduction of "SCDA: SLA-aware
// Cloud Datacenter Architecture for Efficient Content Storage and
// Retrieval" (Fesehaye & Nahrstedt, HPDC 2013).
//
// The library lives under internal/: a discrete-event packet network
// simulator (the NS2 stand-in), TCP Reno and the SCDA explicit-rate
// transport, the RM/RA rate-allocation plane (equations 2-6), the
// FES/NNS/BS distributed file system, content-aware server selection,
// power modelling, workload generators, a parallel experiment orchestrator
// (internal/runner), and an experiment harness that regenerates every
// figure of the paper's evaluation. See README.md and EXPERIMENTS.md.
package repro
