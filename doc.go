// Package repro is a from-scratch Go reproduction of "SCDA: SLA-aware
// Cloud Datacenter Architecture for Efficient Content Storage and
// Retrieval" (Fesehaye & Nahrstedt, HPDC 2013).
//
// The library lives under internal/: a discrete-event packet network
// simulator (the NS2 stand-in), TCP Reno and the SCDA explicit-rate
// transport, the RM/RA rate-allocation plane (equations 2-6), the
// FES/NNS/BS distributed file system, content-aware server selection,
// power modelling, a registry of workload generators with a phase
// compositor, a parallel experiment orchestrator (internal/runner), an
// experiment harness that regenerates every figure of the paper's
// evaluation, a declarative scenario layer (internal/scenario) that
// turns topology, workload mix, faults and outputs into versioned JSON
// specs under scenarios/, and a resident simulation service
// (internal/service, cmd/scda-serve) that queues, caches and streams
// scenario runs over HTTP. See README.md, EXPERIMENTS.md, ARCHITECTURE.md
// and scenarios/README.md.
package repro
