package topology

import (
	"testing"
	"testing/quick"
)

func buildDefault(t *testing.T) *ThreeTier {
	t.Helper()
	tt, err := BuildThreeTier(DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestThreeTierShape(t *testing.T) {
	tt := buildDefault(t)
	spec := tt.Spec
	if got := len(tt.Servers); got != spec.Racks*spec.ServersPerRack {
		t.Fatalf("servers = %d", got)
	}
	if got := len(tt.Clients); got != spec.Clients {
		t.Fatalf("clients = %d", got)
	}
	if got := len(tt.Edges); got != spec.Racks {
		t.Fatalf("edges = %d", got)
	}
	if got := len(tt.Aggs); got != spec.AggSwitches {
		t.Fatalf("aggs = %d", got)
	}
	if tt.Graph.MaxLevel() != 4 {
		t.Fatalf("max level = %d (client WAN links are level 4)", tt.Graph.MaxLevel())
	}
}

func TestThreeTierLevelsAndCapacities(t *testing.T) {
	tt := buildDefault(t)
	g := tt.Graph
	spec := tt.Spec
	for _, l := range g.Links {
		switch l.Level {
		case 1:
			if l.Capacity != spec.X {
				t.Fatalf("server link capacity %v, want X=%v", l.Capacity, spec.X)
			}
		case 2:
			if l.Capacity != spec.K*spec.X {
				t.Fatalf("rack-agg capacity %v, want KX=%v", l.Capacity, spec.K*spec.X)
			}
		case 3:
			if l.Capacity != spec.CoreFactor*spec.X {
				t.Fatalf("agg-core capacity %v, want 6X=%v", l.Capacity, spec.CoreFactor*spec.X)
			}
		case 4:
			if l.Delay != spec.WANDelay {
				t.Fatalf("WAN delay %v", l.Delay)
			}
		default:
			t.Fatalf("unexpected link level %d", l.Level)
		}
	}
}

func TestThreeTierParentChain(t *testing.T) {
	tt := buildDefault(t)
	for _, e := range tt.Edges {
		agg := tt.Parent[e]
		if tt.Graph.Nodes[agg].Level != 2 {
			t.Fatalf("edge parent level %d", tt.Graph.Nodes[agg].Level)
		}
		if tt.Parent[agg] != tt.Core {
			t.Fatal("agg parent is not core")
		}
	}
	if tt.Parent[tt.Core] != None {
		t.Fatal("core has a parent")
	}
}

func TestThreeTierValidateSpec(t *testing.T) {
	bad := DefaultThreeTier()
	bad.Racks = 0
	if _, err := BuildThreeTier(bad); err == nil {
		t.Fatal("zero racks accepted")
	}
	bad = DefaultThreeTier()
	bad.X = -1
	if _, err := BuildThreeTier(bad); err == nil {
		t.Fatal("negative X accepted")
	}
	bad = DefaultThreeTier()
	bad.K = 0
	if _, err := BuildThreeTier(bad); err == nil {
		t.Fatal("zero K accepted")
	}
}

func TestReversePairing(t *testing.T) {
	tt := buildDefault(t)
	g := tt.Graph
	for _, l := range g.Links {
		r := g.Links[l.Reverse]
		if r.Reverse != l.ID || r.From != l.To || r.To != l.From {
			t.Fatalf("link %d reverse pairing broken", l.ID)
		}
		if r.Capacity != l.Capacity || r.Delay != l.Delay || r.Level != l.Level {
			t.Fatalf("link %d reverse attributes differ", l.ID)
		}
	}
}

func TestRoutingTreePaths(t *testing.T) {
	tt := buildDefault(t)
	r := ComputeRouting(tt.Graph)

	// same-rack servers: host → tor → host = 2 hops
	s0, s1 := tt.Servers[0], tt.Servers[1]
	if d := r.Distance(s0, s1); d != 2 {
		t.Fatalf("same-rack distance = %d", d)
	}
	// cross-agg servers: host→tor→agg→core→agg→tor→host = 6 hops
	sA := tt.Servers[0]                      // rack 0 → agg 0
	sB := tt.Servers[tt.Spec.ServersPerRack] // rack 1 → agg 1
	if tt.RackOf[sA]%2 == tt.RackOf[sB]%2 {
		t.Fatal("test assumption broken: racks on same agg")
	}
	if d := r.Distance(sA, sB); d != 6 {
		t.Fatalf("cross-agg distance = %d", d)
	}
	// client to server: client→core→agg→tor→host = 4 hops
	if d := r.Distance(tt.Clients[0], tt.Servers[0]); d != 4 {
		t.Fatalf("client-server distance = %d", d)
	}
}

func TestRoutingPathConsistency(t *testing.T) {
	tt := buildDefault(t)
	g := tt.Graph
	r := ComputeRouting(g)
	hosts := g.Hosts()
	for _, src := range hosts[:10] {
		for _, dst := range hosts[len(hosts)-10:] {
			if src == dst {
				continue
			}
			path, err := r.Path(src, dst, 12345)
			if err != nil {
				t.Fatal(err)
			}
			at := src
			for _, l := range path {
				if g.Links[l].From != at {
					t.Fatalf("path discontinuous at link %d", l)
				}
				at = g.Links[l].To
			}
			if at != dst {
				t.Fatalf("path ends at %d, want %d", at, dst)
			}
			if len(path) != r.Distance(src, dst) {
				t.Fatalf("path len %d != distance %d", len(path), r.Distance(src, dst))
			}
		}
	}
}

func TestRoutingSelfPath(t *testing.T) {
	tt := buildDefault(t)
	r := ComputeRouting(tt.Graph)
	p, err := r.Path(tt.Servers[0], tt.Servers[0], 0)
	if err != nil || p != nil {
		t.Fatalf("self path = %v, %v", p, err)
	}
	if _, err := r.NextLink(tt.Servers[0], tt.Servers[0], 0); err == nil {
		t.Fatal("NextLink at destination should error")
	}
}

func TestRTTSymmetric(t *testing.T) {
	tt := buildDefault(t)
	r := ComputeRouting(tt.Graph)
	a, b := tt.Clients[0], tt.Servers[0]
	rtt, err := r.RTT(a, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	// client→core (50ms) + core→agg + agg→tor + tor→host (3×10ms) both ways
	want := 2 * (tt.Spec.WANDelay + 3*tt.Spec.DCDelay)
	if diff := rtt - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("RTT = %v, want %v", rtt, want)
	}
}

func TestFatTreeShape(t *testing.T) {
	g, hosts, err := FatTree(4, 1e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 16 {
		t.Fatalf("k=4 fat-tree hosts = %d, want 16", len(hosts))
	}
	// 4 cores + 4 pods × (2 agg + 2 edge) = 20 switches
	if got := len(g.Switches()); got != 20 {
		t.Fatalf("switches = %d, want 20", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeECMP(t *testing.T) {
	g, hosts, err := FatTree(4, 1e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	r := ComputeRouting(g)
	// hosts in different pods have multiple equal-cost paths; the edge
	// switch should see 2 next-hop choices (2 aggs per pod).
	src, dst := hosts[0], hosts[len(hosts)-1]
	path, err := r.Path(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 {
		t.Fatalf("cross-pod path length %d, want 6", len(path))
	}
	edgeSwitch := g.Links[path[0]].To
	if w := r.ECMPWidth(edgeSwitch, dst); w != 2 {
		t.Fatalf("ECMP width at edge = %d, want 2", w)
	}
}

func TestFatTreeHashSpreadsPaths(t *testing.T) {
	g, hosts, err := FatTree(4, 1e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	r := ComputeRouting(g)
	src, dst := hosts[0], hosts[15]
	seen := map[LinkID]bool{}
	for h := uint64(0); h < 64; h++ {
		p, err := r.Path(src, dst, h)
		if err != nil {
			t.Fatal(err)
		}
		seen[p[1]] = true // link chosen at the edge switch
	}
	if len(seen) < 2 {
		t.Fatalf("hash never spread across ECMP paths: %v", seen)
	}
}

func TestFatTreeOddKRejected(t *testing.T) {
	if _, _, err := FatTree(3, 1e9, 1e-3); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, _, err := FatTree(0, 1e9, 1e-3); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestVL2Shape(t *testing.T) {
	g, hosts, err := VL2(4, 2, 2, 5, 1e9, 10e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 20 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r := ComputeRouting(g)
	for _, h := range hosts {
		if d := r.Distance(hosts[0], h); h != hosts[0] && d < 2 {
			t.Fatalf("distance %d to host %d", d, h)
		}
	}
}

func TestVL2BadShape(t *testing.T) {
	if _, _, err := VL2(0, 2, 2, 5, 1e9, 10e9, 1e-3); err == nil {
		t.Fatal("0 tors accepted")
	}
	if _, _, err := VL2(4, 1, 2, 5, 1e9, 10e9, 1e-3); err == nil {
		t.Fatal("1 agg accepted (dual-homing needs 2)")
	}
}

func TestGraphValidateCatchesDisconnect(t *testing.T) {
	g := NewGraph()
	g.AddNode(Host, "a", 0)
	g.AddNode(Host, "b", 0)
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph validated")
	}
}

func TestAddDuplexPanics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Host, "a", 0)
	b := g.AddNode(Host, "b", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive capacity accepted")
		}
	}()
	g.AddDuplex(a, b, 0, 1e-3, 1)
}

func TestBisectionCapacity(t *testing.T) {
	tt := buildDefault(t)
	want := float64(tt.Spec.AggSwitches) * tt.Spec.CoreFactor * tt.Spec.X
	if got := tt.Graph.BisectionCapacity(3); got != want {
		t.Fatalf("core bisection = %v, want %v", got, want)
	}
}

func TestPathHelpers(t *testing.T) {
	tt := buildDefault(t)
	r := ComputeRouting(tt.Graph)
	p, _ := r.Path(tt.Clients[0], tt.Servers[0], 0)
	if d := tt.Graph.PathDelay(p); d <= 0 {
		t.Fatalf("path delay %v", d)
	}
	if c := tt.Graph.PathMinCapacity(p); c != tt.Spec.X {
		t.Fatalf("bottleneck %v, want X", c)
	}
}

func TestRoutingPropertyRandomPairs(t *testing.T) {
	tt := buildDefault(t)
	g := tt.Graph
	r := ComputeRouting(g)
	hosts := g.Hosts()
	f := func(i, j uint16, hash uint64) bool {
		src := hosts[int(i)%len(hosts)]
		dst := hosts[int(j)%len(hosts)]
		if src == dst {
			return true
		}
		p, err := r.Path(src, dst, hash)
		if err != nil || len(p) == 0 {
			return false
		}
		// no repeated links (simple path)
		seen := map[LinkID]bool{}
		for _, l := range p {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return g.Links[p[len(p)-1]].To == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
