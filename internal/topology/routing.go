package topology

import (
	"fmt"
	"math"
)

// Routing holds destination-based next-hop tables with equal-cost
// multipath sets, computed by per-destination breadth-first search. ECMP
// next-hop choice is by flow hash, matching the per-flow ECMP the paper's
// baselines (VL2, Hedera) rely on.
type Routing struct {
	g *Graph
	// next[dst][node] lists links leaving node on shortest paths to dst.
	next [][][]LinkID
	// dist[dst][node] is the hop distance to dst.
	dist [][]int
}

// ComputeRouting builds shortest-path (hop-count) ECMP tables for all
// destinations. Memory is O(N²) in node count, fine for the simulated
// fabrics (hundreds to a few thousand nodes).
func ComputeRouting(g *Graph) *Routing {
	n := len(g.Nodes)
	r := &Routing{
		g:    g,
		next: make([][][]LinkID, n),
		dist: make([][]int, n),
	}
	for dst := 0; dst < n; dst++ {
		r.next[dst] = make([][]LinkID, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = math.MaxInt32
		}
		dist[dst] = 0
		queue := []NodeID{NodeID(dst)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// explore reverse: neighbours that can reach v in one hop
			for _, l := range g.out[v] {
				u := g.Links[l].To // v→u exists, so u→v via reverse
				rev := g.Links[l].Reverse
				if dist[u] > dist[v]+1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
					r.next[dst][u] = []LinkID{rev}
				} else if dist[u] == dist[v]+1 {
					r.next[dst][u] = append(r.next[dst][u], rev)
				}
			}
		}
		r.dist[dst] = dist
	}
	return r
}

// NextLink returns the link to take from node at toward dst for a flow with
// the given hash. The hash pins a flow to one path (per-flow ECMP).
func (r *Routing) NextLink(at, dst NodeID, flowHash uint64) (LinkID, error) {
	if at == dst {
		return None, fmt.Errorf("topology: NextLink at destination %d", dst)
	}
	hops := r.next[dst][at]
	if len(hops) == 0 {
		return None, fmt.Errorf("topology: no route %d → %d", at, dst)
	}
	return hops[flowHash%uint64(len(hops))], nil
}

// Path returns the full link path from src to dst for a flow hash.
func (r *Routing) Path(src, dst NodeID, flowHash uint64) ([]LinkID, error) {
	if src == dst {
		return nil, nil
	}
	var path []LinkID
	at := src
	for at != dst {
		l, err := r.NextLink(at, dst, flowHash)
		if err != nil {
			return nil, err
		}
		path = append(path, l)
		at = r.g.Links[l].To
		if len(path) > len(r.g.Nodes) {
			return nil, fmt.Errorf("topology: routing loop %d → %d", src, dst)
		}
	}
	return path, nil
}

// Distance returns the hop count from src to dst, or -1 if unreachable.
func (r *Routing) Distance(src, dst NodeID) int {
	d := r.dist[dst][src]
	if d == math.MaxInt32 {
		return -1
	}
	return d
}

// ECMPWidth returns the number of equal-cost next hops from at toward dst,
// a diagnostic for multipath fabrics.
func (r *Routing) ECMPWidth(at, dst NodeID) int {
	return len(r.next[dst][at])
}

// RTT estimates the round-trip propagation delay between two nodes for a
// flow hash (forward path delay + reverse path delay). Transmission and
// queueing delays are not included; the transports measure those live.
func (r *Routing) RTT(a, b NodeID, flowHash uint64) (float64, error) {
	fwd, err := r.Path(a, b, flowHash)
	if err != nil {
		return 0, err
	}
	rev, err := r.Path(b, a, flowHash)
	if err != nil {
		return 0, err
	}
	return r.g.PathDelay(fwd) + r.g.PathDelay(rev), nil
}
