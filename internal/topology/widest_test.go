package topology

import (
	"math"
	"testing"
)

// diamond builds src -(a: capTop1)- t -(capTop2)- dst and
//
//	src -(b: capBot1)- u -(capBot2)- dst.
func diamond(capTop1, capTop2, capBot1, capBot2 float64) (*Graph, NodeID, NodeID) {
	g := NewGraph()
	src := g.AddNode(Host, "src", 0)
	t := g.AddNode(Switch, "t", 1)
	u := g.AddNode(Switch, "u", 1)
	dst := g.AddNode(Host, "dst", 0)
	g.AddDuplex(src, t, capTop1, 1e-3, 1)
	g.AddDuplex(t, dst, capTop2, 1e-3, 1)
	g.AddDuplex(src, u, capBot1, 1e-3, 1)
	g.AddDuplex(u, dst, capBot2, 1e-3, 1)
	return g, src, dst
}

func TestWidestPathPicksFatterRoute(t *testing.T) {
	// top path bottleneck 5, bottom path bottleneck 8 → choose bottom
	g, src, dst := diamond(10, 5, 8, 9)
	path, width, err := WidestPath(g, src, dst, CapacityWeight(g))
	if err != nil {
		t.Fatal(err)
	}
	if width != 8 {
		t.Fatalf("bottleneck = %v, want 8", width)
	}
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
	if g.Links[path[0]].To != g.Nodes[2].ID { // via u
		t.Fatalf("took the narrow route: %v", path)
	}
}

func TestWidestPathTieBreaksOnHops(t *testing.T) {
	// equal bottlenecks: prefer the shorter path
	g := NewGraph()
	src := g.AddNode(Host, "src", 0)
	mid1 := g.AddNode(Switch, "m1", 1)
	mid2 := g.AddNode(Switch, "m2", 1)
	dst := g.AddNode(Host, "dst", 0)
	g.AddDuplex(src, dst, 10, 1e-3, 1) // direct, 1 hop
	g.AddDuplex(src, mid1, 10, 1e-3, 1)
	g.AddDuplex(mid1, mid2, 10, 1e-3, 1)
	g.AddDuplex(mid2, dst, 10, 1e-3, 1)
	path, width, err := WidestPath(g, src, dst, CapacityWeight(g))
	if err != nil {
		t.Fatal(err)
	}
	if width != 10 || len(path) != 1 {
		t.Fatalf("path = %v width = %v, want direct 1-hop", path, width)
	}
}

func TestWidestPathDynamicWeights(t *testing.T) {
	// same diamond, but dynamic weights invert the static choice:
	// the fat bottom route is congested (residual rate low)
	g, src, dst := diamond(10, 5, 8, 9)
	residual := map[LinkID]float64{}
	for _, l := range g.Links {
		residual[l.ID] = l.Capacity
	}
	// congest the bottom route's first hop (links 4/5 are src↔u)
	residual[4] = 1
	path, width, err := WidestPath(g, src, dst, func(l LinkID) float64 { return residual[l] })
	if err != nil {
		t.Fatal(err)
	}
	if width != 5 {
		t.Fatalf("bottleneck = %v, want 5 (top route)", width)
	}
	if g.Links[path[0]].To != g.Nodes[1].ID { // via t
		t.Fatalf("did not reroute around congestion: %v", path)
	}
}

func TestWidestPathSelf(t *testing.T) {
	g, src, _ := diamond(1, 1, 1, 1)
	path, width, err := WidestPath(g, src, src, CapacityWeight(g))
	if err != nil || path != nil || !math.IsInf(width, 1) {
		t.Fatalf("self path = %v %v %v", path, width, err)
	}
}

func TestWidestPathUnreachable(t *testing.T) {
	g, src, dst := diamond(1, 1, 1, 1)
	zero := func(LinkID) float64 { return 0 }
	if _, _, err := WidestPath(g, src, dst, zero); err == nil {
		t.Fatal("unreachable (all-zero weights) not detected")
	}
}

func TestWidestPathOnFatTree(t *testing.T) {
	g, hosts, err := FatTree(4, 1e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	path, width, err := WidestPath(g, hosts[0], hosts[15], CapacityWeight(g))
	if err != nil {
		t.Fatal(err)
	}
	if width != 1e9 {
		t.Fatalf("uniform fat-tree bottleneck = %v", width)
	}
	// path must be valid and loop-free
	at := hosts[0]
	seen := map[NodeID]bool{at: true}
	for _, l := range path {
		if g.Links[l].From != at {
			t.Fatal("discontinuous path")
		}
		at = g.Links[l].To
		if seen[at] {
			t.Fatal("loop in widest path")
		}
		seen[at] = true
	}
	if at != hosts[15] {
		t.Fatal("wrong destination")
	}
}

func TestWidestPathMatchesPathMinCapacity(t *testing.T) {
	g, src, dst := diamond(7, 3, 2, 9)
	path, width, err := WidestPath(g, src, dst, CapacityWeight(g))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PathMinCapacity(path); got != width {
		t.Fatalf("PathMinCapacity %v != reported width %v", got, width)
	}
}
