// Package topology models datacenter network topologies for SCDA: the
// paper's three-tier tree (fig. 1 / fig. 6), plus the fat-tree and VL2 Clos
// fabrics referenced in section IX (general network topologies).
//
// A Graph holds nodes (hosts and switches) and unidirectional links. Links
// are directed because SCDA allocates up-link and down-link rates
// independently (the R_{d,u} notation of eq. 1); a physical cable is two
// Link values, one per direction, paired via Reverse.
package topology

import (
	"fmt"
	"math"
)

// NodeID indexes Graph.Nodes.
type NodeID int

// LinkID indexes Graph.Links.
type LinkID int

// None marks an absent node or link.
const None = -1

// NodeKind distinguishes endpoints from forwarding elements.
type NodeKind int

const (
	// Host is a traffic endpoint: a block server, a name node, the FES,
	// or an external user client (UCL).
	Host NodeKind = iota
	// Switch forwards packets and hosts a resource allocator (RA).
	Switch
)

// String names the node kind for topology dumps.
func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Node is a vertex in the datacenter graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Level is the tree level per the paper's numbering: block servers /
	// hosts are level 0, top-of-rack switches level 1, aggregation level 2,
	// core level hmax. For non-tree fabrics Level is the stage index.
	Level int
}

// Link is one direction of a cable.
type Link struct {
	ID       LinkID
	From, To NodeID
	// Capacity in bits per second (the C_{d,u} of Table I).
	Capacity float64
	// Delay is one-way propagation delay in seconds.
	Delay float64
	// Reverse is the opposite-direction link of the same cable.
	Reverse LinkID
	// Level is the tree level of the cable: a level-h link connects a
	// level-(h-1) node to a level-h node. Down-links and up-links of the
	// same cable share a level.
	Level int
}

// Graph is a datacenter network.
type Graph struct {
	Nodes []Node
	Links []Link
	// out[n] lists links leaving node n.
	out [][]LinkID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string, level int) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name, Level: level})
	g.out = append(g.out, nil)
	return id
}

// AddDuplex adds both directions of a cable between a and b with the given
// capacity (bits/sec), one-way delay (sec) and tree level. It returns the
// a→b link ID; the b→a link is its Reverse.
func (g *Graph) AddDuplex(a, b NodeID, capacity, delay float64, level int) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: non-positive capacity %v on %v-%v", capacity, a, b))
	}
	if delay < 0 {
		panic("topology: negative delay")
	}
	ab := LinkID(len(g.Links))
	ba := ab + 1
	g.Links = append(g.Links,
		Link{ID: ab, From: a, To: b, Capacity: capacity, Delay: delay, Reverse: ba, Level: level},
		Link{ID: ba, From: b, To: a, Capacity: capacity, Delay: delay, Reverse: ab, Level: level},
	)
	g.out[a] = append(g.out[a], ab)
	g.out[b] = append(g.out[b], ba)
	return ab
}

// Out returns the links leaving node n.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// Hosts returns the IDs of all host nodes.
func (g *Graph) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// Switches returns the IDs of all switch nodes.
func (g *Graph) Switches() []NodeID {
	var ss []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			ss = append(ss, n.ID)
		}
	}
	return ss
}

// Neighbor returns the node at the far end of link l from node n.
func (g *Graph) Neighbor(n NodeID, l LinkID) NodeID {
	lk := g.Links[l]
	if lk.From == n {
		return lk.To
	}
	if lk.To == n {
		return lk.From
	}
	panic("topology: link not incident to node")
}

// Validate checks structural invariants: reverse pairing, ID consistency,
// and full connectivity. It returns a descriptive error on the first
// violation.
func (g *Graph) Validate() error {
	for i, l := range g.Links {
		if l.ID != LinkID(i) {
			return fmt.Errorf("link %d has ID %d", i, l.ID)
		}
		if l.Reverse < 0 || int(l.Reverse) >= len(g.Links) {
			return fmt.Errorf("link %d reverse %d out of range", i, l.Reverse)
		}
		r := g.Links[l.Reverse]
		if r.From != l.To || r.To != l.From || r.Reverse != l.ID {
			return fmt.Errorf("link %d and reverse %d not paired", i, l.Reverse)
		}
		if int(l.From) >= len(g.Nodes) || int(l.To) >= len(g.Nodes) {
			return fmt.Errorf("link %d endpoints out of range", i)
		}
	}
	if len(g.Nodes) == 0 {
		return nil
	}
	// connectivity via BFS from node 0
	seen := make([]bool, len(g.Nodes))
	queue := []NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, l := range g.out[n] {
			m := g.Links[l].To
			if !seen[m] {
				seen[m] = true
				count++
				queue = append(queue, m)
			}
		}
	}
	if count != len(g.Nodes) {
		return fmt.Errorf("graph not connected: reached %d of %d nodes", count, len(g.Nodes))
	}
	return nil
}

// MaxLevel returns the highest link level in the graph (the paper's hmax).
func (g *Graph) MaxLevel() int {
	h := 0
	for _, l := range g.Links {
		if l.Level > h {
			h = l.Level
		}
	}
	return h
}

// BisectionCapacity returns the total capacity of links at the given level
// in one direction, a rough fabric-capacity diagnostic.
func (g *Graph) BisectionCapacity(level int) float64 {
	total := 0.0
	for _, l := range g.Links {
		if l.Level == level {
			total += l.Capacity
		}
	}
	return total / 2 // each cable counted once
}

// PathDelay sums one-way propagation delay along a path of link IDs.
func (g *Graph) PathDelay(path []LinkID) float64 {
	d := 0.0
	for _, l := range path {
		d += g.Links[l].Delay
	}
	return d
}

// PathMinCapacity returns the bottleneck capacity along a path, or +Inf for
// an empty path.
func (g *Graph) PathMinCapacity(path []LinkID) float64 {
	m := math.Inf(1)
	for _, l := range path {
		if g.Links[l].Capacity < m {
			m = g.Links[l].Capacity
		}
	}
	return m
}
