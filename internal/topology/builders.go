package topology

import "fmt"

// ThreeTierSpec parameterises the paper's experimental topology (fig. 6):
// a three-tier datacenter tree (block servers → ToR/edge → aggregation →
// core) plus external user clients reaching the core over high-latency
// access links. The paper scales link capacities from a base bandwidth X
// with a bandwidth factor K (K < 6) on mid-tier links and a 6X core tier,
// showing SCDA is not restricted to equal-bandwidth fabrics.
type ThreeTierSpec struct {
	// Racks is the number of edge (ToR) switches.
	Racks int
	// ServersPerRack is the number of block servers per ToR.
	ServersPerRack int
	// AggSwitches is the number of aggregation switches; racks are
	// distributed round-robin among them. Must divide into Racks usefully
	// but any positive count works.
	AggSwitches int
	// Clients is the number of external user clients (UCLs) attached to
	// the core over WAN links.
	Clients int

	// X is the base bandwidth in bits/sec (paper: 500 Mb/s or 200 Mb/s).
	X float64
	// K is the bandwidth factor for rack-to-aggregation links (paper: 1 or 3).
	K float64
	// CoreFactor scales aggregation-to-core links (paper's 6X tier).
	CoreFactor float64

	// DCDelay is the one-way delay of every intra-datacenter link
	// (paper: 10 ms).
	DCDelay float64
	// WANDelay is the one-way delay of client access links (paper: 50 ms).
	WANDelay float64
}

// DefaultThreeTier returns the fig. 6 topology at the paper's video-trace
// scale: 20 servers (the paper scales the YouTube trace to 20 of the 2138
// servers), X = 500 Mb/s, K = 3.
func DefaultThreeTier() ThreeTierSpec {
	return ThreeTierSpec{
		Racks:          4,
		ServersPerRack: 5,
		AggSwitches:    2,
		Clients:        40,
		X:              500e6,
		K:              3,
		CoreFactor:     6,
		DCDelay:        10e-3,
		WANDelay:       50e-3,
	}
}

func (s ThreeTierSpec) validate() error {
	switch {
	case s.Racks <= 0:
		return fmt.Errorf("topology: Racks = %d", s.Racks)
	case s.ServersPerRack <= 0:
		return fmt.Errorf("topology: ServersPerRack = %d", s.ServersPerRack)
	case s.AggSwitches <= 0:
		return fmt.Errorf("topology: AggSwitches = %d", s.AggSwitches)
	case s.Clients < 0:
		return fmt.Errorf("topology: Clients = %d", s.Clients)
	case s.X <= 0:
		return fmt.Errorf("topology: X = %v", s.X)
	case s.K <= 0:
		return fmt.Errorf("topology: K = %v", s.K)
	case s.CoreFactor <= 0:
		return fmt.Errorf("topology: CoreFactor = %v", s.CoreFactor)
	}
	return nil
}

// ThreeTier is the built fig. 6 topology with the node roles the cluster
// layer needs.
type ThreeTier struct {
	Graph *Graph
	Spec  ThreeTierSpec

	Core    NodeID
	Aggs    []NodeID
	Edges   []NodeID
	Servers []NodeID // block servers, level 0
	Clients []NodeID // external UCLs

	// RackOf maps each server to its rack (edge switch index).
	RackOf map[NodeID]int
	// UplinkOf maps each host (server or client) to its host→switch link.
	UplinkOf map[NodeID]LinkID
	// Parent maps each switch to its parent switch (core maps to None).
	Parent map[NodeID]NodeID
}

// BuildThreeTier constructs the fig. 6 tree. Levels follow the paper: hosts
// at level 0, host links level 1, rack-agg links level 2, agg-core links
// level 3 (hmax = 3); client WAN links are level 4, outside the DC tree.
func BuildThreeTier(spec ThreeTierSpec) (*ThreeTier, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	g := NewGraph()
	t := &ThreeTier{
		Graph:    g,
		Spec:     spec,
		RackOf:   make(map[NodeID]int),
		UplinkOf: make(map[NodeID]LinkID),
		Parent:   make(map[NodeID]NodeID),
	}

	t.Core = g.AddNode(Switch, "core", 3)
	t.Parent[t.Core] = None

	for a := 0; a < spec.AggSwitches; a++ {
		agg := g.AddNode(Switch, fmt.Sprintf("agg%d", a), 2)
		t.Aggs = append(t.Aggs, agg)
		t.Parent[agg] = t.Core
		g.AddDuplex(agg, t.Core, spec.CoreFactor*spec.X, spec.DCDelay, 3)
	}

	for r := 0; r < spec.Racks; r++ {
		edge := g.AddNode(Switch, fmt.Sprintf("tor%d", r), 1)
		t.Edges = append(t.Edges, edge)
		agg := t.Aggs[r%spec.AggSwitches]
		t.Parent[edge] = agg
		g.AddDuplex(edge, agg, spec.K*spec.X, spec.DCDelay, 2)

		for sv := 0; sv < spec.ServersPerRack; sv++ {
			srv := g.AddNode(Host, fmt.Sprintf("bs%d-%d", r, sv), 0)
			t.Servers = append(t.Servers, srv)
			t.RackOf[srv] = r
			up := g.AddDuplex(srv, edge, spec.X, spec.DCDelay, 1)
			t.UplinkOf[srv] = up
		}
	}

	for c := 0; c < spec.Clients; c++ {
		ucl := g.AddNode(Host, fmt.Sprintf("ucl%d", c), 0)
		t.Clients = append(t.Clients, ucl)
		up := g.AddDuplex(ucl, t.Core, spec.X, spec.WANDelay, 4)
		t.UplinkOf[ucl] = up
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FatTree builds a k-ary fat-tree (Al-Fares et al., the paper's ref. [1]):
// k pods of k/2 edge and k/2 aggregation switches, (k/2)² core switches,
// and (k/2)² hosts per pod, all links at the given capacity. Used for the
// section IX general-topology experiments. k must be even and >= 2.
func FatTree(k int, capacity, delay float64) (*Graph, []NodeID, error) {
	if k < 2 || k%2 != 0 {
		return nil, nil, fmt.Errorf("topology: fat-tree k must be even and >= 2, got %d", k)
	}
	g := NewGraph()
	half := k / 2
	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddNode(Switch, fmt.Sprintf("core%d", i), 3)
	}
	var hosts []NodeID
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(Switch, fmt.Sprintf("p%d-agg%d", p, i), 2)
			edges[i] = g.AddNode(Switch, fmt.Sprintf("p%d-edge%d", p, i), 1)
		}
		for i, agg := range aggs {
			// agg i in each pod connects to cores [i*half, (i+1)*half)
			for j := 0; j < half; j++ {
				g.AddDuplex(agg, cores[i*half+j], capacity, delay, 3)
			}
			for _, e := range edges {
				g.AddDuplex(e, agg, capacity, delay, 2)
			}
		}
		for i, e := range edges {
			for h := 0; h < half; h++ {
				host := g.AddNode(Host, fmt.Sprintf("p%d-e%d-h%d", p, i, h), 0)
				hosts = append(hosts, host)
				g.AddDuplex(host, e, capacity, delay, 1)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, hosts, nil
}

// VL2 builds a VL2-style Clos fabric (Greenberg et al., the paper's ref.
// [12]): ToR switches each dual-homed to two aggregation switches, and a
// complete bipartite mesh between aggregation and intermediate switches.
// hostCap is the server uplink capacity; fabricCap the switch-to-switch
// capacity (VL2 uses 1G/10G).
func VL2(tors, aggs, intermediates, hostsPerTor int, hostCap, fabricCap, delay float64) (*Graph, []NodeID, error) {
	if tors <= 0 || aggs < 2 || intermediates <= 0 || hostsPerTor <= 0 {
		return nil, nil, fmt.Errorf("topology: invalid VL2 shape %d/%d/%d/%d", tors, aggs, intermediates, hostsPerTor)
	}
	g := NewGraph()
	ints := make([]NodeID, intermediates)
	for i := range ints {
		ints[i] = g.AddNode(Switch, fmt.Sprintf("int%d", i), 3)
	}
	ag := make([]NodeID, aggs)
	for i := range ag {
		ag[i] = g.AddNode(Switch, fmt.Sprintf("agg%d", i), 2)
		for _, in := range ints {
			g.AddDuplex(ag[i], in, fabricCap, delay, 3)
		}
	}
	var hosts []NodeID
	for t := 0; t < tors; t++ {
		tor := g.AddNode(Switch, fmt.Sprintf("tor%d", t), 1)
		g.AddDuplex(tor, ag[t%aggs], fabricCap, delay, 2)
		g.AddDuplex(tor, ag[(t+1)%aggs], fabricCap, delay, 2)
		for h := 0; h < hostsPerTor; h++ {
			host := g.AddNode(Host, fmt.Sprintf("t%d-h%d", t, h), 0)
			hosts = append(hosts, host)
			g.AddDuplex(host, tor, hostCap, delay, 1)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, hosts, nil
}
