package topology

import (
	"container/heap"
	"fmt"
	"math"
)

// WidestPath computes the maximum-bottleneck ("widest") path from src to
// dst under per-link weights — the section IX rule for general topologies:
// "a max/min algorithm has to be used to find the best path and the rate
// in that path. This is done by first finding the minimum rate of each
// path and then taking the path with the maximum such rate."
//
// weight gives each directed link's current rate (e.g. the RM/RA plane's
// R values); the returned path maximises the minimum weight along it, with
// hop count as a tie-break so routes stay loop-free and short. The second
// return is that bottleneck rate. An error is returned when dst is
// unreachable through positive-weight links.
func WidestPath(g *Graph, src, dst NodeID, weight func(LinkID) float64) ([]LinkID, float64, error) {
	if src == dst {
		return nil, math.Inf(1), nil
	}
	n := len(g.Nodes)
	bottleneck := make([]float64, n)
	hops := make([]int, n)
	prevLink := make([]LinkID, n)
	for i := range bottleneck {
		bottleneck[i] = math.Inf(-1)
		hops[i] = math.MaxInt32
		prevLink[i] = None
	}
	bottleneck[src] = math.Inf(1)
	hops[src] = 0

	pq := &widestHeap{{node: src, width: math.Inf(1), hops: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(widestItem)
		if cur.width < bottleneck[cur.node] ||
			(cur.width == bottleneck[cur.node] && cur.hops > hops[cur.node]) {
			continue // stale entry
		}
		if cur.node == dst {
			break
		}
		for _, lid := range g.Out(cur.node) {
			w := weight(lid)
			if w <= 0 {
				continue
			}
			next := g.Links[lid].To
			width := math.Min(cur.width, w)
			h := cur.hops + 1
			if width > bottleneck[next] || (width == bottleneck[next] && h < hops[next]) {
				bottleneck[next] = width
				hops[next] = h
				prevLink[next] = lid
				heap.Push(pq, widestItem{node: next, width: width, hops: h})
			}
		}
	}
	if math.IsInf(bottleneck[dst], -1) {
		return nil, 0, fmt.Errorf("topology: no positive-weight path %d → %d", src, dst)
	}
	// reconstruct
	var rev []LinkID
	for at := dst; at != src; {
		l := prevLink[at]
		if l == None {
			return nil, 0, fmt.Errorf("topology: path reconstruction broke at %d", at)
		}
		rev = append(rev, l)
		at = g.Links[l].From
	}
	path := make([]LinkID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, bottleneck[dst], nil
}

type widestItem struct {
	node  NodeID
	width float64
	hops  int
}

// widestHeap is a max-heap on width (min on hops as tie-break).
type widestHeap []widestItem

func (h widestHeap) Len() int { return len(h) }
func (h widestHeap) Less(i, j int) bool {
	if h[i].width != h[j].width {
		return h[i].width > h[j].width
	}
	return h[i].hops < h[j].hops
}
func (h widestHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *widestHeap) Push(x any)   { *h = append(*h, x.(widestItem)) }
func (h *widestHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// CapacityWeight adapts static link capacities as widest-path weights.
func CapacityWeight(g *Graph) func(LinkID) float64 {
	return func(l LinkID) float64 { return g.Links[l].Capacity }
}
