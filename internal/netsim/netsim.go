// Package netsim is a packet-level datacenter network simulator — the
// repository's stand-in for NS2, in which the paper implemented SCDA.
//
// It simulates store-and-forward transmission over the links of a
// topology.Graph: each link has finite capacity, propagation delay, and a
// drop-tail FIFO queue (optionally the per-flow packet-count discipline of
// section IV-B, which approximates shortest-job-first the way the paper
// describes OpenFlow switches doing it). Switches forward by destination
// using ECMP routing; hosts hand received packets to registered transport
// endpoints (TCP Reno for the RandTCP baseline, the SCDA windowed transport
// for SCDA).
//
// The per-link byte and queue counters feed the SCDA resource monitors and
// allocators: Q(t) and Λ(t) in equations 2 and 5 are read directly from the
// simulated switch interfaces, mirroring how the paper's RMs and RAs "get
// the values of Q from the local switch ... as all switches maintain the
// queue length in each of their interfaces".
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Packet is a simulated datagram.
type Packet struct {
	Flow    FlowID
	Src     topology.NodeID
	Dst     topology.NodeID
	Seq     int64
	Ack     bool
	AckSeq  int64
	Size    int // bytes on the wire
	Hash    uint64
	SentAt  sim.Time // stamped at first transmission by the sender
	Payload any      // transport-specific extra state
}

// FlowID identifies a transport flow end-to-end.
type FlowID int64

// Handler receives packets addressed to a host.
type Handler func(*Packet)

// QueueDiscipline selects the per-port scheduling behaviour.
type QueueDiscipline int

const (
	// FIFO is drop-tail first-in-first-out (default, NS2 DropTail).
	FIFO QueueDiscipline = iota
	// SmallestFlowFirst serves the queued packet whose flow has the
	// smallest cumulative packet count through this port: the OpenFlow
	// SJF approximation of section IV-B.
	SmallestFlowFirst
)

// LinkStats aggregates per-link counters for the monitors and for
// experiment reporting.
type LinkStats struct {
	// QueuedBytes is the current queue occupancy (the Q(t) of eq. 2,
	// in bytes; monitors convert to bits).
	QueuedBytes int
	// ArrivedBytes counts all bytes that arrived at this port since the
	// simulation started (feeds Λ in eq. 5 via interval differencing).
	ArrivedBytes int64
	// SentBytes counts bytes fully transmitted.
	SentBytes int64
	// Drops counts packets discarded by drop-tail.
	Drops int64
	// Packets counts packet arrivals.
	Packets int64
}

type linkState struct {
	link      topology.Link
	queue     []*Packet
	queuedB   int
	limitB    int
	busy      bool
	stats     LinkStats
	flowCount map[FlowID]int64 // cumulative packets per flow (SJF discipline)
}

// Config tunes the network simulation.
type Config struct {
	// QueueBytes is the per-port buffer in bytes. The fig. 6 fabric has
	// 10 ms links and 50 ms WAN access, so the bandwidth-delay product at
	// X = 500 Mb/s is several megabytes; the 1 MB default is a fraction
	// of BDP (as in the paper's NS2 setup, where DropTail buffers absorb
	// multi-RTT transients) while still small enough that a congested
	// port drops rather than buffering indefinitely.
	QueueBytes int
	// Discipline selects FIFO or SmallestFlowFirst.
	Discipline QueueDiscipline
}

// DefaultConfig returns the standard drop-tail configuration.
func DefaultConfig() Config {
	return Config{QueueBytes: 1 << 20, Discipline: FIFO}
}

// Network binds a topology, routing tables and the event engine into a
// running packet network.
type Network struct {
	Sim    *sim.Simulator
	Graph  *topology.Graph
	Routes *topology.Routing
	cfg    Config

	links    []*linkState
	handlers []Handler

	// TotalDrops counts drops across all ports.
	TotalDrops int64
	// Delivered counts packets handed to host handlers.
	Delivered int64

	// OnDeliver, when set, observes every packet handed to a host
	// handler (experiment instrumentation).
	OnDeliver func(*Packet)
}

// New creates a network over the graph with routing precomputed.
func New(s *sim.Simulator, g *topology.Graph, cfg Config) *Network {
	if cfg.QueueBytes <= 0 {
		panic("netsim: QueueBytes must be positive")
	}
	n := &Network{
		Sim:      s,
		Graph:    g,
		Routes:   topology.ComputeRouting(g),
		cfg:      cfg,
		links:    make([]*linkState, len(g.Links)),
		handlers: make([]Handler, len(g.Nodes)),
	}
	for i, l := range g.Links {
		ls := &linkState{link: l, limitB: cfg.QueueBytes}
		if cfg.Discipline == SmallestFlowFirst {
			ls.flowCount = make(map[FlowID]int64)
		}
		n.links[i] = ls
	}
	return n
}

// Listen registers the packet handler for a host node. A nil handler
// unregisters.
func (n *Network) Listen(node topology.NodeID, h Handler) {
	n.handlers[node] = h
}

// Send injects a packet at its source host. The packet is forwarded hop by
// hop to pkt.Dst; delivery invokes the destination's handler. Packets to
// unreachable destinations are dropped silently (counted in TotalDrops).
func (n *Network) Send(pkt *Packet) {
	if pkt.Size <= 0 {
		panic(fmt.Sprintf("netsim: packet with size %d", pkt.Size))
	}
	n.forward(pkt.Src, pkt)
}

func (n *Network) forward(at topology.NodeID, pkt *Packet) {
	if at == pkt.Dst {
		n.deliver(pkt)
		return
	}
	lid, err := n.Routes.NextLink(at, pkt.Dst, pkt.Hash)
	if err != nil {
		n.TotalDrops++
		return
	}
	n.enqueue(n.links[lid], pkt)
}

func (n *Network) deliver(pkt *Packet) {
	n.Delivered++
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
	if h := n.handlers[pkt.Dst]; h != nil {
		h(pkt)
	}
}

func (n *Network) enqueue(ls *linkState, pkt *Packet) {
	ls.stats.ArrivedBytes += int64(pkt.Size)
	ls.stats.Packets++
	if ls.queuedB+pkt.Size > ls.limitB {
		ls.stats.Drops++
		n.TotalDrops++
		return
	}
	ls.queue = append(ls.queue, pkt)
	ls.queuedB += pkt.Size
	ls.stats.QueuedBytes = ls.queuedB
	if ls.flowCount != nil {
		ls.flowCount[pkt.Flow]++
	}
	if !ls.busy {
		n.startTx(ls)
	}
}

// pickNext chooses which queued packet to transmit next per the discipline.
func (ls *linkState) pickNext() int {
	if ls.flowCount == nil || len(ls.queue) == 1 {
		return 0
	}
	best := 0
	bestCount := ls.flowCount[ls.queue[0].Flow]
	for i := 1; i < len(ls.queue); i++ {
		if c := ls.flowCount[ls.queue[i].Flow]; c < bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

func (n *Network) startTx(ls *linkState) {
	i := ls.pickNext()
	pkt := ls.queue[i]
	copy(ls.queue[i:], ls.queue[i+1:])
	ls.queue[len(ls.queue)-1] = nil
	ls.queue = ls.queue[:len(ls.queue)-1]
	ls.queuedB -= pkt.Size
	ls.stats.QueuedBytes = ls.queuedB
	ls.busy = true

	txTime := float64(pkt.Size*8) / ls.link.Capacity
	// transmission complete: free the port, chain the next packet
	n.Sim.After(txTime, func() {
		ls.busy = false
		ls.stats.SentBytes += int64(pkt.Size)
		if len(ls.queue) > 0 {
			n.startTx(ls)
		}
	})
	// arrival at the far end after propagation
	n.Sim.After(txTime+ls.link.Delay, func() {
		n.forward(ls.link.To, pkt)
	})
}

// SetCapacity changes a link's transmission capacity at runtime — the
// "reserve, backup or recovery links" activation of section IV-A. It
// affects packets whose transmission starts after the call.
func (n *Network) SetCapacity(l topology.LinkID, capacity float64) {
	if capacity <= 0 {
		panic("netsim: non-positive capacity")
	}
	n.links[l].link.Capacity = capacity
}

// Stats returns a copy of the counters for a link.
func (n *Network) Stats(l topology.LinkID) LinkStats {
	return n.links[l].stats
}

// QueueBits returns the instantaneous queue occupancy of a link in bits —
// the Q_{d,u}(t) term the RM/RA read from their local switch.
func (n *Network) QueueBits(l topology.LinkID) float64 {
	return float64(n.links[l].queuedB * 8)
}

// ArrivedBits returns cumulative arrived bits on a link; monitors diff
// successive readings to get the per-interval L (and Λ = L/τ) of eq. 5.
func (n *Network) ArrivedBits(l topology.LinkID) float64 {
	return float64(n.links[l].stats.ArrivedBytes * 8)
}

// LinkUtilization returns sent bits divided by capacity×elapsed, a
// diagnostic for experiments.
func (n *Network) LinkUtilization(l topology.LinkID, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.links[l].stats.SentBytes*8) / (n.links[l].link.Capacity * elapsed)
}
