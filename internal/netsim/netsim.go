// Package netsim is a packet-level datacenter network simulator — the
// repository's stand-in for NS2, in which the paper implemented SCDA.
//
// It simulates store-and-forward transmission over the links of a
// topology.Graph: each link has finite capacity, propagation delay, and a
// drop-tail FIFO queue (optionally the per-flow packet-count discipline of
// section IV-B, which approximates shortest-job-first the way the paper
// describes OpenFlow switches doing it). Switches forward by destination
// using ECMP routing; hosts hand received packets to registered transport
// endpoints (TCP Reno for the RandTCP baseline, the SCDA windowed transport
// for SCDA).
//
// The per-link byte and queue counters feed the SCDA resource monitors and
// allocators: Q(t) and Λ(t) in equations 2 and 5 are read directly from the
// simulated switch interfaces, mirroring how the paper's RMs and RAs "get
// the values of Q from the local switch ... as all switches maintain the
// queue length in each of their interfaces".
//
// The forwarding path is allocation-free in steady state: Packet structs
// are pooled on a per-Network free list (deterministic LIFO, not
// sync.Pool, so reuse order — and therefore memory layout — is identical
// across same-seed runs), per-port queues are ring buffers, and the two
// simulator events per hop (transmit-complete, far-end arrival) reuse two
// long-lived callbacks via sim.AfterArg instead of capturing closures.
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Packet is a simulated datagram.
//
// Ownership: a packet handed to Network.Send belongs to the network until
// it is dropped or delivered; after the destination handler (and the
// OnDeliver hook) return, the network zeroes and recycles it. Handlers
// must not retain the pointer past their return. Allocate with NewPacket
// to draw from the pool; a literal &Packet{} also works (it simply joins
// the pool when recycled).
type Packet struct {
	Flow    FlowID
	Src     topology.NodeID
	Dst     topology.NodeID
	Seq     int64
	Ack     bool
	AckSeq  int64
	Size    int // bytes on the wire
	Hash    uint64
	SentAt  sim.Time // stamped at first transmission by the sender
	Payload any      // transport-specific extra state

	hop topology.NodeID // next node while in flight on a link
}

// FlowID identifies a transport flow end-to-end.
type FlowID int64

// Handler receives packets addressed to a host.
type Handler func(*Packet)

// QueueDiscipline selects the per-port scheduling behaviour.
type QueueDiscipline int

const (
	// FIFO is drop-tail first-in-first-out (default, NS2 DropTail).
	FIFO QueueDiscipline = iota
	// SmallestFlowFirst serves the queued packet whose flow has the
	// smallest cumulative packet count through this port: the OpenFlow
	// SJF approximation of section IV-B.
	SmallestFlowFirst
)

// LinkStats aggregates per-link counters for the monitors and for
// experiment reporting.
type LinkStats struct {
	// QueuedBytes is the current queue occupancy (the Q(t) of eq. 2,
	// in bytes; monitors convert to bits).
	QueuedBytes int
	// ArrivedBytes counts all bytes that arrived at this port since the
	// simulation started (feeds Λ in eq. 5 via interval differencing).
	ArrivedBytes int64
	// SentBytes counts bytes fully transmitted.
	SentBytes int64
	// Drops counts packets discarded by drop-tail.
	Drops int64
	// Packets counts packet arrivals.
	Packets int64
}

// pktRef is one ring-buffer entry: the packet plus its flow's dense index
// in the port's counter table (SJF only; -1 under FIFO), resolved once at
// enqueue so the pick-next scan never touches a map.
type pktRef struct {
	pkt  *Packet
	fidx int32
}

// ring is a power-of-two circular queue of pktRef. It supports O(1) push
// and head-pop plus positional removal (shifting the shorter side) for the
// SJF discipline.
type ring struct {
	buf  []pktRef
	head int
	n    int
}

//scda:noalloc
func (r *ring) at(i int) *pktRef { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

//scda:noalloc steady state: grow is amortized pool growth in the callee
func (r *ring) push(v pktRef) {
	if r.n == len(r.buf) {
		r.grow()
	}
	*r.at(r.n) = v
	r.n++
}

func (r *ring) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	nb := make([]pktRef, size)
	for i := 0; i < r.n; i++ {
		nb[i] = *r.at(i)
	}
	r.buf = nb
	r.head = 0
}

// removeAt deletes and returns entry i, shifting whichever side is
// shorter.
//
//scda:noalloc
func (r *ring) removeAt(i int) pktRef {
	v := *r.at(i)
	if i < r.n-1-i {
		for j := i; j > 0; j-- {
			*r.at(j) = *r.at(j - 1)
		}
		*r.at(0) = pktRef{}
		r.head = (r.head + 1) & (len(r.buf) - 1)
	} else {
		for j := i; j < r.n-1; j++ {
			*r.at(j) = *r.at(j + 1)
		}
		*r.at(r.n - 1) = pktRef{}
	}
	r.n--
	return v
}

type linkState struct {
	link    topology.Link
	q       ring
	queuedB int
	limitB  int
	busy    bool
	txSize  int // bytes of the packet currently on the wire
	stats   LinkStats

	// SJF state: flows get a dense per-port index on first arrival;
	// counts is the cumulative packet count per dense index. Replaces a
	// map[FlowID]int64 that was rehashed on every enqueue and probed
	// O(queue) times per transmission.
	sjf     bool
	flowIdx map[FlowID]int32
	counts  []int64
}

// Config tunes the network simulation.
type Config struct {
	// QueueBytes is the per-port buffer in bytes. The fig. 6 fabric has
	// 10 ms links and 50 ms WAN access, so the bandwidth-delay product at
	// X = 500 Mb/s is several megabytes; the 1 MB default is a fraction
	// of BDP (as in the paper's NS2 setup, where DropTail buffers absorb
	// multi-RTT transients) while still small enough that a congested
	// port drops rather than buffering indefinitely.
	QueueBytes int
	// Discipline selects FIFO or SmallestFlowFirst.
	Discipline QueueDiscipline
}

// DefaultConfig returns the standard drop-tail configuration.
func DefaultConfig() Config {
	return Config{QueueBytes: 1 << 20, Discipline: FIFO}
}

// Network binds a topology, routing tables and the event engine into a
// running packet network.
type Network struct {
	Sim    *sim.Simulator
	Graph  *topology.Graph
	Routes *topology.Routing
	cfg    Config

	links    []*linkState
	handlers []Handler

	// free is the packet pool: a plain LIFO slice so that reuse order is
	// deterministic (sync.Pool's per-P caches would make packet identity
	// depend on scheduling).
	free []*Packet

	// txDoneFn and arriveFn are the two per-hop event callbacks, created
	// once so the hot path schedules events without allocating closures.
	txDoneFn func(any)
	arriveFn func(any)

	// TotalDrops counts drops across all ports.
	TotalDrops int64
	// Delivered counts packets handed to host handlers.
	Delivered int64

	// OnDeliver, when set, observes every packet handed to a host
	// handler (experiment instrumentation). The packet is recycled after
	// the hook returns; do not retain it.
	OnDeliver func(*Packet)
}

// New creates a network over the graph with routing precomputed.
func New(s *sim.Simulator, g *topology.Graph, cfg Config) *Network {
	if cfg.QueueBytes <= 0 {
		panic("netsim: QueueBytes must be positive")
	}
	n := &Network{
		Sim:      s,
		Graph:    g,
		Routes:   topology.ComputeRouting(g),
		cfg:      cfg,
		links:    make([]*linkState, len(g.Links)),
		handlers: make([]Handler, len(g.Nodes)),
	}
	states := make([]linkState, len(g.Links)) // one backing array, cache-friendly
	for i, l := range g.Links {
		ls := &states[i]
		ls.link = l
		ls.limitB = cfg.QueueBytes
		if cfg.Discipline == SmallestFlowFirst {
			ls.sjf = true
			ls.flowIdx = make(map[FlowID]int32)
		}
		n.links[i] = ls
	}
	n.txDoneFn = func(arg any) {
		ls := arg.(*linkState)
		ls.busy = false
		ls.stats.SentBytes += int64(ls.txSize)
		if ls.q.n > 0 {
			n.startTx(ls)
		}
	}
	n.arriveFn = func(arg any) {
		pkt := arg.(*Packet)
		n.forward(pkt.hop, pkt)
	}
	return n
}

// NewPacket returns a zeroed packet, reusing one the network has finished
// with when possible.
//
//scda:noalloc warm path: a drained pool falls back to one pooled &Packet{}
func (n *Network) NewPacket() *Packet {
	if k := len(n.free); k > 0 {
		p := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return p
	}
	return &Packet{}
}

// recycle zeroes a finished packet and returns it to the pool.
//
//scda:noalloc steady state: the pool append is amortized growth
func (n *Network) recycle(p *Packet) {
	*p = Packet{}
	n.free = append(n.free, p)
}

// Listen registers the packet handler for a host node. A nil handler
// unregisters.
func (n *Network) Listen(node topology.NodeID, h Handler) {
	n.handlers[node] = h
}

// Send injects a packet at its source host. The packet is forwarded hop by
// hop to pkt.Dst; delivery invokes the destination's handler. Packets to
// unreachable destinations are dropped silently (counted in TotalDrops).
// The network owns the packet from this point on (see Packet).
//
//scda:noalloc guarded by TestForwardDeliverIsAllocationFree
func (n *Network) Send(pkt *Packet) {
	if pkt.Size <= 0 {
		panic(fmt.Sprintf("netsim: packet with size %d", pkt.Size))
	}
	n.forward(pkt.Src, pkt)
}

// forward routes a packet one hop: deliver at the destination, else pick
// the ECMP next link and enqueue.
//
//scda:noalloc
func (n *Network) forward(at topology.NodeID, pkt *Packet) {
	if at == pkt.Dst {
		n.deliver(pkt)
		return
	}
	lid, err := n.Routes.NextLink(at, pkt.Dst, pkt.Hash)
	if err != nil {
		n.TotalDrops++
		n.recycle(pkt)
		return
	}
	n.enqueue(n.links[lid], pkt)
}

// deliver hands a packet to its destination's handler and recycles it.
//
//scda:noalloc
func (n *Network) deliver(pkt *Packet) {
	n.Delivered++
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
	if h := n.handlers[pkt.Dst]; h != nil {
		h(pkt)
	}
	n.recycle(pkt)
}

// enqueue applies drop-tail admission, updates the SJF flow counters, and
// starts transmission if the port is idle.
//
//scda:noalloc steady state: the SJF flow-index insert is one-time per flow
func (n *Network) enqueue(ls *linkState, pkt *Packet) {
	ls.stats.ArrivedBytes += int64(pkt.Size)
	ls.stats.Packets++
	if ls.queuedB+pkt.Size > ls.limitB {
		ls.stats.Drops++
		n.TotalDrops++
		n.recycle(pkt)
		return
	}
	fidx := int32(-1)
	if ls.sjf {
		var ok bool
		fidx, ok = ls.flowIdx[pkt.Flow]
		if !ok {
			fidx = int32(len(ls.counts))
			ls.flowIdx[pkt.Flow] = fidx
			ls.counts = append(ls.counts, 0)
		}
		ls.counts[fidx]++
	}
	ls.q.push(pktRef{pkt: pkt, fidx: fidx})
	ls.queuedB += pkt.Size
	ls.stats.QueuedBytes = ls.queuedB
	if !ls.busy {
		n.startTx(ls)
	}
}

// pickNext chooses which queued packet to transmit next per the
// discipline: head-of-line for FIFO, the earliest-queued packet of the
// flow with the fewest cumulative packets through this port for SJF.
//
//scda:noalloc
func (ls *linkState) pickNext() int {
	if !ls.sjf || ls.q.n == 1 {
		return 0
	}
	best := 0
	bestCount := ls.counts[ls.q.at(0).fidx]
	for i := 1; i < ls.q.n; i++ {
		if c := ls.counts[ls.q.at(i).fidx]; c < bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// startTx puts the chosen queued packet on the wire and schedules its two
// hop events through the pre-built callbacks.
//
//scda:noalloc
func (n *Network) startTx(ls *linkState) {
	ref := ls.q.removeAt(ls.pickNext())
	pkt := ref.pkt
	ls.queuedB -= pkt.Size
	ls.stats.QueuedBytes = ls.queuedB
	ls.busy = true
	ls.txSize = pkt.Size
	pkt.hop = ls.link.To

	txTime := float64(pkt.Size*8) / ls.link.Capacity
	// transmission complete: free the port, chain the next packet
	n.Sim.AfterArg(txTime, n.txDoneFn, ls)
	// arrival at the far end after propagation
	n.Sim.AfterArg(txTime+ls.link.Delay, n.arriveFn, pkt)
}

// SetCapacity changes a link's transmission capacity at runtime — the
// "reserve, backup or recovery links" activation of section IV-A. It
// affects packets whose transmission starts after the call.
func (n *Network) SetCapacity(l topology.LinkID, capacity float64) {
	if capacity <= 0 {
		panic("netsim: non-positive capacity")
	}
	n.links[l].link.Capacity = capacity
}

// Stats returns a copy of the counters for a link.
func (n *Network) Stats(l topology.LinkID) LinkStats {
	return n.links[l].stats
}

// QueueBits returns the instantaneous queue occupancy of a link in bits —
// the Q_{d,u}(t) term the RM/RA read from their local switch.
func (n *Network) QueueBits(l topology.LinkID) float64 {
	return float64(n.links[l].queuedB * 8)
}

// ArrivedBits returns cumulative arrived bits on a link; monitors diff
// successive readings to get the per-interval L (and Λ = L/τ) of eq. 5.
func (n *Network) ArrivedBits(l topology.LinkID) float64 {
	return float64(n.links[l].stats.ArrivedBytes * 8)
}

// LinkUtilization returns sent bits divided by capacity×elapsed, a
// diagnostic for experiments.
func (n *Network) LinkUtilization(l topology.LinkID, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.links[l].stats.SentBytes*8) / (n.links[l].link.Capacity * elapsed)
}
