package netsim

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// pair builds a two-host topology: a --(capacity, delay)-- b.
func pair(capacity, delay float64) (*topology.Graph, topology.NodeID, topology.NodeID) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	g.AddDuplex(a, b, capacity, delay, 1)
	return g, a, b
}

func TestSingleLinkLatency(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0.010) // 1 Mb/s, 10 ms
	n := New(s, g, DefaultConfig())
	var arrived sim.Time = -1
	n.Listen(b, func(p *Packet) { arrived = s.Now() })
	n.Send(&Packet{Flow: 1, Src: a, Dst: b, Size: 1250}) // 10,000 bits
	s.Run()
	want := 10000.0/1e6 + 0.010 // tx + prop
	if math.Abs(arrived-want) > 1e-12 {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
}

func TestStoreAndForwardPipelining(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0.010)
	n := New(s, g, DefaultConfig())
	var arrivals []sim.Time
	n.Listen(b, func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 3; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1250})
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	tx := 10000.0 / 1e6
	for i, at := range arrivals {
		want := tx*float64(i+1) + 0.010
		if math.Abs(at-want) > 1e-12 {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e9, 1e-3)
	n := New(s, g, DefaultConfig())
	var seqs []int64
	n.Listen(b, func(p *Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 20; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1500})
	}
	s.Run()
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("out of order: %v", seqs)
		}
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e3, 0.001) // 1 kb/s: everything queues
	cfg := Config{QueueBytes: 3000, Discipline: FIFO}
	n := New(s, g, cfg)
	got := 0
	n.Listen(b, func(p *Packet) { got++ })
	// burst of 10 × 1500B; port fits 2 queued (3000B) + 1 transmitting
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1500})
	}
	s.Run()
	if n.TotalDrops != 7 {
		t.Fatalf("drops = %d, want 7", n.TotalDrops)
	}
	if got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	lid := topology.LinkID(0)
	st := n.Stats(lid)
	if st.Drops != 7 || st.Packets != 10 {
		t.Fatalf("link stats = %+v", st)
	}
}

func TestMultiHopDelivery(t *testing.T) {
	s := sim.New()
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	n := New(s, tt.Graph, DefaultConfig())
	src := tt.Clients[0]
	dst := tt.Servers[len(tt.Servers)-1]
	var at sim.Time = -1
	n.Listen(dst, func(p *Packet) { at = s.Now() })
	n.Send(&Packet{Flow: 9, Src: src, Dst: dst, Size: 1500, Hash: 42})
	s.Run()
	if at < 0 {
		t.Fatal("packet not delivered across tree")
	}
	// ≥ propagation alone: 50ms + 3×10ms
	if at < 0.080 {
		t.Fatalf("arrival %v too early", at)
	}
}

func TestQueueBitsTracksOccupancy(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e4, 0.001) // 10 kb/s, slow
	n := New(s, g, DefaultConfig())
	n.Listen(b, func(p *Packet) {})
	for i := 0; i < 4; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1000})
	}
	// at t=0+: one transmitting, three queued → 3000 B = 24000 bits
	lid := topology.LinkID(0)
	if q := n.QueueBits(lid); q != 24000 {
		t.Fatalf("QueueBits = %v, want 24000", q)
	}
	s.Run()
	if q := n.QueueBits(lid); q != 0 {
		t.Fatalf("QueueBits after drain = %v", q)
	}
}

func TestArrivedBitsCumulative(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e9, 0.001)
	n := New(s, g, DefaultConfig())
	n.Listen(b, func(p *Packet) {})
	for i := 0; i < 5; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Size: 1500})
	}
	s.Run()
	if got := n.ArrivedBits(0); got != 5*1500*8 {
		t.Fatalf("ArrivedBits = %v", got)
	}
}

func TestSmallestFlowFirstFavoursMice(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e5, 0.001) // slow link so the queue builds
	cfg := Config{QueueBytes: 1 << 20, Discipline: SmallestFlowFirst}
	n := New(s, g, cfg)
	var order []FlowID
	n.Listen(b, func(p *Packet) { order = append(order, p.Flow) })
	// elephant flow 1 fills the queue first, then mouse flow 2 arrives
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1500})
	}
	s.After(0.001, func() {
		n.Send(&Packet{Flow: 2, Src: a, Dst: b, Seq: 0, Size: 1500})
	})
	s.Run()
	// the mouse packet must overtake most of the elephant's queue
	pos := -1
	for i, f := range order {
		if f == 2 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("mouse packet never delivered")
	}
	if pos > 2 {
		t.Fatalf("SJF discipline did not prioritise the mouse: position %d in %v", pos, order)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0.005)
	n := New(s, g, DefaultConfig())
	gotA, gotB := 0, 0
	n.Listen(a, func(p *Packet) { gotA++ })
	n.Listen(b, func(p *Packet) { gotB++ })
	n.Send(&Packet{Flow: 1, Src: a, Dst: b, Size: 500})
	n.Send(&Packet{Flow: 2, Src: b, Dst: a, Size: 500})
	s.Run()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("gotA=%d gotB=%d", gotA, gotB)
	}
}

func TestSelfAddressedDeliveredImmediately(t *testing.T) {
	s := sim.New()
	g, a, _ := pair(1e6, 0.005)
	n := New(s, g, DefaultConfig())
	got := 0
	n.Listen(a, func(p *Packet) { got++ })
	n.Send(&Packet{Flow: 1, Src: a, Dst: a, Size: 100})
	s.Run()
	if got != 1 {
		t.Fatal("self-addressed packet lost")
	}
}

func TestZeroSizePanics(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0.005)
	n := New(s, g, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size packet accepted")
		}
	}()
	n.Send(&Packet{Flow: 1, Src: a, Dst: b, Size: 0})
}

func TestLinkUtilization(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0) // zero prop delay for exact accounting
	n := New(s, g, DefaultConfig())
	n.Listen(b, func(p *Packet) {})
	// 1 Mb/s for 1 second = 125,000 bytes
	for i := 0; i < 100; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1250})
	}
	s.Run()
	// total = 125,000 B = 1 s of tx time
	u := n.LinkUtilization(0, 1.0)
	if math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestSetCapacitySpeedsDrain(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e6, 0)
	n := New(s, g, DefaultConfig())
	var last sim.Time
	n.Listen(b, func(p *Packet) { last = s.Now() })
	for i := 0; i < 8; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 12500}) // 0.1 s each
	}
	// double the capacity after the first two packets have been sent
	s.At(0.25, func() { n.SetCapacity(0, 2e6) })
	s.Run()
	// 2.5 packets at 1 Mb/s (0.1 s each) + remaining at 2 Mb/s (0.05 s):
	// well below the all-slow total of 0.8 s
	if last >= 0.8 || last < 0.25 {
		t.Fatalf("last arrival %v, want in [0.25, 0.8)", last)
	}
}

func TestSetCapacityRejectsNonPositive(t *testing.T) {
	s := sim.New()
	g, _, _ := pair(1e6, 0)
	n := New(s, g, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	n.SetCapacity(0, 0)
}

func TestOnDeliverHookObservesPayloads(t *testing.T) {
	s := sim.New()
	g, a, b := pair(1e9, 1e-3)
	n := New(s, g, DefaultConfig())
	n.Listen(b, func(p *Packet) {})
	seen := 0
	n.OnDeliver = func(p *Packet) { seen += p.Size }
	for i := 0; i < 3; i++ {
		n.Send(&Packet{Flow: 1, Src: a, Dst: b, Seq: int64(i), Size: 1000})
	}
	s.Run()
	if seen != 3000 {
		t.Fatalf("OnDeliver saw %d bytes", seen)
	}
}
