package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestForwardDeliverIsAllocationFree pins the hot-path property the packet
// plane was rewritten for: once queues, the event arena and the packet
// pool are warm, a full send→enqueue→transmit→propagate→deliver→recycle
// cycle performs zero heap allocations.
func TestForwardDeliverIsAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		disc QueueDiscipline
	}{{"fifo", FIFO}, {"sjf", SmallestFlowFirst}} {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New()
			g := topology.NewGraph()
			a := g.AddNode(topology.Host, "a", 0)
			b := g.AddNode(topology.Host, "b", 0)
			g.AddDuplex(a, b, 1e9, 1e-4, 1)
			n := New(s, g, Config{QueueBytes: 1 << 20, Discipline: tc.disc})
			n.Listen(b, func(p *Packet) {})

			send := func() {
				for i := 0; i < 4; i++ {
					p := n.NewPacket()
					p.Flow = FlowID(i % 2)
					p.Src = a
					p.Dst = b
					p.Size = 1500
					p.Hash = uint64(i % 2)
					n.Send(p)
				}
				s.Run()
			}
			send() // warm pool, rings and event arena
			if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
				t.Fatalf("warm forward/deliver allocates %v allocs/op, want 0", allocs)
			}
		})
	}
}

// TestPacketPoolRecyclesDeterministically checks the pool is LIFO: the
// packet most recently finished is the next one handed out, so pool state
// evolves identically across same-seed runs.
func TestPacketPoolRecyclesDeterministically(t *testing.T) {
	s := sim.New()
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	g.AddDuplex(a, b, 1e9, 1e-4, 1)
	n := New(s, g, DefaultConfig())
	n.Listen(b, func(p *Packet) {})

	p1 := n.NewPacket()
	p1.Flow, p1.Src, p1.Dst, p1.Size = 1, a, b, 100
	n.Send(p1)
	s.Run() // p1 delivered and recycled
	p2 := n.NewPacket()
	if p2 != p1 {
		t.Fatal("pool did not hand back the most recently recycled packet")
	}
	if p2.Flow != 0 || p2.Size != 0 || p2.SentAt != 0 || p2.Payload != nil {
		t.Fatalf("recycled packet not zeroed: %+v", p2)
	}
}
