package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkPacketForwarding measures the per-packet cost of the full
// store-and-forward path (enqueue, transmit, propagate, deliver) with a
// closed loop keeping 8 packets in flight: each delivery injects the next
// packet, so the port never idles and every iteration is one end-to-end
// packet.
func BenchmarkPacketForwarding(b *testing.B) {
	bench := func(b *testing.B, disc QueueDiscipline) {
		s := sim.New()
		g := topology.NewGraph()
		src := g.AddNode(topology.Host, "src", 0)
		dst := g.AddNode(topology.Host, "dst", 0)
		g.AddDuplex(src, dst, 1e9, 1e-4, 1)
		n := New(s, g, Config{QueueBytes: 1 << 20, Discipline: disc})

		const inflight = 8
		delivered := 0
		seq := int64(0)
		inject := func() {
			p := n.NewPacket()
			p.Flow = FlowID(seq % 4)
			p.Src = src
			p.Dst = dst
			p.Seq = seq
			p.Size = 1500
			p.Hash = uint64(seq % 4)
			seq++
			n.Send(p)
		}
		n.Listen(dst, func(p *Packet) {
			delivered++
			if delivered+inflight-1 < b.N {
				inject()
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < inflight && i < b.N; i++ {
			inject()
		}
		s.Run()
	}
	b.Run("fifo", func(b *testing.B) { bench(b, FIFO) })
	b.Run("sjf", func(b *testing.B) { bench(b, SmallestFlowFirst) })
}
