package tcp

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// rig is a two-host network with stacks on both ends.
type rig struct {
	s    *sim.Simulator
	net  *netsim.Network
	a, b topology.NodeID
	sa   *transport.Stack
	sb   *transport.Stack
}

func newRig(capacity, delay float64, queueBytes int) *rig {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	g.AddDuplex(a, b, capacity, delay, 1)
	s := sim.New()
	cfg := netsim.DefaultConfig()
	if queueBytes > 0 {
		cfg.QueueBytes = queueBytes
	}
	n := netsim.New(s, g, cfg)
	return &rig{s: s, net: n, a: a, b: b,
		sa: transport.NewStack(n, a), sb: transport.NewStack(n, b)}
}

func TestShortFlowCompletes(t *testing.T) {
	r := newRig(10e6, 5e-3, 0)
	var fct sim.Time = -1
	f := Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 4000,
		OnComplete: func(d sim.Time) { fct = d },
	}, DefaultConfig())
	r.s.RunUntil(60)
	if !f.Done() || fct < 0 {
		t.Fatal("flow did not complete")
	}
	// 3 segments over a 10ms-RTT link: at least one RTT, at most a few
	if fct < 0.010 || fct > 0.1 {
		t.Fatalf("fct = %v", fct)
	}
}

func TestLargeFlowSaturatesLink(t *testing.T) {
	r := newRig(10e6, 1e-3, 0)
	const size = 2_000_000 // 2 MB
	var fct sim.Time = -1
	Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: size,
		OnComplete: func(d sim.Time) { fct = d },
	}, DefaultConfig())
	r.s.RunUntil(300)
	if fct < 0 {
		t.Fatal("large flow did not complete")
	}
	ideal := float64(size*8) / 10e6
	if fct < ideal {
		t.Fatalf("fct %v faster than line rate %v", fct, ideal)
	}
	// should achieve at least ~50% of line rate including slow start
	if fct > 3*ideal {
		t.Fatalf("fct %v, over 3x ideal %v — window never grew", fct, ideal)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	r := newRig(1e9, 10e-3, 0) // fat link: no losses
	f := Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 500_000,
	}, DefaultConfig())
	// after ~2 RTTs of slow start cwnd should have grown well past initial
	r.s.RunUntil(0.075) // ~3 RTTs at 20ms RTT + tx
	if f.Cwnd() < 8 {
		t.Fatalf("cwnd = %v after 3 RTTs of slow start", f.Cwnd())
	}
}

func TestLossTriggersFastRetransmit(t *testing.T) {
	// tiny queue forces drops once the window exceeds the pipe
	r := newRig(5e6, 5e-3, 6000)
	var fct sim.Time = -1
	f := Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 1_000_000,
		OnComplete: func(d sim.Time) { fct = d },
	}, DefaultConfig())
	r.s.RunUntil(300)
	if fct < 0 {
		t.Fatal("flow did not complete despite losses")
	}
	if f.Retransmits == 0 {
		t.Fatal("expected retransmissions with a 6KB buffer")
	}
}

func TestCompletionDespiteHeavyLoss(t *testing.T) {
	// pathological: queue barely fits two packets
	r := newRig(2e6, 2e-3, 3200)
	var fct sim.Time = -1
	Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 300_000,
		OnComplete: func(d sim.Time) { fct = d },
	}, DefaultConfig())
	r.s.RunUntil(600)
	if fct < 0 {
		t.Fatal("flow never completed under heavy loss")
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	r := newRig(10e6, 2e-3, 0)
	done := 0
	var fcts []sim.Time
	for i := 0; i < 2; i++ {
		Start(r.s, r.net, r.sa, r.sb, &Flow{
			ID: netsim.FlowID(i + 1), Src: r.a, Dst: r.b, Size: 1_000_000,
			OnComplete: func(d sim.Time) { done++; fcts = append(fcts, d) },
		}, DefaultConfig())
	}
	r.s.RunUntil(300)
	if done != 2 {
		t.Fatalf("%d of 2 flows completed", done)
	}
	// two 1MB flows over 10Mb/s: ideal serial ~1.6s total; both share, so
	// each takes >= 1.6s-ish. Just check they're in a sane band.
	for _, f := range fcts {
		if f < 0.8 || f > 60 {
			t.Fatalf("fct %v out of band", f)
		}
	}
}

func TestRTTEstimation(t *testing.T) {
	r := newRig(100e6, 25e-3, 0) // 50ms RTT
	f := Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 300_000,
	}, DefaultConfig())
	r.s.RunUntil(5)
	if f.SRTT() < 0.050 || f.SRTT() > 0.080 {
		t.Fatalf("srtt = %v, want ≈ 0.05", f.SRTT())
	}
	if f.RTO() < f.cfg.MinRTO {
		t.Fatalf("rto %v below floor", f.RTO())
	}
}

func TestFCTScalesWithSize(t *testing.T) {
	sizes := []int64{10_000, 100_000, 1_000_000}
	var fcts []float64
	for i, size := range sizes {
		r := newRig(20e6, 5e-3, 0)
		var fct sim.Time = -1
		Start(r.s, r.net, r.sa, r.sb, &Flow{
			ID: netsim.FlowID(i + 1), Src: r.a, Dst: r.b, Size: size,
			OnComplete: func(d sim.Time) { fct = d },
		}, DefaultConfig())
		r.s.RunUntil(300)
		if fct < 0 {
			t.Fatalf("size %d did not complete", size)
		}
		fcts = append(fcts, fct)
	}
	if !(fcts[0] < fcts[1] && fcts[1] < fcts[2]) {
		t.Fatalf("FCT not monotone in size: %v", fcts)
	}
}

func TestZeroSizePanics(t *testing.T) {
	r := newRig(1e6, 1e-3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size flow accepted")
		}
	}()
	Start(r.s, r.net, r.sa, r.sb, &Flow{ID: 1, Src: r.a, Dst: r.b, Size: 0}, DefaultConfig())
}

func TestOnCompleteExactlyOnce(t *testing.T) {
	r := newRig(10e6, 1e-3, 0)
	calls := 0
	Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 50_000,
		OnComplete: func(d sim.Time) { calls++ },
	}, DefaultConfig())
	r.s.RunUntil(60)
	if calls != 1 {
		t.Fatalf("OnComplete called %d times", calls)
	}
}

func TestStacksUnboundAfterCompletion(t *testing.T) {
	r := newRig(10e6, 1e-3, 0)
	Start(r.s, r.net, r.sa, r.sb, &Flow{
		ID: 1, Src: r.a, Dst: r.b, Size: 50_000,
	}, DefaultConfig())
	r.s.RunUntil(60)
	if r.sa.Bound() != 0 || r.sb.Bound() != 0 {
		t.Fatalf("stacks still bound: %d/%d", r.sa.Bound(), r.sb.Bound())
	}
}

func TestManyParallelFlowsThroughTree(t *testing.T) {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	n := netsim.New(s, tt.Graph, netsim.DefaultConfig())
	stacks := map[topology.NodeID]*transport.Stack{}
	stackFor := func(id topology.NodeID) *transport.Stack {
		if st, ok := stacks[id]; ok {
			return st
		}
		st := transport.NewStack(n, id)
		stacks[id] = st
		return st
	}
	done := 0
	var ids transport.FlowIDSource
	for i := 0; i < 30; i++ {
		src := tt.Clients[i%len(tt.Clients)]
		dst := tt.Servers[(i*7)%len(tt.Servers)]
		Start(s, n, stackFor(src), stackFor(dst), &Flow{
			ID: ids.Next(), Src: src, Dst: dst, Size: 200_000,
			OnComplete: func(d sim.Time) { done++ },
		}, DefaultConfig())
	}
	s.RunUntil(300)
	if done != 30 {
		t.Fatalf("%d of 30 flows completed", done)
	}
}

func TestSegmentsHelper(t *testing.T) {
	cases := []struct {
		size int64
		want int64
	}{
		{0, 0}, {1, 1}, {1460, 1}, {1461, 2}, {14600, 10},
	}
	for _, c := range cases {
		if got := transport.Segments(c.size); got != c.want {
			t.Errorf("Segments(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if w := transport.SegmentWire(1461, 1); w != 1+transport.HeaderBytes {
		t.Errorf("last-segment wire = %d", w)
	}
	if w := transport.SegmentWire(1461, 0); w != transport.DataPacketBytes {
		t.Errorf("full-segment wire = %d", w)
	}
}

func TestThroughputFairnessTwoFlows(t *testing.T) {
	// both flows long enough to reach steady state: FCTs within 3x
	r := newRig(10e6, 2e-3, 0)
	var fcts []float64
	for i := 0; i < 2; i++ {
		Start(r.s, r.net, r.sa, r.sb, &Flow{
			ID: netsim.FlowID(i + 1), Src: r.a, Dst: r.b, Size: 2_000_000,
			OnComplete: func(d sim.Time) { fcts = append(fcts, d) },
		}, DefaultConfig())
	}
	r.s.RunUntil(600)
	if len(fcts) != 2 {
		t.Fatalf("completed %d", len(fcts))
	}
	ratio := fcts[0] / fcts[1]
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if math.IsNaN(ratio) || ratio > 3 {
		t.Fatalf("flow FCTs too unequal: %v", fcts)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRig(100e6, 1e-3, 0)
		Start(r.s, r.net, r.sa, r.sb, &Flow{
			ID: 1, Src: r.a, Dst: r.b, Size: 1_000_000,
		}, DefaultConfig())
		r.s.RunUntil(60)
	}
}
