// Package tcp implements a TCP Reno sender/receiver over the packet
// simulator. It is the rate-control half of the paper's RandTCP baseline:
// "existing schemes ... rely on the transmission control protocol (TCP) to
// control the rates of the senders", and the paper attributes RandTCP's
// poor average file completion time and throughput fluctuation to exactly
// this loss-driven behaviour.
//
// The model follows NS2's Reno agent closely enough for the comparison to
// be meaningful: slow start, congestion avoidance, triple-duplicate-ACK
// fast retransmit with Reno fast recovery, an RFC 6298-style retransmission
// timer with exponential backoff, and per-packet cumulative ACKs.
package tcp

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config tunes the Reno state machine.
type Config struct {
	// InitialCwnd in segments (RFC 5681 allows up to 4; NS2 default 1,
	// modern stacks 10). Default 2.
	InitialCwnd float64
	// InitialSsthresh in segments. Default 64 (NS2's default window).
	InitialSsthresh float64
	// MinRTO floors the retransmission timer. NS2 defaults to 1s; for
	// datacenter RTTs that is catastrophic for short flows either way —
	// we default to 200 ms (the classic kernel floor).
	MinRTO float64
	// MaxCwnd caps the window in segments (receiver window stand-in).
	MaxCwnd float64
}

// DefaultConfig mirrors a classic Reno stack.
func DefaultConfig() Config {
	return Config{InitialCwnd: 2, InitialSsthresh: 64, MinRTO: 0.2, MaxCwnd: 1 << 20}
}

// Flow transfers Size bytes from Src to Dst and reports completion.
type Flow struct {
	ID   netsim.FlowID
	Src  topology.NodeID
	Dst  topology.NodeID
	Size int64

	// OnComplete fires once, when the last byte is cumulatively ACKed,
	// with the flow completion time.
	OnComplete func(fct sim.Time)

	net  *netsim.Network
	s    *sim.Simulator
	cfg  Config
	hash uint64

	// sender state
	start    sim.Time
	segs     int64
	cwnd     float64
	ssthresh float64
	nextSeq  int64 // next segment to send for the first time
	highAck  int64 // cumulative: all segments < highAck are ACKed
	dupAcks  int
	inRecov  bool
	recover  int64 // highest seq outstanding when loss was detected
	done     bool

	// RTT estimation (Karn + Jacobson)
	srtt, rttvar float64
	rto          float64
	backoff      float64
	rttSeq       int64 // segment being timed; -1 when none
	rttSentAt    sim.Time
	rttValid     bool

	timer       sim.Event
	onTimeoutFn func()

	srcStack *transport.Stack
	dstStack *transport.Stack

	// receiver state
	rcvd    map[int64]bool
	cumRcvd int64

	sender   *senderEP
	receiver *receiverEP

	// Retransmits counts segments re-sent (diagnostics).
	Retransmits int64
}

type senderEP struct{ f *Flow }
type receiverEP struct{ f *Flow }

func (e *senderEP) Receive(p *netsim.Packet)   { e.f.onAck(p) }
func (e *receiverEP) Receive(p *netsim.Packet) { e.f.onData(p) }

// Start begins the transfer: binds endpoints on both stacks and sends the
// initial window. srcStack must be the stack at f.Src, dstStack at f.Dst.
func Start(s *sim.Simulator, net *netsim.Network, srcStack, dstStack *transport.Stack, f *Flow, cfg Config) *Flow {
	if f.Size <= 0 {
		panic("tcp: flow size must be positive")
	}
	f.net = net
	f.s = s
	f.cfg = cfg
	f.hash = transport.Hash(f.ID)
	f.start = s.Now()
	f.segs = transport.Segments(f.Size)
	f.cwnd = cfg.InitialCwnd
	f.ssthresh = cfg.InitialSsthresh
	f.rto = 1.0 // RFC 6298 initial
	f.backoff = 1
	f.rttSeq = -1
	f.onTimeoutFn = f.onTimeout // one closure per flow, not per re-arm
	f.rcvd = make(map[int64]bool)
	f.sender = &senderEP{f}
	f.receiver = &receiverEP{f}
	srcStack.Bind(f.ID, f.sender)
	dstStack.Bind(f.ID, f.receiver)
	f.srcStack, f.dstStack = srcStack, dstStack
	f.pump()
	f.armTimer()
	return f
}

func (f *Flow) flight() int64 { return f.nextSeq - f.highAck }

func (f *Flow) window() int64 {
	w := int64(math.Min(f.cwnd, f.cfg.MaxCwnd))
	if w < 1 {
		w = 1
	}
	return w
}

// pump transmits as many new segments as the window allows.
func (f *Flow) pump() {
	for f.nextSeq < f.segs && f.flight() < f.window() {
		f.sendSeg(f.nextSeq, false)
		f.nextSeq++
	}
}

func (f *Flow) sendSeg(seq int64, isRetransmit bool) {
	if isRetransmit {
		f.Retransmits++
		if f.rttSeq == seq {
			f.rttValid = false // Karn: never time a retransmitted segment
		}
	} else if f.rttSeq < f.highAck {
		f.rttSeq = seq
		f.rttSentAt = f.s.Now()
		f.rttValid = true
	}
	p := f.net.NewPacket()
	p.Flow = f.ID
	p.Src = f.Src
	p.Dst = f.Dst
	p.Seq = seq
	p.Size = transport.SegmentWire(f.Size, seq)
	p.Hash = f.hash
	p.SentAt = f.s.Now()
	f.net.Send(p)
}

// onData runs at the receiver: record the segment, send a cumulative ACK.
func (f *Flow) onData(p *netsim.Packet) {
	if p.Seq >= f.cumRcvd && !f.rcvd[p.Seq] {
		f.rcvd[p.Seq] = true
		for f.rcvd[f.cumRcvd] {
			delete(f.rcvd, f.cumRcvd)
			f.cumRcvd++
		}
	}
	ack := f.net.NewPacket()
	ack.Flow = f.ID
	ack.Src = f.Dst
	ack.Dst = f.Src
	ack.Ack = true
	ack.AckSeq = f.cumRcvd
	ack.Size = transport.AckBytes
	ack.Hash = f.hash
	ack.SentAt = f.s.Now()
	f.net.Send(ack)
}

// onAck runs at the sender.
func (f *Flow) onAck(p *netsim.Packet) {
	if f.done || !p.Ack {
		return
	}
	ack := p.AckSeq
	switch {
	case ack > f.highAck:
		f.newAck(ack)
	case ack == f.highAck:
		f.dupAck()
	}
	if f.highAck >= f.segs {
		f.complete()
		return
	}
	f.pump()
}

func (f *Flow) newAck(ack int64) {
	acked := ack - f.highAck
	f.highAck = ack
	f.dupAcks = 0

	// RTT sample (Karn-valid only)
	if f.rttValid && ack > f.rttSeq {
		sample := f.s.Now() - f.rttSentAt
		f.updateRTT(sample)
		f.rttValid = false
		f.backoff = 1
	}

	if f.inRecov {
		if ack >= f.recover {
			// full recovery: deflate to ssthresh
			f.inRecov = false
			f.cwnd = f.ssthresh
		} else {
			// partial ACK: retransmit next hole immediately (NewReno-ish
			// behaviour NS2's Reno also approximates via timeouts;
			// retransmitting here keeps short flows from stalling)
			f.sendSeg(f.highAck, true)
			f.cwnd = math.Max(f.ssthresh, f.cwnd-float64(acked)+1)
		}
	} else if f.cwnd < f.ssthresh {
		f.cwnd += float64(acked) // slow start
	} else {
		f.cwnd += float64(acked) / f.cwnd // congestion avoidance
	}
	f.armTimer()
}

func (f *Flow) dupAck() {
	if f.inRecov {
		f.cwnd++ // window inflation per extra dup ACK
		return
	}
	f.dupAcks++
	if f.dupAcks == 3 {
		// fast retransmit + Reno fast recovery
		f.ssthresh = math.Max(f.flightF()/2, 2)
		f.cwnd = f.ssthresh + 3
		f.inRecov = true
		f.recover = f.nextSeq
		f.sendSeg(f.highAck, true)
		f.armTimer()
	}
}

func (f *Flow) flightF() float64 { return float64(f.flight()) }

func (f *Flow) updateRTT(sample float64) {
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
	} else {
		const alpha, beta = 0.125, 0.25
		f.rttvar = (1-beta)*f.rttvar + beta*math.Abs(f.srtt-sample)
		f.srtt = (1-alpha)*f.srtt + alpha*sample
	}
	f.rto = math.Max(f.srtt+4*f.rttvar, f.cfg.MinRTO)
}

func (f *Flow) armTimer() {
	f.timer.Cancel()
	if f.done {
		return
	}
	f.timer = f.s.After(f.rto*f.backoff, f.onTimeoutFn)
}

func (f *Flow) onTimeout() {
	if f.done || f.highAck >= f.segs {
		return
	}
	// RTO: collapse to slow start, back off the timer
	f.ssthresh = math.Max(f.flightF()/2, 2)
	f.cwnd = 1
	f.inRecov = false
	f.dupAcks = 0
	f.backoff = math.Min(f.backoff*2, 64)
	f.nextSeq = f.highAck // go-back-N from the hole
	f.sendSeg(f.highAck, true)
	f.nextSeq = f.highAck + 1
	f.armTimer()
}

func (f *Flow) complete() {
	if f.done {
		return
	}
	f.done = true
	f.timer.Cancel()
	f.srcStack.Unbind(f.ID)
	f.dstStack.Unbind(f.ID)
	if f.OnComplete != nil {
		f.OnComplete(f.s.Now() - f.start)
	}
}

// Done reports whether the transfer has completed.
func (f *Flow) Done() bool { return f.done }

// Cwnd returns the current congestion window in segments (diagnostics).
func (f *Flow) Cwnd() float64 { return f.cwnd }

// RTO returns the current retransmission timeout (diagnostics).
func (f *Flow) RTO() float64 { return f.rto * f.backoff }

// SRTT returns the smoothed RTT estimate (diagnostics).
func (f *Flow) SRTT() float64 { return f.srtt }
