package search

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// baseJSON is a small valid scenario the engine tests synthesize variants
// from; the fake evaluator below means no simulation actually runs.
const baseJSON = `{
  "version": 1,
  "name": "srch",
  "seed": 7,
  "duration": 5,
  "topology": {"kind": "custom", "racks": 2, "serversPerRack": 2, "aggSwitches": 1, "clients": 8, "x": 5e7, "k": 2},
  "system": {"kind": "scda", "replicate": true},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 20, "Clients": 8}}]
}`

// loadBase parses baseJSON and attaches the given search block.
func loadBase(t *testing.T, ss *scenario.SearchSpec) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse(strings.NewReader(baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Search = ss
	return spec
}

// fakeEval scores candidates with a pure function of (value, reps) and
// records every evaluation so tests can assert the memo never pays twice.
type fakeEval struct {
	fn    func(v float64, reps int) map[string]float64
	seen  map[memoKey]int
	evals int
}

// EvaluateRound implements Evaluator.
func (f *fakeEval) EvaluateRound(ctx context.Context, round int, cands []Candidate) ([]map[string]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.seen == nil {
		f.seen = map[memoKey]int{}
	}
	out := make([]map[string]float64, len(cands))
	for i, c := range cands {
		f.seen[memoKey{c.Value, c.Reps}]++
		f.evals++
		out[i] = f.fn(c.Value, c.Reps)
	}
	return out, nil
}

// assertNoRepeats fails if any (value, reps) pair was evaluated twice.
func (f *fakeEval) assertNoRepeats(t *testing.T) {
	t.Helper()
	for k, n := range f.seen {
		if n > 1 {
			t.Errorf("value %v reps %d evaluated %d times", k.value, k.reps, n)
		}
	}
}

// parabola is a convex objective minimized at target, with an energy
// metric proportional to the value for constraint tests.
func parabola(target float64) func(v float64, reps int) map[string]float64 {
	return func(v float64, reps int) map[string]float64 {
		d := (v - target) / 1e6
		return map[string]float64{"mean_fct_s": d * d, "energy_kj": v / 1e6}
	}
}

func TestCompileDefaultsAndAliases(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:      "afct",
		Constraints: []scenario.ConstraintSpec{{Metric: "energy", Op: scenario.OpLE, Value: 5}},
		Parameter:   "system.rscale",
		Lo:          1e6, Hi: 9e6,
	})
	p, err := Compile(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Metric != "mean_fct_s" || p.Constraints[0].Metric != "energy_kj" {
		t.Errorf("aliases not resolved: %q, %q", p.Metric, p.Constraints[0].Metric)
	}
	if p.Objective != scenario.Minimize || p.Strategy != scenario.StrategyGridRefine ||
		p.Points != 5 || p.MaxRounds != 8 || p.MaxVariants != 64 || p.BaseReps != 1 {
		t.Errorf("defaults not applied: %+v", p)
	}
	if p.Seed != 7 {
		t.Errorf("seed %d not derived from base spec", p.Seed)
	}
	if p.Base.Search != nil {
		t.Error("base spec kept the search block")
	}

	if _, err := Compile(&scenario.Spec{}, 0, 0); err == nil || !strings.Contains(err.Error(), "no search block") {
		t.Errorf("no-search-block error: %v", err)
	}
	tight := loadBase(t, &scenario.SearchSpec{Metric: "afct", Parameter: "system.rscale", Lo: 1e6, Hi: 9e6, MaxVariants: 3})
	if _, err := Compile(tight, 0, 0); err == nil || !strings.Contains(err.Error(), "maxVariants") {
		t.Errorf("first-round budget error: %v", err)
	}
}

func TestGridRefineConvergesAndReplays(t *testing.T) {
	run := func() (*Result, *fakeEval) {
		spec := loadBase(t, &scenario.SearchSpec{
			Metric:    "afct",
			Parameter: "system.rscale",
			Lo:        1e6, Hi: 9e6,
			Tolerance: 1e6,
		})
		p, err := Compile(spec, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ev := &fakeEval{fn: parabola(3e6)}
		var rounds int
		res, err := Run(context.Background(), p, ev, func(Round) { rounds++ })
		if err != nil {
			t.Fatal(err)
		}
		if rounds != len(res.Rounds) {
			t.Errorf("observer saw %d rounds, result has %d", rounds, len(res.Rounds))
		}
		return res, ev
	}
	res, ev := run()
	ev.assertNoRepeats(t)
	if !res.Converged {
		t.Error("grid-refine did not converge")
	}
	if res.Incumbent == nil || res.Incumbent.Value != 3e6 {
		t.Fatalf("incumbent %+v, want value 3e6", res.Incumbent)
	}
	// Rounds: grid of 5 over [1e6,9e6], refine to [2e6,4e6], then
	// tolerance 1e6 stops after the bracket shrinks to [2.5e6,3.5e6].
	if len(res.Rounds) != 3 || res.Evaluations != 9 {
		t.Errorf("rounds %d evaluations %d, want 3 and 9", len(res.Rounds), res.Evaluations)
	}
	reused := 0
	for _, v := range res.Rounds[1].Variants {
		if v.Reused {
			reused++
		}
	}
	if reused != 3 {
		t.Errorf("round 2 reused %d variants, want 3", reused)
	}
	if res.IncumbentSpec == nil || !bytes.Contains(res.IncumbentSpec, []byte(res.Incumbent.Name)) {
		t.Errorf("incumbent spec missing or unnamed: %s", res.IncumbentSpec)
	}

	// Identical search, fresh engine: byte-identical result and trajectory.
	res2, _ := run()
	j1, _ := json.Marshal(res)
	j2, _ := json.Marshal(res2)
	if !bytes.Equal(j1, j2) {
		t.Error("identical searches produced different result JSON")
	}
	if !bytes.Equal(res.TrajectoryCSV(), res2.TrajectoryCSV()) {
		t.Error("identical searches produced different trajectory CSVs")
	}
	csv := string(res.TrajectoryCSV())
	if !strings.HasPrefix(csv, "round,reps,evaluations,pruned,incumbent,value,objective\n") {
		t.Errorf("trajectory header: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 1+len(res.Rounds) {
		t.Errorf("trajectory has %d lines, want %d", lines, 1+len(res.Rounds))
	}
}

func TestGridRefineDiscreteSingleRound(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Parameter: "system.rscale",
		Values:    []float64{1e6, 3e6, 5e6},
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Evaluations != 3 || !res.Converged {
		t.Errorf("rounds %d evaluations %d converged %v", len(res.Rounds), res.Evaluations, res.Converged)
	}
	if res.Incumbent == nil || res.Incumbent.Value != 3e6 {
		t.Fatalf("incumbent %+v", res.Incumbent)
	}
	if res.Pruned != 2 {
		t.Errorf("pruned %d, want 2", res.Pruned)
	}
}

func TestHalvingGrowsRepsAndHalvesPool(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Strategy:  scenario.StrategyHalving,
		Parameter: "system.rscale",
		Values:    []float64{1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6, 8e6},
	})
	p, err := Compile(spec, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := &fakeEval{fn: parabola(3e6)}
	res, err := Run(context.Background(), p, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev.assertNoRepeats(t)
	if len(res.Rounds) != 3 || !res.Converged {
		t.Fatalf("rounds %d converged %v", len(res.Rounds), res.Converged)
	}
	wantReps := []int{1, 2, 4}
	wantSizes := []int{8, 4, 2}
	for i, rd := range res.Rounds {
		if rd.Reps != wantReps[i] || len(rd.Variants) != wantSizes[i] {
			t.Errorf("round %d: reps %d size %d, want %d and %d", i+1, rd.Reps, len(rd.Variants), wantReps[i], wantSizes[i])
		}
	}
	if res.Evaluations != 14 {
		t.Errorf("evaluations %d, want 14", res.Evaluations)
	}
	if res.Incumbent == nil || res.Incumbent.Value != 3e6 || res.Incumbent.Reps != 4 {
		t.Fatalf("incumbent %+v", res.Incumbent)
	}
}

func TestHalvingStopsAtRepsCap(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Strategy:  scenario.StrategyHalving,
		Parameter: "system.rscale",
		Values:    []float64{1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6, 8e6},
	})
	p, err := Compile(spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reps go 1 → 2 and can then no longer grow: two rounds, converged.
	if len(res.Rounds) != 2 || !res.Converged {
		t.Errorf("rounds %d converged %v", len(res.Rounds), res.Converged)
	}
}

func TestRandomSeededAndDeterministic(t *testing.T) {
	run := func(seed uint64) *Result {
		spec := loadBase(t, &scenario.SearchSpec{
			Metric:    "afct",
			Strategy:  scenario.StrategyRandom,
			Parameter: "system.rscale",
			Lo:        1e6, Hi: 9e6,
			Seed:      seed,
			MaxRounds: 3,
		})
		p, err := Compile(spec, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(11), run(11)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Error("same seed produced different searches")
	}
	if len(a.Rounds) != 3 || a.Converged {
		t.Errorf("rounds %d converged %v, want 3 budget-bounded rounds", len(a.Rounds), a.Converged)
	}
	c := run(12)
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Error("different seeds sampled identical searches")
	}
}

func TestConstraintsPickFeasibleIncumbent(t *testing.T) {
	// Unconstrained optimum 3e6 draws energy 3; cap energy at 2.4 so the
	// incumbent must move to the best feasible value instead.
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:      "afct",
		Constraints: []scenario.ConstraintSpec{{Metric: "energy", Op: scenario.OpLE, Value: 2.4}},
		Parameter:   "system.rscale",
		Values:      []float64{1e6, 2e6, 3e6, 4e6},
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incumbent == nil || res.Incumbent.Value != 2e6 || !res.Incumbent.Feasible {
		t.Fatalf("incumbent %+v, want feasible value 2e6", res.Incumbent)
	}
	for _, v := range res.Rounds[0].Variants {
		wantFeasible := v.Value <= 2e6
		if v.Feasible != wantFeasible {
			t.Errorf("value %v feasible %v", v.Value, v.Feasible)
		}
	}

	// Nothing feasible: no incumbent, no incumbent spec.
	spec = loadBase(t, &scenario.SearchSpec{
		Metric:      "afct",
		Constraints: []scenario.ConstraintSpec{{Metric: "energy", Op: scenario.OpGE, Value: 100}},
		Parameter:   "system.rscale",
		Values:      []float64{1e6, 2e6},
	})
	p, err = Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incumbent != nil || res.IncumbentSpec != nil {
		t.Errorf("infeasible search produced incumbent %+v", res.Incumbent)
	}
}

func TestMaxVariantsStopsBeforeOvershoot(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Strategy:  scenario.StrategyRandom,
		Parameter: "system.rscale",
		Lo:        1e6, Hi: 9e6,
		Points:      4,
		MaxRounds:   8,
		MaxVariants: 6,
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev := &fakeEval{fn: parabola(3e6)}
	res, err := Run(context.Background(), p, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Evaluations != 4 || res.Converged {
		t.Errorf("rounds %d evaluations %d converged %v, want budget stop after round 1",
			len(res.Rounds), res.Evaluations, res.Converged)
	}
	if ev.evals != res.Evaluations {
		t.Errorf("evaluator ran %d candidates, result reports %d", ev.evals, res.Evaluations)
	}
}

func TestMissingMetricFailsLoudly(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "p99_fct",
		Parameter: "system.rscale",
		Values:    []float64{1e6},
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), p, &fakeEval{fn: parabola(3e6)}, nil)
	if err == nil || !strings.Contains(err.Error(), "p99_fct_s") {
		t.Errorf("missing metric error: %v", err)
	}
}

func TestCancellationPropagates(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Parameter: "system.rscale",
		Lo:        1e6, Hi: 9e6,
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, p, &fakeEval{fn: parabola(3e6)}, nil); err != context.Canceled {
		t.Errorf("cancelled run: %v", err)
	}
}

// blockingEval waits for the context to expire — exercising the
// MaxSeconds wall-time valve, which fails the search instead of shipping
// a truncated trajectory.
type blockingEval struct{}

// EvaluateRound implements Evaluator.
func (blockingEval) EvaluateRound(ctx context.Context, round int, cands []Candidate) ([]map[string]float64, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestMaxSecondsFailsTheSearch(t *testing.T) {
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Parameter: "system.rscale",
		Lo:        1e6, Hi: 9e6,
		MaxSeconds: 0.001,
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), p, blockingEval{}, nil); err != context.DeadlineExceeded {
		t.Errorf("wall-time valve: %v", err)
	}
}

func TestLocalEvaluatorRunsRealScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := loadBase(t, &scenario.SearchSpec{
		Metric:    "afct",
		Parameter: "system.rscale",
		Values:    []float64{1e6, 5e7},
	})
	p, err := Compile(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, &Local{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incumbent == nil {
		t.Fatal("no incumbent from real runs")
	}
	if res.Evaluations != 2 {
		t.Errorf("evaluations %d", res.Evaluations)
	}
}
