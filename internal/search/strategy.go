package search

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// searchStreamLabel keeps the random strategy's RNG stream disjoint from
// every stream the simulator splits off the same seed.
const searchStreamLabel = 0x5ea2c4

// strategy is the per-round planner behind Run. plan proposes the round's
// domain values and replicate count (empty values = converged, stop);
// observe feeds the round's scored variants back (in proposal order) and
// returns the set of values still in contention, which the engine reports
// as each variant's Kept flag.
type strategy interface {
	plan(round int) ([]float64, int)
	observe(round int, sc []*scored) map[float64]bool
}

// newStrategy instantiates the compiled problem's planner.
func newStrategy(p *Problem, h *history) (strategy, error) {
	switch p.Strategy {
	case scenario.StrategyGridRefine:
		return &gridRefine{p: p, h: h, lo: p.Lo, hi: p.Hi}, nil
	case scenario.StrategyHalving:
		return &halving{p: p, h: h}, nil
	case scenario.StrategyRandom:
		// Split off a dedicated stream so the search's draws are
		// independent of anything the simulator draws from the same seed.
		return &randomSearch{p: p, h: h, rng: sim.NewRNG(p.Seed).Split(searchStreamLabel)}, nil
	}
	return nil, fmt.Errorf("search: unknown strategy %q", p.Strategy)
}

// gridRefine evaluates an evenly spaced grid, then recursively re-grids
// the bracket around the refinement target (the incumbent, or the best
// overall while nothing is feasible). It stops when the bracket stops
// shrinking, shrinks to a point, or reaches the tolerance. A discrete
// domain is a single exhaustive round.
type gridRefine struct {
	p      *Problem
	h      *history
	lo, hi float64
	done   bool
}

// plan proposes the current bracket's grid (or the full discrete domain
// in round 1).
func (g *gridRefine) plan(round int) ([]float64, int) {
	if g.done {
		return nil, 0
	}
	if len(g.p.Values) > 0 {
		if round > 1 {
			return nil, 0
		}
		return append([]float64(nil), g.p.Values...), g.p.BaseReps
	}
	return gridPoints(g.lo, g.hi, g.p.Points, g.p.integer()), g.p.BaseReps
}

// observe narrows the bracket to the grid neighbors of the refinement
// target and decides convergence.
func (g *gridRefine) observe(round int, sc []*scored) map[float64]bool {
	if len(g.p.Values) > 0 {
		g.done = true
		kept := map[float64]bool{}
		if t := g.h.refineTarget(); t != nil {
			kept[t.value] = true
		}
		return kept
	}
	target := g.h.refineTarget()
	best := 0
	for i, s := range sc {
		if s.value == target.value {
			best = i
		}
	}
	lo, hi := sc[max(0, best-1)].value, sc[min(len(sc)-1, best+1)].value
	kept := map[float64]bool{}
	for _, s := range sc {
		if s.value >= lo && s.value <= hi {
			kept[s.value] = true
		}
	}
	switch {
	case lo == g.lo && hi == g.hi: // bracket no longer shrinking
		g.done = true
	case hi-lo <= g.p.Tolerance:
		g.done = true
	case lo == hi:
		g.done = true
	}
	g.lo, g.hi = lo, hi
	return kept
}

// halving is successive halving: round 1 evaluates the full candidate
// pool at BaseReps; each later round doubles the replicates (capped at
// MaxReps) for the better half of the survivors, until one remains or
// the replicate cap makes further rounds uninformative.
type halving struct {
	p         *Problem
	h         *history
	survivors []float64
	reps      int
	done      bool
}

// plan proposes the surviving pool at the next replicate rung.
func (h *halving) plan(round int) ([]float64, int) {
	if h.done {
		return nil, 0
	}
	if round == 1 {
		h.reps = h.p.BaseReps
		if len(h.p.Values) > 0 {
			return append([]float64(nil), h.p.Values...), h.reps
		}
		return gridPoints(h.p.Lo, h.p.Hi, h.p.Points, h.p.integer()), h.reps
	}
	next := h.reps * 2
	if next > h.p.MaxReps {
		next = h.p.MaxReps
	}
	if next == h.reps {
		// Replicates can no longer grow; re-evaluating the survivors at
		// the same rung would all memo-hit and decide nothing.
		return nil, 0
	}
	h.reps = next
	return append([]float64(nil), h.survivors...), h.reps
}

// observe ranks the round and keeps the better half, ascending by value
// for a deterministic next-round proposal order.
func (h *halving) observe(round int, sc []*scored) map[float64]bool {
	ranked := append([]*scored(nil), sc...)
	sort.SliceStable(ranked, func(i, j int) bool { return h.h.better(ranked[i], ranked[j]) })
	keep := (len(ranked) + 1) / 2
	kept := map[float64]bool{}
	h.survivors = h.survivors[:0]
	for _, s := range ranked[:keep] {
		kept[s.value] = true
		h.survivors = append(h.survivors, s.value)
	}
	sort.Float64s(h.survivors)
	if keep <= 1 {
		h.done = true
	}
	return kept
}

// randomSearch is the seeded uniform baseline: Points fresh samples per
// round, every round, until a budget runs out. Only the running incumbent
// is kept.
type randomSearch struct {
	p   *Problem
	h   *history
	rng *sim.RNG
}

// plan draws the round's samples — uniform over [lo, hi] (rounded for
// integer parameters) or without replacement from a discrete domain.
func (r *randomSearch) plan(round int) ([]float64, int) {
	n := r.p.Points
	if len(r.p.Values) > 0 {
		if n > len(r.p.Values) {
			n = len(r.p.Values)
		}
		vals := make([]float64, 0, n)
		for _, i := range r.rng.Perm(len(r.p.Values))[:n] {
			vals = append(vals, r.p.Values[i])
		}
		return vals, r.p.BaseReps
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := r.p.Lo + r.rng.Float64()*(r.p.Hi-r.p.Lo)
		if r.p.integer() {
			v = math.Round(v)
		}
		vals = append(vals, v)
	}
	return vals, r.p.BaseReps
}

// observe keeps only the refinement target (the incumbent once one
// exists).
func (r *randomSearch) observe(round int, sc []*scored) map[float64]bool {
	kept := map[float64]bool{}
	if t := r.h.refineTarget(); t != nil {
		kept[t.value] = true
	}
	return kept
}

// min returns the smaller int.
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// max returns the larger int.
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
