package search

import (
	"context"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// Local is the in-process Evaluator behind offline searches (scda-bench
// -search and the engine's own tests): each candidate runs through
// scenario.RunReplicatedCtx on the pool, candidates sequentially and
// replicates fanned out inside the pool. The service does not use it —
// there the evaluator is a job-group submission so rounds ride the
// queue/cache/singleflight/ring path.
type Local struct {
	// Pool runs the replicates; nil falls back to a serial pool.
	Pool *runner.Pool
}

// EvaluateRound runs the round's candidates and returns their summary
// metrics in candidate order.
func (l *Local) EvaluateRound(ctx context.Context, round int, cands []Candidate) ([]map[string]float64, error) {
	pool := l.Pool
	if pool == nil {
		pool = runner.Serial()
	}
	out := make([]map[string]float64, len(cands))
	for i, c := range cands {
		r, err := scenario.RunReplicatedCtx(ctx, c.Spec, c.Reps, pool, nil)
		if err != nil {
			return nil, err
		}
		out[i] = r.Summary
	}
	return out, nil
}
