// Package search is the adaptive-experiment engine: it turns a scenario
// spec carrying a search block (scenario.SearchSpec) into an iterative
// optimization over one sweepable parameter. Each round the engine
// synthesizes concrete variant specs (scenario.SetParameter +
// collision-proof SearchVariantName), hands them to an Evaluator — the
// service submits them as an ordinary job group through its
// queue/cache/singleflight/ring path, the offline Local evaluator runs
// them in-process — reads back summary metrics, prunes per the selected
// strategy (grid-refine, halving, random) and converges on an incumbent.
//
// Everything in the decision path is deterministic and wall-clock-free:
// proposals derive only from the spec (seeds included) and prior-round
// metrics, and scenario runs are themselves deterministic. Re-running the
// same search therefore evaluates the same variants in the same order and
// produces a byte-identical trajectory — which is what makes a resubmitted
// search a pure cache replay on the service. The one wall-clock knob,
// MaxSeconds, is a safety valve outside that path: a search that hits it
// fails instead of producing a time-dependent result.
package search

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

// metricAliases maps friendly goal-metric names onto the summary keys the
// scenario runner emits.
var metricAliases = map[string]string{
	"afct":    "mean_fct_s",
	"p50_fct": "median_fct_s",
	"p90_fct": "p90_fct_s",
	"p99_fct": "p99_fct_s",
	"energy":  "energy_kj",
}

// ResolveMetric canonicalizes a goal or constraint metric name: known
// aliases map to their summary key, anything else passes through as a raw
// summary key (the key set depends on the run, so existence is checked
// when results are read).
func ResolveMetric(name string) string {
	if k, ok := metricAliases[name]; ok {
		return k
	}
	return name
}

// Constraint is one compiled feasibility predicate.
type Constraint struct {
	// Metric is the resolved summary key being constrained.
	Metric string
	// Op is scenario.OpLE or scenario.OpGE.
	Op string
	// Value is the bound.
	Value float64
}

// satisfied evaluates the predicate against a summary value.
func (c Constraint) satisfied(v float64) bool {
	if c.Op == scenario.OpGE {
		return v >= c.Value
	}
	return v <= c.Value
}

// Problem is a compiled search: the base spec plus the fully defaulted
// goal, domain, strategy and budgets. Build one with Compile.
type Problem struct {
	// Base is the search-free base spec variants are synthesized from.
	Base *scenario.Spec
	// Objective is scenario.Minimize or scenario.Maximize.
	Objective string
	// Metric is the resolved summary key being optimized.
	Metric string
	// Constraints are the compiled feasibility predicates.
	Constraints []Constraint
	// Parameter is the sweepable parameter being searched.
	Parameter string
	// Lo and Hi bound the continuous domain (unused when Values is set).
	Lo, Hi float64
	// Values is the discrete domain (nil for continuous).
	Values []float64
	// Strategy is the resolved strategy name.
	Strategy string
	// Points is the resolved grid width / pool size / samples per round.
	Points int
	// Tolerance is grid-refine's bracket-width stop (0 = budget-driven).
	Tolerance float64
	// Seed drives the random strategy.
	Seed uint64
	// MaxRounds and MaxVariants are the resolved iteration budgets.
	MaxRounds, MaxVariants int
	// MaxSeconds is the wall-time safety valve (0 = unlimited).
	MaxSeconds float64
	// BaseReps is the replicate count per evaluation (halving's first
	// rung, every round for the other strategies).
	BaseReps int
	// MaxReps caps halving's replicate growth.
	MaxReps int
}

// Compile resolves a spec with a search block into a Problem: defaults
// applied, metrics resolved, budgets checked against the first round's
// candidate count. baseReps is the per-evaluation replicate count
// (<= 0 means 1); maxReps caps halving's growth (<= 0 means 64).
func Compile(spec *scenario.Spec, baseReps, maxReps int) (*Problem, error) {
	if spec.Search == nil {
		return nil, errors.New("search: spec has no search block")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ss := spec.Search
	base := *spec
	base.Search = nil
	if baseReps <= 0 {
		baseReps = 1
	}
	if maxReps <= 0 {
		maxReps = 64
	}
	if baseReps > maxReps {
		baseReps = maxReps
	}
	p := &Problem{
		Base:        &base,
		Objective:   ss.Objective,
		Metric:      ResolveMetric(ss.Metric),
		Parameter:   ss.Parameter,
		Lo:          ss.Lo,
		Hi:          ss.Hi,
		Values:      append([]float64(nil), ss.Values...),
		Strategy:    ss.Strategy,
		Points:      ss.Points,
		Tolerance:   ss.Tolerance,
		Seed:        ss.Seed,
		MaxRounds:   ss.MaxRounds,
		MaxVariants: ss.MaxVariants,
		MaxSeconds:  ss.MaxSeconds,
		BaseReps:    baseReps,
		MaxReps:     maxReps,
	}
	if p.Objective == "" {
		p.Objective = scenario.Minimize
	}
	if p.Strategy == "" {
		p.Strategy = scenario.StrategyGridRefine
	}
	if p.Points == 0 {
		switch p.Strategy {
		case scenario.StrategyHalving:
			p.Points = 8
		case scenario.StrategyRandom:
			p.Points = 4
		default:
			p.Points = 5
		}
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 8
	}
	if p.MaxVariants == 0 {
		p.MaxVariants = 64
	}
	if p.Seed == 0 {
		p.Seed = base.Seed
	}
	for _, c := range ss.Constraints {
		p.Constraints = append(p.Constraints, Constraint{Metric: ResolveMetric(c.Metric), Op: c.Op, Value: c.Value})
	}
	first := p.Points
	if len(p.Values) > 0 && p.Strategy != scenario.StrategyRandom {
		first = len(p.Values)
	}
	if first > p.MaxVariants {
		return nil, fmt.Errorf("search: maxVariants %d below the first round's %d candidates", p.MaxVariants, first)
	}
	return p, nil
}

// integer reports whether the searched parameter only takes integer
// values, so continuous proposals must round.
func (p *Problem) integer() bool {
	return p.Parameter == "system.nns" || p.Parameter == "seed"
}

// Variant synthesizes the concrete spec for one domain value: parameter
// applied, collision-proof name, re-validated.
func (p *Problem) Variant(v float64) (*scenario.Spec, error) {
	spec, err := scenario.SetParameter(p.Base, p.Parameter, v)
	if err != nil {
		return nil, err
	}
	spec.Name = scenario.SearchVariantName(p.Base.Name, p.Parameter, v)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("search variant %s: %w", spec.Name, err)
	}
	return spec, nil
}

// Candidate is one variant evaluation request handed to an Evaluator.
type Candidate struct {
	// Spec is the synthesized, validated variant spec.
	Spec *scenario.Spec
	// Value is the domain value the variant was synthesized from.
	Value float64
	// Reps is the replicate count to evaluate at.
	Reps int
}

// Evaluator runs one round of candidates and returns each candidate's
// summary metrics in candidate order. The engine never resubmits the same
// (value, reps) pair, so every call carries fresh work only.
type Evaluator interface {
	EvaluateRound(ctx context.Context, round int, cands []Candidate) ([]map[string]float64, error)
}

// Variant is one evaluated variant's slot in a round record. The shape is
// part of the deterministic trajectory: it carries no IDs, cache
// information or timestamps, so identical searches serialize identically.
type Variant struct {
	// Name is the collision-proof synthesized scenario name.
	Name string `json:"name"`
	// Value is the domain value.
	Value float64 `json:"value"`
	// Reps is the replicate count the metrics were evaluated at.
	Reps int `json:"reps"`
	// Objective is the goal metric's value.
	Objective float64 `json:"objective"`
	// Feasible reports whether every constraint holds.
	Feasible bool `json:"feasible"`
	// Reused marks a variant whose metrics were carried over from an
	// earlier round rather than freshly evaluated.
	Reused bool `json:"reused,omitempty"`
	// Kept reports whether the variant stayed in contention after the
	// round's pruning.
	Kept bool `json:"kept"`
}

// Round is one round's record: the variants considered, how many were
// freshly evaluated and pruned, and the incumbent after the round.
type Round struct {
	// Round numbers rounds from 1.
	Round int `json:"round"`
	// Reps is the replicate count this round evaluated at.
	Reps int `json:"reps"`
	// Variants lists every variant considered this round in proposal
	// order.
	Variants []Variant `json:"variants"`
	// Evaluations counts the fresh (non-reused) evaluations.
	Evaluations int `json:"evaluations"`
	// Pruned counts this round's variants dropped from contention.
	Pruned int `json:"pruned"`
	// Incumbent is the best feasible variant evaluated so far (absent
	// while nothing feasible has been seen).
	Incumbent *Variant `json:"incumbent,omitempty"`
}

// Result is a completed search: the full per-round table, the totals and
// the incumbent with its canonical spec. Like Round it is deterministic —
// identical searches marshal byte-identically.
type Result struct {
	// Name is the base scenario name.
	Name string `json:"name"`
	// Strategy, Objective, Metric and Parameter echo the compiled
	// problem.
	Strategy  string `json:"strategy"`
	Objective string `json:"objective"`
	Metric    string `json:"metric"`
	Parameter string `json:"parameter"`
	// Rounds is the per-round table.
	Rounds []Round `json:"rounds"`
	// Evaluations counts fresh variant evaluations — equal to the number
	// of distinct (value, reps) pairs the search computed, since the
	// engine memoizes within the search.
	Evaluations int `json:"evaluations"`
	// Pruned totals the per-round pruned counts.
	Pruned int `json:"pruned"`
	// Converged reports whether the strategy stopped on its own rather
	// than exhausting a budget.
	Converged bool `json:"converged"`
	// Incumbent is the best feasible variant (absent when no evaluated
	// variant satisfied the constraints).
	Incumbent *Variant `json:"incumbent,omitempty"`
	// IncumbentSpec is the incumbent's canonical spec JSON, ready to
	// resubmit as an ordinary job.
	IncumbentSpec json.RawMessage `json:"incumbentSpec,omitempty"`
}

// TrajectoryCSV renders the round-by-round incumbent trajectory as a CSV:
// one row per round with the fresh-evaluation and pruned counts and the
// incumbent's name, value and objective. Byte-stable across identical
// searches.
func (r *Result) TrajectoryCSV() []byte {
	var b strings.Builder
	b.WriteString("round,reps,evaluations,pruned,incumbent,value,objective\n")
	for _, rd := range r.Rounds {
		name, value, objective := "", "", ""
		if rd.Incumbent != nil {
			name = rd.Incumbent.Name
			value = formatFloat(rd.Incumbent.Value)
			objective = formatFloat(rd.Incumbent.Objective)
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%s,%s,%s\n", rd.Round, rd.Reps, rd.Evaluations, rd.Pruned, name, value, objective)
	}
	return []byte(b.String())
}

// formatFloat renders a float for the trajectory CSV: shortest exact
// representation, so the rendering is deterministic.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// scored is one evaluated variant in the engine's memo.
type scored struct {
	name      string
	value     float64
	reps      int
	objective float64
	feasible  bool
}

// variant renders the scored entry as a wire Variant (Reused and Kept
// are filled by the round loop).
func (s *scored) variant() Variant {
	return Variant{Name: s.name, Value: s.value, Reps: s.reps, Objective: s.objective, Feasible: s.feasible}
}

// memoKey identifies one evaluation: the engine never pays twice for the
// same (value, reps) pair within a search.
type memoKey struct {
	value float64
	reps  int
}

// history accumulates evaluations and the running best/incumbent.
type history struct {
	p    *Problem
	memo map[memoKey]*scored
	best *scored // best overall, used for refinement when nothing is feasible
	inc  *scored // best feasible — the reported incumbent
}

// better reports whether a should be preferred over b under the problem's
// objective: feasible beats infeasible, then the objective, then the
// deterministic tiebreaks (smaller value, then more replicates — an
// equal score at higher replication is the more trustworthy estimate).
func (h *history) better(a, b *scored) bool {
	if b == nil {
		return true
	}
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.objective != b.objective {
		if h.p.Objective == scenario.Maximize {
			return a.objective > b.objective
		}
		return a.objective < b.objective
	}
	if a.value != b.value {
		return a.value < b.value
	}
	return a.reps > b.reps
}

// update folds one evaluation into the running best and incumbent.
func (h *history) update(s *scored) {
	if h.better(s, h.best) {
		h.best = s
	}
	if s.feasible && (h.inc == nil || h.better(s, h.inc)) {
		h.inc = s
	}
}

// refineTarget is the variant refinement centers on: the incumbent when
// one exists, the best overall otherwise (so a search whose early rounds
// are all infeasible still moves instead of stalling).
func (h *history) refineTarget() *scored {
	if h.inc != nil {
		return h.inc
	}
	return h.best
}

// score extracts the objective and feasibility from one evaluation's
// summary metrics, erroring on a missing metric key (a goal naming a
// metric the scenario does not produce should fail the search loudly,
// not optimize garbage).
func (h *history) score(c Candidate, m map[string]float64) (*scored, error) {
	obj, ok := m[h.p.Metric]
	if !ok {
		return nil, fmt.Errorf("search: variant %s has no summary metric %q", c.Spec.Name, h.p.Metric)
	}
	s := &scored{name: c.Spec.Name, value: c.Value, reps: c.Reps, objective: obj, feasible: true}
	for _, cons := range h.p.Constraints {
		v, ok := m[cons.Metric]
		if !ok {
			return nil, fmt.Errorf("search: variant %s has no summary metric %q (constraint)", c.Spec.Name, cons.Metric)
		}
		if !cons.satisfied(v) {
			s.feasible = false
		}
	}
	return s, nil
}

// Run executes the compiled search against the evaluator: plan a round,
// evaluate the fresh candidates, fold results in, prune, repeat until the
// strategy converges or a budget runs out. obs (optional) receives each
// round record as it completes — the service streams these as NDJSON
// events. The returned Result is fully deterministic; the error paths are
// evaluator failures, invalid synthesized variants, missing metrics and
// context cancellation (which includes the MaxSeconds wall-time valve).
func Run(ctx context.Context, p *Problem, ev Evaluator, obs func(Round)) (*Result, error) {
	if p.MaxSeconds > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(p.MaxSeconds*float64(time.Second)))
		defer cancel()
	}
	h := &history{p: p, memo: make(map[memoKey]*scored)}
	strat, err := newStrategy(p, h)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:      p.Base.Name,
		Strategy:  p.Strategy,
		Objective: p.Objective,
		Metric:    p.Metric,
		Parameter: p.Parameter,
		Rounds:    []Round{},
	}
	for r := 1; r <= p.MaxRounds; r++ {
		values, reps := strat.plan(r)
		values = dedupe(values)
		if len(values) == 0 {
			res.Converged = true
			break
		}
		sc := make([]*scored, len(values))
		fresh := make([]bool, len(values))
		var cands []Candidate
		var freshIdx []int
		for i, v := range values {
			if m := h.memo[memoKey{v, reps}]; m != nil {
				sc[i] = m
				continue
			}
			spec, err := p.Variant(v)
			if err != nil {
				return nil, err
			}
			cands = append(cands, Candidate{Spec: spec, Value: v, Reps: reps})
			freshIdx = append(freshIdx, i)
			fresh[i] = true
		}
		if res.Evaluations+len(cands) > p.MaxVariants {
			break // budget exhausted before this round; the trajectory so far stands
		}
		if len(cands) > 0 {
			ms, err := ev.EvaluateRound(ctx, r, cands)
			if err != nil {
				return nil, err
			}
			if len(ms) != len(cands) {
				return nil, fmt.Errorf("search: evaluator returned %d results for %d candidates", len(ms), len(cands))
			}
			for k, i := range freshIdx {
				s, err := h.score(cands[k], ms[k])
				if err != nil {
					return nil, err
				}
				sc[i] = s
				h.memo[memoKey{s.value, s.reps}] = s
			}
			res.Evaluations += len(cands)
		}
		for _, s := range sc {
			h.update(s)
		}
		kept := strat.observe(r, sc)
		round := Round{Round: r, Reps: reps, Evaluations: len(cands), Variants: make([]Variant, 0, len(sc))}
		for i, s := range sc {
			v := s.variant()
			v.Reused = !fresh[i]
			v.Kept = kept[s.value]
			if !v.Kept {
				round.Pruned++
			}
			round.Variants = append(round.Variants, v)
		}
		res.Pruned += round.Pruned
		if h.inc != nil {
			iv := h.inc.variant()
			iv.Kept = true
			round.Incumbent = &iv
		}
		res.Rounds = append(res.Rounds, round)
		if obs != nil {
			obs(round)
		}
	}
	if len(res.Rounds) == 0 {
		return nil, errors.New("search: budgets admit no rounds")
	}
	if h.inc != nil {
		iv := h.inc.variant()
		iv.Kept = true
		res.Incumbent = &iv
		spec, err := p.Variant(h.inc.value)
		if err != nil {
			return nil, err
		}
		canon, err := spec.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		res.IncumbentSpec = canon
	}
	return res, nil
}

// dedupe drops repeated values from a round's proposals, preserving
// first-occurrence order, so a round never carries the same evaluation
// twice (integer rounding and random sampling can propose duplicates).
func dedupe(values []float64) []float64 {
	if len(values) < 2 {
		return values
	}
	seen := make(map[float64]bool, len(values))
	out := values[:0]
	for _, v := range values {
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// gridPoints returns n evenly spaced points over [lo, hi] (endpoints
// included), rounded to integers when the parameter requires it and
// deduplicated, ascending.
func gridPoints(lo, hi float64, n int, integer bool) []float64 {
	if n < 2 {
		n = 2
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		if integer {
			v = math.Round(v)
		}
		if len(vals) > 0 && v == vals[len(vals)-1] {
			continue
		}
		vals = append(vals, v)
	}
	return vals
}
