package experiments

import (
	"testing"
)

// tinyScale keeps figure smoke tests to well under a second each.
func tinyScale() Scale {
	return Scale{Duration: 8, BWScale: 0.05, ArrivalScale: 0.05, Seed: 3}
}

func checkFigure(t *testing.T, f FigureResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("%s: %d series, want SCDA + RandTCP", f.ID, len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %s empty", f.ID, s.Name)
		}
	}
	if f.XLabel == "" || f.YLabel == "" || f.Title == "" {
		t.Fatalf("%s: missing labels", f.ID)
	}
}

func TestFig08VideoCDF(t *testing.T) {
	f, err := Fig08(tinyScale())
	checkFigure(t, f, err)
	// headline: SCDA median FCT below RandTCP's
	if f.Summary["scda_median_fct"] >= f.Summary["rand_median_fct"] {
		t.Fatalf("SCDA median %v not below RandTCP %v",
			f.Summary["scda_median_fct"], f.Summary["rand_median_fct"])
	}
}

func TestFig13DCAFCT(t *testing.T) {
	f, err := Fig13(tinyScale())
	checkFigure(t, f, err)
	if f.Summary["scda_mean_fct"] >= f.Summary["rand_mean_fct"] {
		t.Fatalf("SCDA mean AFCT %v not below RandTCP %v",
			f.Summary["scda_mean_fct"], f.Summary["rand_mean_fct"])
	}
}

func TestFig17ParetoThroughput(t *testing.T) {
	f, err := Fig17(tinyScale())
	checkFigure(t, f, err)
	if f.Summary["scda_mean_thpt_kBps"] <= 0 {
		t.Fatal("no SCDA throughput")
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure("fig99", tinyScale()); err == nil {
		t.Fatal("unknown figure accepted")
	}
	ids := FigureIDs()
	if len(ids) != 12 {
		t.Fatalf("%d figure IDs, want 12", len(ids))
	}
	all := AllFigures()
	for _, id := range ids {
		if all[id] == nil {
			t.Fatalf("figure %s missing from AllFigures", id)
		}
	}
}

func TestAblationMaxMin(t *testing.T) {
	r, err := AblationMaxMin(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A1 failed: %+v", r.Values)
	}
}

func TestAblationSLA(t *testing.T) {
	r, err := AblationSLA(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A2 failed: %+v", r.Values)
	}
}

func TestAblationPriority(t *testing.T) {
	r, err := AblationPriority(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A3 failed: %+v", r.Values)
	}
}

func TestAblationReservation(t *testing.T) {
	r, err := AblationReservation(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A4 failed: %+v", r.Values)
	}
}

func TestAblationNNS(t *testing.T) {
	r, err := AblationNNS(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A5 failed: %+v", r.Values)
	}
}

func TestAblationPower(t *testing.T) {
	r, err := AblationPower(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A6 failed: %+v", r.Values)
	}
}

func TestAblationSimplified(t *testing.T) {
	r, err := AblationSimplified(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A7 failed: %+v", r.Values)
	}
}

func TestAblationTopology(t *testing.T) {
	r, err := AblationTopology(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A8 failed: %+v", r.Values)
	}
}

func TestAblationOpenFlowSJF(t *testing.T) {
	r, err := AblationOpenFlowSJF(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A9 failed: %+v", r.Values)
	}
}

func TestAblationSchedulerSJF(t *testing.T) {
	r, err := AblationSchedulerSJF(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A10 failed: %+v", r.Values)
	}
}

func TestAblationFailureRecovery(t *testing.T) {
	r, err := AblationFailureRecovery(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("A11 failed: %+v", r.Values)
	}
}

func TestAllAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rs, err := AllAblations(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 11 {
		t.Fatalf("%d ablations, want 11", len(rs))
	}
}

func TestClientScaleSweep(t *testing.T) {
	sc := tinyScale()
	res, err := ClientScaleSweep([]int{5, 10}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatal("want 2 series")
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
	}
	// SCDA at or below RandTCP at every swept point
	for i := range res.Series[0].Points {
		if res.Series[0].Points[i].Y > res.Series[1].Points[i].Y {
			t.Fatalf("SCDA above RandTCP at %v clients", res.Series[0].Points[i].X)
		}
	}
	if _, err := ClientScaleSweep([]int{0}, sc, nil); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestNNSScaleSweep(t *testing.T) {
	res, err := NNSScaleSweep([]int{1, 4}, tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Y >= pts[0].Y {
		t.Fatalf("peak load did not drop with more NNS: %v", pts)
	}
}

// TestPaperClaim60Percent checks section X-A2's CDF claim: "more than 60%
// of SCDA flows achieve upto 50% smaller transfer time than RandTCP based
// approaches" — at least 60% of SCDA flows beat the RandTCP median, and
// the median improvement itself approaches 50%.
func TestPaperClaim60Percent(t *testing.T) {
	sc := tinyScale()
	f, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	randMedian := f.Summary["rand_median_fct"]
	// reconstruct P(SCDA FCT <= RandTCP median) from the SCDA CDF series
	var frac float64
	for _, p := range f.Series[0].Points {
		if p.X <= randMedian {
			frac = p.Y
		}
	}
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of SCDA flows beat the RandTCP median (paper: >60%%)", frac*100)
	}
	improvement := 1 - f.Summary["scda_median_fct"]/randMedian
	if improvement < 0.3 {
		t.Fatalf("median improvement %.0f%%, want approaching 50%%", improvement*100)
	}
}
