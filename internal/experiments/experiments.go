// Package experiments contains one runner per figure of the paper's
// evaluation (section X) plus the A1-A11 design-claim ablations (see
// EXPERIMENTS.md for the full figure and ablation tables). Every figure
// runner builds both systems (SCDA and RandTCP) on the fig. 6 topology,
// drives them with the same generated workload, and reduces the metrics to
// the series the paper plots. Suite-level entry points (RunFigures,
// ReplicateFigure, RunAblations) fan independent runs out across an
// internal/runner pool; same-seed results are identical to serial runs.
//
// Absolute numbers differ from the paper's NS2 testbed; the reproduction
// targets are the curve shapes and the win factors (SCDA ~50% lower
// FCT/AFCT, up to ~50-60% higher average instantaneous throughput, wild
// RandTCP AFCT fluctuations vs smooth SCDA).
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale shrinks the paper's scenario so the full suite runs in CI time;
// PaperScale reproduces the published parameters.
type Scale struct {
	// Duration is the simulated horizon in seconds (the paper runs 100 s).
	Duration float64
	// BWScale multiplies the base bandwidth X (1 = paper).
	BWScale float64
	// ArrivalScale multiplies workload arrival rates (1 = paper).
	ArrivalScale float64
	// Seed drives all randomness.
	Seed uint64
}

// QuickScale completes each figure in a few seconds of wall time while
// preserving load ratios (bandwidth and arrivals scaled together).
func QuickScale() Scale {
	return Scale{Duration: 30, BWScale: 0.1, ArrivalScale: 0.1, Seed: 1}
}

// PaperScale matches section X parameters.
func PaperScale() Scale {
	return Scale{Duration: 100, BWScale: 1, ArrivalScale: 1, Seed: 1}
}

// FigureResult is the regenerated data for one paper figure.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	// Summary holds headline comparisons (mean FCT per system, ratios).
	Summary map[string]float64
}

// baseConfig builds the fig. 6 cluster config for a system with the
// paper's X and K, scaled.
func baseConfig(sys cluster.System, x float64, k float64, sc Scale) cluster.Config {
	cfg := cluster.DefaultConfig(sys)
	cfg.Topology.X = x * sc.BWScale
	cfg.Topology.K = k
	cfg.Seed = sc.Seed
	return cfg
}

// runBoth drives both systems with the same request sequence.
func runBoth(cfgFor func(cluster.System) cluster.Config, gen workload.Generator, sc Scale) (scda, rand *cluster.Metrics, err error) {
	var out [2]*cluster.Metrics
	for i, sys := range []cluster.System{cluster.SCDA, cluster.RandTCP} {
		cfg := cfgFor(sys)
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: building %v: %w", sys, err)
		}
		reqs := gen.Generate(sim.NewRNG(sc.Seed), sc.Duration)
		// allow in-flight transfers to drain past the arrival horizon
		out[i] = c.RunWorkload(reqs, sc.Duration*3)
	}
	return out[0], out[1], nil
}

// videoSpec scales the section X-A1 workload.
func videoSpec(controlFlows bool, sc Scale) workload.VideoSpec {
	spec := workload.DefaultVideoSpec()
	spec.ControlFlows = controlFlows
	spec.ArrivalRate *= sc.ArrivalScale
	return spec
}

func dcSpec(sc Scale) workload.DCSpec {
	spec := workload.DefaultDCSpec()
	spec.ArrivalRate *= sc.ArrivalScale
	return spec
}

func paretoSpec(sc Scale) workload.ParetoSpec {
	spec := workload.DefaultParetoSpec()
	spec.ArrivalRate *= sc.ArrivalScale
	return spec
}

// throughputFigure reduces both systems to the fig. 7/10/17 series.
func throughputFigure(id, title string, scda, rand *cluster.Metrics) FigureResult {
	return FigureResult{
		ID: id, Title: title,
		XLabel: "Simulation time (sec)", YLabel: "Avg. Inst. Thpt (KB/sec)",
		Series: []stats.Series{
			{Name: "SCDA", Points: scda.AvgInstThroughput()},
			{Name: "RandTCP", Points: rand.AvgInstThroughput()},
		},
		Summary: map[string]float64{
			"scda_mean_thpt_kBps": meanY(scda.AvgInstThroughput()),
			"rand_mean_thpt_kBps": meanY(rand.AvgInstThroughput()),
		},
	}
}

// cdfFigure reduces to the fig. 8/11/14/16/18 series.
func cdfFigure(id, title string, scda, rand *cluster.Metrics) FigureResult {
	return FigureResult{
		ID: id, Title: title,
		XLabel: "FCT (sec)", YLabel: "FCT CDF",
		Series: []stats.Series{
			{Name: "SCDA", Points: scda.FCTCDF().Points(64)},
			{Name: "RandTCP", Points: rand.FCTCDF().Points(64)},
		},
		Summary: map[string]float64{
			"scda_median_fct": scda.FCTCDF().Quantile(0.5),
			"rand_median_fct": rand.FCTCDF().Quantile(0.5),
			"scda_mean_fct":   scda.MeanFCT(),
			"rand_mean_fct":   rand.MeanFCT(),
		},
	}
}

// afctFigure reduces to the fig. 9/12/13/15 series with the given size
// bin (bytes) and x-axis unit divisor.
func afctFigure(id, title string, binBytes, xDiv float64, xlabel string, scda, rand *cluster.Metrics) FigureResult {
	scale := func(pts []stats.Point) []stats.Point {
		out := make([]stats.Point, len(pts))
		for i, p := range pts {
			out[i] = stats.Point{X: p.X / xDiv, Y: p.Y}
		}
		return out
	}
	return FigureResult{
		ID: id, Title: title,
		XLabel: xlabel, YLabel: "AFCT (sec)",
		Series: []stats.Series{
			{Name: "SCDA", Points: scale(scda.AFCTBySize(binBytes))},
			{Name: "RandTCP", Points: scale(rand.AFCTBySize(binBytes))},
		},
		Summary: map[string]float64{
			"scda_mean_fct": scda.MeanFCT(),
			"rand_mean_fct": rand.MeanFCT(),
		},
	}
}

func meanY(pts []stats.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.Y
	}
	return s / float64(len(pts))
}

// scenarios memoizes the expensive two-system runs: several figures reduce
// the same scenario (figs. 7-9 share the video run, figs. 17/18 the Pareto
// run), and simulations are deterministic given Scale, so re-running would
// waste minutes at paper scale. The per-key singleflight lets distinct
// scenarios simulate concurrently while duplicate requests wait on the
// first; metrics published through the cache are only ever read (every
// reduction builds fresh state from Metrics.Records), so concurrent figure
// reductions over a shared run are race-free.
var scenarios = runner.NewGroup[scenarioKey, [2]*cluster.Metrics]()

type scenarioKey struct {
	kind string
	k    float64
	sc   Scale
}

// ClearScenarioCache empties the memoized scenario runs; benchmarks call
// it so every figure measurement pays its full simulation cost.
func ClearScenarioCache() {
	scenarios.Clear()
}

func cachedRun(key scenarioKey, run func() (*cluster.Metrics, *cluster.Metrics, error)) (*cluster.Metrics, *cluster.Metrics, error) {
	got, err := scenarios.Do(key, func() ([2]*cluster.Metrics, error) {
		a, b, err := run()
		if err != nil {
			return [2]*cluster.Metrics{}, err
		}
		return [2]*cluster.Metrics{a, b}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return got[0], got[1], nil
}

// videoRun executes the X-A1 scenario once per system (X=500 Mb/s, K=3).
func videoRun(controlFlows bool, sc Scale) (*cluster.Metrics, *cluster.Metrics, error) {
	kind := "video"
	if !controlFlows {
		kind = "videonoctl"
	}
	return cachedRun(scenarioKey{kind: kind, k: 3, sc: sc}, func() (*cluster.Metrics, *cluster.Metrics, error) {
		return runBoth(func(sys cluster.System) cluster.Config {
			return baseConfig(sys, 500e6, 3, sc)
		}, videoSpec(controlFlows, sc), sc)
	})
}

// dcRun executes the X-A2 scenario (X=500 Mb/s, K as given).
func dcRun(k float64, sc Scale) (*cluster.Metrics, *cluster.Metrics, error) {
	return cachedRun(scenarioKey{kind: "dc", k: k, sc: sc}, func() (*cluster.Metrics, *cluster.Metrics, error) {
		return runBoth(func(sys cluster.System) cluster.Config {
			return baseConfig(sys, 500e6, k, sc)
		}, dcSpec(sc), sc)
	})
}

// paretoRun executes the X-B scenario (X=200 Mb/s, K=3).
func paretoRun(sc Scale) (*cluster.Metrics, *cluster.Metrics, error) {
	return cachedRun(scenarioKey{kind: "pareto", k: 3, sc: sc}, func() (*cluster.Metrics, *cluster.Metrics, error) {
		return runBoth(func(sys cluster.System) cluster.Config {
			return baseConfig(sys, 200e6, 3, sc)
		}, paretoSpec(sc), sc)
	})
}

// Fig07 regenerates fig. 7: average instantaneous throughput, video traces
// with control flows.
func Fig07(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(true, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return throughputFigure("fig07", "Video traces with control flows: throughput", s, r), nil
}

// Fig08 regenerates fig. 8: FCT CDF, video traces with control flows.
func Fig08(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(true, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return cdfFigure("fig08", "Video traces with control flows: upload time CDF", s, r), nil
}

// Fig09 regenerates fig. 9: AFCT vs file size (MB bins), video with
// control flows.
func Fig09(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(true, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return afctFigure("fig09", "Video traces with control flows: AFCT",
		1<<20, 1<<20, "File Size (MB)", s, r), nil
}

// Fig10 regenerates fig. 10: throughput, video traces without control.
func Fig10(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(false, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return throughputFigure("fig10", "Video traces without control flows: throughput", s, r), nil
}

// Fig11 regenerates fig. 11: FCT CDF, video without control.
func Fig11(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(false, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return cdfFigure("fig11", "Video traces without control flows: upload time CDF", s, r), nil
}

// Fig12 regenerates fig. 12: AFCT vs size, video without control.
func Fig12(sc Scale) (FigureResult, error) {
	s, r, err := videoRun(false, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return afctFigure("fig12", "Video traces without control flows: AFCT",
		1<<20, 1<<20, "File Size (MB)", s, r), nil
}

// Fig13 regenerates fig. 13: AFCT, datacenter traces, K=1 (KB bins).
func Fig13(sc Scale) (FigureResult, error) {
	s, r, err := dcRun(1, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return afctFigure("fig13", "Datacenter traces K=1: AFCT",
		500e3, 1e3, "File Size (KBytes)", s, r), nil
}

// Fig14 regenerates fig. 14: FCT CDF, datacenter traces, K=1.
func Fig14(sc Scale) (FigureResult, error) {
	s, r, err := dcRun(1, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return cdfFigure("fig14", "Datacenter traces K=1: upload time CDF", s, r), nil
}

// Fig15 regenerates fig. 15: AFCT, datacenter traces, K=3.
func Fig15(sc Scale) (FigureResult, error) {
	s, r, err := dcRun(3, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return afctFigure("fig15", "Datacenter traces K=3: AFCT",
		500e3, 1e3, "File Size (KBytes)", s, r), nil
}

// Fig16 regenerates fig. 16: FCT CDF, datacenter traces, K=3.
func Fig16(sc Scale) (FigureResult, error) {
	s, r, err := dcRun(3, sc)
	if err != nil {
		return FigureResult{}, err
	}
	return cdfFigure("fig16", "Datacenter traces K=3: upload time CDF", s, r), nil
}

// Fig17 regenerates fig. 17: throughput, Pareto sizes + Poisson arrivals.
func Fig17(sc Scale) (FigureResult, error) {
	s, r, err := paretoRun(sc)
	if err != nil {
		return FigureResult{}, err
	}
	return throughputFigure("fig17", "Pareto/Poisson: throughput", s, r), nil
}

// Fig18 regenerates fig. 18: FCT CDF, Pareto sizes + Poisson arrivals.
func Fig18(sc Scale) (FigureResult, error) {
	s, r, err := paretoRun(sc)
	if err != nil {
		return FigureResult{}, err
	}
	return cdfFigure("fig18", "Pareto/Poisson: upload time CDF", s, r), nil
}

// Figure runs one figure by ID ("fig07".."fig18").
func Figure(id string, sc Scale) (FigureResult, error) {
	fn, ok := AllFigures()[id]
	if !ok {
		return FigureResult{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
	return fn(sc)
}

// AllFigures maps figure IDs to runners in paper order.
func AllFigures() map[string]func(Scale) (FigureResult, error) {
	return map[string]func(Scale) (FigureResult, error){
		"fig07": Fig07, "fig08": Fig08, "fig09": Fig09,
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
		"fig13": Fig13, "fig14": Fig14, "fig15": Fig15,
		"fig16": Fig16, "fig17": Fig17, "fig18": Fig18,
	}
}

// FigureIDs returns all figure IDs in paper order.
func FigureIDs() []string {
	return []string{"fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18"}
}

// RunFigures regenerates the given figures (all of them when ids is nil)
// concurrently on the pool (nil = default GOMAXPROCS pool; runner.Serial()
// recovers the plain loop), returning results in input order. Figures that
// share a scenario deduplicate the simulation through the singleflight
// cache, so fanning out never repeats work.
func RunFigures(ids []string, sc Scale, p *runner.Pool) ([]FigureResult, error) {
	if ids == nil {
		ids = FigureIDs()
	}
	return runner.Map(p, len(ids), func(i int) (FigureResult, error) {
		return Figure(ids[i], sc)
	})
}

// ReplicateFigure runs one figure at reps seeds derived from sc.Seed,
// fanned out on the pool, and aggregates the replicate series into mean
// curves with 95% CI error bars (stats.Series.YErr). Summary values are
// replaced by their replicate means, with a "<key>_ci95" half-width
// companion per key and a "replicates" count. Callers that replicate many
// figures at once should instead flatten the (figure, seed) grid onto one
// pool with runner.Map + AggregateFigure, as cmd/scda-bench does, so both
// axes fan out without nesting Map calls.
func ReplicateFigure(id string, sc Scale, reps int, p *runner.Pool) (FigureResult, error) {
	if reps <= 0 {
		reps = 1
	}
	runs, err := runner.Replicate(p, sc.Seed, reps, func(rep int, seed uint64) (FigureResult, error) {
		rsc := sc
		rsc.Seed = seed
		return Figure(id, rsc)
	})
	if err != nil {
		return FigureResult{}, err
	}
	return AggregateFigure(runs), nil
}

// AggregateFigure reduces replicate runs of the same figure (one per seed)
// to a single result: mean series with 95% CI error bars, mean summary
// values with "<key>_ci95" companions, and a "replicates" count. Labels
// are taken from the first run. Panics on an empty slice.
func AggregateFigure(runs []FigureResult) FigureResult {
	out := runs[0]
	allSeries := make([][]stats.Series, len(runs))
	for i, r := range runs {
		allSeries[i] = r.Series
	}
	out.Series = stats.AggregateSeries(allSeries)
	summary := map[string]float64{"replicates": float64(len(runs))}
	for k := range runs[0].Summary {
		vals := make([]float64, 0, len(runs))
		for _, r := range runs {
			vals = append(vals, r.Summary[k])
		}
		mean, ci := stats.MeanCI(vals)
		summary[k] = mean
		summary[k+"_ci95"] = ci
	}
	out.Summary = summary
	return out
}
