package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SweepResult is a parameter sweep over both systems.
type SweepResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Series[0] = SCDA, Series[1] = RandTCP; X = swept parameter,
	// Y = mean FCT.
	Series []stats.Series
}

// baselineClients anchors the client-scale sweep's per-client demand: the
// default DC workload spec spreads its arrival rate across this many
// clients, so a population of n keeps demand fixed per client by scaling
// total arrivals by n/baselineClients. Derived from the spec rather than
// hardcoded so a change to the default cannot silently skew the sweep.
var baselineClients = workload.DefaultDCSpec().Clients

// ClientScaleSweep varies the client population — the paper's fig. 6
// topology carries "n × 163" clients with n = 10 and n = 100 — and records
// mean FCT for both systems at fixed per-client demand. SCDA's advantage
// should persist (or grow) as contention rises, since random placement
// collides more often at scale. Points run concurrently on the pool (nil =
// default); each (population, system) cell derives its own RNG from
// sc.Seed, so results match a serial sweep exactly.
func ClientScaleSweep(clientCounts []int, sc Scale, p *runner.Pool) (SweepResult, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{10, 20, 40, 80}
	}
	res := SweepResult{
		ID:     "sweep-clients",
		Title:  "mean FCT vs client population (fixed per-client demand)",
		XLabel: "clients",
		YLabel: "mean FCT (sec)",
		Series: []stats.Series{{Name: "SCDA"}, {Name: "RandTCP"}},
	}
	for _, n := range clientCounts {
		if n <= 0 {
			return res, fmt.Errorf("experiments: client count %d", n)
		}
	}
	systems := []cluster.System{cluster.SCDA, cluster.RandTCP}
	cells, err := runner.Map(p, len(clientCounts)*len(systems), func(i int) (stats.Point, error) {
		n := clientCounts[i/len(systems)]
		sys := systems[i%len(systems)]
		cfg := baseConfig(sys, 500e6, 3, sc)
		cfg.Topology.Clients = n
		c, err := cluster.New(cfg)
		if err != nil {
			return stats.Point{}, err
		}
		spec := dcSpec(sc)
		spec.Clients = n
		// fixed per-client demand: total arrivals scale with n
		spec.ArrivalRate = spec.ArrivalRate * float64(n) / float64(baselineClients)
		reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
		m := c.RunWorkload(reqs, sc.Duration*3)
		return stats.Point{X: float64(n), Y: m.MeanFCT()}, nil
	})
	if err != nil {
		return res, err
	}
	for i, pt := range cells {
		res.Series[i%len(systems)].Points = append(res.Series[i%len(systems)].Points, pt)
	}
	return res, nil
}

// NNSScaleSweep varies the name-node count and records the hottest node's
// metadata load, quantifying the paper's multiple-NNS scalability claim as
// a curve (extends ablation A5). Points run concurrently on the pool.
func NNSScaleSweep(nnsCounts []int, sc Scale, p *runner.Pool) (SweepResult, error) {
	if len(nnsCounts) == 0 {
		nnsCounts = []int{1, 2, 4, 8}
	}
	res := SweepResult{
		ID:     "sweep-nns",
		Title:  "peak per-NNS metadata load vs name-node count",
		XLabel: "name nodes",
		YLabel: "peak requests at one NNS",
		Series: []stats.Series{{Name: "SCDA"}},
	}
	for _, n := range nnsCounts {
		if n <= 0 {
			return res, fmt.Errorf("experiments: NNS count %d", n)
		}
	}
	pts, err := runner.Map(p, len(nnsCounts), func(i int) (stats.Point, error) {
		n := nnsCounts[i]
		cfg := cluster.DefaultConfig(cluster.SCDA)
		cfg.Seed = sc.Seed
		cfg.NumNNS = n
		c, err := cluster.New(cfg)
		if err != nil {
			return stats.Point{}, err
		}
		reqs := dcSpec(sc).Generate(sim.NewRNG(sc.Seed), sc.Duration)
		c.RunWorkload(reqs, sc.Duration*2)
		peak := int64(0)
		for _, l := range c.FES.LoadByNNS() {
			if l > peak {
				peak = l
			}
		}
		return stats.Point{X: float64(n), Y: float64(peak)}, nil
	})
	if err != nil {
		return res, err
	}
	res.Series[0].Points = pts
	return res, nil
}
