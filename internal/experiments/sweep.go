package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SweepResult is a parameter sweep over both systems.
type SweepResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Series[0] = SCDA, Series[1] = RandTCP; X = swept parameter,
	// Y = mean FCT.
	Series []stats.Series
}

// ClientScaleSweep varies the client population — the paper's fig. 6
// topology carries "n × 163" clients with n = 10 and n = 100 — and records
// mean FCT for both systems at fixed per-client demand. SCDA's advantage
// should persist (or grow) as contention rises, since random placement
// collides more often at scale.
func ClientScaleSweep(clientCounts []int, sc Scale) (SweepResult, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{10, 20, 40, 80}
	}
	res := SweepResult{
		ID:     "sweep-clients",
		Title:  "mean FCT vs client population (fixed per-client demand)",
		XLabel: "clients",
		YLabel: "mean FCT (sec)",
		Series: []stats.Series{{Name: "SCDA"}, {Name: "RandTCP"}},
	}
	for _, n := range clientCounts {
		if n <= 0 {
			return res, fmt.Errorf("experiments: client count %d", n)
		}
		for si, sys := range []cluster.System{cluster.SCDA, cluster.RandTCP} {
			cfg := baseConfig(sys, 500e6, 3, sc)
			cfg.Topology.Clients = n
			c, err := cluster.New(cfg)
			if err != nil {
				return res, err
			}
			spec := dcSpec(sc)
			spec.Clients = n
			// fixed per-client demand: total arrivals scale with n
			spec.ArrivalRate = spec.ArrivalRate * float64(n) / 40
			reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
			m := c.RunWorkload(reqs, sc.Duration*3)
			res.Series[si].Points = append(res.Series[si].Points,
				stats.Point{X: float64(n), Y: m.MeanFCT()})
		}
	}
	return res, nil
}

// NNSScaleSweep varies the name-node count and records the hottest node's
// metadata load, quantifying the paper's multiple-NNS scalability claim as
// a curve (extends ablation A5).
func NNSScaleSweep(nnsCounts []int, sc Scale) (SweepResult, error) {
	if len(nnsCounts) == 0 {
		nnsCounts = []int{1, 2, 4, 8}
	}
	res := SweepResult{
		ID:     "sweep-nns",
		Title:  "peak per-NNS metadata load vs name-node count",
		XLabel: "name nodes",
		YLabel: "peak requests at one NNS",
		Series: []stats.Series{{Name: "SCDA"}},
	}
	for _, n := range nnsCounts {
		if n <= 0 {
			return res, fmt.Errorf("experiments: NNS count %d", n)
		}
		cfg := cluster.DefaultConfig(cluster.SCDA)
		cfg.Seed = sc.Seed
		cfg.NumNNS = n
		c, err := cluster.New(cfg)
		if err != nil {
			return res, err
		}
		reqs := dcSpec(sc).Generate(sim.NewRNG(sc.Seed), sc.Duration)
		c.RunWorkload(reqs, sc.Duration*2)
		peak := int64(0)
		for _, l := range c.FES.LoadByNNS() {
			if l > peak {
				peak = l
			}
		}
		res.Series[0].Points = append(res.Series[0].Points,
			stats.Point{X: float64(n), Y: float64(peak)})
	}
	return res, nil
}
