package experiments

import (
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/ratealloc"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// AblationOpenFlowSJF (A9) validates section IV-B: the per-flow
// packet-count queue discipline (the OpenFlow shortest-job-first
// approximation) cuts short-flow completion time when mice share a
// bottleneck with elephants, compared with plain FIFO.
func AblationOpenFlowSJF(sc Scale) (AblationResult, error) {
	run := func(disc netsim.QueueDiscipline) (float64, error) {
		g := topology.NewGraph()
		a := g.AddNode(topology.Host, "a", 0)
		sw := g.AddNode(topology.Switch, "s", 1)
		b := g.AddNode(topology.Host, "b", 0)
		g.AddDuplex(a, sw, 20e6, 2e-3, 1)
		g.AddDuplex(sw, b, 20e6, 2e-3, 1)
		s := sim.New()
		cfg := netsim.DefaultConfig()
		cfg.Discipline = disc
		net := netsim.New(s, g, cfg)
		sa, sb := transport.NewStack(net, a), transport.NewStack(net, b)
		// two elephants + a stream of mice over TCP (the discipline acts
		// on the switch regardless of endpoint rate control)
		var ids transport.FlowIDSource
		for i := 0; i < 2; i++ {
			tcp.Start(s, net, sa, sb, &tcp.Flow{ID: ids.Next(), Src: a, Dst: b, Size: 20_000_000}, tcp.DefaultConfig())
		}
		miceFCT := 0.0
		miceDone := 0
		const nMice = 20
		for i := 0; i < nMice; i++ {
			at := 1 + float64(i)*0.25
			s.At(at, func() {
				tcp.Start(s, net, sa, sb, &tcp.Flow{
					ID: ids.Next(), Src: a, Dst: b, Size: 20_000,
					OnComplete: func(fct sim.Time) { miceFCT += fct; miceDone++ },
				}, tcp.DefaultConfig())
			})
		}
		s.RunUntil(120)
		if miceDone == 0 {
			return 0, nil
		}
		return miceFCT / float64(miceDone), nil
	}
	fifo, err := run(netsim.FIFO)
	if err != nil {
		return AblationResult{}, err
	}
	sjf, err := run(netsim.SmallestFlowFirst)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		ID:    "A9",
		Title: "OpenFlow per-flow packet-count scheduling (IV-B) helps mice",
		Values: map[string]float64{
			"mice_mean_fct_fifo": fifo,
			"mice_mean_fct_sjf":  sjf,
			"speedup":            fifo / sjf,
		},
		Passed:  sjf > 0 && sjf < fifo,
		Details: "packets of low-count flows overtake elephants at the switch",
	}, nil
}

// AblationSchedulerSJF (A10) validates the adaptive priority route to SJF
// (section IV-A): weighting flows inversely by remaining size through the
// allocation plane cuts short-flow FCT versus neutral weights.
func AblationSchedulerSJF(sc Scale) (AblationResult, error) {
	run := func(useSJF bool) (shortMean float64, err error) {
		g := topology.NewGraph()
		a := g.AddNode(topology.Host, "a", 0)
		sw := g.AddNode(topology.Switch, "s", 1)
		b := g.AddNode(topology.Host, "b", 0)
		l1 := g.AddDuplex(a, sw, 50e6, 2e-3, 1)
		l2 := g.AddDuplex(sw, b, 50e6, 2e-3, 1)
		path := []topology.LinkID{l1, l2}
		ctrl, err := ratealloc.NewController(g, zeroReader{}, ratealloc.DefaultParams())
		if err != nil {
			return 0, err
		}
		sched := scheduler.New(ctrl)
		// 2 elephants + 6 mice sharing the path in the fluid allocation
		type job struct {
			id   ratealloc.FlowID
			bits float64
			sjf  *scheduler.SJF
		}
		var jobs []*job
		mk := func(id int, bits float64) {
			j := &job{id: ratealloc.FlowID(id), bits: bits}
			if err := ctrl.Register(&ratealloc.Flow{ID: j.id, Path: path}); err != nil {
				panic(err)
			}
			if useSJF {
				j.sjf = &scheduler.SJF{Scale: 1 << 20}
				j.sjf.SetRemaining(bits / 8)
				sched.Attach(j.id, j.sjf)
			}
			jobs = append(jobs, j)
		}
		for i := 0; i < 2; i++ {
			mk(i+1, 400e6) // 50 MB elephants
		}
		for i := 0; i < 6; i++ {
			mk(i+10, 4e6) // 500 KB mice
		}
		// fluid execution: drain each job at its allocated rate per τ
		tau := ctrl.Params.Tau
		var shortSum float64
		shortDone := 0
		for step := 0; step < 4000 && shortDone < 6; step++ {
			now := float64(step) * tau
			ctrl.Tick(now)
			sched.Step(now)
			for _, j := range jobs {
				if j.bits <= 0 {
					continue
				}
				j.bits -= ctrl.FlowRate(j.id) * tau
				if j.sjf != nil {
					j.sjf.SetRemaining(j.bits / 8)
				}
				if j.bits <= 0 {
					ctrl.Unregister(j.id)
					sched.Detach(j.id)
					if j.id >= 10 {
						shortSum += now
						shortDone++
					}
				}
			}
		}
		if shortDone == 0 {
			return 0, nil
		}
		return shortSum / float64(shortDone), nil
	}
	neutral, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	sjf, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		ID:    "A10",
		Title: "adaptive priorities realise SJF through the allocator (IV-A)",
		Values: map[string]float64{
			"short_mean_fct_neutral": neutral,
			"short_mean_fct_sjf":     sjf,
			"speedup":                neutral / sjf,
		},
		Passed:  sjf > 0 && sjf < neutral,
		Details: "℘ ∝ 1/remaining gives mice most of the bottleneck until they finish",
	}, nil
}

// AblationFailureRecovery (A11) exercises the monitoring plane's failure
// role: under a live mixed read/write workload, a server failure is
// followed by automatic re-replication, and subsequent reads of its
// content still complete.
func AblationFailureRecovery(sc Scale) (AblationResult, error) {
	cfg := cluster.DefaultConfig(cluster.SCDA)
	cfg.Seed = sc.Seed
	cfg.Replicate = true
	c, err := cluster.New(cfg)
	if err != nil {
		return AblationResult{}, err
	}
	spec := workload.DefaultMixedSpec()
	spec.WriteRate *= sc.ArrivalScale * 10 // keep a few writes even at tiny scales
	reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
	// fail the busiest server halfway through the workload
	c.Sim.At(sc.Duration/2, func() {
		var victim topology.NodeID = topology.None
		best := 0
		for _, s := range c.TT.Servers {
			if n := c.FES.BlockServer(s).NumBlocks(); n > best {
				victim, best = s, n
			}
		}
		if victim != topology.None {
			_ = c.FailServer(victim)
		}
	})
	m := c.RunWorkload(reqs, sc.Duration*3)
	completionFrac := 0.0
	if m.Started > 0 {
		completionFrac = float64(m.Completed) / float64(m.Started)
	}
	// Contents whose upload was still in flight at the failure instant
	// have no second copy yet and are legitimately unrecoverable from
	// inside the cloud (the client retries); allow a small number of
	// such casualties but no losses among replicated blocks.
	lostBudget := int64(float64(m.Started)*0.02) + 1
	return AblationResult{
		ID:    "A11",
		Title: "failure detection and re-replication under live load",
		Values: map[string]float64{
			"started":         float64(m.Started),
			"completed":       float64(m.Completed),
			"re_replicated":   float64(m.ReReplicated),
			"lost_blocks":     float64(m.LostBlocks),
			"completion_frac": completionFrac,
		},
		Passed:  m.ReReplicated > 0 && m.LostBlocks <= lostBudget && completionFrac > 0.9,
		Details: "replicated content survives a server failure (mid-upload blocks need client retry); reads continue",
	}, nil
}
