package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/flowsim"
	"repro/internal/netsim"
	"repro/internal/ratealloc"
	"repro/internal/runner"
	"repro/internal/scdatp"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// AblationResult is a named set of scalar findings.
type AblationResult struct {
	ID      string
	Title   string
	Values  map[string]float64
	Passed  bool
	Details string
}

type zeroReader struct{}

func (zeroReader) QueueBits(topology.LinkID) float64   { return 0 }
func (zeroReader) ArrivedBits(topology.LinkID) float64 { return 0 }

// AblationMaxMin (A1) compares the converged SCDA eq. 2/3 allocation
// against the progressive-filling max-min oracle on random flow sets over
// the fig. 6 tree. Pass criterion: ≤5% mean relative error.
func AblationMaxMin(sc Scale) (AblationResult, error) {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		return AblationResult{}, err
	}
	routes := topology.ComputeRouting(tt.Graph)
	ctrl, err := ratealloc.NewController(tt.Graph, zeroReader{}, ratealloc.DefaultParams())
	if err != nil {
		return AblationResult{}, err
	}
	rng := sim.NewRNG(sc.Seed)
	const nFlows = 60
	var fluid []*flowsim.Flow
	for i := 0; i < nFlows; i++ {
		var src, dst topology.NodeID
		if i%2 == 0 {
			src = tt.Clients[rng.Intn(len(tt.Clients))]
			dst = tt.Servers[rng.Intn(len(tt.Servers))]
		} else {
			src = tt.Servers[rng.Intn(len(tt.Servers))]
			dst = tt.Servers[rng.Intn(len(tt.Servers))]
		}
		if src == dst {
			continue
		}
		path, err := routes.Path(src, dst, uint64(i))
		if err != nil {
			return AblationResult{}, err
		}
		if err := ctrl.Register(&ratealloc.Flow{ID: ratealloc.FlowID(i + 1), Path: path}); err != nil {
			return AblationResult{}, err
		}
		fluid = append(fluid, &flowsim.Flow{ID: int64(i + 1), Path: path, Size: 1, Weight: 1})
	}
	for i := 0; i < 100; i++ {
		ctrl.Tick(float64(i) * ctrl.Params.Tau)
	}
	// oracle over α-scaled capacities (SCDA targets αC, not C)
	caps := make([]float64, len(tt.Graph.Links))
	for i, l := range tt.Graph.Links {
		caps[i] = ctrl.Params.Alpha * l.Capacity
	}
	// an owned Solver instead of the pooled MaxMinRates wrapper: the
	// ablation is the only caller here, so reusing one solver keeps its
	// scratch warm without round-tripping sync.Pool
	flowsim.NewSolver(len(caps)).Solve(fluid, caps)
	var sumErr float64
	var worst float64
	n := 0
	for _, f := range fluid {
		got := ctrl.FlowRate(ratealloc.FlowID(f.ID))
		if f.Rate <= 0 {
			continue
		}
		e := math.Abs(got-f.Rate) / f.Rate
		sumErr += e
		if e > worst {
			worst = e
		}
		n++
	}
	meanErr := sumErr / float64(n)
	return AblationResult{
		ID:    "A1",
		Title: "eq. 2/3 allocation vs progressive-filling max-min oracle",
		Values: map[string]float64{
			"flows":          float64(n),
			"mean_rel_error": meanErr,
			"max_rel_error":  worst,
		},
		Passed:  meanErr <= 0.05,
		Details: "SCDA's iterative N̂=S/R scheme should converge to the weighted max-min allocation",
	}, nil
}

// AblationSLA (A2) measures SLA-violation detection latency: reservations
// oversubscribe a link at a known instant; detection must occur within one
// control interval τ, and mitigation must raise capacity.
func AblationSLA(sc Scale) (AblationResult, error) {
	cfg := cluster.DefaultConfig(cluster.SCDA)
	cfg.Seed = sc.Seed
	c, err := cluster.New(cfg)
	if err != nil {
		return AblationResult{}, err
	}
	c.MitigateViolations = true
	var detectedAt = -1.0
	c.OnViolation = func(v ratealloc.Violation) {
		if detectedAt < 0 {
			detectedAt = v.Time
		}
	}
	const onset = 1.0
	srv := c.TT.Servers[0]
	up := c.TT.UplinkOf[srv]
	c.Sim.At(onset, func() {
		for i := 0; i < 3; i++ {
			_ = c.Ctrl.Register(&ratealloc.Flow{
				ID:      ratealloc.FlowID(9000 + i),
				Path:    []topology.LinkID{up},
				MinRate: 0.5 * cfg.Topology.X,
			})
		}
	})
	c.Sim.RunUntil(onset + 1)
	latency := detectedAt - onset
	capAfter := c.Ctrl.Link(up).Capacity
	return AblationResult{
		ID:    "A2",
		Title: "realtime SLA violation detection and mitigation",
		Values: map[string]float64{
			"detection_latency_sec": latency,
			"tau_sec":               cfg.Alloc.Tau,
			"capacity_after":        capAfter,
			"capacity_before":       cfg.Topology.X,
		},
		Passed:  detectedAt >= 0 && latency <= 2*cfg.Alloc.Tau && capAfter > cfg.Topology.X,
		Details: "detection within one control interval; spare capacity activated",
	}, nil
}

// AblationPriority (A3) verifies eq. 6: flows with weights 1..4 on one
// link achieve proportional rates.
func AblationPriority(sc Scale) (AblationResult, error) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	sw := g.AddNode(topology.Switch, "s", 1)
	b := g.AddNode(topology.Host, "b", 0)
	l1 := g.AddDuplex(a, sw, 100e6, 1e-3, 1)
	l2 := g.AddDuplex(sw, b, 1e9, 1e-3, 1)
	ctrl, err := ratealloc.NewController(g, zeroReader{}, ratealloc.DefaultParams())
	if err != nil {
		return AblationResult{}, err
	}
	path := []topology.LinkID{l1, l2}
	for w := 1; w <= 4; w++ {
		if err := ctrl.Register(&ratealloc.Flow{ID: ratealloc.FlowID(w), Path: path, Priority: float64(w)}); err != nil {
			return AblationResult{}, err
		}
	}
	for i := 0; i < 60; i++ {
		ctrl.Tick(0)
	}
	base := ctrl.FlowRate(1)
	vals := map[string]float64{"rate_w1": base}
	worst := 0.0
	for w := 2; w <= 4; w++ {
		r := ctrl.FlowRate(ratealloc.FlowID(w))
		vals[fmt.Sprintf("rate_w%d", w)] = r
		e := math.Abs(r/base-float64(w)) / float64(w)
		if e > worst {
			worst = e
		}
	}
	vals["max_ratio_error"] = worst
	return AblationResult{
		ID:      "A3",
		Title:   "priority weights achieve proportional rates (eq. 6)",
		Values:  vals,
		Passed:  worst <= 0.05,
		Details: "rate(w)/rate(1) ≈ w for ℘ ∈ {2,3,4}",
	}, nil
}

// AblationReservation (A4) verifies section IV-C carve-outs.
func AblationReservation(sc Scale) (AblationResult, error) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	l := g.AddDuplex(a, b, 100e6, 1e-3, 1)
	ctrl, err := ratealloc.NewController(g, zeroReader{}, ratealloc.DefaultParams())
	if err != nil {
		return AblationResult{}, err
	}
	path := []topology.LinkID{l}
	ctrl.Register(&ratealloc.Flow{ID: 1, Path: path, MinRate: 40e6})
	ctrl.Register(&ratealloc.Flow{ID: 2, Path: path})
	for i := 0; i < 60; i++ {
		ctrl.Tick(0)
	}
	r1, r2 := ctrl.FlowRate(1), ctrl.FlowRate(2)
	shared := 0.95*100e6 - 40e6
	e1 := math.Abs(r1-(40e6+shared/2)) / (40e6 + shared/2)
	e2 := math.Abs(r2-shared/2) / (shared / 2)
	return AblationResult{
		ID:    "A4",
		Title: "explicit minimum-rate reservations (IV-C)",
		Values: map[string]float64{
			"reserved_flow_rate": r1, "plain_flow_rate": r2,
			"reserved_err": e1, "plain_err": e2,
		},
		Passed:  r1 >= 40e6 && e1 < 0.05 && e2 < 0.05,
		Details: "reserved flow gets Mⱼ plus an equal share of the remainder",
	}, nil
}

// AblationNNS (A5) quantifies the multiple-NNS feature: peak per-NNS
// metadata load with 1 vs 4 name nodes over the same request stream.
func AblationNNS(sc Scale) (AblationResult, error) {
	load := func(numNNS int) (float64, error) {
		cfg := cluster.DefaultConfig(cluster.SCDA)
		cfg.Seed = sc.Seed
		cfg.NumNNS = numNNS
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		spec := dcSpec(sc)
		reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
		c.RunWorkload(reqs, sc.Duration*2)
		peak := int64(0)
		for _, l := range c.FES.LoadByNNS() {
			if l > peak {
				peak = l
			}
		}
		return float64(peak), nil
	}
	single, err := load(1)
	if err != nil {
		return AblationResult{}, err
	}
	multi, err := load(4)
	if err != nil {
		return AblationResult{}, err
	}
	ratio := multi / single
	return AblationResult{
		ID:    "A5",
		Title: "multiple NNS vs single-NNS metadata bottleneck",
		Values: map[string]float64{
			"peak_load_1nns": single,
			"peak_load_4nns": multi,
			"peak_ratio":     ratio,
		},
		Passed:  ratio < 0.5,
		Details: "4 name nodes should cut the hottest node's metadata load to ≈ 1/4",
	}, nil
}

// AblationPower (A6) compares total energy with and without power-aware
// selection under heterogeneous server power profiles.
func AblationPower(sc Scale) (AblationResult, error) {
	run := func(aware bool) (float64, error) {
		cfg := cluster.DefaultConfig(cluster.SCDA)
		cfg.Seed = sc.Seed
		cfg.HeterogeneousPower = true
		cfg.PowerAware = aware
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		spec := dcSpec(sc)
		reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
		c.RunWorkload(reqs, sc.Duration*2)
		c.Power.AccrueAll(c.Sim.Now())
		return c.Power.TotalEnergy(), nil
	}
	plain, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	aware, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		ID:    "A6",
		Title: "power-aware selection (R̂/P) vs rate-only selection",
		Values: map[string]float64{
			"energy_plain_J": plain,
			"energy_aware_J": aware,
			"saving_frac":    (plain - aware) / plain,
		},
		// dynamic (utilisation-dependent) energy is a small slice of
		// total draw, so any non-negative saving passes
		Passed:  aware <= plain*1.01,
		Details: "placement shifted toward efficient servers must not cost energy",
	}, nil
}

// AblationSimplified (A7) compares the eq. 5 (arrival-rate) controller
// against the full eq. 2/3 controller on the same workload.
func AblationSimplified(sc Scale) (AblationResult, error) {
	run := func(mode ratealloc.Mode) (float64, error) {
		cfg := cluster.DefaultConfig(cluster.SCDA)
		cfg.Seed = sc.Seed
		cfg.Alloc.Mode = mode
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		spec := dcSpec(sc)
		reqs := spec.Generate(sim.NewRNG(sc.Seed), sc.Duration)
		m := c.RunWorkload(reqs, sc.Duration*2)
		return m.MeanFCT(), nil
	}
	full, err := run(ratealloc.Full)
	if err != nil {
		return AblationResult{}, err
	}
	simple, err := run(ratealloc.Simplified)
	if err != nil {
		return AblationResult{}, err
	}
	ratio := simple / full
	return AblationResult{
		ID:    "A7",
		Title: "simplified rate metric (eq. 5) vs full (eq. 2/3)",
		Values: map[string]float64{
			"mean_fct_full":       full,
			"mean_fct_simplified": simple,
			"fct_ratio":           ratio,
		},
		Passed:  ratio < 2.0,
		Details: "the stateless Λ-based variant should stay within 2× of the full scheme",
	}, nil
}

// AblationTopology (A8) exercises section IX: SCDA's path-based max/min
// allocation and transport on non-tree fabrics — a k=4 fat-tree and a VL2
// Clos — with every flow completing and negligible loss.
func AblationTopology(sc Scale) (AblationResult, error) {
	ft, err := ablationOnFabric(func() (*topology.Graph, []topology.NodeID, error) {
		return topology.FatTree(4, 1e9*sc.BWScale, 1e-3)
	})
	if err != nil {
		return AblationResult{}, err
	}
	vl2, err := ablationOnFabric(func() (*topology.Graph, []topology.NodeID, error) {
		return topology.VL2(4, 2, 2, 4, 1e9*sc.BWScale, 10e9*sc.BWScale, 1e-3)
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		ID:    "A8",
		Title: "general (non-tree) topology support: fat-tree + VL2 (section IX)",
		Values: map[string]float64{
			"fattree_flows":     ft.flows,
			"fattree_completed": ft.completed,
			"fattree_drops":     ft.drops,
			"vl2_flows":         vl2.flows,
			"vl2_completed":     vl2.completed,
			"vl2_drops":         vl2.drops,
		},
		Passed: ft.completed == ft.flows && vl2.completed == vl2.flows &&
			ft.drops < 100 && vl2.drops < 100,
		Details: "path-based max/min rates work without a switch tree",
	}, nil
}

type fabricOutcome struct {
	flows, completed, drops float64
}

func ablationOnFabric(build func() (*topology.Graph, []topology.NodeID, error)) (fabricOutcome, error) {
	g, hosts, err := build()
	if err != nil {
		return fabricOutcome{}, err
	}
	s := sim.New()
	net := netsim.New(s, g, netsim.DefaultConfig())
	ctrl, err := ratealloc.NewController(g, net, ratealloc.DefaultParams())
	if err != nil {
		return fabricOutcome{}, err
	}
	s.NewTicker(ctrl.Params.Tau, func() { ctrl.Tick(s.Now()) })
	stacks := map[topology.NodeID]*transport.Stack{}
	stackFor := func(n topology.NodeID) *transport.Stack {
		if st, ok := stacks[n]; ok {
			return st
		}
		st := transport.NewStack(net, n)
		stacks[n] = st
		return st
	}
	var ids transport.FlowIDSource
	done := 0
	const nFlows = 32
	for i := 0; i < nFlows; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+len(hosts)/2)%len(hosts)]
		id := ids.Next()
		path, err := net.Routes.Path(src, dst, transport.Hash(id))
		if err != nil {
			return fabricOutcome{}, err
		}
		if err := ctrl.Register(&ratealloc.Flow{ID: id, Path: path}); err != nil {
			return fabricOutcome{}, err
		}
		idc := id
		scdatp.Start(s, net, ctrl, stackFor(src), stackFor(dst), &scdatp.Flow{
			ID: idc, Src: src, Dst: dst, Size: 2_000_000,
			OnComplete: func(fct sim.Time) { ctrl.Unregister(idc); done++ },
		}, scdatp.DefaultConfig())
	}
	s.RunUntil(600)
	return fabricOutcome{
		flows:     nFlows,
		completed: float64(done),
		drops:     float64(net.TotalDrops),
	}, nil
}

// RunAblations runs every ablation concurrently on the pool (nil = default
// GOMAXPROCS pool; runner.Serial() for a plain loop), returning results in
// A1..A11 order. Each ablation builds its entire simulation from sc.Seed,
// so parallel results are identical to serial ones.
func RunAblations(sc Scale, p *runner.Pool) ([]AblationResult, error) {
	fns := []func(Scale) (AblationResult, error){
		AblationMaxMin, AblationSLA, AblationPriority, AblationReservation,
		AblationNNS, AblationPower, AblationSimplified, AblationTopology,
		AblationOpenFlowSJF, AblationSchedulerSJF, AblationFailureRecovery,
	}
	return runner.Map(p, len(fns), func(i int) (AblationResult, error) {
		return fns[i](sc)
	})
}

// AllAblations runs every ablation in order on the default pool.
func AllAblations(sc Scale) ([]AblationResult, error) {
	return RunAblations(sc, nil)
}
