package experiments

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/runner"
)

// snapshot renders a figure result to a canonical string so serial and
// parallel runs can be compared byte for byte.
func snapshot(f FigureResult) string {
	s := fmt.Sprintf("%s|%s|%s|%s\n", f.ID, f.Title, f.XLabel, f.YLabel)
	for _, ser := range f.Series {
		s += fmt.Sprintf("%s:%v yerr=%v\n", ser.Name, ser.Points, ser.YErr)
	}
	keys := make([]string, 0, len(f.Summary))
	for k := range f.Summary {
		keys = append(keys, k)
	}
	// map order is random; canonicalise
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		s += fmt.Sprintf("%s=%v\n", k, f.Summary[k])
	}
	return s
}

// TestParallelFiguresDeterministic is the runner's core contract: the full
// figure suite through an 8-wide pool is byte-identical to a serial run at
// the same seed, with the scenario cache cold in both cases.
func TestParallelFiguresDeterministic(t *testing.T) {
	sc := tinyScale()

	ClearScenarioCache()
	serial, err := RunFigures(nil, sc, runner.Serial())
	if err != nil {
		t.Fatal(err)
	}
	ClearScenarioCache()
	parallel, err := RunFigures(nil, sc, runner.New(8))
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("serial %d figures, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := snapshot(serial[i]), snapshot(parallel[i])
		if s != p {
			t.Fatalf("figure %s diverges between serial and parallel runs:\n--- serial\n%s--- parallel\n%s",
				serial[i].ID, s, p)
		}
	}
}

// TestConcurrentFiguresShareScenarioCache hammers the singleflight from
// many goroutines requesting overlapping figures (figs. 7-9 share one
// scenario) — under -race this proves the cache publication and the shared
// Metrics reductions are safe, and the pointer equality proves duplicate
// requests really did coalesce onto one simulation.
func TestConcurrentFiguresShareScenarioCache(t *testing.T) {
	sc := tinyScale()
	ClearScenarioCache()
	ids := []string{"fig07", "fig08", "fig09", "fig07", "fig08", "fig09"}
	var wg sync.WaitGroup
	results := make([]FigureResult, len(ids))
	errs := make([]error, len(ids))
	for i := range ids {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Figure(ids[i], sc)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", ids[i], err)
		}
	}
	for i := 0; i < 3; i++ {
		a, b := snapshot(results[i]), snapshot(results[i+3])
		if a != b {
			t.Fatalf("duplicate concurrent %s runs disagree", ids[i])
		}
	}
	// 3 figures over 1 shared scenario: exactly one cache entry
	if n := scenarios.Len(); n != 1 {
		t.Fatalf("scenario cache holds %d entries, want 1 (singleflight failed to coalesce)", n)
	}
}

func TestReplicateFigure(t *testing.T) {
	sc := tinyScale()
	sc.Duration = 5
	ClearScenarioCache()
	f, err := ReplicateFigure("fig13", sc, 3, runner.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if f.Summary["replicates"] != 3 {
		t.Fatalf("replicates = %v", f.Summary["replicates"])
	}
	if _, ok := f.Summary["scda_mean_fct_ci95"]; !ok {
		t.Fatalf("missing CI companion key in %v", f.Summary)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		if len(s.YErr) != len(s.Points) {
			t.Fatalf("series %s: %d error bars for %d points", s.Name, len(s.YErr), len(s.Points))
		}
	}
	// replication is itself deterministic
	ClearScenarioCache()
	again, err := ReplicateFigure("fig13", sc, 3, runner.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if snapshot(f) != snapshot(again) {
		t.Fatal("replicated figure differs between parallel and serial execution")
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	sc := tinyScale()
	sc.Duration = 5
	counts := []int{5, 10}
	serial, err := ClientScaleSweep(counts, sc, runner.Serial())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ClientScaleSweep(counts, sc, runner.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", parallel) {
		t.Fatalf("sweep diverges:\nserial   %v\nparallel %v", serial, parallel)
	}
}

func TestRunAblationsParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	serial, err := RunAblations(sc, runner.Serial())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAblations(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d ablations, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID || serial[i].Passed != parallel[i].Passed {
			t.Fatalf("ablation %s diverges", serial[i].ID)
		}
		if fmt.Sprintf("%v", serial[i].Values) == "" {
			t.Fatal("empty values")
		}
		for k, v := range serial[i].Values {
			if pv, ok := parallel[i].Values[k]; !ok || pv != v {
				// NaN == NaN is false; treat both-NaN as equal
				if !(v != v && pv != pv) {
					t.Fatalf("%s: %s = %v serial vs %v parallel", serial[i].ID, k, v, pv)
				}
			}
		}
	}
}

// TestBaselineClientsDerivation guards the satellite fix: the sweep's
// per-client-demand anchor must track the default DC spec, not a literal.
func TestBaselineClientsDerivation(t *testing.T) {
	if baselineClients != dcSpec(tinyScale()).Clients {
		t.Fatalf("baselineClients = %d, default DC spec has %d clients",
			baselineClients, dcSpec(tinyScale()).Clients)
	}
}
