package doccommentfix

type Bare struct{}

var Loose = 1

const Knob = 2
