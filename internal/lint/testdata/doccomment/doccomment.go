package doccommentfix // want "package doccommentfix has no package comment"

// Documented has a doc comment and is not reported.
func Documented() {}

func Naked() {} // want "exported function Naked has no doc comment"

// Gadget is documented.
type Gadget struct{}

func (Gadget) Twist() {} // want "exported method Twist has no doc comment"

// hidden methods are not godoc surface even with exported names.
type hidden struct{}

func (hidden) Exported() {}

// use keeps the unexported type referenced.
var _ = hidden{}
