// Package noallocfix seeds noalloc violations for the fixture test: one
// annotated function tripping every rule, plus annotated-and-clean
// functions exercising the panic and escape-hatch exemptions.
package noallocfix

import "fmt"

// Sink is a package-level escape target.
var Sink any

// TakeAny accepts any value, forcing interface boxing at call sites.
func TakeAny(v any) { Sink = v }

// Hot is annotated and violates every noalloc rule.
//
//scda:noalloc
func Hot(xs []int, n int) int {
	f := func() int { return n } // want `closure captures "n"`
	fmt.Println(n)               // want "fmt.Println allocates"
	m := map[int]int{}           // want "map literal allocates"
	s := []int{}                 // want "slice literal allocates"
	b := make([]byte, n)         // want "make allocates"
	var acc []int
	acc = append(acc, n) // want `append to un-preallocated local slice "acc"`
	TakeAny(n)           // want "passing non-pointer int as interface"
	_, _, _, _, _ = f, m, s, b, acc
	return len(xs)
}

// Warm is annotated and clean: parameter-backed append, and the panic
// argument is a cold path where allocation is acceptable by construction.
//
//scda:noalloc
func Warm(buf []int, v int) []int {
	if len(buf) == cap(buf) {
		panic(fmt.Sprintf("noallocfix: buffer full at %d", v))
	}
	return append(buf, v)
}

// Spawn is annotated; its capture is deliberate and carries a reason.
//
//scda:noalloc
func Spawn(n int) func() int {
	//scda:alloc-ok fixture: the closure is constructed once at setup
	return func() int { return n }
}

// Bare carries a reasonless alloc-ok, which is itself a finding.
//
//scda:noalloc
func Bare(n int) func() int {
	//scda:alloc-ok
	return func() int { return n } // want "directive has no reason"
}
