// Package cleanfix is the all-clean fixture: every analyzer must return
// zero findings for it.
package cleanfix

import "sort"

// Keys returns m's keys in sorted order — the sanctioned map-iteration
// idiom (accumulate, then sort).
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total sums integer counts; integer accumulation is exact and commutative.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Add appends into caller-provided storage, honoring its annotation.
//
//scda:noalloc
func Add(dst []int, v int) []int {
	return append(dst, v)
}
