// Package wallclockfix seeds wallclock violations for the fixture test.
// It is loaded under a synthetic repro/internal/... import path so the
// deterministic-package contract applies.
package wallclockfix

import (
	"math/rand"
	"time"
)

// Epoch shows that explicit-timestamp construction stays legal.
var Epoch = time.Unix(0, 0)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Jitter draws from the global math/rand stream.
func Jitter() float64 {
	return rand.Float64() // want "rand.Float64 uses the global math/rand stream"
}

// Elapsed measures and then sleeps — two separate reads of real time.
func Elapsed(t0 time.Time) time.Duration {
	d := time.Since(t0) // want "time.Since reads the wall clock"
	time.Sleep(d)       // want "time.Sleep reads the wall clock"
	return d
}

// Seeded builds an explicit generator — rand.New* is always legal.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exempted reads the clock under a reasoned escape hatch.
func Exempted() time.Time {
	//scda:wallclock-ok fixture: deliberate real-time read
	return time.Now()
}

// NoReason carries a reasonless directive, which is itself a finding.
func NoReason() time.Time {
	//scda:wallclock-ok
	return time.Now() // want "directive has no reason"
}
