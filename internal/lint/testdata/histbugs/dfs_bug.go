package histbugs

// Orphans returns the blocks orphaned by a server failure the way the
// pre-PR 1 DFS did: appended in map iteration order and never sorted, so
// the re-replication queue — and everything downstream of it — differed
// run to run.
func Orphans(replicas map[string][]int) []int {
	var orphaned []int
	for _, blocks := range replicas {
		orphaned = append(orphaned, blocks...) // want `append to "orphaned" inside range over map`
	}
	return orphaned
}
