package histbugs

// Energy totals per-server power draw the way the pre-PR 1 power model
// did: the map iteration order perturbed the floating-point energy total,
// so same-seed runs reported different joules.
func Energy(draw map[string]float64, dt float64) float64 {
	total := 0.0
	for _, w := range draw {
		total += w * dt // want "float accumulation inside range over map"
	}
	return total
}
