// Package histbugs reconstructs the three determinism bugs PR 1 fixed —
// each a range over a map feeding an order-sensitive result — as a
// regression corpus proving the maprange analyzer would have caught them.
package histbugs

// LinkDemand sums per-link flow demands the way the pre-PR 1 rate
// allocator did: ranging the link's flow map and accumulating float
// demand, so the converged allocation differed run to run in the last
// few ulps.
func LinkDemand(flows map[int64]float64) float64 {
	demand := 0.0
	for _, d := range flows {
		demand += d // want "float accumulation inside range over map"
	}
	return demand
}
