// Package lockorderfix seeds lockorder violations for the fixture test:
// direct inversions, an inversion hidden behind a helper, a same-rank
// nesting, and the sanctioned idioms around them.
//
//scda:lockorder Outer.mu Inner.mu
package lockorderfix

import "sync"

// Outer owns the rank-0 mutex of the declared chain.
type Outer struct {
	mu    sync.Mutex
	inner *Inner
}

// Inner owns the rank-1 mutex of the declared chain.
type Inner struct {
	mu sync.Mutex
	n  int
}

// Bump takes only the inner lock.
func (i *Inner) Bump() {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

// Fine nests in the declared order: Outer.mu, then Inner.mu via Bump.
func (o *Outer) Fine() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.Bump()
}

// Renege acquires Outer.mu while holding Inner.mu — a direct inversion.
func (i *Inner) Renege(o *Outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock() // want "acquires Outer.mu while holding Inner.mu"
	o.mu.Unlock()
}

// Sneaky commits the same inversion two calls deep.
func (i *Inner) Sneaky(o *Outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	poke(o) // want "calls poke, which may acquire Outer.mu while holding Inner.mu"
}

func poke(o *Outer) {
	o.mu.Lock()
	o.mu.Unlock()
}

// SameRank nests two Inner mutexes — same rank, still a deadlock.
func (i *Inner) SameRank(j *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	j.mu.Lock() // want "acquires Inner.mu while holding Inner.mu"
	j.mu.Unlock()
}

// Sanctioned inverts deliberately under a reasoned escape hatch.
func (i *Inner) Sanctioned(o *Outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	//scda:lockorder-ok fixture: o is freshly constructed and unshared here
	o.mu.Lock()
	o.mu.Unlock()
}

// Detached spawns a goroutine: it does not inherit the caller's locks, so
// the acquisition inside the closure is clean.
func (i *Inner) Detached(o *Outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	go func() {
		o.mu.Lock()
		o.mu.Unlock()
	}()
}

// The malformed directive below exercises directive validation.

// want "has no field"
//scda:lockorder Inner.gone Outer.mu
