// Package maprangefix seeds maprange violations for the fixture test,
// alongside each of the sanctioned idioms the analyzer must not flag.
package maprangefix

import (
	"fmt"
	"sort"
)

// SumFloats accumulates floats in map iteration order.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation inside range over map"
	}
	return total
}

// SelfAssign re-accumulates through a plain assignment.
func SelfAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation inside range over map"
	}
	return total
}

// Collect appends in map order and never sorts.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map`
	}
	return out
}

// Dump emits output in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println emits output inside range over map"
	}
}

// SortedCollect appends then sorts — the accumulate-then-sort idiom.
func SortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerKey writes per-key results, which are order-insensitive.
func PerKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// IntSum is exact and commutative — integer sums are never flagged.
func IntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Tolerated sums floats under a reasoned escape hatch.
func Tolerated(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//scda:maprange-ok fixture: caller tolerates ulp-level drift
		t += v
	}
	return t
}
