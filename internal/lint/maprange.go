package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaprangeAnalyzer flags `range` over a map whose loop body does
// order-sensitive work: accumulating into floating-point values, appending
// to a slice declared outside the loop, or emitting output — the exact
// class of the three PR 1 determinism bugs (ratealloc per-link float sums,
// power.Model energy totals, dfs.FailServer orphan order). Go randomizes
// map iteration order, so each of these makes results differ run to run.
//
// Two ways out, both visible in the diff: sort after the loop (an append
// target passed to a sort.*/slices.Sort* call later in the same function
// suppresses the finding — the dfs.FailServer idiom), or iterate a sorted
// key slice instead of the map. A deliberately order-insensitive site can
// carry //scda:maprange-ok <reason>.
//
// Integer accumulation is exact and commutative, so it is never flagged;
// only float sums depend on iteration order.
func MaprangeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maprange",
		Doc:  "flags order-sensitive work (float sums, appends, output) inside range-over-map",
		Run:  runMaprange,
	}
}

func runMaprange(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = p.maprangeFunc(findings, fd)
		}
	}
	return findings
}

// maprangeFunc checks every map-range statement in one function.
func (p *Package) maprangeFunc(findings []Finding, fd *ast.FuncDecl) []Finding {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		findings = p.maprangeBody(findings, fd, rs)
		return true
	})
	return findings
}

// maprangeBody inspects one map-range body for order-sensitive constructs.
func (p *Package) maprangeBody(findings []Finding, fd *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			if stmt != rs {
				// Nested range: X's own check fires separately; constructs
				// inside it are still order-sensitive w.r.t. the outer map,
				// so keep walking.
				return true
			}
		case *ast.AssignStmt:
			findings = p.maprangeAssign(findings, fd, rs, stmt)
		case *ast.CallExpr:
			if name, ok := p.emissionCall(stmt); ok {
				findings = p.report(findings, "maprange", "maprange-ok", stmt.Pos(),
					"%s emits output inside range over map (iteration order is nondeterministic)", name)
			}
		}
		return true
	})
	return findings
}

// maprangeAssign checks one assignment inside a map-range body for float
// accumulation and for appends to slices that outlive the loop.
func (p *Package) maprangeAssign(findings []Finding, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) []Finding {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if p.isFloat(lhs) && !p.declaredWithin(lhs, rs) && !p.usesLoopVar(lhs, rs) {
				findings = p.report(findings, "maprange", "maprange-ok", as.Pos(),
					"float accumulation inside range over map makes the sum depend on iteration order")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !p.isBuiltinAppend(call) || len(call.Args) == 0 || i >= len(as.Lhs) {
				continue
			}
			target := rootIdent(call.Args[0])
			if target == nil {
				continue
			}
			obj := p.Info.ObjectOf(target)
			if obj == nil || p.posWithin(obj.Pos(), rs) {
				continue // appending to a loop-local slice is order-local
			}
			if p.usesLoopVar(call.Args[0], rs) {
				continue // per-key target (out[k]): order-insensitive
			}
			if _, isVar := obj.(*types.Var); !isVar {
				continue
			}
			// x = x + x form check: self-assigned accumulation also hits the
			// ASSIGN case for floats.
			if p.sortedAfter(fd, rs, obj) {
				continue // the dfs.FailServer idiom: accumulate, then sort
			}
			findings = p.report(findings, "maprange", "maprange-ok", as.Pos(),
				"append to %q inside range over map accumulates in nondeterministic order (sort it afterwards or iterate sorted keys)", target.Name)
		}
		// Plain float re-accumulation: x = x + e.
		for i, lhs := range as.Lhs {
			if as.Tok != token.ASSIGN || i >= len(as.Rhs) {
				continue
			}
			if !p.isFloat(lhs) || p.declaredWithin(lhs, rs) || p.usesLoopVar(lhs, rs) {
				continue
			}
			if bin, ok := as.Rhs[i].(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB) && p.mentions(bin, lhs) {
				findings = p.report(findings, "maprange", "maprange-ok", as.Pos(),
					"float accumulation inside range over map makes the sum depend on iteration order")
			}
		}
	}
	return findings
}

// emissionCall reports whether the call writes output (fmt print family or
// an io-style Write*/Encode method), returning a display name.
func (p *Package) emissionCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := p.Info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
			switch name {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				return "fmt." + name, true
			}
			return "", false
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		if p.Info.Selections[sel] != nil { // a real method, not a package func
			return name, true
		}
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sort call after the range
// statement within the same function — the accumulate-then-sort idiom that
// restores determinism for appended slices.
func (p *Package) sortedAfter(fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := p.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			root := rootIdent(arg)
			if root != nil && p.Info.ObjectOf(root) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// usesLoopVar reports whether the expression mentions the range statement's
// key or value variable — a per-key write (totals[k] += v) is
// order-insensitive and must not be flagged.
func (p *Package) usesLoopVar(e ast.Expr, rs *ast.RangeStmt) bool {
	for _, lv := range []ast.Expr{rs.Key, rs.Value} {
		if lv == nil {
			continue
		}
		if id, ok := lv.(*ast.Ident); ok && id.Name != "_" && p.mentions(e, id) {
			return true
		}
	}
	return false
}

// isFloat reports whether the expression has floating-point type.
func (p *Package) isFloat(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isBuiltinAppend reports whether the call is the append builtin.
func (p *Package) isBuiltinAppend(call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether the expression's root variable is declared
// inside the given node's span (a per-iteration local).
func (p *Package) declaredWithin(e ast.Expr, n ast.Node) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := p.Info.ObjectOf(root)
	return obj != nil && p.posWithin(obj.Pos(), n)
}

// posWithin reports whether pos falls inside n's source span.
func (p *Package) posWithin(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// mentions reports whether expr syntactically contains a use of the same
// object as target.
func (p *Package) mentions(expr, target ast.Expr) bool {
	tRoot := rootIdent(target)
	if tRoot == nil {
		return false
	}
	tObj := p.Info.ObjectOf(tRoot)
	if tObj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == tObj {
			found = true
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors/indexes/parens/stars to the base identifier
// ("s" in s.field[i]), or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
