package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenTimeFuncs are the package time functions that read or react to
// the wall clock. time.Duration arithmetic, time.Unix construction and
// parsing/formatting of explicit timestamps remain legal — only reads of
// "now" (and timers derived from it) break determinism.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

// nondeterministicPkgs lists the module packages exempt from the wallclock
// contract: the service edge and its harnesses schedule real timeouts,
// probers and backoffs by design. Everything else under internal/ is a
// deterministic decision path — simulation engines, scenario compilation,
// search, placement — where a wall-clock read (or the global math/rand
// stream) silently breaks the byte-identical-replay contract.
var nondeterministicPkgs = map[string]bool{
	"repro/internal/service":             true,
	"repro/internal/service/client":      true,
	"repro/internal/service/servicetest": true,
}

// deterministicPkg reports whether the wallclock contract applies to the
// import path.
func deterministicPkg(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	return !nondeterministicPkgs[path]
}

// WallclockAnalyzer forbids wall-clock reads (time.Now, time.Since,
// time.After, timers, time.Sleep) and the global math/rand stream in the
// deterministic packages. Exempt a deliberate site — a service timeout, an
// EWMA prober — with //scda:wallclock-ok <reason>.
func WallclockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc:  "forbids time.Now/timers/global math/rand in deterministic packages",
		Run:  runWallclock,
	}
}

func runWallclock(p *Package) []Finding {
	if !deterministicPkg(p.Path) {
		return nil
	}
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := p.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTimeFuncs[sel.Sel.Name] {
					findings = p.report(findings, "wallclock", "wallclock-ok", sel.Pos(),
						"time.%s reads the wall clock in deterministic package %s", sel.Sel.Name, p.Path)
				}
			case "math/rand", "math/rand/v2":
				obj := p.Info.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !strings.HasPrefix(sel.Sel.Name, "New") {
					findings = p.report(findings, "wallclock", "wallclock-ok", sel.Pos(),
						"rand.%s uses the global math/rand stream in deterministic package %s (seed an explicit rand.New or sim.RNG instead)", sel.Sel.Name, p.Path)
				}
			}
			return true
		})
	}
	return findings
}
