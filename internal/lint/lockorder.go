package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockorderAnalyzer enforces a declared mutex-acquisition order via a
// per-struct acquisition call-graph walk. A package opts in with a
// package-level directive naming its ranked mutexes in acquisition order:
//
//	//scda:lockorder Service.mu Job.mu JobGroup.mu
//
// meaning a Service.mu holder may acquire Job.mu, and a Job.mu holder may
// acquire JobGroup.mu — but never the other way around, and never a second
// mutex of the same rank (two Jobs' mus nest-deadlock just as surely).
// This is exactly the internal/service hierarchy: Submit completes a
// cache-hit job while holding s.mu (s.mu → j.mu), and a job event fans out
// to its group while j.mu is held (j.mu → g.mu), so no JobGroup method may
// call back into a Job or the Service while holding g.mu.
//
// The walk tracks, statement by statement, which ranked mutexes are held
// (x.mu.Lock()/Unlock(), RLock/RUnlock, and defer-Unlock all understood),
// and at every call made while holding, consults the callee's transitive
// acquisition set (a fixpoint over the package's call graph) — so an
// inversion hidden two helpers deep is still reported at the call site that
// commits it. Function literals run in their own context (a spawned
// goroutine does not inherit the caller's locks). A deliberate exception
// carries //scda:lockorder-ok <reason>.
//
// Packages without a //scda:lockorder directive are not checked. Multiple
// directives declare independent chains; only mutexes in the same chain
// are ordered against each other.
func LockorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "enforces the declared //scda:lockorder mutex-acquisition order",
		Run:  runLockorder,
	}
}

// rankedMutex is one entry of a //scda:lockorder chain.
type rankedMutex struct {
	recv  *types.Named // the struct type owning the mutex field
	field string       // the mutex field name ("mu")
	chain int          // directive index: ordering applies within a chain
	rank  int          // position in the chain, ascending acquisition order
	label string       // display name ("Job.mu")
}

// lockorderState carries everything one package's walk needs.
type lockorderState struct {
	p       *Package
	ranked  []*rankedMutex
	acquire map[*types.Func]map[*rankedMutex]bool // transitive acquisition sets
	callees map[*types.Func][]*types.Func
	bodies  map[*types.Func]*ast.FuncDecl
}

func runLockorder(p *Package) []Finding {
	ranked, findings := p.lockorderDirectives()
	if len(ranked) == 0 {
		return findings
	}
	st := &lockorderState{
		p:       p,
		ranked:  ranked,
		acquire: map[*types.Func]map[*rankedMutex]bool{},
		callees: map[*types.Func][]*types.Func{},
		bodies:  map[*types.Func]*ast.FuncDecl{},
	}
	st.buildCallGraph()
	st.fixpointAcquire()
	for _, fd := range st.declsInOrder() {
		findings = st.walkFunc(findings, fd)
	}
	return findings
}

// lockorderDirectives parses every //scda:lockorder directive in the
// package into ranked mutexes; malformed entries become findings.
func (p *Package) lockorderDirectives() ([]*rankedMutex, []Finding) {
	var ranked []*rankedMutex
	var findings []Finding
	chain := 0
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "scda:lockorder ")
				if !ok {
					continue
				}
				entries := strings.Fields(rest)
				if len(entries) < 2 {
					findings = p.report(findings, "lockorder", "", c.Pos(),
						"//scda:lockorder needs at least two Type.field entries")
					continue
				}
				bad := false
				var parsed []*rankedMutex
				for rank, entry := range entries {
					typeName, fieldName, ok := strings.Cut(entry, ".")
					if !ok {
						findings = p.report(findings, "lockorder", "", c.Pos(),
							"//scda:lockorder entry %q is not Type.field", entry)
						bad = true
						break
					}
					obj := p.Types.Scope().Lookup(typeName)
					named, _ := objNamed(obj)
					if named == nil {
						findings = p.report(findings, "lockorder", "", c.Pos(),
							"//scda:lockorder names unknown type %q", typeName)
						bad = true
						break
					}
					if !structHasField(named, fieldName) {
						findings = p.report(findings, "lockorder", "", c.Pos(),
							"//scda:lockorder: type %s has no field %q", typeName, fieldName)
						bad = true
						break
					}
					parsed = append(parsed, &rankedMutex{
						recv: named, field: fieldName, chain: chain, rank: rank,
						label: typeName + "." + fieldName,
					})
				}
				if !bad {
					ranked = append(ranked, parsed...)
					chain++
				}
			}
		}
	}
	return ranked, findings
}

// objNamed unwraps a scope object to its named type.
func objNamed(obj types.Object) (*types.Named, bool) {
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, false
	}
	named, ok := tn.Type().(*types.Named)
	return named, ok
}

// structHasField reports whether the named type's underlying struct has a
// field with the given name.
func structHasField(named *types.Named, field string) bool {
	s, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// declsInOrder returns the package's function declarations in source order.
func (st *lockorderState) declsInOrder() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range st.p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// buildCallGraph records, for every function in the package, its direct
// ranked-mutex acquisitions and its same-package callees.
func (st *lockorderState) buildCallGraph() {
	for _, fd := range st.declsInOrder() {
		fn, ok := st.p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		st.bodies[fn] = fd
		acq := map[*rankedMutex]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, op := st.lockCall(call); m != nil && (op == "Lock" || op == "RLock") {
				acq[m] = true
			}
			if callee := st.sameePackageCallee(call); callee != nil {
				st.callees[fn] = append(st.callees[fn], callee)
			}
			return true
		})
		st.acquire[fn] = acq
	}
}

// fixpointAcquire closes the acquisition sets over the call graph: a
// function "may acquire" every mutex any of its (transitive) callees may
// acquire while it runs.
func (st *lockorderState) fixpointAcquire() {
	for changed := true; changed; {
		changed = false
		for fn, callees := range st.callees {
			for _, callee := range callees {
				for m := range st.acquire[callee] {
					if !st.acquire[fn][m] {
						st.acquire[fn][m] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockCall matches x.<field>.Lock/Unlock/RLock/RUnlock() where x's type is
// a ranked struct and <field> its ranked mutex, returning the mutex and the
// method name.
func (st *lockorderState) lockCall(call *ast.CallExpr) (*rankedMutex, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	tv, ok := st.p.Info.Types[inner.X]
	if !ok {
		return nil, ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	for _, m := range st.ranked {
		if m.recv == named && inner.Sel.Name == m.field {
			return m, op
		}
	}
	return nil, ""
}

// sameePackageCallee resolves a direct call to a function or method defined
// in this package (the only edges the acquisition fixpoint can follow).
func (st *lockorderState) sameePackageCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := st.p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != st.p.Types {
		return nil
	}
	return fn
}

// walkFunc threads the held-mutex set through one function body in source
// order and reports ordering violations at the statements that commit them.
func (st *lockorderState) walkFunc(findings []Finding, fd *ast.FuncDecl) []Finding {
	held := map[*rankedMutex]bool{}
	return st.walkStmts(findings, fd.Body.List, held)
}

// walkStmts processes a statement list sequentially, mutating held as Lock
// and Unlock calls pass by. Nested control-flow bodies are walked with a
// copy of the held set: a lock taken inside a branch does not leak into the
// fall-through path, which keeps the common Lock();...;Unlock() straight-
// line idiom precise.
func (st *lockorderState) walkStmts(findings []Finding, stmts []ast.Stmt, held map[*rankedMutex]bool) []Finding {
	for _, stmt := range stmts {
		findings = st.walkStmt(findings, stmt, held)
	}
	return findings
}

// walkStmt dispatches one statement.
func (st *lockorderState) walkStmt(findings []Finding, stmt ast.Stmt, held map[*rankedMutex]bool) []Finding {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return st.checkExpr(findings, s.X, held, true)
	case *ast.DeferStmt:
		if m, op := st.lockCall(s.Call); m != nil && (op == "Unlock" || op == "RUnlock") {
			// defer x.mu.Unlock(): held until return — held stays set for
			// the remaining statements, which is exactly the truth.
			return findings
		}
		// Other defers (including closures) run at return time with this
		// held set still in effect only for defer-Unlock idioms we cannot
		// see; analyze closure bodies in their own context.
		return st.checkExpr(findings, s.Call, held, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			findings = st.checkExpr(findings, rhs, held, true)
		}
		for _, lhs := range s.Lhs {
			findings = st.checkExpr(findings, lhs, held, true)
		}
		return findings
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			findings = st.checkExpr(findings, r, held, true)
		}
		return findings
	case *ast.IfStmt:
		if s.Init != nil {
			findings = st.walkStmt(findings, s.Init, held)
		}
		findings = st.checkExpr(findings, s.Cond, held, true)
		findings = st.walkStmts(findings, s.Body.List, copyHeld(held))
		if s.Else != nil {
			findings = st.walkStmt(findings, s.Else, copyHeld(held))
		}
		return findings
	case *ast.BlockStmt:
		return st.walkStmts(findings, s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			findings = st.walkStmt(findings, s.Init, held)
		}
		if s.Cond != nil {
			findings = st.checkExpr(findings, s.Cond, held, true)
		}
		findings = st.walkStmts(findings, s.Body.List, copyHeld(held))
		return findings
	case *ast.RangeStmt:
		findings = st.checkExpr(findings, s.X, held, true)
		return st.walkStmts(findings, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			findings = st.walkStmt(findings, s.Init, held)
		}
		if s.Tag != nil {
			findings = st.checkExpr(findings, s.Tag, held, true)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				findings = st.walkStmts(findings, cc.Body, copyHeld(held))
			}
		}
		return findings
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				findings = st.walkStmts(findings, cc.Body, copyHeld(held))
			}
		}
		return findings
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				findings = st.walkStmts(findings, cc.Body, copyHeld(held))
			}
		}
		return findings
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks; its closure
		// body is analyzed in its own (lock-free) context below.
		return st.checkExpr(findings, s.Call, held, false)
	case *ast.LabeledStmt:
		return st.walkStmt(findings, s.Stmt, held)
	case *ast.IncDecStmt:
		return st.checkExpr(findings, s.X, held, true)
	case *ast.SendStmt:
		findings = st.checkExpr(findings, s.Chan, held, true)
		return st.checkExpr(findings, s.Value, held, true)
	default:
		return findings
	}
}

// checkExpr walks an expression in source order: Lock/Unlock calls mutate
// held, every other call made while holding is checked against its
// transitive acquisition set, and function literals are analyzed in a fresh
// context. checkCalls false skips the call check for the outermost call
// (used for go/defer whose call runs in another context).
func (st *lockorderState) checkExpr(findings []Finding, expr ast.Expr, held map[*rankedMutex]bool, checkCalls bool) []Finding {
	outer := expr
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			findings = st.walkStmts(findings, x.Body.List, map[*rankedMutex]bool{})
			return false
		case *ast.CallExpr:
			if m, op := st.lockCall(x); m != nil {
				switch op {
				case "Lock", "RLock":
					findings = st.checkAcquire(findings, x.Pos(), m, held, "")
					held[m] = true
				case "Unlock", "RUnlock":
					delete(held, m)
				}
				return true
			}
			if (!checkCalls && n == outer) || len(held) == 0 {
				return true
			}
			if callee := st.sameePackageCallee(x); callee != nil {
				for acq := range st.acquire[callee] {
					findings = st.checkAcquire(findings, x.Pos(), acq, held, callee.Name())
				}
			}
		}
		return true
	})
	return findings
}

// checkAcquire reports an ordering violation if acquiring m while holding
// any same-chain mutex of equal or higher rank. via names the callee that
// performs the acquisition ("" for a direct Lock call).
func (st *lockorderState) checkAcquire(findings []Finding, pos token.Pos, m *rankedMutex, held map[*rankedMutex]bool, via string) []Finding {
	for h := range held {
		if h.chain != m.chain || m.rank > h.rank {
			continue
		}
		how := fmt.Sprintf("acquires %s", m.label)
		if via != "" {
			how = fmt.Sprintf("calls %s, which may acquire %s", via, m.label)
		}
		findings = st.p.report(findings, "lockorder", "lockorder-ok", pos,
			"%s while holding %s (declared order: %s)", how, h.label, st.chainString(m.chain))
	}
	return findings
}

// copyHeld clones the held set for a nested control-flow body.
func copyHeld(held map[*rankedMutex]bool) map[*rankedMutex]bool {
	out := make(map[*rankedMutex]bool, len(held))
	for m := range held {
		out[m] = true
	}
	return out
}

// chainString renders one chain's declared order for messages.
func (st *lockorderState) chainString(chain int) string {
	var labels []string
	for _, m := range st.ranked {
		if m.chain == chain {
			labels = append(labels, m.label)
		}
	}
	return strings.Join(labels, " < ")
}
