// Package lint implements scda-lint, the repo's stdlib-only static-analysis
// suite. It enforces, at the AST/type level, the contracts the rest of the
// codebase promises at runtime: deterministic outputs (no wall clock or
// global RNG in decision paths, no unordered map iteration feeding results),
// allocation-free hot paths (functions annotated //scda:noalloc), a fixed
// mutex-acquisition order in the service layer (//scda:lockorder), and doc
// comments on every exported identifier.
//
// The suite is built only on go/ast, go/parser, go/types and go/importer —
// no golang.org/x/tools dependency — so go.mod stays empty. Packages are
// loaded by the module-aware loader in load.go; each analyzer is a pure
// function from a loaded package to findings. cmd/scda-lint is the CLI,
// scripts/doccheck remains a thin shim over the doccomment analyzer.
//
// # Annotations
//
// Analyzers honor escape-hatch comments, each of which must carry a reason:
//
//	//scda:wallclock-ok <reason>   exempts a wall-clock/global-rand site
//	//scda:maprange-ok <reason>    exempts a map-iteration site
//	//scda:alloc-ok <reason>       exempts a site inside a //scda:noalloc func
//	//scda:lockorder-ok <reason>   exempts a lock-acquisition site
//
// A directive written without a reason is itself a finding: exemptions must
// say why or they rot. Directives attach to the offending line, to the line
// directly above it, or (for the wallclock/maprange analyzers) to the
// enclosing function's doc comment when the whole function is exempt.
//
// Contract-carrying annotations (the inverse direction — code opting *into*
// a check) are //scda:noalloc on a function doc comment and a package-level
// //scda:lockorder directive; see noalloc.go and lockorder.go.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the analyzer that produced it, and
// a message. Findings render as "file:line: [analyzer] message" with the
// file path relative to the module root.
type Finding struct {
	// File is the module-root-relative path (forward slashes).
	File string
	// Line is the 1-based line of the offending construct.
	Line int
	// Analyzer names the analyzer that fired.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// BaselineKey is the line-number-free identity used to match a finding
// against baseline entries ("file: [analyzer] message"), so a baselined
// exemption survives unrelated edits that shift line numbers.
func (f Finding) BaselineKey() string {
	return fmt.Sprintf("%s: [%s] %s", f.File, f.Analyzer, f.Message)
}

// Analyzer is one check: a name (used in finding tags, baseline entries and
// the -analyzers flag), a one-line doc string, and the run function.
type Analyzer struct {
	// Name tags findings and selects the analyzer on the CLI.
	Name string
	// Doc is the one-line description shown by scda-lint -list.
	Doc string
	// Run inspects one loaded package and returns its findings.
	Run func(p *Package) []Finding
}

// Analyzers returns the full suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer(),
		MaprangeAnalyzer(),
		NoallocAnalyzer(),
		LockorderAnalyzer(),
		DoccommentAnalyzer(),
	}
}

// Run applies the given analyzers to every package and returns the combined
// findings sorted by file, line, analyzer, message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// directive holds one parsed //scda:<name> comment.
type directive struct {
	name   string // "wallclock-ok", "noalloc", ...
	reason string // text after the name, may be empty
	line   int    // line the comment sits on (last line of its group)
}

// directivesByLine indexes every //scda: comment in a file by the line each
// comment line sits on.
func directivesByLine(fset *token.FileSet, file *ast.File) map[int][]directive {
	out := map[int][]directive{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "scda:") {
				continue
			}
			rest := strings.TrimPrefix(text, "scda:")
			name, reason, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], directive{name: name, reason: strings.TrimSpace(reason), line: line})
		}
	}
	return out
}

// exemption looks for a //scda:<name> directive covering the given line: on
// the line itself or on the line directly above. It returns whether one was
// found and whether it carried a reason.
func exemption(dirs map[int][]directive, line int, name string) (found, hasReason bool) {
	for _, l := range []int{line, line - 1} {
		for _, d := range dirs[l] {
			if d.name == name {
				return true, d.reason != ""
			}
		}
	}
	return false, false
}

// funcExemption reports whether the enclosing function's doc comment carries
// the named directive (and whether it has a reason).
func funcExemption(fn *ast.FuncDecl, name string) (found, hasReason bool) {
	if fn == nil || fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "scda:"+name) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "scda:"+name))
		return true, rest != ""
	}
	return false, false
}

// enclosingFunc returns the innermost FuncDecl in file containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// report is the shared finding constructor: it resolves pos, applies the
// analyzer's escape-hatch directive (if any) and appends either the finding
// or — for a directive written without a reason — a finding demanding one.
// okDirective is empty for analyzers without an escape hatch.
func (p *Package) report(findings []Finding, analyzer, okDirective string, pos token.Pos, format string, args ...any) []Finding {
	position := p.Fset.Position(pos)
	line := position.Line
	file := p.astFile(pos)
	if okDirective != "" && file != nil {
		dirs := p.fileDirectives(file)
		found, hasReason := exemption(dirs, line, okDirective)
		if !found {
			if fn := enclosingFunc(file, pos); fn != nil {
				found, hasReason = funcExemption(fn, okDirective)
			}
		}
		if found {
			if !hasReason {
				return append(findings, Finding{
					File:     p.relFile(position.Filename),
					Line:     line,
					Analyzer: analyzer,
					Message:  fmt.Sprintf("//scda:%s directive has no reason", okDirective),
				})
			}
			return findings
		}
	}
	return append(findings, Finding{
		File:     p.relFile(position.Filename),
		Line:     line,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}
