package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the parsed non-test files
// plus the go/types artifacts every analyzer consumes. Test files are
// deliberately excluded — the contracts scda-lint enforces are about
// production decision paths, and tests legitimately use wall clocks,
// fmt and ad-hoc map iteration.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the absolute directory the files were parsed from.
	Dir string
	// Fset is the file set shared by every package one Loader produced.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the use/def/type maps for the files.
	Info *types.Info

	loader *Loader
	dirs   map[*ast.File]map[int][]directive // lazily built directive index
}

// relFile returns filename relative to the module root, with forward
// slashes, so findings and baseline entries are machine-independent.
func (p *Package) relFile(filename string) string {
	if p.loader != nil {
		if rel, err := filepath.Rel(p.loader.ModuleRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// astFile returns the parsed file containing pos.
func (p *Package) astFile(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// fileDirectives returns (building on first use) the //scda: comment index
// for one file.
func (p *Package) fileDirectives(f *ast.File) map[int][]directive {
	if p.dirs == nil {
		p.dirs = map[*ast.File]map[int][]directive{}
	}
	d, ok := p.dirs[f]
	if !ok {
		d = directivesByLine(p.Fset, f)
		p.dirs[f] = d
	}
	return d
}

// Loader parses and type-checks packages of the enclosing module without
// any dependency outside the standard library. Imports inside the module
// are resolved recursively from source; standard-library imports come from
// the compiler's export data via go/importer.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod ("repro").
	ModulePath string

	fset *token.FileSet
	pkgs map[string]*Package // memo, by import path
	std  types.Importer
}

// NewLoader locates the module enclosing dir (walking up to the go.mod) and
// returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*Package{},
		std:        importer.Default(),
	}, nil
}

// Load resolves "./dir" and "./dir/..." patterns against the module root
// and returns the matched packages, type-checked, sorted by import path.
// A bare "." loads the root package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.resolveDirs(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.loadPath(importPath)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks a single directory under the given import
// path, without pattern resolution or memoization — the entry point the
// fixture tests use to lint testdata packages under synthetic paths.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(abs, importPath)
}

// resolveDirs expands the patterns into package directories (directories
// containing at least one non-test .go file), skipping hidden and testdata
// trees.
func (l *Loader) resolveDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addIfPkg := func(dir string) error {
		if seen[dir] {
			return nil
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				seen[dir] = true
				dirs = append(dirs, dir)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "./" {
			pat = "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModuleRoot, pat)
		}
		if !rec {
			if err := addIfPkg(filepath.Clean(root)); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return addIfPkg(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadPath loads (memoized) the package at an import path inside the
// module. It returns (nil, nil) for a directory with no non-test Go files.
func (l *Loader) loadPath(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	p, err := l.check(dir, importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// check parses dir's non-test files and type-checks them as importPath.
func (l *Loader) check(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		Path:   importPath,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}, nil
}

// loaderImporter adapts the loader to types.Importer: module-internal paths
// are type-checked from source, everything else is delegated to the
// standard-library importer.
type loaderImporter Loader

// Import resolves one import path during type checking.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: import %q matches no Go files", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
