package lint

import (
	"bufio"
	"os"
	"sort"
	"strings"
)

// Baseline is the committed list of deliberately-exempt findings
// (scripts/lint-baseline.txt). Entries are line-number-free —
// "file: [analyzer] message" — so they survive unrelated edits; blank lines
// and #-comments are ignored. The goal is to keep the file empty: prefer a
// //scda:*-ok annotation at the site (visible in the code, carries a
// reason) and reserve the baseline for findings that cannot host one.
type Baseline struct {
	entries map[string]bool
	used    map[string]bool
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: map[string]bool{}, used: map[string]bool{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line] = true
	}
	return b, sc.Err()
}

// Filter splits findings into the ones not covered by the baseline (kept)
// and marks matched entries as used.
func (b *Baseline) Filter(findings []Finding) []Finding {
	var kept []Finding
	for _, f := range findings {
		key := f.BaselineKey()
		if b.entries[key] {
			b.used[key] = true
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// Stale returns baseline entries that matched nothing — candidates for
// deletion, reported as warnings so the file cannot rot.
func (b *Baseline) Stale() []string {
	var out []string
	for e := range b.entries {
		if !b.used[e] {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}
