package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's `// want` comments: a
// finding on the given line whose message contains text.
type want struct {
	line int
	text string
	used bool
}

// wantSegRe extracts the quoted segments of a want comment: double-quoted
// Go strings or backquoted raw strings (for expectations that themselves
// contain double quotes).
var wantSegRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants scans every .go file of a fixture directory for `// want`
// comments. A want trailing code applies to its own line; a want on a
// comment-only line applies to the line below it (needed where a trailing
// comment would count as documentation and suppress the very finding under
// test).
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			target := i + 1 // lines are 1-based
			if strings.TrimSpace(line[:idx]) == "" {
				target = i + 2 // comment-only line: expectation is about the next line
			}
			segs := wantSegRe.FindAllStringSubmatch(line[idx+len("// want "):], -1)
			if len(segs) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted expectation", e.Name(), i+1)
			}
			for _, m := range segs {
				text := m[1]
				if text == "" && m[2] != "" {
					u, err := strconv.Unquote(`"` + m[2] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string: %v", e.Name(), i+1, err)
					}
					text = u
				}
				out[e.Name()] = append(out[e.Name()], &want{line: target, text: text})
			}
		}
	}
	return out
}

// loadFixture type-checks one testdata package under a synthetic
// repro/internal/... import path (so the wallclock deterministic-package
// contract applies to it) and runs the full suite over it.
func loadFixture(t *testing.T, loader *Loader, name string) (*Package, []Finding) {
	t.Helper()
	p, err := loader.LoadDir(filepath.Join("testdata", name), "repro/internal/lintfixtures/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p, Run([]*Package{p}, Analyzers())
}

// matchWants checks findings against expectations: every finding must match
// an unused want on its (file, line), and every want must be consumed.
// extra holds expectations that cannot be expressed as comments (a trailing
// comment on a type or value spec counts as its documentation).
func matchWants(t *testing.T, name string, findings []Finding, wants map[string][]*want, extra map[string][]*want) {
	t.Helper()
	for file, ws := range extra {
		wants[file] = append(wants[file], ws...)
	}
	for _, f := range findings {
		base := filepath.Base(f.File)
		matched := false
		for _, w := range wants[base] {
			if !w.used && w.line == f.Line && strings.Contains(f.Message, w.text) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", name, f)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: missing finding at %s:%d containing %q", name, file, w.line, w.text)
			}
		}
	}
}

// TestFixtures runs the full analyzer suite over each seeded-violation
// fixture package and checks the findings against the `// want` comments.
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	extras := map[string]map[string][]*want{
		// Trailing comments on type/value specs count as documentation, so
		// these expectations cannot live in the fixture file itself.
		"doccomment": {"extra.go": {
			{line: 3, text: "exported type Bare has no doc comment"},
			{line: 5, text: "exported value Loose has no doc comment"},
			{line: 7, text: "exported value Knob has no doc comment"},
		}},
	}
	for _, name := range []string{"wallclock", "maprange", "noalloc", "lockorder", "doccomment", "histbugs"} {
		t.Run(name, func(t *testing.T) {
			p, findings := loadFixture(t, loader, name)
			wants := parseWants(t, p.Dir)
			matchWants(t, name, findings, wants, extras[name])
		})
	}
}

// TestCleanFixture asserts the all-clean package yields zero findings from
// every analyzer.
func TestCleanFixture(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, findings := loadFixture(t, loader, "clean")
	for _, f := range findings {
		t.Errorf("clean fixture: unexpected finding: %s", f)
	}
}

// TestMaprangeCatchesHistoricalBugs asserts the maprange analyzer alone
// flags each of the three PR 1 determinism-bug reconstructions.
func TestMaprangeCatchesHistoricalBugs(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "histbugs"), "repro/internal/lintfixtures/histbugs")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{p}, []*Analyzer{MaprangeAnalyzer()})
	hit := map[string]bool{}
	for _, f := range findings {
		hit[filepath.Base(f.File)] = true
	}
	for _, file := range []string{"ratealloc_bug.go", "power_bug.go", "dfs_bug.go"} {
		if !hit[file] {
			t.Errorf("maprange missed the historical bug in %s", file)
		}
	}
}

// TestBaseline covers baseline filtering: matched entries suppress their
// findings, unmatched entries are reported stale, and comments are ignored.
func TestBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	content := "# comment\n\n" +
		"a.go: [wallclock] time.Now reads the wall clock in deterministic package x\n" +
		"gone.go: [maprange] never matches anything\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{File: "a.go", Line: 10, Analyzer: "wallclock", Message: "time.Now reads the wall clock in deterministic package x"},
		{File: "b.go", Line: 3, Analyzer: "noalloc", Message: "fmt.Println allocates in //scda:noalloc function F"},
	}
	kept := bl.Filter(findings)
	if len(kept) != 1 || kept[0].File != "b.go" {
		t.Fatalf("Filter kept %v, expected only the b.go finding", kept)
	}
	stale := bl.Stale()
	if len(stale) != 1 || !strings.HasPrefix(stale[0], "gone.go:") {
		t.Fatalf("Stale() = %v, expected only the gone.go entry", stale)
	}
	// A missing baseline file is an empty baseline, not an error.
	empty, err := LoadBaseline(filepath.Join(dir, "nope.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Filter(findings); len(got) != 2 {
		t.Fatalf("empty baseline filtered findings: %v", got)
	}
}
