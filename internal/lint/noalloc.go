package lint

import (
	"go/ast"
	"go/types"
)

// NoallocAnalyzer enforces the 0 B/op contract on functions whose doc
// comment carries //scda:noalloc. Inside an annotated function it flags the
// constructs that defeat the contract:
//
//   - function literals that capture enclosing variables (closure → heap)
//   - calls into package fmt (every fmt call allocates)
//   - composite literals of map or slice type, and make of map/slice/chan
//   - append to a slice declared in the function without preallocation
//   - passing a non-pointer, non-interface value where an interface is
//     expected (boxing allocates; boxing a pointer does not)
//
// The check is per-body: a callee's allocations are the callee's problem,
// so the annotation travels with each function on the hot path (the
// AllocsPerRun tests remain the end-to-end proof; this analyzer keeps the
// contract visible at every edit site in between benchmark runs).
//
// Cold paths are exempt where the language makes them unmistakable: any
// construct inside a panic(...) argument is allowed (e.g.
// panic(fmt.Sprintf(...))). Anything else deliberate — a pool-growth slow
// path, an open-coded deferred closure — carries //scda:alloc-ok <reason>.
func NoallocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "flags allocation constructs inside functions annotated //scda:noalloc",
		Run:  runNoalloc,
	}
}

func runNoalloc(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if found, _ := funcExemption(fd, "noalloc"); !found {
				continue
			}
			findings = p.noallocFunc(findings, fd)
		}
	}
	return findings
}

// noallocFunc checks one annotated function body.
func (p *Package) noallocFunc(findings []Finding, fd *ast.FuncDecl) []Finding {
	panicArgs := p.panicArgSpans(fd)
	inPanic := func(n ast.Node) bool {
		for _, span := range panicArgs {
			if span.Pos() <= n.Pos() && n.End() <= span.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inPanic(n) {
			return false // cold path: panic arguments may allocate
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if name, ok := p.capturesEnclosing(x, fd); ok {
				findings = p.report(findings, "noalloc", "alloc-ok", x.Pos(),
					"closure captures %q and may escape to the heap in //scda:noalloc function %s", name, fd.Name.Name)
			}
			return false // the literal runs in its own allocation context
		case *ast.CallExpr:
			findings = p.noallocCall(findings, fd, x)
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[x]
			if !ok {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				findings = p.report(findings, "noalloc", "alloc-ok", x.Pos(),
					"map literal allocates in //scda:noalloc function %s", fd.Name.Name)
			case *types.Slice:
				findings = p.report(findings, "noalloc", "alloc-ok", x.Pos(),
					"slice literal allocates in //scda:noalloc function %s", fd.Name.Name)
			}
		}
		return true
	})
	return findings
}

// noallocCall checks one call expression inside an annotated body: fmt
// calls, make of map/slice/chan, un-preallocated append, and interface
// boxing of non-pointer arguments.
func (p *Package) noallocCall(findings []Finding, fd *ast.FuncDecl, call *ast.CallExpr) []Finding {
	// fmt.* — every call formats through reflection and allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if ident, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := p.Info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				return p.report(findings, "noalloc", "alloc-ok", call.Pos(),
					"fmt.%s allocates in //scda:noalloc function %s", sel.Sel.Name, fd.Name.Name)
			}
		}
	}
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := p.Info.Types[call.Args[0]]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Map, *types.Slice, *types.Chan:
							return p.report(findings, "noalloc", "alloc-ok", call.Pos(),
								"make allocates in //scda:noalloc function %s", fd.Name.Name)
						}
					}
				}
			case "append":
				if len(call.Args) > 0 && p.unpreallocatedLocal(fd, call.Args[0]) {
					return p.report(findings, "noalloc", "alloc-ok", call.Pos(),
						"append to un-preallocated local slice %q grows on the heap in //scda:noalloc function %s",
						rootIdent(call.Args[0]).Name, fd.Name.Name)
				}
			}
			return findings
		}
	}
	// Interface boxing: a non-pointer concrete value passed where the
	// callee expects an interface allocates; a pointer boxes for free.
	if sig := p.callSignature(call); sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // the slice is passed through, no boxing here
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			if !types.IsInterface(pt) {
				continue
			}
			at, ok := p.Info.Types[arg]
			if !ok || at.IsNil() || at.Value != nil {
				continue // nil and constants: no boxing worth flagging here
			}
			switch at.Type.Underlying().(type) {
			case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan, *types.Slice:
				continue // reference-shaped: boxes without copying the value
			}
			findings = p.report(findings, "noalloc", "alloc-ok", arg.Pos(),
				"passing non-pointer %s as interface %s boxes and may allocate in //scda:noalloc function %s",
				at.Type.String(), pt.String(), fd.Name.Name)
		}
	}
	return findings
}

// callSignature resolves the callee's signature, or nil for builtins,
// conversions and unresolvable expressions.
func (p *Package) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// capturesEnclosing reports whether the literal references a variable
// declared in the enclosing function outside the literal itself (receiver
// and parameters included) — the capture that turns a func value into a
// heap-allocated closure.
func (p *Package) capturesEnclosing(lit *ast.FuncLit, fd *ast.FuncDecl) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Declared inside the function but outside the literal ⇒ captured.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() && !(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			name, found = obj.Name(), true
			return false
		}
		return true
	})
	return name, found
}

// unpreallocatedLocal reports whether the append target is a slice variable
// declared in this function with no backing capacity: `var s []T`, or
// s := []T{} / s := T(nil). Appends to such a slice reallocate as they
// grow. Parameters, fields and make()-backed slices are fine.
func (p *Package) unpreallocatedLocal(fd *ast.FuncDecl, target ast.Expr) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Info.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	if obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return false // parameter, receiver or package-level
	}
	bare := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bare {
			return false
		}
		switch d := n.(type) {
		case *ast.ValueSpec:
			for _, dn := range d.Names {
				if p.Info.Defs[dn] == obj && len(d.Values) == 0 {
					bare = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range d.Lhs {
				li, ok := lhs.(*ast.Ident)
				if !ok || p.Info.Defs[li] != obj || i >= len(d.Rhs) {
					continue
				}
				switch rhs := d.Rhs[i].(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						bare = true
					}
				case *ast.Ident:
					if rhs.Name == "nil" {
						bare = true
					}
				}
			}
		}
		return true
	})
	return bare
}

// panicArgSpans collects the argument spans of every panic(...) call in the
// function: cold paths where allocation is acceptable by construction.
func (p *Package) panicArgSpans(fd *ast.FuncDecl) []ast.Node {
	var spans []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, a := range call.Args {
					spans = append(spans, a)
				}
			}
		}
		return true
	})
	return spans
}
