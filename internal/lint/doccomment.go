package lint

import (
	"go/ast"
	"sort"
)

// DoccommentAnalyzer fails exported identifiers that lack doc comments —
// the scripts/doccheck gate folded into the suite so there is one linting
// entry point. It reports every package missing a package comment and every
// exported package-level declaration — funcs, methods with exported
// receivers, types, consts, vars — missing a doc comment, so the godoc
// surface cannot rot as packages grow. scripts/doccheck remains as a thin
// shim over this analyzer.
func DoccommentAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "doccomment",
		Doc:  "requires doc comments on packages and exported identifiers",
		Run:  runDoccomment,
	}
}

func runDoccomment(p *Package) []Finding {
	var findings []Finding
	hasPkgDoc := false
	for _, file := range p.Files {
		if file.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(p.Files) > 0 {
		// Attribute the miss to the package's first file by name, for
		// stable output.
		files := append([]*ast.File(nil), p.Files...)
		sort.Slice(files, func(i, j int) bool {
			return p.Fset.Position(files[i].Package).Filename < p.Fset.Position(files[j].Package).Filename
		})
		findings = p.report(findings, "doccomment", "", files[0].Package,
			"package %s has no package comment", files[0].Name.Name)
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			findings = p.doccommentDecl(findings, decl)
		}
	}
	return findings
}

// doccommentDecl reports exported names in one top-level declaration that
// have no doc comment.
func (p *Package) doccommentDecl(findings []Finding, decl ast.Decl) []Finding {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return findings
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			return findings // method on an unexported type: not godoc surface
		}
		kind := "function"
		if d.Recv != nil {
			kind = "method"
		}
		return p.report(findings, "doccomment", "", d.Pos(),
			"exported %s %s has no doc comment", kind, d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					findings = p.report(findings, "doccomment", "", s.Pos(),
						"exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					// A doc on the grouped decl, on the spec, or an inline
					// comment all count.
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						findings = p.report(findings, "doccomment", "", name.Pos(),
							"exported value %s has no doc comment", name.Name)
					}
				}
			}
		}
	}
	return findings
}

// receiverExported reports whether a method's receiver base type is
// exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
