package lint

import "testing"

// BenchmarkLintSelf measures a cold end-to-end lint of the lint package
// itself — loader construction, parsing, full type-check (including the
// transitively imported stdlib export data) and all five analyzers — the
// cost one package contributes to the CI lint step.
func BenchmarkLintSelf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./internal/lint")
		if err != nil {
			b.Fatal(err)
		}
		if findings := Run(pkgs, Analyzers()); len(findings) != 0 {
			b.Fatalf("lint package has findings: %v", findings)
		}
	}
}
