// Package core is the top-level entry point to the SCDA reproduction: a
// small façade that assembles the paper's system (or the RandTCP baseline)
// from the substrate packages with functional options, so examples and
// tools read like the paper's architecture instead of like wiring code.
//
// The heavy lifting lives underneath:
//
//   - internal/ratealloc — the RM/RA allocation plane (eqs. 2-6, fig. 2)
//   - internal/dfs       — FES, multiple NNS, block servers
//   - internal/selection — content-aware server selection (section VII)
//   - internal/scdatp    — explicit-rate transport (section VIII)
//   - internal/tcp       — the baseline's TCP Reno
//   - internal/netsim    — the packet-level network (NS2 stand-in)
//   - internal/cluster   — the integration of all of the above
package core

import (
	"repro/internal/cluster"
	"repro/internal/topology"
)

// Option customises a cluster configuration.
type Option func(*cluster.Config)

// WithTopology replaces the fig. 6 default topology spec.
func WithTopology(spec topology.ThreeTierSpec) Option {
	return func(c *cluster.Config) { c.Topology = spec }
}

// WithBandwidth sets the base bandwidth X (bits/sec) and factor K.
func WithBandwidth(x, k float64) Option {
	return func(c *cluster.Config) {
		c.Topology.X = x
		c.Topology.K = k
	}
}

// WithNNS sets the name-node count (1 = the GFS/HDFS baseline layout).
func WithNNS(n int) Option {
	return func(c *cluster.Config) { c.NumNNS = n }
}

// WithReplication enables the internal replication write of section
// VIII-B after every external write.
func WithReplication() Option {
	return func(c *cluster.Config) { c.Replicate = true }
}

// WithRscale sets the passive-content scale-down threshold of section
// VII-C in bits/sec.
func WithRscale(r float64) Option {
	return func(c *cluster.Config) { c.Rscale = r }
}

// WithPowerAware enables R̂/P selection (section VII-D) over
// heterogeneous per-server power profiles.
func WithPowerAware() Option {
	return func(c *cluster.Config) {
		c.PowerAware = true
		c.HeterogeneousPower = true
	}
}

// WithSeed sets the experiment seed.
func WithSeed(seed uint64) Option {
	return func(c *cluster.Config) { c.Seed = seed }
}

// WithControlDelay models the FES/NNS/RA request path latency before each
// transfer starts.
func WithControlDelay(d float64) Option {
	return func(c *cluster.Config) { c.ControlDelay = d }
}

// NewSCDA builds the paper's system: RM/RA explicit rates, content-aware
// selection, rate-paced transport.
func NewSCDA(opts ...Option) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig(cluster.SCDA)
	for _, o := range opts {
		o(&cfg)
	}
	return cluster.New(cfg)
}

// NewRandTCP builds the baseline: random server selection + TCP Reno, the
// behaviour the paper attributes to VL2/Hedera-class architectures.
func NewRandTCP(opts ...Option) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig(cluster.RandTCP)
	for _, o := range opts {
		o(&cfg)
	}
	return cluster.New(cfg)
}

// WithColdMigration runs the section VII-C cold-content migration pass
// every interval seconds (requires WithRscale).
func WithColdMigration(interval float64) Option {
	return func(c *cluster.Config) { c.MigrateInterval = interval }
}

// WithSJF attaches the implicit shortest-job-first priority policy of
// section IV-A to every flow.
func WithSJF() Option {
	return func(c *cluster.Config) { c.SJFScheduling = true }
}

// WithServerResources models per-server CPU and disk service capacity (the
// multi-resource R_other term of section VI-A) in bits/sec; bgMax draws
// each server's background-computation fraction from [0, bgMax).
func WithServerResources(cpuRate, diskRate, bgMax float64) Option {
	return func(c *cluster.Config) {
		c.ServerCPURate = cpuRate
		c.ServerDiskRate = diskRate
		c.ServerBackgroundMax = bgMax
	}
}
