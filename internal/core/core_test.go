package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestNewSCDADefaults(t *testing.T) {
	c, err := NewSCDA()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.System != cluster.SCDA {
		t.Fatal("wrong system")
	}
	if c.Ctrl == nil || c.Hier == nil || c.Picker == nil {
		t.Fatal("SCDA planes not wired")
	}
	if c.Random != nil {
		t.Fatal("random picker present on SCDA")
	}
}

func TestNewRandTCPDefaults(t *testing.T) {
	c, err := NewRandTCP()
	if err != nil {
		t.Fatal(err)
	}
	if c.Ctrl != nil {
		t.Fatal("allocation plane present on baseline")
	}
	if c.Random == nil {
		t.Fatal("random picker missing")
	}
}

func TestOptionsApply(t *testing.T) {
	spec := topology.DefaultThreeTier()
	spec.Racks = 2
	spec.ServersPerRack = 2
	c, err := NewSCDA(
		WithTopology(spec),
		WithBandwidth(200e6, 1),
		WithNNS(5),
		WithReplication(),
		WithRscale(42e6),
		WithPowerAware(),
		WithSeed(99),
		WithControlDelay(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Cfg
	switch {
	case cfg.Topology.Racks != 2,
		cfg.Topology.X != 200e6,
		cfg.Topology.K != 1,
		cfg.NumNNS != 5,
		!cfg.Replicate,
		cfg.Rscale != 42e6,
		!cfg.PowerAware,
		!cfg.HeterogeneousPower,
		cfg.Seed != 99,
		cfg.ControlDelay != 0.25:
		t.Fatalf("options not applied: %+v", cfg)
	}
	if c.FES.NumNNS() != 5 {
		t.Fatal("NNS count not plumbed")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	c, err := NewSCDA(WithBandwidth(100e6, 3), WithReplication())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "f", Size: 250_000}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(30)
	if c.Metrics.Completed != 1 {
		t.Fatal("write did not complete through the façade")
	}
	meta, err := c.FES.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Blocks[0].Replicas) != 2 {
		t.Fatal("replication option not effective")
	}
}

func TestNewOptions(t *testing.T) {
	c, err := NewSCDA(
		WithSJF(),
		WithColdMigration(5),
		WithServerResources(100e6, 200e6, 0.3),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Cfg
	switch {
	case !cfg.SJFScheduling,
		cfg.MigrateInterval != 5,
		cfg.ServerCPURate != 100e6,
		cfg.ServerDiskRate != 200e6,
		cfg.ServerBackgroundMax != 0.3:
		t.Fatalf("options not applied: %+v", cfg)
	}
	if c.Sched == nil {
		t.Fatal("scheduler not built via option")
	}
	if c.Hosts == nil {
		t.Fatal("host resources not built via option")
	}
}
