// Package transport provides the host-side plumbing shared by the two
// transports in this repository: the TCP Reno baseline (internal/tcp) and
// the SCDA explicit-window transport (internal/scdatp). A Stack demuxes
// packets arriving at one host to per-flow endpoints, and a FlowIDSource
// hands out unique flow identifiers (which also serve as ECMP hashes).
package transport

import (
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Endpoint consumes packets for one flow at one host.
type Endpoint interface {
	Receive(*netsim.Packet)
}

// Stack is the per-host demultiplexer.
type Stack struct {
	Net  *netsim.Network
	Node topology.NodeID
	eps  map[netsim.FlowID]Endpoint
}

// NewStack registers a demux handler for the node and returns the stack.
func NewStack(n *netsim.Network, node topology.NodeID) *Stack {
	s := &Stack{Net: n, Node: node, eps: make(map[netsim.FlowID]Endpoint)}
	n.Listen(node, s.dispatch)
	return s
}

func (s *Stack) dispatch(p *netsim.Packet) {
	if ep, ok := s.eps[p.Flow]; ok {
		ep.Receive(p)
	}
}

// Bind attaches an endpoint to a flow ID.
func (s *Stack) Bind(id netsim.FlowID, ep Endpoint) { s.eps[id] = ep }

// Unbind detaches a flow.
func (s *Stack) Unbind(id netsim.FlowID) { delete(s.eps, id) }

// Bound returns the number of attached endpoints (open flows at this host).
func (s *Stack) Bound() int { return len(s.eps) }

// FlowIDSource allocates unique flow IDs.
type FlowIDSource struct{ next netsim.FlowID }

// Next returns a fresh flow ID, starting at 1.
func (f *FlowIDSource) Next() netsim.FlowID {
	f.next++
	return f.next
}

// Hash derives the ECMP hash for a flow ID with a 64-bit mix so that
// consecutive IDs spread across equal-cost paths.
func Hash(id netsim.FlowID) uint64 {
	z := uint64(id) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return z ^ (z >> 27)
}

// Wire sizes shared by both transports.
const (
	// MSS is the data payload per packet in bytes.
	MSS = 1460
	// HeaderBytes covers IP+TCP-style headers.
	HeaderBytes = 40
	// DataPacketBytes is the on-wire size of a full data packet.
	DataPacketBytes = MSS + HeaderBytes
	// AckBytes is the on-wire size of a pure acknowledgement.
	AckBytes = HeaderBytes
)

// Segments returns the number of MSS-sized segments needed for size bytes.
func Segments(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return (size + MSS - 1) / MSS
}

// SegmentWire returns the on-wire size of segment seq of a size-byte
// transfer (the final segment may be short).
func SegmentWire(size int64, seq int64) int {
	total := Segments(size)
	if seq < total-1 {
		return DataPacketBytes
	}
	last := int(size - (total-1)*MSS)
	return last + HeaderBytes
}
