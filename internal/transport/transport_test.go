package transport

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

type countingEP struct{ got int }

func (c *countingEP) Receive(*netsim.Packet) { c.got++ }

func TestStackDemux(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	g.AddDuplex(a, b, 1e9, 1e-3, 1)
	s := sim.New()
	n := netsim.New(s, g, netsim.DefaultConfig())
	st := NewStack(n, b)
	ep1, ep2 := &countingEP{}, &countingEP{}
	st.Bind(1, ep1)
	st.Bind(2, ep2)
	if st.Bound() != 2 {
		t.Fatalf("Bound = %d", st.Bound())
	}
	n.Send(&netsim.Packet{Flow: 1, Src: a, Dst: b, Size: 100})
	n.Send(&netsim.Packet{Flow: 2, Src: a, Dst: b, Size: 100})
	n.Send(&netsim.Packet{Flow: 2, Src: a, Dst: b, Size: 100})
	n.Send(&netsim.Packet{Flow: 9, Src: a, Dst: b, Size: 100}) // unbound: dropped silently
	s.Run()
	if ep1.got != 1 || ep2.got != 2 {
		t.Fatalf("demux: ep1=%d ep2=%d", ep1.got, ep2.got)
	}
	st.Unbind(2)
	n.Send(&netsim.Packet{Flow: 2, Src: a, Dst: b, Size: 100})
	s.Run()
	if ep2.got != 2 {
		t.Fatal("unbound endpoint still receiving")
	}
}

func TestFlowIDSourceUnique(t *testing.T) {
	var src FlowIDSource
	seen := map[netsim.FlowID]bool{}
	for i := 0; i < 1000; i++ {
		id := src.Next()
		if id <= 0 || seen[id] {
			t.Fatalf("ID %d invalid or repeated", id)
		}
		seen[id] = true
	}
}

func TestHashSpreads(t *testing.T) {
	// consecutive flow IDs must map to well-spread hashes (ECMP balance)
	buckets := make([]int, 8)
	for i := 1; i <= 8000; i++ {
		buckets[Hash(netsim.FlowID(i))%8]++
	}
	for i, b := range buckets {
		if b < 800 || b > 1200 {
			t.Fatalf("bucket %d has %d of 8000: hash imbalanced", i, b)
		}
	}
}

func TestSegmentsProperties(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw % (100 << 20))
		segs := Segments(size)
		if size == 0 {
			return segs == 0
		}
		// enough segments to carry the payload, none wasted
		return segs*MSS >= size && (segs-1)*MSS < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentWireSums(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw%(10<<20)) + 1
		segs := Segments(size)
		var payload int64
		for s := int64(0); s < segs; s++ {
			w := SegmentWire(size, s)
			if w <= HeaderBytes || w > DataPacketBytes {
				return false
			}
			payload += int64(w - HeaderBytes)
		}
		return payload == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
