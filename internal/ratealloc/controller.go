// Package ratealloc implements SCDA's resource allocation plane: the
// resource monitors (RM, one per server) and resource allocators (RA, one
// per switch) of sections III-B through VI of the paper.
//
// Every control interval τ the plane computes, for every directed link,
// the explicit per-flow rate of equation 2:
//
//	R(t) = (α·C − β·Q(t−τ)/τ) / N̂(t−τ)
//
// where the effective number of flows N̂ = S/R(t−τ) (eq. 3) counts a flow
// bottlenecked elsewhere as less than one flow — the mechanism that makes
// the allocation max-min fair ("any link bandwidth unused by some flows ...
// can be used by flows which need it"). S is the sum of flow bottleneck
// rates (eq. 4), optionally weighted by per-flow priorities ℘ⱼ (eq. 6),
// and reduced-capacity sharing implements the explicit minimum-rate
// reservations of section IV-C. A simplified variant (eq. 5) replaces the
// rate sum with the measured arrival rate Λ read from switch counters.
//
// The divisor d in the paper's βQ/d term is the queue-drain horizon; like
// RCP (the paper's ref. [6], from which this controller form descends) we
// drain the standing queue over one control interval, d = τ.
//
// The plane also detects SLA violations in realtime: a link whose demand
// sum S exceeds its effective capacity α·C − β·Q/τ is flagged within one
// control interval (section IV-A) and reported through a callback so the
// cluster can re-place content or provision spare capacity.
package ratealloc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// Mode selects the rate-metric computation.
type Mode int

const (
	// Full uses eq. 2 with N̂ = S/R from per-flow rate sums (eq. 3/4/6).
	Full Mode = iota
	// Simplified uses eq. 5: R(t) = (αC − βQ/τ)·R(t−τ)/Λ(t), needing only
	// switch byte counters, no per-flow reports.
	Simplified
)

// Params are the control-law constants of Table I.
type Params struct {
	// Alpha is the target utilisation fraction of capacity (α).
	Alpha float64
	// Beta scales queue drain pressure (β).
	Beta float64
	// Tau is the control interval in seconds (τ). The paper suggests the
	// average or maximum RTT of the flows; the fig. 6 fabric has RTTs of
	// tens of milliseconds.
	Tau float64
	// Mode selects Full (eq. 2/3) or Simplified (eq. 5).
	Mode Mode
	// MinRate floors every link's advertised rate so a link that was
	// briefly swamped can recover (bits/sec).
	MinRate float64
}

// DefaultParams returns stable control constants: α slightly below 1 keeps
// queues near empty, β = 1 drains a standing queue in one interval.
func DefaultParams() Params {
	return Params{Alpha: 0.95, Beta: 1.0, Tau: 0.05, Mode: Full, MinRate: 1e3}
}

func (p Params) validate() error {
	switch {
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("ratealloc: Alpha = %v, need (0,1]", p.Alpha)
	case p.Beta < 0:
		return fmt.Errorf("ratealloc: Beta = %v", p.Beta)
	case p.Tau <= 0:
		return fmt.Errorf("ratealloc: Tau = %v", p.Tau)
	case p.MinRate <= 0:
		return fmt.Errorf("ratealloc: MinRate = %v", p.MinRate)
	}
	return nil
}

// QueueReader supplies the per-link switch counters the RM/RA read: the
// paper notes "all switches maintain the queue length in each of their
// interfaces", so no switch changes are needed. netsim.Network implements
// it; tests may use fakes.
type QueueReader interface {
	// QueueBits returns instantaneous queue occupancy in bits (Q).
	QueueBits(topology.LinkID) float64
	// ArrivedBits returns cumulative arrived bits (differenced into L, Λ).
	ArrivedBits(topology.LinkID) float64
}

// FlowID aliases the network flow identifier.
type FlowID = netsim.FlowID

// Flow is the allocator's view of one transfer.
type Flow struct {
	ID   FlowID
	Path []topology.LinkID // forward (data) path, directed links

	// Priority is the ℘ⱼ weight of eq. 6; 1 is neutral, 2 requests a
	// double share. Sources adjust it to hit target rates (section IV-A).
	Priority float64
	// MinRate is the explicit reservation Mⱼ of section IV-C in bits/sec
	// (0 = none).
	MinRate float64
	// Demand caps the rate by what the application can produce
	// ("the application generating flow j may also not have enough data
	// to send"); +Inf for bulk transfers.
	Demand float64
	// SendOther / RecvOther are the R^j_{send,other} and R^j_{recv,other}
	// endpoint resource limits (CPU, disk) of section IV; +Inf when the
	// endpoints are not the bottleneck.
	SendOther float64
	RecvOther float64

	// Rate is the flow's current bottleneck rate Rⱼ (eq. 4), updated each
	// control interval.
	Rate float64
}

// LinkState is the per-directed-link allocator state (the RM or RA
// "associated with" the link).
type LinkState struct {
	ID       topology.LinkID
	Capacity float64

	// R is the current advertised per-unit-priority flow rate (eq. 2/5).
	R float64
	// S is the last sum of flow bottleneck rates (eq. 4/6).
	S float64
	// lastReportedS supports delta-encoded reporting (section IV).
	lastReportedS float64
	// Nhat is the last effective flow count (eq. 3).
	Nhat float64
	// Reserved is the ΣMⱼ of reservations crossing this link.
	Reserved float64
	// Violated reports whether the link is in a detected SLA violation
	// (S exceeding effective capacity for two consecutive intervals;
	// the persistence requirement filters convergence transients).
	Violated bool
	// pendingViolation marks a first-interval breach awaiting confirmation.
	pendingViolation bool

	// flows holds the link's registered flows in ascending FlowID order.
	// A sorted slice rather than a map: the eq. 2/3 reductions sum flow
	// rates in iteration order, and Go map iteration order varies run to
	// run, which would make the floating-point sums — and therefore every
	// "deterministic" simulation — differ in the last ulp between runs.
	flows []*Flow

	lastArrived float64 // previous cumulative arrival reading (Simplified)
}

// findFlow returns the index of id in the sorted flow slice, or the
// insertion point with found=false.
func (ls *LinkState) findFlow(id FlowID) (int, bool) {
	i := sort.Search(len(ls.flows), func(i int) bool { return ls.flows[i].ID >= id })
	return i, i < len(ls.flows) && ls.flows[i].ID == id
}

// addFlow inserts f keeping FlowID order; re-adding an ID is a no-op.
func (ls *LinkState) addFlow(f *Flow) {
	i, found := ls.findFlow(f.ID)
	if found {
		return
	}
	ls.flows = append(ls.flows, nil)
	copy(ls.flows[i+1:], ls.flows[i:])
	ls.flows[i] = f
}

// removeFlow deletes the flow with the given ID if present.
func (ls *LinkState) removeFlow(id FlowID) {
	if i, found := ls.findFlow(id); found {
		ls.flows = append(ls.flows[:i], ls.flows[i+1:]...)
	}
}

// NumFlows returns the number of flows registered on the link.
func (ls *LinkState) NumFlows() int { return len(ls.flows) }

// Violation describes one detected SLA violation.
type Violation struct {
	Link   topology.LinkID
	S      float64 // demand sum that tripped detection
	CapEff float64 // effective capacity αC − βQ/τ − reserved
	Time   float64
}

// Controller owns the allocation state for every directed link of a graph
// and advances it one control interval at a time. The cluster layer drives
// Tick from a sim.Ticker every τ.
type Controller struct {
	Params Params

	g      *topology.Graph
	reader QueueReader
	links  []*LinkState
	flows  map[FlowID]*Flow

	// hostOther[h] is the CPU/disk-limited service rate of host h
	// (R_other of section VI-A); +Inf when unconstrained.
	hostOther map[topology.NodeID]float64

	// OnViolation, when set, receives every per-link SLA violation
	// detected during a Tick.
	OnViolation func(Violation)

	// Violations counts all detections since construction.
	Violations int64
	// Ticks counts control intervals elapsed.
	Ticks int64
	// ControlMessages estimates RM/RA report traffic: one report per
	// monitored link per tick plus one per tree edge for aggregation
	// (diagnostic; control traffic is modelled out-of-band).
	ControlMessages int64
	// ControlBytesFull and ControlBytesDelta estimate report payload under
	// the two encodings of section IV: sending the full rate sum every
	// interval versus "sending the difference which is a smaller number
	// than the sum of the rates" (and nothing at all when unchanged).
	ControlBytesFull  int64
	ControlBytesDelta int64
}

// NewController builds allocator state for every directed link.
func NewController(g *topology.Graph, reader QueueReader, p Params) (*Controller, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		Params:    p,
		g:         g,
		reader:    reader,
		links:     make([]*LinkState, len(g.Links)),
		flows:     make(map[FlowID]*Flow),
		hostOther: make(map[topology.NodeID]float64),
	}
	for i, l := range g.Links {
		c.links[i] = &LinkState{
			ID:       l.ID,
			Capacity: l.Capacity,
			R:        p.Alpha * l.Capacity, // optimistic start
		}
	}
	return c, nil
}

// SetCapacity updates a link's capacity C (spare-capacity activation
// after an SLA violation, section IV-A); the next interval allocates
// against the new value.
func (c *Controller) SetCapacity(id topology.LinkID, capacity float64) {
	if capacity > 0 {
		c.links[id].Capacity = capacity
	}
}

// Link returns the allocator state of a directed link.
func (c *Controller) Link(id topology.LinkID) *LinkState { return c.links[id] }

// SetHostOther sets the endpoint resource limit (CPU/disk service rate in
// bits/sec) used as R_other for flows sent or received by host h.
func (c *Controller) SetHostOther(h topology.NodeID, rate float64) {
	c.hostOther[h] = rate
}

// HostOther returns the endpoint limit for a host (+Inf when unset).
func (c *Controller) HostOther(h topology.NodeID) float64 {
	if r, ok := c.hostOther[h]; ok {
		return r
	}
	return math.Inf(1)
}

// Register adds a flow to the allocator on every link of its path. Flows
// default to neutral priority and unbounded demand when fields are zero.
func (c *Controller) Register(f *Flow) error {
	if _, dup := c.flows[f.ID]; dup {
		return fmt.Errorf("ratealloc: flow %d already registered", f.ID)
	}
	if len(f.Path) == 0 {
		return fmt.Errorf("ratealloc: flow %d has empty path", f.ID)
	}
	if f.Priority <= 0 {
		f.Priority = 1
	}
	if f.Demand <= 0 {
		f.Demand = math.Inf(1)
	}
	if f.SendOther <= 0 {
		f.SendOther = math.Inf(1)
	}
	if f.RecvOther <= 0 {
		f.RecvOther = math.Inf(1)
	}
	c.flows[f.ID] = f
	for _, lid := range f.Path {
		ls := c.links[lid]
		ls.addFlow(f)
		ls.Reserved += f.MinRate
	}
	// a new flow starts at the path's current advertised rate ...
	f.Rate = c.flowRate(f)
	// ... and its links immediately account for it, so the advertised
	// rate (and the live FlowRate of every flow sharing these links)
	// drops before the next periodic tick. This event-driven update is
	// what keeps queues empty through arrival transients.
	for _, lid := range f.Path {
		c.recomputeLink(c.links[lid])
	}
	c.refreshSharers(f.Path)
	return nil
}

// refreshSharers re-derives the cached bottleneck rate of every flow
// crossing the given links, so the next event-driven recompute works from
// coherent values instead of rates staled by membership churn.
func (c *Controller) refreshSharers(path []topology.LinkID) {
	for _, lid := range path {
		for _, g := range c.links[lid].flows {
			g.Rate = c.flowRate(g)
		}
	}
}

// Unregister removes a completed flow.
func (c *Controller) Unregister(id FlowID) {
	f, ok := c.flows[id]
	if !ok {
		return
	}
	delete(c.flows, id)
	for _, lid := range f.Path {
		ls := c.links[lid]
		ls.removeFlow(id)
		ls.Reserved -= f.MinRate
		c.recomputeLink(ls) // freed share is available immediately
	}
	c.refreshSharers(f.Path)
}

// NumFlows returns the number of registered flows.
func (c *Controller) NumFlows() int { return len(c.flows) }

// FlowRate returns the flow's current allocated rate Rⱼ in bits/sec, or 0
// for an unknown flow. Transports read this to size their windows and
// pacing (cwnd = R×RTT, section VIII). The value is computed live from the
// current link rates so that event-driven link updates (flow joins and
// departures) propagate to every sharer immediately, not only at the next
// control interval.
func (c *Controller) FlowRate(id FlowID) float64 {
	if f, ok := c.flows[id]; ok {
		return c.flowRate(f)
	}
	return 0
}

// SetPriority updates a flow's ℘ⱼ weight (section IV-A: "the weights of
// prioritized flows can then be adaptively adjusted by each distributed
// source at every RTT").
func (c *Controller) SetPriority(id FlowID, p float64) {
	if f, ok := c.flows[id]; ok && p > 0 {
		f.Priority = p
	}
}

// flowRate recomputes Rⱼ (eq. 4): the minimum of the flow's weighted
// fair share along its path, its demand, and the endpoint limits.
func (c *Controller) flowRate(f *Flow) float64 {
	r := math.Min(f.Demand, math.Min(f.SendOther, f.RecvOther))
	for _, lid := range f.Path {
		ls := c.links[lid]
		share := f.MinRate + f.Priority*ls.R
		if cap := c.Params.Alpha * ls.Capacity; share > cap {
			share = cap // one flow can never exceed the link itself
		}
		if share < r {
			r = share
		}
	}
	// endpoint host limits (R_other), if the path starts/ends at a host
	if len(f.Path) > 0 {
		src := c.g.Links[f.Path[0]].From
		dst := c.g.Links[f.Path[len(f.Path)-1]].To
		r = math.Min(r, math.Min(c.HostOther(src), c.HostOther(dst)))
	}
	return r
}

// recomputeLink re-runs the eq. 2 rate computation for one link from the
// cached flow rates, outside the periodic tick. Used on flow registration
// and departure so the advertised rate reflects membership changes
// immediately (in both modes; the Simplified mode's Λ-based form needs a
// full interval of arrivals, so events use the rate-sum form).
func (c *Controller) recomputeLink(ls *LinkState) {
	q := c.reader.QueueBits(ls.ID)
	effShared := c.Params.Alpha*ls.Capacity - c.Params.Beta*q/c.Params.Tau - ls.Reserved
	if effShared < c.Params.MinRate {
		effShared = c.Params.MinRate
	}
	sShared := 0.0
	for _, f := range ls.flows {
		if share := f.Rate - f.MinRate; share > 0 {
			sShared += share
		}
	}
	if nhat := sShared / ls.R; nhat > 0 {
		ls.Nhat = nhat
		ls.R = clamp(effShared/nhat, c.Params.MinRate, c.Params.Alpha*ls.Capacity)
	} else {
		ls.R = effShared
	}
}

// Tick advances one control interval at simulation time now: recompute
// every flow's bottleneck rate from last interval's link rates, then every
// link's advertised rate, then run SLA detection.
func (c *Controller) Tick(now float64) {
	c.Ticks++
	// pass 1: flow bottleneck rates Rⱼ(t) from R(t−τ) (eq. 4)
	for _, f := range c.flows {
		f.Rate = c.flowRate(f)
		c.ControlMessages++ // RM reports its flow's rate
	}
	// pass 2: link rates (eq. 2 or eq. 5) and SLA detection
	for _, ls := range c.links {
		q := c.reader.QueueBits(ls.ID)
		// capRaw is the eq. 2 numerator αC − βQ/τ; the shared pool
		// additionally excludes explicit reservations (section IV-C).
		capRaw := c.Params.Alpha*ls.Capacity - c.Params.Beta*q/c.Params.Tau
		effShared := capRaw - ls.Reserved
		if effShared < c.Params.MinRate {
			effShared = c.Params.MinRate
		}
		sTotal := 0.0 // eq. 6 sum: full weighted bottleneck rates
		switch c.Params.Mode {
		case Full:
			sShared := 0.0
			for _, f := range ls.flows {
				sTotal += f.Rate
				// only the non-reserved portion competes for the pool
				if share := f.Rate - f.MinRate; share > 0 {
					sShared += share
				}
			}
			ls.S = sTotal
			ls.Nhat = sShared / ls.R
			if ls.Nhat <= 0 {
				// no demand: offer the whole shared pool (max-min: idle
				// capacity is available to whoever asks next)
				ls.R = effShared
			} else {
				ls.R = clamp(effShared/ls.Nhat, c.Params.MinRate, c.Params.Alpha*ls.Capacity)
			}
		case Simplified:
			arrived := c.reader.ArrivedBits(ls.ID)
			lbits := arrived - ls.lastArrived
			ls.lastArrived = arrived
			lambda := lbits / c.Params.Tau // Λ = L/τ
			sTotal = lambda
			ls.S = lambda
			if lambda <= 0 {
				ls.R = effShared
			} else {
				ls.Nhat = lambda / ls.R
				// Damped multiplicative update: the raw eq. 5 map
				// R ← R·(cap/Λ) has unit gain and limit-cycles under the
				// one-interval measurement delay; the square root keeps
				// the same fixed point (Λ = effective capacity) while
				// halving the loop gain.
				ls.R = clamp(ls.R*math.Sqrt(effShared/lambda), c.Params.MinRate, c.Params.Alpha*ls.Capacity)
			}
		}
		// Realtime SLA violation detection (section IV-A): the RM/RA
		// "detects SLA violation if its S(t) exceeds the capacity of the
		// link it is associated with". Two triggers: the demand sum
		// exceeding αC − βQ/τ (with a small tolerance so the converged
		// operating point S ≈ capacity does not flap), or reservations
		// having consumed the link entirely (over-subscribed SLAs). A
		// breach must persist two consecutive intervals before it is
		// reported, filtering single-interval convergence transients
		// during flow churn.
		breach := len(ls.flows) > 0 &&
			(sTotal > capRaw*violationTolerance || capRaw-ls.Reserved <= c.Params.MinRate)
		wasViolated := ls.Violated
		switch {
		case breach && ls.pendingViolation:
			ls.Violated = true
		case breach:
			ls.pendingViolation = true
		default:
			ls.pendingViolation = false
			ls.Violated = false
		}
		if ls.Violated && !wasViolated {
			c.Violations++
			if c.OnViolation != nil {
				c.OnViolation(Violation{Link: ls.ID, S: sTotal, CapEff: capRaw, Time: now})
			}
		}
		c.ControlMessages++ // RA aggregation message up the tree
		// report-size accounting: full encoding always ships the 8-byte
		// sum; delta encoding ships a varint-sized difference and skips
		// unchanged values entirely.
		c.ControlBytesFull += 8
		if delta := ls.S - ls.lastReportedS; delta != 0 {
			c.ControlBytesDelta += varintBytes(delta)
			ls.lastReportedS = ls.S
		}
	}
}

// varintBytes estimates the wire size of a delta report: small changes in
// bits/sec encode in fewer bytes (1 byte per 7 bits of magnitude, capped
// at a full 8-byte word).
func varintBytes(delta float64) int64 {
	if delta < 0 {
		delta = -delta
	}
	n := int64(1)
	for v := uint64(delta); v >= 1<<7 && n < 8; v >>= 7 {
		n++
	}
	return n
}

// violationTolerance keeps the converged operating point (S ≈ effective
// capacity) from flapping the detector; 5% over capacity is a real breach.
const violationTolerance = 1.05

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// PathRate returns the rate a new neutral-priority flow would currently be
// offered along a path: min over links of R, the quantity the NNS compares
// when choosing servers.
func (c *Controller) PathRate(path []topology.LinkID) float64 {
	r := math.Inf(1)
	for _, lid := range path {
		if lr := c.links[lid].R; lr < r {
			r = lr
		}
	}
	return r
}
