package ratealloc

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// ServerRate pairs a block server with an advertised rate, the (BS, R̂)
// tuples RAs keep so "the NNS [can] decide where to store (write) data".
type ServerRate struct {
	Server topology.NodeID
	Rate   float64
}

// RM is the per-server resource monitor of section III-B. It monitors the
// server's access link in both directions, folds in the server's own
// CPU/disk limit (R_other), and after every control interval knows the
// best h-level up-link and down-link rates from the down pass (the Rˇ
// values of fig. 2).
type RM struct {
	Host     topology.NodeID
	UpLink   topology.LinkID // host → ToR
	DownLink topology.LinkID // ToR → host
	IsServer bool            // block servers participate in selection

	// UpHat is R̂ = min(R_uplink, R_other) (fig. 2 leaf rule); DownHat
	// likewise for the down direction.
	UpHat   float64
	DownHat float64

	// UpToLevel[h] is the minimum up-direction rate from this host to its
	// level-h ancestor (h ≥ 1); DownFromLevel[h] the minimum down-direction
	// rate from the level-h ancestor to this host. Index 0 is unused.
	UpToLevel     []float64
	DownFromLevel []float64

	parent *RA
}

// RA is the per-switch resource allocator. After each Update it holds the
// best servers in its subtree by the three metrics the server-selection
// policies need (section VII): best down-link rate (writes), best up-link
// rate (reads), and best min(up, down) (interactive content).
type RA struct {
	Switch topology.NodeID
	Level  int

	UpLink   topology.LinkID // switch → parent (None at root)
	DownLink topology.LinkID // parent → switch (None at root)

	Parent   *RA
	Children []*RA
	RMs      []*RM

	BestUp   ServerRate
	BestDown ServerRate
	BestMin  ServerRate
}

// EachServer visits every server RM in the RA's subtree.
func (ra *RA) EachServer(fn func(*RM)) {
	for _, rm := range ra.RMs {
		if rm.IsServer {
			fn(rm)
		}
	}
	for _, ch := range ra.Children {
		ch.EachServer(fn)
	}
}

// Hierarchy mirrors the physical switch tree with RAs and attaches one RM
// per host, implementing the max/min aggregation of section VI-A / fig. 2.
// It applies to tree-shaped fabrics (the paper's fig. 1/6); for general
// topologies (section IX) use Controller.PathRate, which performs the same
// max/min over explicit routed paths.
type Hierarchy struct {
	ctrl  *Controller
	g     *topology.Graph
	root  *RA
	ras   map[topology.NodeID]*RA
	rms   map[topology.NodeID]*RM
	hmax  int
	hosts []*RM
}

// NewHierarchy derives the RM/RA tree from the graph: every switch gets an
// RA whose parent is its unique higher-level switch neighbour; every host
// gets an RM on its access link. servers marks which hosts are block
// servers (participate in selection); other hosts (external clients, FES,
// NNS) still get RMs for window management but are never selected.
func NewHierarchy(ctrl *Controller, g *topology.Graph, servers map[topology.NodeID]bool) (*Hierarchy, error) {
	h := &Hierarchy{
		ctrl: ctrl,
		g:    g,
		ras:  make(map[topology.NodeID]*RA),
		rms:  make(map[topology.NodeID]*RM),
	}
	// create RAs
	for _, n := range g.Nodes {
		if n.Kind == topology.Switch {
			h.ras[n.ID] = &RA{Switch: n.ID, Level: n.Level, UpLink: topology.None, DownLink: topology.None}
			if n.Level > h.hmax {
				h.hmax = n.Level
			}
		}
	}
	// wire switch tree: parent = unique neighbouring switch at higher level
	for id, ra := range h.ras {
		for _, lid := range g.Out(id) {
			nb := g.Links[lid].To
			nbNode := g.Nodes[nb]
			if nbNode.Kind != topology.Switch {
				continue
			}
			if nbNode.Level > ra.Level {
				if ra.Parent != nil {
					return nil, fmt.Errorf("ratealloc: switch %d has multiple parents; hierarchy requires a tree (use PathRate for general fabrics)", id)
				}
				ra.Parent = h.ras[nb]
				ra.UpLink = lid
				ra.DownLink = g.Links[lid].Reverse
			}
		}
	}
	for _, ra := range h.ras {
		if ra.Parent == nil {
			if h.root != nil {
				return nil, fmt.Errorf("ratealloc: multiple root switches (%d and %d)", h.root.Switch, ra.Switch)
			}
			h.root = ra
		} else {
			ra.Parent.Children = append(ra.Parent.Children, ra)
		}
	}
	if h.root == nil {
		return nil, fmt.Errorf("ratealloc: no root switch found")
	}
	// attach RMs
	for _, n := range g.Nodes {
		if n.Kind != topology.Host {
			continue
		}
		out := g.Out(n.ID)
		if len(out) != 1 {
			return nil, fmt.Errorf("ratealloc: host %d has %d links, want exactly 1", n.ID, len(out))
		}
		up := out[0]
		sw := g.Links[up].To
		ra, ok := h.ras[sw]
		if !ok {
			return nil, fmt.Errorf("ratealloc: host %d attached to non-switch %d", n.ID, sw)
		}
		rm := &RM{
			Host:          n.ID,
			UpLink:        up,
			DownLink:      g.Links[up].Reverse,
			IsServer:      servers[n.ID],
			parent:        ra,
			UpToLevel:     make([]float64, h.hmax+1),
			DownFromLevel: make([]float64, h.hmax+1),
		}
		ra.RMs = append(ra.RMs, rm)
		h.rms[n.ID] = rm
		h.hosts = append(h.hosts, rm)
	}
	return h, nil
}

// Root returns the highest-level RA (level hmax).
func (h *Hierarchy) Root() *RA { return h.root }

// MaxLevel returns hmax.
func (h *Hierarchy) MaxLevel() int { return h.hmax }

// RAFor returns the RA of a switch, or nil.
func (h *Hierarchy) RAFor(sw topology.NodeID) *RA { return h.ras[sw] }

// RMFor returns the RM of a host, or nil.
func (h *Hierarchy) RMFor(host topology.NodeID) *RM { return h.rms[host] }

// AncestorAt returns the RA at the given level on a host's path to the
// root (e.g. level 1 = its ToR's RA, the "RA at level 1 of the
// corresponding rack" of section VIII-A).
func (h *Hierarchy) AncestorAt(host topology.NodeID, level int) *RA {
	rm := h.rms[host]
	if rm == nil {
		return nil
	}
	ra := rm.parent
	for ra != nil && ra.Level < level {
		ra = ra.Parent
	}
	return ra
}

// Update runs one round of the fig. 2 max/min aggregation from the current
// controller link rates: an up pass computing each RA's best-server tuples
// and a down pass filling each RM's per-level rate vectors. Call it after
// Controller.Tick each control interval.
func (h *Hierarchy) Update() {
	h.upPass(h.root)
	for _, rm := range h.hosts {
		h.downFill(rm)
	}
}

func (h *Hierarchy) upPass(ra *RA) ServerRate3 {
	best := ServerRate3{
		up:   ServerRate{Server: topology.None, Rate: math.Inf(-1)},
		down: ServerRate{Server: topology.None, Rate: math.Inf(-1)},
		min:  ServerRate{Server: topology.None, Rate: math.Inf(-1)},
	}
	for _, rm := range ra.RMs {
		other := h.ctrl.HostOther(rm.Host)
		rm.UpHat = math.Min(h.ctrl.Link(rm.UpLink).R, other)
		rm.DownHat = math.Min(h.ctrl.Link(rm.DownLink).R, other)
		if !rm.IsServer {
			continue
		}
		best.consider(rm.Host, rm.UpHat, rm.DownHat)
	}
	for _, ch := range ra.Children {
		sub := h.upPass(ch)
		best.mergeChild(sub)
	}
	// fig. 2: R̂(h) = min(max over children, R of own link to parent)
	if ra.UpLink != topology.None {
		best.up.Rate = math.Min(best.up.Rate, h.ctrl.Link(ra.UpLink).R)
		best.down.Rate = math.Min(best.down.Rate, h.ctrl.Link(ra.DownLink).R)
		bothWays := math.Min(h.ctrl.Link(ra.UpLink).R, h.ctrl.Link(ra.DownLink).R)
		best.min.Rate = math.Min(best.min.Rate, bothWays)
	}
	ra.BestUp, ra.BestDown, ra.BestMin = best.up, best.down, best.min
	return best
}

// ServerRate3 bundles the three per-subtree aggregates carried up the tree.
type ServerRate3 struct {
	up, down, min ServerRate
}

func (b *ServerRate3) consider(server topology.NodeID, upHat, downHat float64) {
	if upHat > b.up.Rate {
		b.up = ServerRate{server, upHat}
	}
	if downHat > b.down.Rate {
		b.down = ServerRate{server, downHat}
	}
	if m := math.Min(upHat, downHat); m > b.min.Rate {
		b.min = ServerRate{server, m}
	}
}

func (b *ServerRate3) mergeChild(sub ServerRate3) {
	if sub.up.Rate > b.up.Rate {
		b.up = sub.up
	}
	if sub.down.Rate > b.down.Rate {
		b.down = sub.down
	}
	if sub.min.Rate > b.min.Rate {
		b.min = sub.min
	}
}

// downFill computes the RM's Rˇ vectors: the minimum rate between the host
// and each ancestor level, the values "helpful for the NNS in deciding
// where to read replicated data from and to update the rates of on-going
// flows" (section VI-A down pass).
func (h *Hierarchy) downFill(rm *RM) {
	up := rm.UpHat
	down := rm.DownHat
	level := 1
	rm.UpToLevel[level] = up
	rm.DownFromLevel[level] = down
	ra := rm.parent
	for ra != nil && ra.Parent != nil {
		up = math.Min(up, h.ctrl.Link(ra.UpLink).R)
		down = math.Min(down, h.ctrl.Link(ra.DownLink).R)
		level = ra.Parent.Level
		if level < len(rm.UpToLevel) {
			rm.UpToLevel[level] = up
			rm.DownFromLevel[level] = down
		}
		ra = ra.Parent
	}
	// fill gaps (levels with no RA boundary inherit the value below)
	for l := 2; l <= h.hmax; l++ {
		if rm.UpToLevel[l] == 0 {
			rm.UpToLevel[l] = rm.UpToLevel[l-1]
		}
		if rm.DownFromLevel[l] == 0 {
			rm.DownFromLevel[l] = rm.DownFromLevel[l-1]
		}
	}
}

// CommonLevel returns the level of the lowest common ancestor switch of two
// hosts, used for section VIII-D window updates ("suppose the lowest level
// parent both the sender and receiver share is at level h").
func (h *Hierarchy) CommonLevel(a, b topology.NodeID) int {
	ra, rb := h.rms[a], h.rms[b]
	if ra == nil || rb == nil {
		return h.hmax
	}
	// collect a's ancestor set
	anc := map[topology.NodeID]int{}
	for x := ra.parent; x != nil; x = x.Parent {
		anc[x.Switch] = x.Level
	}
	for y := rb.parent; y != nil; y = y.Parent {
		if lvl, ok := anc[y.Switch]; ok {
			return lvl
		}
	}
	return h.hmax
}
