package ratealloc

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func buildTree(t *testing.T) (*topology.ThreeTier, *Controller, *Hierarchy, *fakeReader) {
	t.Helper()
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	fr := newFakeReader()
	c, err := NewController(tt.Graph, fr, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	servers := map[topology.NodeID]bool{}
	for _, s := range tt.Servers {
		servers[s] = true
	}
	h, err := NewHierarchy(c, tt.Graph, servers)
	if err != nil {
		t.Fatal(err)
	}
	return tt, c, h, fr
}

func TestHierarchyStructure(t *testing.T) {
	tt, _, h, _ := buildTree(t)
	if h.Root().Switch != tt.Core {
		t.Fatalf("root = %d, want core %d", h.Root().Switch, tt.Core)
	}
	if h.MaxLevel() != 3 {
		t.Fatalf("hmax = %d", h.MaxLevel())
	}
	if got := len(h.Root().Children); got != tt.Spec.AggSwitches {
		t.Fatalf("root children = %d", got)
	}
	for _, agg := range h.Root().Children {
		if agg.Level != 2 {
			t.Fatalf("agg level = %d", agg.Level)
		}
		for _, tor := range agg.Children {
			if tor.Level != 1 {
				t.Fatalf("tor level = %d", tor.Level)
			}
			if len(tor.RMs) != tt.Spec.ServersPerRack {
				t.Fatalf("rack servers = %d", len(tor.RMs))
			}
		}
	}
	// clients hang off the core as non-server RMs
	clientRMs := 0
	for _, rm := range h.Root().RMs {
		if !rm.IsServer {
			clientRMs++
		}
	}
	if clientRMs != tt.Spec.Clients {
		t.Fatalf("client RMs at core = %d", clientRMs)
	}
}

func TestBestServerSelectionIdle(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	c.Tick(0)
	h.Update()
	root := h.Root()
	// idle fabric: every server advertises α·X up and down; best rate
	// equals αX and the chosen node must be a server
	wantRate := 0.95 * tt.Spec.X
	for _, sr := range []ServerRate{root.BestUp, root.BestDown, root.BestMin} {
		if math.Abs(sr.Rate-wantRate)/wantRate > 0.01 {
			t.Fatalf("best rate = %v, want ≈ %v", sr.Rate, wantRate)
		}
		if !isServer(tt, sr.Server) {
			t.Fatalf("selected %d is not a block server", sr.Server)
		}
	}
}

func isServer(tt *topology.ThreeTier, n topology.NodeID) bool {
	for _, s := range tt.Servers {
		if s == n {
			return true
		}
	}
	return false
}

func TestBestServerAvoidsLoaded(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	// load server 0's downlink with 9 flows
	target := tt.Servers[0]
	down := tt.Graph.Links[tt.UplinkOf[target]].Reverse
	for i := 0; i < 9; i++ {
		if err := c.Register(&Flow{ID: FlowID(i + 1), Path: []topology.LinkID{down}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		c.Tick(0)
	}
	h.Update()
	if h.Root().BestDown.Server == target {
		t.Fatal("selection chose the loaded server")
	}
	// the loaded server's own advertised downlink must be ~1/9 of idle
	rm := h.RMFor(target)
	idle := 0.95 * tt.Spec.X
	if rm.DownHat > idle/5 {
		t.Fatalf("loaded server DownHat = %v, want ≲ %v", rm.DownHat, idle/9)
	}
}

func TestHostOtherCapsServerMetric(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	// every server CPU-limited except one fast server
	for _, s := range tt.Servers {
		c.SetHostOther(s, 1e6)
	}
	fast := tt.Servers[7]
	c.SetHostOther(fast, 1e9)
	c.Tick(0)
	h.Update()
	if got := h.Root().BestUp.Server; got != fast {
		t.Fatalf("BestUp = %d, want CPU-unconstrained server %d", got, fast)
	}
	if h.RMFor(tt.Servers[0]).UpHat != 1e6 {
		t.Fatalf("UpHat = %v, want host limit 1e6", h.RMFor(tt.Servers[0]).UpHat)
	}
}

func TestRackLevelQuery(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	c.Tick(0)
	h.Update()
	// the RA at level 1 of server 0's rack must select within that rack
	ra := h.AncestorAt(tt.Servers[0], 1)
	if ra == nil {
		t.Fatal("no level-1 ancestor")
	}
	if tt.RackOf[ra.BestDown.Server] != tt.RackOf[tt.Servers[0]] {
		t.Fatal("rack-level best server outside the rack")
	}
}

func TestSubtreeBestIncludesOwnUplink(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	// congest rack 0's uplink (tor→agg): rack 0's advertised best-up from
	// the root's perspective must fall below an uncongested rack's.
	tor0 := tt.Edges[0]
	var torUp topology.LinkID = topology.None
	for _, l := range tt.Graph.Out(tor0) {
		if tt.Graph.Nodes[tt.Graph.Links[l].To].Kind == topology.Switch {
			torUp = l
		}
	}
	if torUp == topology.None {
		t.Fatal("no tor uplink found")
	}
	for i := 0; i < 50; i++ {
		c.Register(&Flow{ID: FlowID(i + 1), Path: []topology.LinkID{torUp}})
	}
	for i := 0; i < 20; i++ {
		c.Tick(0)
	}
	h.Update()
	ra0 := h.RAFor(tor0)
	// fig. 2 rule: the rack's aggregate is min(best server, rack uplink R)
	if ra0.BestUp.Rate > c.Link(torUp).R+1 {
		t.Fatalf("rack aggregate %v ignores congested uplink %v", ra0.BestUp.Rate, c.Link(torUp).R)
	}
	if best := h.Root().BestUp.Server; tt.RackOf[best] == 0 {
		t.Fatal("root still selects the congested rack for reads")
	}
}

func TestRMLevelVectorsMonotone(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	// add cross-tree load so upper links are slower than leaf links
	r := topology.ComputeRouting(tt.Graph)
	id := FlowID(1)
	for i := 0; i < 10; i++ {
		src := tt.Servers[i%len(tt.Servers)]
		dst := tt.Clients[i%len(tt.Clients)]
		path, err := r.Path(src, dst, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		c.Register(&Flow{ID: id, Path: path})
		id++
	}
	for i := 0; i < 20; i++ {
		c.Tick(0)
	}
	h.Update()
	for _, s := range tt.Servers {
		rm := h.RMFor(s)
		for lvl := 2; lvl <= h.MaxLevel(); lvl++ {
			if rm.UpToLevel[lvl] > rm.UpToLevel[lvl-1]+1e-9 {
				t.Fatalf("UpToLevel not non-increasing: %v", rm.UpToLevel)
			}
			if rm.DownFromLevel[lvl] > rm.DownFromLevel[lvl-1]+1e-9 {
				t.Fatalf("DownFromLevel not non-increasing: %v", rm.DownFromLevel)
			}
		}
	}
}

func TestCommonLevel(t *testing.T) {
	tt, _, h, _ := buildTree(t)
	sameRack := h.CommonLevel(tt.Servers[0], tt.Servers[1])
	if sameRack != 1 {
		t.Fatalf("same-rack common level = %d, want 1", sameRack)
	}
	crossAgg := h.CommonLevel(tt.Servers[0], tt.Servers[tt.Spec.ServersPerRack])
	if crossAgg != 3 {
		t.Fatalf("cross-agg common level = %d, want 3 (core)", crossAgg)
	}
	// racks 0 and 2 share agg 0 (round-robin assignment)
	sameAgg := h.CommonLevel(tt.Servers[0], tt.Servers[2*tt.Spec.ServersPerRack])
	if sameAgg != 2 {
		t.Fatalf("same-agg common level = %d, want 2", sameAgg)
	}
	clientServer := h.CommonLevel(tt.Clients[0], tt.Servers[0])
	if clientServer != 3 {
		t.Fatalf("client-server common level = %d, want 3", clientServer)
	}
}

func TestEachServerVisitsAll(t *testing.T) {
	tt, _, h, _ := buildTree(t)
	count := 0
	h.Root().EachServer(func(rm *RM) { count++ })
	if count != len(tt.Servers) {
		t.Fatalf("EachServer visited %d, want %d", count, len(tt.Servers))
	}
}

func TestHierarchyRejectsNonTree(t *testing.T) {
	g, _, err := topology.FatTree(4, 1e9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	if _, err := NewHierarchy(c, g, nil); err == nil {
		t.Fatal("fat-tree accepted as hierarchy (switches have multiple parents)")
	}
}

func TestInteractiveMetricUsesMinOfUpDown(t *testing.T) {
	tt, c, h, _ := buildTree(t)
	// overload server 3's uplink only: its min(up,down) collapses while
	// its downlink stays high — BestMin must avoid it, BestDown may not.
	target := tt.Servers[3]
	up := tt.UplinkOf[target]
	for i := 0; i < 20; i++ {
		c.Register(&Flow{ID: FlowID(i + 1), Path: []topology.LinkID{up}})
	}
	for i := 0; i < 20; i++ {
		c.Tick(0)
	}
	h.Update()
	if h.Root().BestMin.Server == target {
		t.Fatal("interactive selection picked the upload-saturated server")
	}
	rm := h.RMFor(target)
	if min := math.Min(rm.UpHat, rm.DownHat); min > 0.95*tt.Spec.X/10 {
		t.Fatalf("saturated server min metric = %v", min)
	}
}
