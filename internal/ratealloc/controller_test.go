package ratealloc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// fakeReader supplies queue/arrival readings without a packet simulation.
type fakeReader struct {
	queues  map[topology.LinkID]float64
	arrived map[topology.LinkID]float64
}

func newFakeReader() *fakeReader {
	return &fakeReader{
		queues:  make(map[topology.LinkID]float64),
		arrived: make(map[topology.LinkID]float64),
	}
}

func (f *fakeReader) QueueBits(l topology.LinkID) float64   { return f.queues[l] }
func (f *fakeReader) ArrivedBits(l topology.LinkID) float64 { return f.arrived[l] }

// line builds a chain topology h0 - s1 - s2 - ... - hN of hosts at both
// ends with switches between, returning the graph and the ordered
// host-to-host directed path.
func chainGraph(capacities []float64) (*topology.Graph, []topology.LinkID) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	prev := a
	var path []topology.LinkID
	for i, c := range capacities {
		var next topology.NodeID
		if i == len(capacities)-1 {
			next = g.AddNode(topology.Host, "b", 0)
		} else {
			next = g.AddNode(topology.Switch, "s", i+1)
		}
		l := g.AddDuplex(prev, next, c, 1e-3, i+1)
		path = append(path, l)
		prev = next
	}
	return g, path
}

func tickN(c *Controller, n int) {
	for i := 0; i < n; i++ {
		c.Tick(float64(i) * c.Params.Tau)
	}
}

func TestSingleLinkFairShare(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, err := NewController(g, newFakeReader(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		if err := c.Register(&Flow{ID: FlowID(i + 1), Path: path}); err != nil {
			t.Fatal(err)
		}
	}
	tickN(c, 20)
	want := 0.95 * 100e6 / n
	for i := 0; i < n; i++ {
		got := c.FlowRate(FlowID(i + 1))
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("flow %d rate = %v, want ≈ %v", i+1, got, want)
		}
	}
}

func TestMaxMinUnusedCapacityReallocated(t *testing.T) {
	// flow B crosses links L1 (10M) and L2 (4M); flow A only L1.
	// Max-min: B gets α·4M at L2; A gets α·10M − α·4M at L1... precisely
	// A's share = α(10M) − R_B = 9.5M − 3.8M = 5.7M.
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	s := g.AddNode(topology.Switch, "s", 1)
	b := g.AddNode(topology.Host, "b", 0)
	c1 := g.AddDuplex(a, s, 10e6, 1e-3, 1)
	c2 := g.AddDuplex(s, b, 4e6, 1e-3, 1)
	c, err := NewController(g, newFakeReader(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&Flow{ID: 1, Path: []topology.LinkID{c1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&Flow{ID: 2, Path: []topology.LinkID{c1, c2}}); err != nil {
		t.Fatal(err)
	}
	tickN(c, 60)
	rB := c.FlowRate(2)
	rA := c.FlowRate(1)
	if math.Abs(rB-3.8e6)/3.8e6 > 0.02 {
		t.Fatalf("bottlenecked flow rate = %v, want ≈ 3.8e6", rB)
	}
	if math.Abs(rA-5.7e6)/5.7e6 > 0.05 {
		t.Fatalf("max-min leftover = %v, want ≈ 5.7e6 (9.5M − 3.8M)", rA)
	}
	// the effective flow count on L1 must be below 2: B counts as a
	// fraction (eq. 3's core max-min property)
	nhat := c.Link(c1).Nhat
	if nhat >= 1.9 || nhat <= 1.0 {
		t.Fatalf("N̂ on shared link = %v, want in (1, 1.9)", nhat)
	}
}

func TestDemandLimitedFlowFreesCapacity(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path, Demand: 5e6})
	c.Register(&Flow{ID: 2, Path: path})
	tickN(c, 40)
	if got := c.FlowRate(1); math.Abs(got-5e6) > 1e3 {
		t.Fatalf("demand-limited flow = %v, want 5e6", got)
	}
	want := 0.95*100e6 - 5e6
	if got := c.FlowRate(2); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("greedy flow = %v, want ≈ %v", got, want)
	}
}

func TestPriorityWeights(t *testing.T) {
	g, path := chainGraph([]float64{90e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path, Priority: 2})
	c.Register(&Flow{ID: 2, Path: path, Priority: 1})
	tickN(c, 40)
	r1, r2 := c.FlowRate(1), c.FlowRate(2)
	if ratio := r1 / r2; math.Abs(ratio-2) > 0.05 {
		t.Fatalf("priority ratio = %v (r1=%v r2=%v), want 2", ratio, r1, r2)
	}
	total := r1 + r2
	want := 0.95 * 90e6
	if math.Abs(total-want)/want > 0.02 {
		t.Fatalf("total = %v, want ≈ %v", total, want)
	}
}

func TestPriorityAdaptationAchievesTarget(t *testing.T) {
	// section IV-A: a source reaches a desired rate by setting
	// ℘ = R_desired / R_current each round.
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path})
	c.Register(&Flow{ID: 2, Path: path})
	c.Register(&Flow{ID: 3, Path: path})
	const target = 60e6
	for i := 0; i < 100; i++ {
		c.Tick(float64(i) * c.Params.Tau)
		if cur := c.FlowRate(1); cur > 0 {
			c.SetPriority(1, clamp(target/(cur/c.flows[1].Priority), 0.1, 100))
		}
	}
	if got := c.FlowRate(1); math.Abs(got-target)/target > 0.05 {
		t.Fatalf("adaptive priority flow = %v, want ≈ %v", got, target)
	}
}

func TestReservationCarveOut(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path, MinRate: 40e6})
	c.Register(&Flow{ID: 2, Path: path})
	tickN(c, 40)
	shared := 0.95*100e6 - 40e6 // pool after carve-out
	wantReserved := 40e6 + shared/2
	wantOther := shared / 2
	if got := c.FlowRate(1); math.Abs(got-wantReserved)/wantReserved > 0.03 {
		t.Fatalf("reserved flow = %v, want ≈ %v", got, wantReserved)
	}
	if got := c.FlowRate(2); math.Abs(got-wantOther)/wantOther > 0.03 {
		t.Fatalf("unreserved flow = %v, want ≈ %v", got, wantOther)
	}
}

func TestOversubscribedReservationsTripSLA(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	var got []Violation
	c.OnViolation = func(v Violation) { got = append(got, v) }
	// 3 × 40M reservations on a 100M link: unsatisfiable SLAs
	for i := 0; i < 3; i++ {
		c.Register(&Flow{ID: FlowID(i + 1), Path: path, MinRate: 40e6})
	}
	// detection requires the breach to persist two consecutive intervals
	c.Tick(0)
	c.Tick(c.Params.Tau)
	if len(got) == 0 {
		t.Fatal("over-subscribed reservations not detected within two intervals")
	}
	if got[0].Link != path[0] && got[0].Link != g.Links[path[0]].Reverse {
		t.Fatalf("violation on unexpected link %d", got[0].Link)
	}
	if c.Violations == 0 {
		t.Fatal("violation counter not incremented")
	}
}

func TestQueuePressureReducesRate(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	fr := newFakeReader()
	c, _ := NewController(g, fr, DefaultParams())
	c.Register(&Flow{ID: 1, Path: path})
	tickN(c, 20)
	base := c.FlowRate(1)
	// a standing queue of 1M bits must cut the advertised rate by βQ/τ
	fr.queues[path[0]] = 1e6
	tickN(c, 20)
	loaded := c.FlowRate(1)
	wantDrop := 1e6 / c.Params.Tau // 20e6 at τ=50ms
	if math.Abs((base-loaded)-wantDrop)/wantDrop > 0.05 {
		t.Fatalf("rate drop = %v, want ≈ %v (βQ/τ)", base-loaded, wantDrop)
	}
}

func TestSimplifiedModeConverges(t *testing.T) {
	// eq. 5: with arrival rate Λ tracking allocation, R converges so that
	// Λ → effective capacity.
	g, path := chainGraph([]float64{100e6})
	fr := newFakeReader()
	p := DefaultParams()
	p.Mode = Simplified
	c, _ := NewController(g, fr, p)
	c.Register(&Flow{ID: 1, Path: path})
	c.Register(&Flow{ID: 2, Path: path})
	// close the loop: each interval the two flows send at their allocated
	// rates, feeding the link's arrival counter.
	for i := 0; i < 60; i++ {
		arrival := (c.FlowRate(1) + c.FlowRate(2)) * p.Tau
		fr.arrived[path[0]] += arrival
		c.Tick(float64(i) * p.Tau)
	}
	want := 0.95 * 100e6 / 2
	for id := FlowID(1); id <= 2; id++ {
		if got := c.FlowRate(id); math.Abs(got-want)/want > 0.05 {
			t.Fatalf("simplified-mode flow %d = %v, want ≈ %v", id, got, want)
		}
	}
}

func TestRegisterUnregister(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	if err := c.Register(&Flow{ID: 1, Path: path}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&Flow{ID: 1, Path: path}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := c.Register(&Flow{ID: 2, Path: nil}); err == nil {
		t.Fatal("empty path accepted")
	}
	c.Register(&Flow{ID: 3, Path: path})
	tickN(c, 20)
	twoShare := c.FlowRate(1)
	c.Unregister(3)
	tickN(c, 20)
	oneShare := c.FlowRate(1)
	if oneShare < 1.8*twoShare {
		t.Fatalf("rate after departure = %v, want ≈ 2× %v", oneShare, twoShare)
	}
	c.Unregister(3) // double unregister is a no-op
	if c.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d", c.NumFlows())
	}
	if c.FlowRate(99) != 0 {
		t.Fatal("unknown flow rate not 0")
	}
}

func TestHostOtherLimitsFlow(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	src := g.Links[path[0]].From
	c.SetHostOther(src, 2e6) // CPU/disk-bound server
	c.Register(&Flow{ID: 1, Path: path})
	tickN(c, 20)
	if got := c.FlowRate(1); math.Abs(got-2e6) > 1e3 {
		t.Fatalf("host-limited rate = %v, want 2e6", got)
	}
	if c.HostOther(src) != 2e6 {
		t.Fatal("HostOther readback")
	}
	if !math.IsInf(c.HostOther(g.Links[path[0]].To), 1) {
		t.Fatal("unset HostOther not +Inf")
	}
}

func TestSendRecvOtherLimits(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path, SendOther: 3e6})
	c.Register(&Flow{ID: 2, Path: path, RecvOther: 7e6})
	tickN(c, 20)
	if got := c.FlowRate(1); got > 3e6+1 {
		t.Fatalf("SendOther not enforced: %v", got)
	}
	if got := c.FlowRate(2); got > 7e6+1 {
		t.Fatalf("RecvOther not enforced: %v", got)
	}
}

func TestParamsValidation(t *testing.T) {
	g, _ := chainGraph([]float64{1e6})
	bad := []Params{
		{Alpha: 0, Beta: 1, Tau: 0.1, MinRate: 1},
		{Alpha: 1.5, Beta: 1, Tau: 0.1, MinRate: 1},
		{Alpha: 0.9, Beta: -1, Tau: 0.1, MinRate: 1},
		{Alpha: 0.9, Beta: 1, Tau: 0, MinRate: 1},
		{Alpha: 0.9, Beta: 1, Tau: 0.1, MinRate: 0},
	}
	for i, p := range bad {
		if _, err := NewController(g, newFakeReader(), p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestPathRate(t *testing.T) {
	g, path := chainGraph([]float64{100e6, 10e6, 50e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	tickN(c, 3)
	got := c.PathRate(path)
	want := 0.95 * 10e6
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("PathRate = %v, want ≈ %v (bottleneck)", got, want)
	}
}

func TestConservationProperty(t *testing.T) {
	// property: for random flow counts and capacities, after convergence
	// the sum of rates on a single shared link ≈ α·C (full utilisation,
	// no overshoot beyond tolerance).
	f := func(nFlows uint8, capMbRaw uint16) bool {
		n := int(nFlows%16) + 1
		capMb := float64(capMbRaw%900+100) * 1e6
		g, path := chainGraph([]float64{capMb})
		c, _ := NewController(g, newFakeReader(), DefaultParams())
		for i := 0; i < n; i++ {
			c.Register(&Flow{ID: FlowID(i + 1), Path: path})
		}
		tickN(c, 30)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += c.FlowRate(FlowID(i + 1))
		}
		want := 0.95 * capMb
		return math.Abs(sum-want)/want < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestControlMessageAccounting(t *testing.T) {
	g, path := chainGraph([]float64{1e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path})
	c.Tick(0)
	if c.ControlMessages == 0 || c.Ticks != 1 {
		t.Fatalf("accounting: msgs=%d ticks=%d", c.ControlMessages, c.Ticks)
	}
}

func BenchmarkTickTreeTopology(b *testing.B) {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		b.Fatal(err)
	}
	routes := topology.ComputeRouting(tt.Graph)
	c, err := NewController(tt.Graph, newFakeReader(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		src := tt.Clients[i%len(tt.Clients)]
		dst := tt.Servers[(i*3)%len(tt.Servers)]
		path, err := routes.Path(src, dst, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Register(&Flow{ID: FlowID(i + 1), Path: path}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(float64(i))
	}
}

func BenchmarkHierarchyUpdate(b *testing.B) {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewController(tt.Graph, newFakeReader(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	servers := map[topology.NodeID]bool{}
	for _, s := range tt.Servers {
		servers[s] = true
	}
	h, err := NewHierarchy(c, tt.Graph, servers)
	if err != nil {
		b.Fatal(err)
	}
	c.Tick(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update()
	}
}

func TestDeltaEncodingSavesControlBytes(t *testing.T) {
	g, path := chainGraph([]float64{100e6})
	c, _ := NewController(g, newFakeReader(), DefaultParams())
	c.Register(&Flow{ID: 1, Path: path})
	// converge, then run many quiet intervals: full encoding keeps paying
	// 8 bytes per link per tick, delta encoding goes silent
	tickN(c, 100)
	if c.ControlBytesDelta >= c.ControlBytesFull {
		t.Fatalf("delta %d >= full %d: no savings", c.ControlBytesDelta, c.ControlBytesFull)
	}
	if c.ControlBytesDelta == 0 {
		t.Fatal("delta encoding reported nothing at all")
	}
}

func TestVarintBytes(t *testing.T) {
	cases := []struct {
		delta float64
		want  int64
	}{
		{0, 1}, {1, 1}, {127, 1}, {128, 2}, {1e6, 3}, {-1e6, 3}, {1e18, 8},
	}
	for _, tc := range cases {
		if got := varintBytes(tc.delta); got != tc.want {
			t.Errorf("varintBytes(%v) = %d, want %d", tc.delta, got, tc.want)
		}
	}
}
