package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// peerList builds n synthetic peer URLs.
func peerList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		self    string
		peers   []string
		wantErr bool
	}{
		{"single peer", "http://a:1", []string{"http://a:1"}, false},
		{"three peers", "http://b:1", []string{"http://a:1", "http://b:1", "http://c:1"}, false},
		{"self not in list", "http://d:1", []string{"http://a:1", "http://b:1"}, true},
		{"empty list", "http://a:1", nil, true},
		{"empty self", "", []string{"http://a:1"}, true},
		{"empty peer entry", "http://a:1", []string{"http://a:1", ""}, true},
		{"trailing slash normalizes", "http://a:1/", []string{"http://a:1", "http://b:1/"}, false},
		{"duplicates collapse", "http://a:1", []string{"http://a:1", "http://a:1/", "http://b:1"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := New(tc.self, tc.peers)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("New(%q, %v): want error, got ring %v", tc.self, tc.peers, r.Peers())
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%q, %v): %v", tc.self, tc.peers, err)
			}
			if got, _ := r.Peer(r.SelfIndex()); got != r.Self() {
				t.Fatalf("SelfIndex %d resolves to %q, Self is %q", r.SelfIndex(), got, r.Self())
			}
		})
	}
}

func TestNormalizationAndOrderInvariance(t *testing.T) {
	peers := peerList(5)
	a, err := New(peers[2], peers)
	if err != nil {
		t.Fatal(err)
	}
	// The same set shuffled, with trailing slashes and a duplicate.
	shuffled := []string{peers[4] + "/", peers[1], peers[3], peers[0], peers[2], peers[0] + "/"}
	b, err := New(peers[2]+"/", shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("len %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		pa, _ := a.Peer(i)
		pb, _ := b.Peer(i)
		if pa != pb {
			t.Fatalf("peer %d: %q vs %q — ordering must be list-order independent", i, pa, pb)
		}
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("v1-key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q across equivalent rings", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestPlacementDeterministicAcrossPeers(t *testing.T) {
	peers := peerList(4)
	rings := make([]*Ring, len(peers))
	for i, self := range peers {
		r, err := New(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("v1-%032x", rand.New(rand.NewSource(int64(i))).Uint64())
		want := rings[0].OwnerIndex(key)
		for _, r := range rings[1:] {
			if got := r.OwnerIndex(key); got != want {
				t.Fatalf("key %q: peer disagreement, owner %d vs %d", key, got, want)
			}
		}
		if rings[want].OwnsSelf(key) != true {
			t.Fatalf("owner %d does not believe it owns %q", want, key)
		}
		if rank := rings[0].Rank(key); rank[0] != rings[0].Owner(key) {
			t.Fatalf("Rank(%q)[0] = %q, Owner = %q", key, rank[0], rings[0].Owner(key))
		}
	}
}

// TestBalance pins placement uniformity with a loose chi-square bound:
// 10k uniform keys over k peers should land ~n/k each. For a uniform
// hash the chi-square statistic concentrates around k-1; a bound of
// 4·(k-1)+16 is far above any honest fluctuation (p ≪ 1e-6 to trip) but
// catches gross skew — a broken mix, a peer that never wins.
func TestBalance(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		k := k
		t.Run(fmt.Sprintf("%dpeers", k), func(t *testing.T) {
			peers := peerList(k)
			r, err := New(peers[0], peers)
			if err != nil {
				t.Fatal(err)
			}
			const n = 10000
			counts := make([]int, k)
			for i := 0; i < n; i++ {
				// Keys shaped like real spec hashes: a version prefix and
				// hex digits.
				counts[r.OwnerIndex(fmt.Sprintf("v1-%032x", uint64(i)*0x9e3779b97f4a7c15))]++
			}
			exp := float64(n) / float64(k)
			chi2 := 0.0
			for _, c := range counts {
				d := float64(c) - exp
				chi2 += d * d / exp
			}
			if limit := 4.0*float64(k-1) + 16; chi2 > limit {
				t.Fatalf("chi-square %.1f over %.1f: counts %v, expected ~%.0f per peer", chi2, limit, counts, exp)
			}
			for i, c := range counts {
				if c == 0 {
					t.Fatalf("peer %d owns zero of %d keys: %v", i, n, counts)
				}
			}
		})
	}
}

// TestMinimalDisruption pins the rendezvous guarantee the fleet cache
// depends on: removing one of N peers remaps exactly the keys that peer
// owned — every key owned by a survivor keeps its owner, so a node loss
// never invalidates surviving caches.
func TestMinimalDisruption(t *testing.T) {
	const n = 10000
	peers := peerList(5)
	full, err := New(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	removed := peers[3]
	var survivors []string
	for _, p := range peers {
		if p != removed {
			survivors = append(survivors, p)
		}
	}
	small, err := New(peers[0], survivors)
	if err != nil {
		t.Fatal(err)
	}
	remapped, ownedByRemoved := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("v1-%032x", uint64(i)*0x9e3779b97f4a7c15)
		before := full.Owner(key)
		after := small.Owner(key)
		if before == removed {
			ownedByRemoved++
			remapped++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q → %q although its owner survived", key, before, after)
		}
	}
	if ownedByRemoved == 0 {
		t.Fatal("removed peer owned no keys; balance test should have caught this")
	}
	// ~1/N of the keyspace, loosely: within a factor of two of n/5.
	if lo, hi := n/10, 2*n/5; ownedByRemoved < lo || ownedByRemoved > hi {
		t.Fatalf("removed peer owned %d of %d keys, outside the loose [%d, %d] 1/N band", ownedByRemoved, n, lo, hi)
	}
}
