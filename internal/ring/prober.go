package ring

import (
	"context"
	"sync"
	"time"
)

// Health-scoring constants: each observation (a periodic probe or an
// inline transport failure reported by the forwarding path) folds into
// an exponentially weighted moving score per peer, score' = α·obs +
// (1-α)·score with obs ∈ {0, 1}. A peer is up while its score is at or
// above upThreshold. With α = 0.5 and the threshold below, a healthy
// peer (score 1.0) survives one missed probe (0.5) but goes down on the
// second (0.25), and a dead peer comes back up after a single
// successful probe (0.25 → 0.625) — fast ejection, faster recovery,
// and no flapping on one dropped packet.
const (
	probeAlpha  = 0.5
	upThreshold = 0.35
)

// PeerHealth is one peer's health snapshot, for metrics and status
// pages.
type PeerHealth struct {
	// Peer is the normalized peer URL.
	Peer string
	// Up reports whether the peer is considered reachable.
	Up bool
	// Score is the current EWMA health score in [0, 1].
	Score float64
}

// Prober tracks per-peer up/down health for a ring. Observations come
// from two sources: periodic probes (Start's loop, or CheckOnce for
// deterministic tests) and inline reports from the forwarding path
// (ReportFailure/ReportSuccess — a failed forward is evidence exactly
// like a failed probe, and marking it immediately spares the next
// request the same timeout). Self is always up and never probed.
type Prober struct {
	self  string
	peers []string // probed peers: the ring minus self
	probe func(ctx context.Context, peer string) bool

	mu    sync.Mutex
	score map[string]float64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewProber builds a prober for the given ring using probe to test one
// peer (true = healthy). Every peer starts healthy: a fleet boots
// optimistic and ejects peers on evidence, rather than refusing to
// forward until the first probe round completes.
func NewProber(r *Ring, probe func(ctx context.Context, peer string) bool) *Prober {
	p := &Prober{
		self:  r.Self(),
		probe: probe,
		score: make(map[string]float64, r.Len()),
		stop:  make(chan struct{}),
	}
	for _, peer := range r.Peers() {
		p.score[peer] = 1.0
		if peer != p.self {
			p.peers = append(p.peers, peer)
		}
	}
	return p
}

// Up reports whether peer is considered reachable. Self is always up;
// unknown peers are down.
func (p *Prober) Up(peer string) bool {
	if peer == p.self {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.score[peer]
	return ok && s >= upThreshold
}

// observe folds one observation into peer's score.
func (p *Prober) observe(peer string, healthy bool) {
	if peer == p.self {
		return
	}
	obs := 0.0
	if healthy {
		obs = 1.0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.score[peer]; ok {
		p.score[peer] = probeAlpha*obs + (1-probeAlpha)*s
	}
}

// ReportFailure folds an inline transport failure (a forward or proxy
// that could not reach the peer) into the peer's health, as strong as a
// failed probe.
func (p *Prober) ReportFailure(peer string) { p.observe(peer, false) }

// ReportSuccess folds an inline success into the peer's health; the
// forwarding path calls it on every completed exchange so a busy fleet
// barely needs the background probes.
func (p *Prober) ReportSuccess(peer string) { p.observe(peer, true) }

// CheckOnce runs one synchronous probe round over every peer (self
// excluded), in parallel, folding each outcome into the scores. Tests
// call it directly to drive health transitions deterministically.
func (p *Prober) CheckOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, peer := range p.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			p.observe(peer, p.probe(ctx, peer))
		}(peer)
	}
	wg.Wait()
}

// Snapshot returns every peer's health (self included, always up) in
// sorted ring order, for the metrics exposition.
func (p *Prober) Snapshot() []PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerHealth, 0, len(p.score))
	for peer, s := range p.score {
		h := PeerHealth{Peer: peer, Up: s >= upThreshold, Score: s}
		if peer == p.self {
			h.Up, h.Score = true, 1.0
		}
		//scda:maprange-ok sortHealth below restores ring order (alloc-free insertion sort, not sort.Slice)
		out = append(out, h)
	}
	sortHealth(out)
	return out
}

// sortHealth orders a health snapshot by peer URL (ring order).
func sortHealth(hs []PeerHealth) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && hs[j].Peer < hs[j-1].Peer; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}

// Start launches the background probe loop at the given interval; Stop
// ends it. Starting twice is a programmer error (the loop is owned by
// one service).
func (p *Prober) Start(interval time.Duration) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		//scda:wallclock-ok the EWMA health prober is real-time by design; placement itself stays deterministic
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				p.CheckOnce(ctx)
				cancel()
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop ends the background probe loop (if any) and waits for it.
// Idempotent; safe without Start.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
