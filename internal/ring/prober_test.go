package ring

import (
	"context"
	"sync"
	"testing"
	"time"
)

// testProber builds a 3-peer ring (self = first peer) whose probe
// consults a mutable health map, so tests drive transitions exactly.
func testProber(t *testing.T) (*Prober, *Ring, map[string]bool, *sync.Mutex) {
	t.Helper()
	peers := peerList(3)
	r, err := New(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	healthy := map[string]bool{peers[1]: true, peers[2]: true}
	p := NewProber(r, func(ctx context.Context, peer string) bool {
		mu.Lock()
		defer mu.Unlock()
		return healthy[peer]
	})
	return p, r, healthy, &mu
}

func TestProberTransitions(t *testing.T) {
	p, r, healthy, mu := testProber(t)
	peers := r.Peers()
	ctx := context.Background()

	// Boot: everyone up, optimistic.
	for _, peer := range peers {
		if !p.Up(peer) {
			t.Fatalf("peer %q not up at boot", peer)
		}
	}

	// One failed round: score 1.0 → 0.5, still up (no flapping on one
	// dropped probe). Two: 0.25, down.
	mu.Lock()
	healthy[peers[1]] = false
	mu.Unlock()
	p.CheckOnce(ctx)
	if !p.Up(peers[1]) {
		t.Fatal("one failed probe must not eject a peer")
	}
	p.CheckOnce(ctx)
	if p.Up(peers[1]) {
		t.Fatal("two failed probes must eject the peer")
	}
	if !p.Up(peers[2]) {
		t.Fatal("healthy peer ejected alongside the sick one")
	}

	// Recovery: one successful probe brings it back (0.25 → 0.625).
	mu.Lock()
	healthy[peers[1]] = true
	mu.Unlock()
	p.CheckOnce(ctx)
	if !p.Up(peers[1]) {
		t.Fatal("one successful probe must recover the peer")
	}
}

func TestProberInlineReports(t *testing.T) {
	p, r, _, _ := testProber(t)
	peer := r.Peers()[2]

	// Inline failures are as strong as failed probes: two eject.
	p.ReportFailure(peer)
	if !p.Up(peer) {
		t.Fatal("one inline failure must not eject")
	}
	p.ReportFailure(peer)
	if p.Up(peer) {
		t.Fatal("two inline failures must eject")
	}
	p.ReportSuccess(peer)
	if !p.Up(peer) {
		t.Fatal("an inline success must recover the peer")
	}
}

func TestProberSelfAlwaysUp(t *testing.T) {
	p, r, _, _ := testProber(t)
	self := r.Self()
	p.ReportFailure(self)
	p.ReportFailure(self)
	p.ReportFailure(self)
	if !p.Up(self) {
		t.Fatal("self must always be up")
	}
	for _, h := range p.Snapshot() {
		if h.Peer == self && (!h.Up || h.Score != 1.0) {
			t.Fatalf("self snapshot %+v not pinned healthy", h)
		}
	}
}

func TestProberSnapshotSortedAndUnknownDown(t *testing.T) {
	p, r, _, _ := testProber(t)
	if p.Up("http://nobody:1") {
		t.Fatal("unknown peer must be down")
	}
	snap := p.Snapshot()
	if len(snap) != r.Len() {
		t.Fatalf("snapshot has %d entries, ring %d", len(snap), r.Len())
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Peer < snap[i-1].Peer {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Peer, snap[i].Peer)
		}
	}
}

func TestProberStartStop(t *testing.T) {
	p, _, healthy, mu := testProber(t)
	peers := peerList(3)
	mu.Lock()
	healthy[peers[1]] = false
	mu.Unlock()
	p.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for p.Up(peers[1]) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Up(peers[1]) {
		t.Fatal("background loop never ejected the dead peer")
	}
	p.Stop()
	p.Stop() // idempotent
}
