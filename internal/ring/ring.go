// Package ring is the placement layer of distributed scda-serve: a
// static fleet of peers agreeing, with no coordination protocol, on
// which peer owns which content-addressed key.
//
// Placement is rendezvous (highest-random-weight) hashing: every peer
// scores every key with an independent hash of (peer, key), and the
// peer with the highest score owns the key. Rendezvous hashing has the
// two properties the fleet cache needs:
//
//   - Determinism without state: any peer holding the same peer list
//     computes the same owner for any key, so routing needs no gossip,
//     no leader, and no shared table — the spec hash *is* the route.
//   - Minimal disruption: removing one of N peers remaps exactly the
//     keys that peer owned (~1/N of the keyspace) and no others, so a
//     node loss never invalidates the surviving peers' caches.
//
// The peer list is normalized (trailing slashes trimmed, duplicates
// dropped) and sorted, so peers started with the same set of URLs in
// any order agree on both placement and the node indices that prefix
// fleet job IDs.
//
// The companion Prober tracks per-peer up/down health from periodic
// probes (EWMA-style scoring), letting the service fall back to local
// execution when an owner is down — degraded but available, never
// wrong, since scenario runs are deterministic everywhere.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Ring is an immutable rendezvous-hash ring over a static peer list.
// Create with New; the zero value is not usable.
type Ring struct {
	peers []string // normalized, sorted, unique
	self  int      // index of this process's own URL in peers
}

// New builds a ring over the given peer base URLs (e.g.
// "http://10.0.0.1:8080"), one of which must be self — the URL this
// process is reachable at. The list is normalized (trailing slashes
// trimmed, duplicates collapsed) and sorted, so every peer handed the
// same set in any order builds an identical ring.
func New(self string, peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("ring: empty peer list")
	}
	self = normalize(self)
	if self == "" {
		return nil, fmt.Errorf("ring: empty self URL")
	}
	seen := make(map[string]bool, len(peers))
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		n := normalize(p)
		if n == "" {
			return nil, fmt.Errorf("ring: empty peer URL in list %q", peers)
		}
		if !seen[n] {
			seen[n] = true
			norm = append(norm, n)
		}
	}
	sort.Strings(norm)
	r := &Ring{peers: norm, self: -1}
	for i, p := range norm {
		if p == self {
			r.self = i
		}
	}
	if r.self < 0 {
		return nil, fmt.Errorf("ring: self %q is not in the peer list %v", self, norm)
	}
	return r, nil
}

// normalize canonicalizes one peer URL: surrounding space and trailing
// slashes dropped, so "http://a:1/" and "http://a:1" are the same peer.
func normalize(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}

// Self returns this process's own normalized peer URL.
func (r *Ring) Self() string { return r.peers[r.self] }

// SelfIndex returns this process's node index — the position of its URL
// in the sorted peer list, stable fleet-wide, used to prefix job IDs.
func (r *Ring) SelfIndex() int { return r.self }

// Len reports the number of peers.
func (r *Ring) Len() int { return len(r.peers) }

// Peers returns the normalized, sorted peer list (a copy).
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Peer returns the peer URL at node index i; ok is false out of range.
func (r *Ring) Peer(i int) (string, bool) {
	if i < 0 || i >= len(r.peers) {
		return "", false
	}
	return r.peers[i], true
}

// Index returns the node index of the given peer URL; ok is false for a
// URL outside the ring.
func (r *Ring) Index(peer string) (int, bool) {
	n := normalize(peer)
	for i, p := range r.peers {
		if p == n {
			return i, true
		}
	}
	return 0, false
}

// Owner returns the peer that owns key: the rendezvous winner. Every
// peer holding the same list computes the same owner.
func (r *Ring) Owner(key string) string {
	return r.peers[r.OwnerIndex(key)]
}

// OwnerIndex returns the owning peer's node index for key.
func (r *Ring) OwnerIndex(key string) int {
	best, bestScore := 0, uint64(0)
	for i, p := range r.peers {
		if s := score(p, key); s > bestScore || i == 0 {
			best, bestScore = i, s
		}
	}
	return best
}

// OwnsSelf reports whether this process owns key — the local-execution
// criterion.
func (r *Ring) OwnsSelf(key string) bool { return r.OwnerIndex(key) == r.self }

// Rank returns every peer ordered by descending rendezvous score for
// key: Rank(key)[0] is the owner, and the remainder is the deterministic
// failover order a future replication layer would walk.
func (r *Ring) Rank(key string) []string {
	type scored struct {
		peer string
		s    uint64
	}
	all := make([]scored, len(r.peers))
	for i, p := range r.peers {
		all[i] = scored{p, score(p, key)}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].s > all[j].s })
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.peer
	}
	return out
}

// score is the rendezvous weight of (peer, key): FNV-1a 64 over the
// peer URL, a NUL separator (so peer/key boundaries cannot alias), and
// the key. Keys here are scenario spec hashes — already uniform — so a
// fast non-cryptographic mix is enough for balance.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
