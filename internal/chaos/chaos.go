// Package chaos is the service's deterministic fault injector: a small,
// seed-driven source of synthetic failures — handler latency, forced job
// panics, disk-cache I/O errors, dropped event-stream connections — wired
// into scda-serve behind the -chaos flag so the robustness layer
// (admission control, panic isolation, the job journal, client retries)
// can be exercised continuously instead of only when real hardware
// misbehaves.
//
// Determinism matters because the injector runs in CI: every decision is
// drawn from one seeded PRNG, so a given seed produces one reproducible
// fault sequence per draw order. (Across goroutines the draw order follows
// the scheduler, so counts are reproducible statistically, not bit-exactly
// — the chaos smoke asserts invariants, never exact tallies.)
//
// The zero injector is inert: every method on a nil *Injector reports "no
// fault", so call sites need no enabled-guard and the production fast path
// costs one nil check.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config holds the per-fault injection rates, each a probability in
// [0, 1] applied independently at that fault's injection point.
type Config struct {
	// Seed drives the PRNG behind every decision; the same seed replays
	// the same fault sequence for a fixed draw order.
	Seed int64
	// Latency is the probability that one /v1 request is delayed.
	Latency float64
	// MaxLatency bounds the injected delay (uniform in (0, MaxLatency];
	// 0 = the 50ms default).
	MaxLatency time.Duration
	// Panic is the probability that one job compute panics mid-run.
	Panic float64
	// DiskErr is the probability that one disk-cache read or write is
	// failed as if the I/O errored (reads miss, writes are dropped).
	DiskErr float64
	// DropStream is the probability, per event batch, that a live NDJSON
	// stream connection is severed.
	DropStream float64
}

// Injector draws fault decisions from a seeded PRNG under a mutex. Create
// with New or Parse; nil is a valid, inert injector.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	// Injection tallies, for tests and the chaos smoke's sanity checks.
	latencies   atomic.Int64
	panics      atomic.Int64
	diskErrs    atomic.Int64
	streamDrops atomic.Int64
}

// New returns an injector over the given rates.
func New(cfg Config) *Injector {
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Parse builds an injector from the -chaos flag syntax: comma-separated
// key=value pairs, e.g.
//
//	seed=7,latency=0.2,panic=0.1,diskerr=0.1,drop=0.1,maxlatency=50ms
//
// Unknown keys, malformed numbers and probabilities outside [0, 1] are
// errors; an empty string returns a nil (inert) injector.
func Parse(s string) (*Injector, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var cfg Config
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed: %v", err)
			}
			cfg.Seed = n
		case "maxlatency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: maxlatency: %v", err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("chaos: maxlatency %s must be positive", d)
			}
			cfg.MaxLatency = d
		case "latency", "panic", "diskerr", "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s: %v", key, err)
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: %s=%g outside [0, 1]", key, p)
			}
			switch key {
			case "latency":
				cfg.Latency = p
			case "panic":
				cfg.Panic = p
			case "diskerr":
				cfg.DiskErr = p
			case "drop":
				cfg.DropStream = p
			}
		default:
			return nil, fmt.Errorf("chaos: unknown key %q (want seed, latency, panic, diskerr, drop, maxlatency)", key)
		}
	}
	return New(cfg), nil
}

// draw returns true with probability p, plus a uniform fraction for
// magnitude decisions, consuming exactly two PRNG values per call so the
// sequence is stable regardless of which fault is being decided.
func (i *Injector) draw(p float64) (bool, float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	hit := i.rng.Float64() < p
	frac := i.rng.Float64()
	return hit, frac
}

// HandlerLatency reports the synthetic delay to impose on one /v1 request:
// 0 when this request is spared, otherwise a uniform duration in
// (0, MaxLatency].
func (i *Injector) HandlerLatency() time.Duration {
	if i == nil || i.cfg.Latency <= 0 {
		return 0
	}
	hit, frac := i.draw(i.cfg.Latency)
	if !hit {
		return 0
	}
	i.latencies.Add(1)
	d := time.Duration(frac * float64(i.cfg.MaxLatency))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// PanicJob reports whether this job compute should be forced to panic.
func (i *Injector) PanicJob() bool {
	if i == nil || i.cfg.Panic <= 0 {
		return false
	}
	hit, _ := i.draw(i.cfg.Panic)
	if hit {
		i.panics.Add(1)
	}
	return hit
}

// DiskErr reports whether this disk-cache read or write should fail as if
// the underlying I/O errored.
func (i *Injector) DiskErr() bool {
	if i == nil || i.cfg.DiskErr <= 0 {
		return false
	}
	hit, _ := i.draw(i.cfg.DiskErr)
	if hit {
		i.diskErrs.Add(1)
	}
	return hit
}

// DropStream reports whether a live NDJSON stream should be severed now.
func (i *Injector) DropStream() bool {
	if i == nil || i.cfg.DropStream <= 0 {
		return false
	}
	hit, _ := i.draw(i.cfg.DropStream)
	if hit {
		i.streamDrops.Add(1)
	}
	return hit
}

// Counts reports how many faults of each kind have been injected so far
// (latency delays, job panics, disk errors, stream drops).
func (i *Injector) Counts() (latencies, panics, diskErrs, streamDrops int64) {
	if i == nil {
		return 0, 0, 0, 0
	}
	return i.latencies.Load(), i.panics.Load(), i.diskErrs.Load(), i.streamDrops.Load()
}

// String renders the active configuration for startup logging.
func (i *Injector) String() string {
	if i == nil {
		return "chaos off"
	}
	return fmt.Sprintf("chaos(seed=%d latency=%g panic=%g diskerr=%g drop=%g maxlatency=%s)",
		i.cfg.Seed, i.cfg.Latency, i.cfg.Panic, i.cfg.DiskErr, i.cfg.DropStream, i.cfg.MaxLatency)
}
