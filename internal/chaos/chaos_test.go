package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseFull(t *testing.T) {
	inj, err := Parse("seed=7,latency=0.25,panic=0.5,diskerr=0.125,drop=1,maxlatency=20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Latency: 0.25, Panic: 0.5, DiskErr: 0.125, DropStream: 1, MaxLatency: 20 * time.Millisecond}
	if inj.cfg != want {
		t.Fatalf("parsed %+v, want %+v", inj.cfg, want)
	}
	if s := inj.String(); !strings.Contains(s, "seed=7") || !strings.Contains(s, "drop=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestParseEmptyIsInert(t *testing.T) {
	inj, err := Parse("   ")
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatalf("blank spec parsed to %v, want nil", inj)
	}
	// The nil injector must answer every method without faulting.
	if inj.HandlerLatency() != 0 || inj.PanicJob() || inj.DiskErr() || inj.DropStream() {
		t.Fatal("nil injector injected a fault")
	}
	if l, p, d, s := inj.Counts(); l+p+d+s != 0 {
		t.Fatal("nil injector counted faults")
	}
	if inj.String() != "chaos off" {
		t.Fatalf("nil String() = %q", inj.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"latency",          // not key=value
		"latency=1.5",      // probability out of range
		"panic=-0.1",       // negative probability
		"panic=x",          // not a number
		"seed=abc",         // bad seed
		"maxlatency=-5ms",  // non-positive duration
		"maxlatency=cheap", // bad duration
		"frobnicate=1",     // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	// Same seed, same draw order → identical fault sequence; a different
	// seed diverges. Single-goroutine draw order is the contract.
	draw := func(seed int64) []bool {
		inj := New(Config{Seed: seed, Panic: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.PanicJob()
		}
		return out
	}
	a, b, c := draw(11), draw(11), draw(12)
	if fmtBools(a) != fmtBools(b) {
		t.Fatal("same seed produced different sequences")
	}
	if fmtBools(a) == fmtBools(c) {
		t.Fatal("different seeds produced identical sequences (suspicious)")
	}
}

func TestCertainAndImpossibleFaults(t *testing.T) {
	always := New(Config{Panic: 1, DiskErr: 1, DropStream: 1, Latency: 1, MaxLatency: 10 * time.Millisecond})
	for i := 0; i < 16; i++ {
		if !always.PanicJob() || !always.DiskErr() || !always.DropStream() {
			t.Fatal("probability-1 fault was spared")
		}
		if d := always.HandlerLatency(); d <= 0 || d > 10*time.Millisecond {
			t.Fatalf("latency %s outside (0, 10ms]", d)
		}
	}
	l, p, d, s := always.Counts()
	if l != 16 || p != 16 || d != 16 || s != 16 {
		t.Fatalf("counts %d/%d/%d/%d, want 16 each", l, p, d, s)
	}
	never := New(Config{}) // all probabilities zero
	for i := 0; i < 16; i++ {
		if never.PanicJob() || never.DiskErr() || never.DropStream() || never.HandlerLatency() != 0 {
			t.Fatal("probability-0 fault fired")
		}
	}
}

func fmtBools(bs []bool) string {
	var sb strings.Builder
	for _, b := range bs {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
