package flowsim

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// benchWorkload builds n flows with 3-hop paths drawn from a pool of links
// by a fixed LCG, so the workload is identical across runs and across
// solver implementations.
func benchWorkload(n int) ([]*Flow, []float64) {
	nLinks := n/2 + 4
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e9
	}
	state := uint64(12345)
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	flows := make([]*Flow, n)
	for i := range flows {
		path := []topology.LinkID{
			topology.LinkID(next(nLinks)),
			topology.LinkID(next(nLinks)),
			topology.LinkID(next(nLinks)),
		}
		flows[i] = &Flow{ID: int64(i), Path: path, Size: 1e6, Weight: 1}
	}
	return flows, caps
}

// BenchmarkMaxMinRates measures one full progressive-filling recomputation,
// the operation the fluid simulator performs on every flow arrival and
// departure.
func BenchmarkMaxMinRates(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			flows, caps := benchWorkload(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MaxMinRates(flows, caps)
			}
		})
	}
}
