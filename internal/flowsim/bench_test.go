package flowsim

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// benchWorkload builds n flows with 3-hop paths drawn from a pool of links
// by a fixed LCG, so the workload is identical across runs and across
// solver implementations.
func benchWorkload(n int) ([]*Flow, []float64) {
	nLinks := n/2 + 4
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e9
	}
	state := uint64(12345)
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	flows := make([]*Flow, n)
	for i := range flows {
		path := []topology.LinkID{
			topology.LinkID(next(nLinks)),
			topology.LinkID(next(nLinks)),
			topology.LinkID(next(nLinks)),
		}
		flows[i] = &Flow{ID: int64(i), Path: path, Size: 1e6, Weight: 1}
	}
	return flows, caps
}

// BenchmarkMaxMinRates measures one full progressive-filling recomputation,
// the operation the incremental solver's prefix replay avoids. Uses an
// owned warm Solver (not the pooled MaxMinRates wrapper) so the 0 allocs/op
// figure is a stable property of the solver, not of sync.Pool weather.
func BenchmarkMaxMinRates(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			flows, caps := benchWorkload(n)
			sv := NewSolver(len(caps))
			sv.Solve(flows, caps) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sv.Solve(flows, caps)
			}
		})
	}
}

// churnState holds a warm incremental allocation plus one spare flow, so a
// benchmark op is exactly one remove + one add (the event pattern the
// Simulator generates) with zero setup inside the timed loop.
type churnState struct {
	inc   *Incremental
	caps  []float64
	flows []*Flow
	spare *Flow
	i     int
}

func newChurnState(b testing.TB, n int) *churnState {
	flows, caps := benchWorkload(n + 1)
	spare := flows[n]
	flows = flows[:n]
	inc := NewIncremental(caps)
	if err := inc.Apply(flows, nil); err != nil {
		b.Fatal(err)
	}
	return &churnState{inc: inc, caps: caps, flows: flows, spare: spare}
}

// step retires one resident flow and admits the previous victim in its
// place, cycling through the population so successive ops hit different
// links.
func (c *churnState) step(b testing.TB) {
	victim := c.flows[c.i]
	c.oneOut(b, victim, c.spare)
	c.flows[c.i] = c.spare
	c.spare = victim
	c.i = (c.i + 1) % len(c.flows)
}

func (c *churnState) oneOut(b testing.TB, out, in_ *Flow) {
	if err := c.inc.Apply([]*Flow{in_}, []*Flow{out}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChurn measures the per-event cost of keeping max-min rates
// exact under single-flow churn: "incremental" uses the prefix-replaying
// Incremental solver, "full" re-solves from scratch after every event
// (the pre-incremental behavior, kept as the speedup baseline at 10k —
// at 100k a full solve per event is too slow to benchmark honestly).
func BenchmarkChurn(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("incremental/flows=%d", n), func(b *testing.B) {
			c := newChurnState(b, n)
			c.step(b) // warm scratch and trace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.step(b)
			}
		})
	}
	b.Run("full/flows=10000", func(b *testing.B) {
		c := newChurnState(b, 10000)
		sv := NewSolver(len(c.caps))
		sv.Solve(c.flows, c.caps)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// same event pattern, but answered with a full re-solve
			victim := c.flows[c.i]
			c.flows[c.i] = c.spare
			c.spare = victim
			c.i = (c.i + 1) % len(c.flows)
			sv.Solve(c.flows, c.caps)
		}
	})
}

// fluidBench precomputes the 1000-flow three-tier workload (paths
// resolved once) so the benchmark times the simulator, not routing.
type fluidBench struct {
	sim   *Simulator
	paths [][]topology.LinkID
}

func newFluidBench(b testing.TB) *fluidBench {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		b.Fatal(err)
	}
	r := topology.ComputeRouting(tt.Graph)
	fb := &fluidBench{sim: New(tt.Graph)}
	for j := 0; j < 1000; j++ {
		src := tt.Clients[j%len(tt.Clients)]
		dst := tt.Servers[(j*3)%len(tt.Servers)]
		path, err := r.Path(src, dst, uint64(j))
		if err != nil {
			b.Fatal(err)
		}
		fb.paths = append(fb.paths, path)
	}
	return fb
}

func (fb *fluidBench) run(b testing.TB) {
	s := fb.sim
	s.Reset()
	for j, path := range fb.paths {
		f := s.AcquireFlow()
		f.ID = int64(j)
		f.Path = path
		f.Size = 1e6
		if err := s.AddFlow(float64(j)*0.001, f); err != nil {
			b.Fatal(err)
		}
	}
	s.Run(1e6)
	if len(s.Completed) != 1000 {
		b.Fatal("incomplete")
	}
}

// BenchmarkFluid1000Flows runs a full 1000-flow fluid simulation per op on
// a reused Simulator; steady state is allocation-free (pooled flows, typed
// reused heaps, incremental rate repair), guarded by
// TestSimulatorSteadyStateAllocationFree.
func BenchmarkFluid1000Flows(b *testing.B) {
	fb := newFluidBench(b)
	fb.run(b) // warm pools and scratch to high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.run(b)
	}
}
