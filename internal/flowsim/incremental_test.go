package flowsim

import (
	"math"
	"testing"

	"repro/internal/topology"
)

// churnRNG is a tiny deterministic generator for the differential tests
// (SplitMix64 core), independent of the benchmark LCG.
type churnRNG uint64

func (r *churnRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *churnRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// float in (0, 1]
func (r *churnRNG) pos() float64 { return float64(r.next()>>11+1) / (1 << 53) }

func randomFlow(r *churnRNG, id int64, nLinks, maxHops int) *Flow {
	h := r.intn(maxHops) + 1
	path := make([]topology.LinkID, h)
	for i := range path {
		path[i] = topology.LinkID(r.intn(nLinks))
	}
	return &Flow{ID: id, Path: path, Size: 1, Weight: 1 + 4*r.pos()}
}

// checkAgainstFullSolve asserts that the incremental allocation is
// bit-for-bit what a fresh full Solve over the same flows computes.
// Solve clobbers Rate in place; since equality is required, a passing
// check leaves the incremental rates intact.
func checkAgainstFullSolve(t testing.TB, in *Incremental, caps []float64, got []float64) {
	t.Helper()
	flows := in.Flows()
	got = got[:0]
	for _, f := range flows {
		got = append(got, f.Rate)
	}
	fresh := NewSolver(len(caps))
	fresh.Solve(flows, caps)
	for i, f := range flows {
		if f.Rate != got[i] {
			t.Fatalf("flow %d: incremental rate %v != full-solve rate %v (diff %g)",
				f.ID, got[i], f.Rate, got[i]-f.Rate)
		}
	}
}

// TestIncrementalDifferentialChurn drives 10k randomized add/remove events
// through the Incremental solver and, after every single event, verifies
// the rates are exactly (bitwise) equal to a fresh full solve over the
// same flow list. This is the equivalence contract the prefix replay is
// built on.
func TestIncrementalDifferentialChurn(t *testing.T) {
	events := 10000
	if testing.Short() {
		events = 1500
	}
	const nLinks = 100
	caps := make([]float64, nLinks)
	rng := churnRNG(0xc0ffee)
	for i := range caps {
		caps[i] = 1e6 * (1 + 9*rng.pos()) // heterogeneous capacities
	}
	in := NewIncremental(caps)
	var active []*Flow
	var got []float64
	nextID := int64(0)
	for ev := 0; ev < events; ev++ {
		// bias toward adds until ~500 flows resident, then balanced
		if len(active) == 0 || (len(active) < 500 && rng.intn(3) > 0) || rng.intn(2) == 0 {
			f := randomFlow(&rng, nextID, nLinks, 5)
			nextID++
			if err := in.Add(f); err != nil {
				t.Fatal(err)
			}
			active = append(active, f)
		} else {
			i := rng.intn(len(active))
			f := active[i]
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			if err := in.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
		checkAgainstFullSolve(t, in, caps, got)
	}
	if in.Flows() == nil || len(in.Flows()) == 0 {
		t.Fatal("churn ended with no resident flows; test lost its bite")
	}
}

// TestIncrementalBatchApply covers the Simulator's batch pattern:
// simultaneous adds and removes repaired in one Apply.
func TestIncrementalBatchApply(t *testing.T) {
	const nLinks = 40
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e6
	}
	rng := churnRNG(7)
	in := NewIncremental(caps)
	var active []*Flow
	var got []float64
	nextID := int64(0)
	for ev := 0; ev < 300; ev++ {
		var add, rm []*Flow
		for k := rng.intn(4); k > 0; k-- {
			f := randomFlow(&rng, nextID, nLinks, 4)
			nextID++
			add = append(add, f)
		}
		for k := rng.intn(3); k > 0 && len(active) > 0; k-- {
			i := rng.intn(len(active))
			rm = append(rm, active[i])
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
		}
		if len(add) == 0 && len(rm) == 0 {
			continue
		}
		if err := in.Apply(add, rm); err != nil {
			t.Fatal(err)
		}
		active = append(active, add...)
		checkAgainstFullSolve(t, in, caps, got)
	}
}

// TestIncrementalChangedList verifies the changed list is sound and
// complete: every flow whose rate differs from before the event is listed
// with its exact prior rate, added flows are always listed (NaN prior),
// and no unchanged flow appears.
func TestIncrementalChangedList(t *testing.T) {
	const nLinks = 30
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e6
	}
	rng := churnRNG(42)
	in := NewIncremental(caps)
	var active []*Flow
	prior := map[*Flow]float64{}
	nextID := int64(0)
	for ev := 0; ev < 400; ev++ {
		var f *Flow
		added := false
		if len(active) < 5 || rng.intn(2) == 0 {
			f = randomFlow(&rng, nextID, nLinks, 4)
			nextID++
			added = true
			if err := in.Add(f); err != nil {
				t.Fatal(err)
			}
			active = append(active, f)
		} else {
			i := rng.intn(len(active))
			f = active[i]
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			if err := in.Remove(f); err != nil {
				t.Fatal(err)
			}
			delete(prior, f)
		}
		changed, old := in.Changed()
		if len(changed) != len(old) {
			t.Fatal("changed/old length mismatch")
		}
		inChanged := map[*Flow]bool{}
		for i, cf := range changed {
			inChanged[cf] = true
			if cf == f && added {
				if !math.IsNaN(old[i]) {
					t.Fatalf("added flow's old rate %v, want NaN", old[i])
				}
				continue
			}
			p, ok := prior[cf]
			if !ok {
				t.Fatalf("changed flow %d not active before event", cf.ID)
			}
			if p == cf.Rate {
				t.Fatalf("flow %d listed as changed but rate %v unchanged", cf.ID, p)
			}
			if old[i] != p {
				t.Fatalf("flow %d old rate %v, want %v", cf.ID, old[i], p)
			}
		}
		if added && !inChanged[f] {
			t.Fatal("added flow missing from changed list")
		}
		for _, af := range in.Flows() {
			if !inChanged[af] && prior[af] != af.Rate {
				t.Fatalf("flow %d rate moved %v → %v without being listed",
					af.ID, prior[af], af.Rate)
			}
		}
		for _, af := range in.Flows() {
			prior[af] = af.Rate
		}
	}
}

// TestIncrementalValidation exercises the atomic batch validation:
// duplicate adds, removes of non-members, and overlap between the lists
// must be rejected with no state change.
func TestIncrementalValidation(t *testing.T) {
	caps := []float64{1e6, 1e6}
	in := NewIncremental(caps)
	a := &Flow{ID: 1, Path: []topology.LinkID{0}, Size: 1, Weight: 1}
	b := &Flow{ID: 2, Path: []topology.LinkID{1}, Size: 1, Weight: 1}
	if err := in.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(a); err == nil {
		t.Fatal("double add accepted")
	}
	if err := in.Remove(b); err == nil {
		t.Fatal("remove of non-member accepted")
	}
	if err := in.Apply([]*Flow{b}, []*Flow{b}); err == nil {
		t.Fatal("flow in both lists accepted")
	}
	if err := in.Apply([]*Flow{b, b}, nil); err == nil {
		t.Fatal("duplicate within add list accepted")
	}
	if err := in.Apply(nil, []*Flow{a, a}); err == nil {
		t.Fatal("duplicate within remove list accepted")
	}
	if err := in.Apply([]*Flow{{ID: 3, Path: nil, Weight: 1}}, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := in.Apply([]*Flow{{ID: 4, Path: []topology.LinkID{0}}}, nil); err == nil {
		t.Fatal("non-positive weight accepted")
	}
	// failed batches must leave state untouched: a still in, b still out
	if n := len(in.Flows()); n != 1 || in.Flows()[0] != a {
		t.Fatalf("state disturbed by rejected batches: %d flows", n)
	}
	if err := in.Apply([]*Flow{b}, []*Flow{a}); err != nil {
		t.Fatalf("valid batch rejected after failures: %v", err)
	}
}

// TestIncrementalChurnAllocationFree guards the steady-state hot path: a
// warm Incremental processing one add + one remove per event must not
// allocate.
func TestIncrementalChurnAllocationFree(t *testing.T) {
	c := newChurnState(t, 2000)
	for i := 0; i < 50; i++ { // reach scratch high-water mark
		c.step(t)
	}
	if allocs := testing.AllocsPerRun(200, func() { c.step(t) }); allocs != 0 {
		t.Fatalf("warm incremental churn allocates %v allocs/op, want 0", allocs)
	}
}

// TestSolve10kAllocationFree guards the satellite fix for the stray
// 11 B/op once reported at BenchmarkMaxMinRates/flows=10000: a warm owned
// Solver at that size must be allocation-free.
func TestSolve10kAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-flow solves are slow")
	}
	flows, caps := benchWorkload(10000)
	sv := NewSolver(len(caps))
	sv.Solve(flows, caps)
	if allocs := testing.AllocsPerRun(3, func() { sv.Solve(flows, caps) }); allocs != 0 {
		t.Fatalf("warm Solve at 10k flows allocates %v allocs/op, want 0", allocs)
	}
}

// TestSimulatorSteadyStateAllocationFree guards the tentpole's simulator
// requirement: a warm, Reset-reused Simulator must run a whole 1000-flow
// workload — admissions, rate repairs, completions — without allocating.
func TestSimulatorSteadyStateAllocationFree(t *testing.T) {
	fb := newFluidBench(t)
	fb.run(t) // warm pools and scratch
	fb.run(t)
	if allocs := testing.AllocsPerRun(3, func() { fb.run(t) }); allocs != 0 {
		t.Fatalf("warm Simulator run allocates %v allocs/op, want 0", allocs)
	}
}

// TestSimulatorResetReuse verifies a Reset Simulator reproduces a fresh
// one exactly (finish times bitwise equal across reuse).
func TestSimulatorResetReuse(t *testing.T) {
	fb := newFluidBench(t)
	fb.run(t)
	first := make([]float64, len(fb.sim.Completed))
	for i, f := range fb.sim.Completed {
		first[i] = f.Finish
	}
	fb.run(t)
	for i, f := range fb.sim.Completed {
		if f.Finish != first[i] {
			t.Fatalf("completion %d finish %v on reuse, %v fresh", i, f.Finish, first[i])
		}
	}
	if fb.sim.PeakActive() == 0 {
		t.Fatal("peak active not tracked")
	}
}

// FuzzIncrementalSolveEquivalence fuzzes the incremental-vs-full-solve
// equivalence: bytes drive link count, capacities, and a sequence of
// add/remove events with arbitrary paths and weights; after every event
// the incremental rates must be bitwise equal to a fresh full solve.
func FuzzIncrementalSolveEquivalence(f *testing.F) {
	f.Add([]byte{8, 3, 0, 7, 1, 9, 2, 0, 5, 5, 1, 4, 8, 2, 6})
	f.Add([]byte{2, 0, 0, 0, 1, 1, 1, 2, 2, 0})
	f.Add([]byte{16, 200, 3, 3, 3, 9, 9, 1, 0, 255, 7, 7, 2, 128, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		nLinks := int(data[0])%24 + 1
		caps := make([]float64, nLinks)
		for i := range caps {
			caps[i] = 1e3 * float64(1+int(data[1+i%2])%9)
		}
		in := NewIncremental(caps)
		var active []*Flow
		var got []float64
		nextID := int64(0)
		pos := 2
		take := func() int {
			if pos >= len(data) {
				pos = 2 // wrap, keeps short inputs useful
			}
			v := int(data[pos])
			pos++
			return v
		}
		for ev := 0; ev < 60 && ev < len(data); ev++ {
			op := take()
			if len(active) == 0 || op%3 != 0 {
				hops := op%4 + 1
				path := make([]topology.LinkID, hops)
				for i := range path {
					path[i] = topology.LinkID(take() % nLinks)
				}
				w := float64(take()%16+1) / 4
				fl := &Flow{ID: nextID, Path: path, Size: 1, Weight: w}
				nextID++
				if err := in.Add(fl); err != nil {
					t.Fatal(err)
				}
				active = append(active, fl)
			} else {
				i := take() % len(active)
				fl := active[i]
				active[i] = active[len(active)-1]
				active = active[:len(active)-1]
				if err := in.Remove(fl); err != nil {
					t.Fatal(err)
				}
			}
			checkAgainstFullSolve(t, in, caps, got)
		}
	})
}
