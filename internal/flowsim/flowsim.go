// Package flowsim is a fluid-level flow simulator: flows progress at
// exact max-min fair rates computed by progressive filling, with rate
// recomputation at every flow arrival and departure.
//
// It serves three purposes in the reproduction:
//
//  1. Oracle: progressive filling is the textbook max-min allocation; the
//     ablation experiments compare the SCDA RM/RA controller's converged
//     rates against it to validate the eq. 2/3 mechanism.
//  2. Scale: fluid simulation is orders of magnitude faster than
//     packet-level simulation, enabling 100k+ concurrent flows per
//     simulated cluster — the scenario subsystem exposes it as
//     "engine": "fluid".
//  3. Incremental dynamics: the Incremental solver repairs the max-min
//     allocation after a single flow arrival or departure by replaying
//     only the filling rounds the event can affect, producing rates
//     bit-for-bit identical to a fresh full solve (see incremental.go).
//
// The solver is allocation-free in steady state: all per-solve scratch
// (residual capacities, weight sums, the candidate-link list) lives in a
// Solver that is reused across events. Links are stamped with a solve
// epoch so only the links actually touched by active flows are reset
// between solves — a solve over k flows with h-hop paths costs
// O(k·h·rounds) regardless of graph size. The Simulator is likewise
// allocation-free in steady state: flows are pooled (AcquireFlow/Reset),
// arrival and completion heaps are typed 4-ary heaps with reused entries,
// and flow sizes are materialized lazily — a flow's remaining size is only
// updated when its rate changes, so an event touches O(changed) flows, not
// O(active).
package flowsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
)

// Flow is one fluid transfer.
type Flow struct {
	ID     int64
	Path   []topology.LinkID
	Size   float64 // bits remaining (materialized lazily by the Simulator)
	Weight float64 // max-min weight (1 = neutral)

	// Rate is the current max-min rate (bits/sec), valid between events.
	Rate float64
	// Start and Finish are set by the simulator.
	Start  float64
	Finish float64

	done bool

	// solver internals
	fz  uint64 // fill epoch when this flow's rate was frozen
	pos int    // 1-based index in an Incremental's flow list; 0 = inactive

	// simulator internals
	seq  uint64  // admission sequence, for deterministic heap tie-breaks
	ver  uint32  // completion-heap entry version (stale entries are skipped)
	updT float64 // time Size was last materialized
}

// fillEpochs issues one globally unique epoch per fill, so a flow's frozen
// mark (f.fz) from any earlier solve — by this or any other Solver — can
// never collide with the current one. Monotonicity is all that matters;
// the counter never influences arithmetic, so determinism is unaffected.
var fillEpochs atomic.Uint64

// Solver holds the reusable scratch state for progressive filling. A
// Solver may be reused across solves of any size (scratch grows to the
// high-water mark) but must not be shared between concurrent goroutines;
// use one Solver per Simulator, or MaxMinRates which draws from a pool.
type Solver struct {
	epoch  uint64    // link-scratch epoch
	stamp  []uint64  // per-link: epoch when last touched
	cap    []float64 // per-link residual capacity (valid when stamped)
	weight []float64 // per-link sum of unfrozen flow weights
	cand   []int32   // candidate constrained links (weight still > 0)
}

// NewSolver returns a solver pre-sized for a graph with nLinks links.
func NewSolver(nLinks int) *Solver {
	sv := &Solver{}
	sv.ensure(nLinks)
	return sv
}

func (sv *Solver) ensure(nLinks int) {
	if len(sv.stamp) < nLinks {
		// fresh zeroed stamps are fine: epoch is always ≥ 1 inside solve,
		// so unstamped entries read as untouched
		sv.stamp = make([]uint64, nLinks)
		sv.cap = make([]float64, nLinks)
		sv.weight = make([]float64, nLinks)
	}
}

// satEps is the relative tolerance for "this link is saturated at the
// round's share". The incremental replay uses the same constant when it
// decides whether an event-path link could have participated in a round.
const satEps = 1e-12

// Solve computes weighted max-min fair rates for the active (non-done)
// flows by progressive filling: repeatedly find the most constrained link,
// freeze its unfrozen flows at the equal (weighted) share, subtract,
// repeat. capacities maps directed links (indexed by LinkID) to bits/sec.
// Every active flow is assigned a rate; flows that traverse only
// unconstrained links keep rate 0, exactly as the map-based implementation
// did.
//
//scda:noalloc guarded by the AllocsPerRun checks in flowsim_test.go
func (sv *Solver) Solve(flows []*Flow, capacities []float64) {
	sv.ensure(len(capacities))
	sv.epoch++
	ep := fillEpochs.Add(1)
	cand := sv.cand[:0]
	remaining := 0
	for _, f := range flows {
		if f.done {
			continue
		}
		remaining++
		f.Rate = 0
		for _, l := range f.Path {
			if sv.stamp[l] != sv.epoch {
				sv.stamp[l] = sv.epoch
				sv.cap[l] = capacities[l]
				sv.weight[l] = 0
				cand = append(cand, int32(l))
			}
			sv.weight[l] += f.Weight
		}
	}
	sv.cand = sv.fill(flows, ep, remaining, cand)
}

// fill runs the progressive-filling rounds over the given flows, skipping
// flows already frozen in epoch ep (or done) and marking each flow it
// freezes with ep. Its per-round arithmetic — the share expression, the
// saturation tolerance, the freeze order, the subtract-with-clamp — is the
// contract the incremental solver reproduces bit for bit (see
// incremental.go).
//
//scda:noalloc
func (sv *Solver) fill(flows []*Flow, ep uint64, remaining int, cand []int32) []int32 {
	for remaining > 0 {
		// most constrained link: min cap/weight among links with demand.
		// Each round scans only the candidate list (compacting out links
		// whose demand has been fully frozen away) instead of every link
		// in the graph.
		minShare := math.Inf(1)
		argmin := int32(-1)
		live := cand[:0]
		for _, li := range cand {
			if sv.weight[li] <= 0 {
				continue
			}
			live = append(live, li)
			if s := sv.cap[li] / sv.weight[li]; s < minShare {
				minShare = s
				argmin = li
			}
		}
		cand = live
		if math.IsInf(minShare, 1) {
			break // leftover flows traverse only unconstrained links
		}
		// freeze flows on saturated links at weight×share
		froze := false
		for _, f := range flows {
			if f.done || f.fz == ep {
				continue
			}
			sat := int32(-1)
			for _, l := range f.Path {
				if sv.weight[l] > 0 && sv.cap[l]/sv.weight[l] <= minShare*(1+satEps) {
					sat = int32(l)
					break
				}
			}
			if sat < 0 {
				continue
			}
			f.Rate = f.Weight * minShare
			f.fz = ep
			froze = true
			remaining--
			for _, l := range f.Path {
				sv.cap[l] -= f.Rate
				if sv.cap[l] < 0 {
					sv.cap[l] = 0
				}
				sv.weight[l] -= f.Weight
			}
		}
		if !froze {
			// Degenerate round: the argmin carries no unfrozen flow — its
			// weight is pure floating-point residue from subtracting a
			// drained link's flows in a different order than they were
			// accumulated (impossible with integer weights, routine with
			// fractional ones). Such a link is on no unfrozen flow's path,
			// so it can never influence a real decision; drain it and move
			// on. Skipping state-free rounds keeps incremental equivalence:
			// both solvers skip their own (differently-ordered) residues.
			sv.weight[argmin] = 0
		}
	}
	return cand
}

// solverPool backs the package-level MaxMinRates so one-shot callers stay
// cheap without owning a Solver. Solver scratch is epoch-stamped, so a
// pooled solver's leftover state cannot affect results and pooling does
// not perturb determinism.
var solverPool = sync.Pool{New: func() any { return &Solver{} }}

// MaxMinRates computes weighted max-min fair rates for flows over the
// given directed-link capacities. Callers with a hot loop should hold a
// Solver (or use Simulator, which owns one) instead: the pool can be
// emptied by a GC cycle, so this wrapper cannot guarantee 0 allocs/op.
func MaxMinRates(flows []*Flow, capacities []float64) {
	sv := solverPool.Get().(*Solver)
	sv.Solve(flows, capacities)
	solverPool.Put(sv)
}

// Simulator advances fluid flows through arrivals and completions. Rates
// are maintained by an Incremental solver (one repair per arrival or
// completion batch), flow sizes are materialized lazily (only when a
// flow's rate changes), and the next completion comes from a versioned
// 4-ary heap — so one event costs O(changed flows), plus the repair,
// rather than O(active flows).
type Simulator struct {
	g          *topology.Graph
	capacities []float64
	now        float64
	inc        *Incremental
	pending    []arrival // 4-ary min-heap by (at, seq)
	comp       []compEnt // 4-ary min-heap by (t, seq); lazily invalidated
	seq        uint64
	peakActive int

	// Completed collects finished flows in completion order.
	Completed []*Flow

	free   []*Flow // recycled flows for AcquireFlow
	addBuf []*Flow
	rmBuf  []*Flow
}

type arrival struct {
	at   float64
	seq  uint64
	flow *Flow
}

type compEnt struct {
	t    float64
	seq  uint64
	ver  uint32
	flow *Flow
}

// New creates a fluid simulator over a graph.
func New(g *topology.Graph) *Simulator {
	caps := make([]float64, len(g.Links))
	for i, l := range g.Links {
		caps[i] = l.Capacity
	}
	return &Simulator{g: g, capacities: caps, inc: NewIncremental(caps)}
}

// Now returns the fluid clock.
func (s *Simulator) Now() float64 { return s.now }

// Active returns the number of in-flight flows.
func (s *Simulator) Active() int { return len(s.inc.flows) }

// Flows returns the in-flight flows in solver order. The slice is valid
// until the next AddFlow, Run or Reset and must not be mutated. Run
// materializes every in-flight flow's Size at its horizon before
// returning, so after Run the sizes reflect exactly the bits remaining.
func (s *Simulator) Flows() []*Flow { return s.inc.flows }

// PeakActive returns the high-water mark of concurrently active flows.
func (s *Simulator) PeakActive() int { return s.peakActive }

// AcquireFlow returns a zeroed Flow, recycling one retired by Reset when
// available, so a reused Simulator admits flows without allocating.
//
//scda:noalloc warm path: a drained free list falls back to one pooled &Flow{}
func (s *Simulator) AcquireFlow() *Flow {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	return &Flow{}
}

// Reset returns the simulator to time zero for reuse: all flows — pending,
// active and completed — are recycled into the AcquireFlow free list, and
// every internal buffer keeps its capacity, so a warm Simulator runs whole
// workloads without allocating.
func (s *Simulator) Reset() {
	for _, a := range s.pending {
		s.recycle(a.flow)
	}
	for _, f := range s.inc.flows {
		s.recycle(f)
	}
	for _, f := range s.Completed {
		s.recycle(f)
	}
	s.pending = s.pending[:0]
	s.comp = s.comp[:0]
	s.Completed = s.Completed[:0]
	s.inc.Reset()
	s.now = 0
	s.seq = 0
	s.peakActive = 0
}

// recycle zeroes a retired flow into the AcquireFlow free list.
//
//scda:noalloc steady state: the free-list append is amortized pool growth
func (s *Simulator) recycle(f *Flow) {
	*f = Flow{}
	s.free = append(s.free, f)
}

// AddFlow schedules a flow arrival. Size is in bits.
func (s *Simulator) AddFlow(at float64, f *Flow) error {
	if f.Size <= 0 {
		return fmt.Errorf("flowsim: flow %d size %v", f.ID, f.Size)
	}
	if len(f.Path) == 0 {
		return fmt.Errorf("flowsim: flow %d empty path", f.ID)
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if at < s.now {
		return fmt.Errorf("flowsim: arrival %v in the past (now %v)", at, s.now)
	}
	f.seq = s.seq
	s.seq++
	s.pushArrival(arrival{at: at, seq: f.seq, flow: f})
	return nil
}

// Run advances until all flows complete or the horizon is reached.
//
//scda:noalloc guarded by the AllocsPerRun checks in incremental_test.go
func (s *Simulator) Run(horizon float64) {
	for {
		nextArr := math.Inf(1)
		if len(s.pending) > 0 {
			nextArr = s.pending[0].at
		}
		nextDone := s.peekCompletion()
		next := math.Min(nextArr, nextDone)
		if next > horizon {
			// idle (or mid-transfer) until the horizon; never move the
			// clock backwards
			if horizon > s.now {
				s.materializeAll(horizon)
				s.now = horizon
			}
			return
		}
		s.now = next
		s.addBuf = s.addBuf[:0]
		s.rmBuf = s.rmBuf[:0]
		// completions due now (bitwise ties batch into one repair)
		for s.peekCompletion() <= next {
			e := s.popCompletion()
			f := e.flow
			f.Size = 0
			f.updT = s.now
			f.done = true
			f.Finish = s.now
			s.Completed = append(s.Completed, f)
			s.rmBuf = append(s.rmBuf, f)
		}
		// arrivals due now
		for len(s.pending) > 0 && s.pending[0].at <= s.now+1e-12 {
			a := s.popArrival()
			a.flow.Start = s.now
			a.flow.updT = s.now
			s.addBuf = append(s.addBuf, a.flow)
		}
		if len(s.addBuf) == 0 && len(s.rmBuf) == 0 {
			continue
		}
		if err := s.inc.Apply(s.addBuf, s.rmBuf); err != nil {
			// AddFlow validated size/path/weight; the only way here is a
			// flow admitted twice, which is caller misuse
			panic("flowsim: " + err.Error())
		}
		changed, oldRates := s.inc.Changed()
		for i, f := range changed {
			if dt := s.now - f.updT; dt > 0 {
				f.Size -= oldRates[i] * dt
				f.updT = s.now
			}
			f.ver++
			if f.Rate > 0 {
				s.pushCompletion(compEnt{t: s.now + f.Size/f.Rate, seq: f.seq, ver: f.ver, flow: f})
			}
		}
		if n := len(s.inc.flows); n > s.peakActive {
			s.peakActive = n
		}
	}
}

// materializeAll brings every active flow's Size up to time t (used when a
// Run returns at the horizon, so callers observe consistent sizes).
//
//scda:noalloc
func (s *Simulator) materializeAll(t float64) {
	for _, f := range s.inc.flows {
		if dt := t - f.updT; dt > 0 {
			f.Size -= f.Rate * dt
			f.updT = t
		}
	}
}

// peekCompletion returns the earliest valid completion time, discarding
// stale heap entries (superseded by a rate change, or already done).
//
//scda:noalloc
func (s *Simulator) peekCompletion() float64 {
	for len(s.comp) > 0 {
		e := s.comp[0]
		if e.ver == e.flow.ver && !e.flow.done {
			return e.t
		}
		s.popCompletion()
	}
	return math.Inf(1)
}

// Typed 4-ary heaps: no interface boxing (container/heap pushes cost one
// allocation per event), shallower than binary, and entries are plain
// values in reused backing arrays.

//scda:noalloc steady state: the heap append is amortized pool growth
func (s *Simulator) pushArrival(a arrival) {
	s.pending = append(s.pending, a)
	i := len(s.pending) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !arrivalLess(s.pending[i], s.pending[p]) {
			break
		}
		s.pending[i], s.pending[p] = s.pending[p], s.pending[i]
		i = p
	}
}

//scda:noalloc
func (s *Simulator) popArrival() arrival {
	h := s.pending
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		best := i
		for c := 4*i + 1; c <= 4*i+4 && c < n; c++ {
			if arrivalLess(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	s.pending = h
	return top
}

func arrivalLess(a, b arrival) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//scda:noalloc steady state: the heap append is amortized pool growth
func (s *Simulator) pushCompletion(e compEnt) {
	// Rate changes supersede completion entries via ver, leaving stale
	// garbage in the heap. Entries far past the horizon never reach the
	// top to be lazily discarded, so under heavy churn the heap would
	// grow by O(changed flows) per event without bound. Each active
	// undone flow has at most one valid entry, so once the heap exceeds
	// twice that, at least half is stale: compact in place (amortized
	// O(1) per push, allocation-free, and order-independent — validity
	// does not depend on heap position).
	if len(s.comp) > 2*len(s.inc.flows)+64 {
		w := 0
		for _, o := range s.comp {
			if o.ver == o.flow.ver && !o.flow.done {
				s.comp[w] = o
				w++
			}
		}
		s.comp = s.comp[:w]
		for i := (w - 2) / 4; i >= 0; i-- {
			s.siftComp(i)
		}
	}
	s.comp = append(s.comp, e)
	i := len(s.comp) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !compLess(s.comp[i], s.comp[p]) {
			break
		}
		s.comp[i], s.comp[p] = s.comp[p], s.comp[i]
		i = p
	}
}

//scda:noalloc
func (s *Simulator) popCompletion() compEnt {
	h := s.comp
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.comp = h[:n]
	s.siftComp(0)
	return top
}

//scda:noalloc
func (s *Simulator) siftComp(i int) {
	h := s.comp
	n := len(h)
	for {
		best := i
		for c := 4*i + 1; c <= 4*i+4 && c < n; c++ {
			if compLess(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func compLess(a, b compEnt) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
