// Package flowsim is a fluid-level flow simulator: flows progress at
// exact max-min fair rates computed by progressive filling, with rate
// recomputation at every flow arrival and departure.
//
// It serves two purposes in the reproduction:
//
//  1. Oracle: progressive filling is the textbook max-min allocation; the
//     ablation experiments compare the SCDA RM/RA controller's converged
//     rates against it to validate the eq. 2/3 mechanism.
//  2. Scale: fluid simulation is orders of magnitude faster than
//     packet-level simulation, enabling large-n sweeps of placement
//     policies where packet dynamics don't matter.
//
// The solver is allocation-free in steady state: all per-solve scratch
// (residual capacities, weight sums, the frozen-flow bitset, the
// candidate-link list) lives in a Solver that is reused across events.
// Links are stamped with a solve epoch so only the links actually touched
// by active flows are reset between solves — a solve over k flows with
// h-hop paths costs O(k·h·rounds) regardless of graph size.
package flowsim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"

	"repro/internal/topology"
)

// Flow is one fluid transfer.
type Flow struct {
	ID     int64
	Path   []topology.LinkID
	Size   float64 // bits remaining
	Weight float64 // max-min weight (1 = neutral)

	// Rate is the current max-min rate (bits/sec), valid between events.
	Rate float64
	// Start and Finish are set by the simulator.
	Start  float64
	Finish float64

	done bool
}

// Solver holds the reusable scratch state for progressive filling. A
// Solver may be reused across solves of any size (scratch grows to the
// high-water mark) but must not be shared between concurrent goroutines;
// use one Solver per Simulator, or MaxMinRates which draws from a pool.
type Solver struct {
	epoch  uint64
	stamp  []uint64  // per-link: epoch when last touched
	cap    []float64 // per-link residual capacity (valid when stamped)
	weight []float64 // per-link sum of unfrozen flow weights
	cand   []int32   // candidate constrained links (weight still > 0)
	frozen []uint64  // bitset over flow positions
}

// NewSolver returns a solver pre-sized for a graph with nLinks links.
func NewSolver(nLinks int) *Solver {
	sv := &Solver{}
	sv.ensure(nLinks, 0)
	return sv
}

func (sv *Solver) ensure(nLinks, nFlows int) {
	if len(sv.stamp) < nLinks {
		// fresh zeroed stamps are fine: epoch is always ≥ 1 inside solve,
		// so unstamped entries read as untouched
		sv.stamp = make([]uint64, nLinks)
		sv.cap = make([]float64, nLinks)
		sv.weight = make([]float64, nLinks)
	}
	nb := (nFlows + 63) / 64
	if len(sv.frozen) < nb {
		sv.frozen = make([]uint64, nb)
	}
}

// Solve computes weighted max-min fair rates for the active (non-done)
// flows by progressive filling: repeatedly find the most constrained link,
// freeze its unfrozen flows at the equal (weighted) share, subtract,
// repeat. capacities maps directed links (indexed by LinkID) to bits/sec.
// Every active flow is assigned a rate; flows that traverse only
// unconstrained links keep rate 0, exactly as the map-based implementation
// did.
func (sv *Solver) Solve(flows []*Flow, capacities []float64) {
	sv.solve(flows, capacities, 0, nil)
}

// solve optionally maintains the earliest completion time among the flows
// it freezes (now + Size/Rate), sharpening the separate O(active)
// post-solve scan the simulator used to do into the filling loop itself —
// a persistent cross-event index is impossible here because every
// arrival/departure reassigns every rate.
func (sv *Solver) solve(flows []*Flow, capacities []float64, now float64, nextDone *float64) {
	sv.ensure(len(capacities), len(flows))
	sv.epoch++
	epoch := sv.epoch
	// Candidate list: links that can still be a bottleneck, seeded with
	// each link on first touch. Each filling round scans only this list
	// (compacting out links whose demand has been fully frozen away)
	// instead of every link in the graph.
	cand := sv.cand[:0]
	remaining := 0
	for _, f := range flows {
		if f.done {
			continue
		}
		remaining++
		f.Rate = 0
		for _, l := range f.Path {
			if sv.stamp[l] != epoch {
				sv.stamp[l] = epoch
				sv.cap[l] = capacities[l]
				sv.weight[l] = 0
				cand = append(cand, int32(l))
			}
			sv.weight[l] += f.Weight
		}
	}
	nb := (len(flows) + 63) / 64
	frozen := sv.frozen[:nb]
	for i := range frozen {
		frozen[i] = 0
	}
	for remaining > 0 {
		// most constrained link: min cap/weight among links with demand
		minShare := math.Inf(1)
		live := cand[:0]
		for _, li := range cand {
			if sv.weight[li] <= 0 {
				continue
			}
			live = append(live, li)
			if s := sv.cap[li] / sv.weight[li]; s < minShare {
				minShare = s
			}
		}
		cand = live
		if math.IsInf(minShare, 1) {
			break // leftover flows traverse only unconstrained links
		}
		// freeze flows on saturated links at weight×share
		for fi, f := range flows {
			if f.done || frozen[fi>>6]&(1<<(fi&63)) != 0 {
				continue
			}
			saturated := false
			for _, l := range f.Path {
				if sv.weight[l] > 0 && sv.cap[l]/sv.weight[l] <= minShare*(1+1e-12) {
					saturated = true
					break
				}
			}
			if !saturated {
				continue
			}
			f.Rate = f.Weight * minShare
			frozen[fi>>6] |= 1 << (fi & 63)
			remaining--
			if nextDone != nil && f.Rate > 0 {
				if t := now + f.Size/f.Rate; t < *nextDone {
					*nextDone = t
				}
			}
			for _, l := range f.Path {
				sv.cap[l] -= f.Rate
				if sv.cap[l] < 0 {
					sv.cap[l] = 0
				}
				sv.weight[l] -= f.Weight
			}
		}
	}
	sv.cand = cand
}

// solverPool backs the package-level MaxMinRates so one-shot callers (the
// oracle comparisons in the ablations) stay cheap without owning a Solver.
// Solver scratch is epoch-stamped, so a pooled solver's leftover state
// cannot affect results and pooling does not perturb determinism.
var solverPool = sync.Pool{New: func() any { return &Solver{} }}

// MaxMinRates computes weighted max-min fair rates for flows over the
// given directed-link capacities. Callers with a hot loop should hold a
// Solver (or use Simulator, which owns one) instead.
func MaxMinRates(flows []*Flow, capacities []float64) {
	sv := solverPool.Get().(*Solver)
	sv.Solve(flows, capacities)
	solverPool.Put(sv)
}

// Simulator advances fluid flows through arrivals and completions.
type Simulator struct {
	g          *topology.Graph
	capacities []float64
	now        float64
	active     []*Flow
	pending    *arrivalHeap
	solver     *Solver
	// Completed collects finished flows in completion order.
	Completed []*Flow
}

type arrival struct {
	at   float64
	flow *Flow
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int           { return len(h) }
func (h arrivalHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)        { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// New creates a fluid simulator over a graph.
func New(g *topology.Graph) *Simulator {
	caps := make([]float64, len(g.Links))
	for i, l := range g.Links {
		caps[i] = l.Capacity
	}
	return &Simulator{g: g, capacities: caps, pending: &arrivalHeap{}, solver: NewSolver(len(g.Links))}
}

// Now returns the fluid clock.
func (s *Simulator) Now() float64 { return s.now }

// AddFlow schedules a flow arrival. Size is in bits.
func (s *Simulator) AddFlow(at float64, f *Flow) error {
	if f.Size <= 0 {
		return fmt.Errorf("flowsim: flow %d size %v", f.ID, f.Size)
	}
	if len(f.Path) == 0 {
		return fmt.Errorf("flowsim: flow %d empty path", f.ID)
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if at < s.now {
		return fmt.Errorf("flowsim: arrival %v in the past (now %v)", at, s.now)
	}
	heap.Push(s.pending, arrival{at: at, flow: f})
	return nil
}

// Run advances until all flows complete or the horizon is reached.
func (s *Simulator) Run(horizon float64) {
	for {
		// next arrival time
		nextArr := math.Inf(1)
		if s.pending.Len() > 0 {
			nextArr = (*s.pending)[0].at
		}
		if len(s.active) == 0 {
			if math.IsInf(nextArr, 1) || nextArr > horizon {
				// idle until the horizon (never move the clock backwards)
				if horizon > s.now {
					s.now = horizon
				}
				return
			}
			s.now = nextArr
			s.admitArrivals()
			continue
		}
		// recompute rates; the earliest completion among the newly frozen
		// flows falls out of the same filling pass
		nextDone := math.Inf(1)
		s.solver.solve(s.active, s.capacities, s.now, &nextDone)
		next := math.Min(nextArr, nextDone)
		if next > horizon {
			s.drainTo(horizon)
			return
		}
		s.drainTo(next)
		s.admitArrivals()
		s.reapCompleted()
	}
}

func (s *Simulator) drainTo(t float64) {
	dt := t - s.now
	if dt < 0 {
		return
	}
	for _, f := range s.active {
		f.Size -= f.Rate * dt
	}
	s.now = t
}

func (s *Simulator) admitArrivals() {
	for s.pending.Len() > 0 && (*s.pending)[0].at <= s.now+1e-12 {
		a := heap.Pop(s.pending).(arrival)
		a.flow.Start = s.now
		s.active = append(s.active, a.flow)
	}
}

func (s *Simulator) reapCompleted() {
	kept := s.active[:0]
	for _, f := range s.active {
		if f.Size <= 1e-6 {
			f.done = true
			f.Finish = s.now
			s.Completed = append(s.Completed, f)
		} else {
			kept = append(kept, f)
		}
	}
	s.active = kept
}

// Active returns the number of in-flight flows.
func (s *Simulator) Active() int { return len(s.active) }
