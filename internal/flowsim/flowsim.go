// Package flowsim is a fluid-level flow simulator: flows progress at
// exact max-min fair rates computed by progressive filling, with rate
// recomputation at every flow arrival and departure.
//
// It serves two purposes in the reproduction:
//
//  1. Oracle: progressive filling is the textbook max-min allocation; the
//     ablation experiments compare the SCDA RM/RA controller's converged
//     rates against it to validate the eq. 2/3 mechanism.
//  2. Scale: fluid simulation is orders of magnitude faster than
//     packet-level simulation, enabling large-n sweeps of placement
//     policies where packet dynamics don't matter.
package flowsim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topology"
)

// Flow is one fluid transfer.
type Flow struct {
	ID     int64
	Path   []topology.LinkID
	Size   float64 // bits remaining
	Weight float64 // max-min weight (1 = neutral)

	// Rate is the current max-min rate (bits/sec), valid between events.
	Rate float64
	// Start and Finish are set by the simulator.
	Start  float64
	Finish float64

	done bool
}

// MaxMinRates computes weighted max-min fair rates by progressive filling:
// repeatedly find the most constrained link, freeze its unfrozen flows at
// the equal (weighted) share, subtract, repeat. capacities maps directed
// links to bits/sec. The result assigns every active flow a rate.
func MaxMinRates(flows []*Flow, capacities []float64) {
	type linkAgg struct {
		cap    float64
		weight float64 // sum of unfrozen flow weights
	}
	links := make(map[topology.LinkID]*linkAgg)
	for _, f := range flows {
		if f.done {
			continue
		}
		f.Rate = 0
		for _, l := range f.Path {
			la, ok := links[l]
			if !ok {
				la = &linkAgg{cap: capacities[l]}
				links[l] = la
			}
			la.weight += f.Weight
		}
	}
	frozen := make(map[int64]bool)
	remaining := 0
	for _, f := range flows {
		if !f.done {
			remaining++
		}
	}
	for remaining > 0 {
		// most constrained link: min cap/weight among links with demand
		minShare := math.Inf(1)
		for _, la := range links {
			if la.weight > 0 {
				if s := la.cap / la.weight; s < minShare {
					minShare = s
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break // leftover flows traverse only unconstrained links
		}
		// freeze flows on saturated links at weight×share
		for _, f := range flows {
			if f.done || frozen[f.ID] {
				continue
			}
			saturated := false
			for _, l := range f.Path {
				la := links[l]
				if la.weight > 0 && la.cap/la.weight <= minShare*(1+1e-12) {
					saturated = true
					break
				}
			}
			if !saturated {
				continue
			}
			f.Rate = f.Weight * minShare
			frozen[f.ID] = true
			remaining--
			for _, l := range f.Path {
				la := links[l]
				la.cap -= f.Rate
				if la.cap < 0 {
					la.cap = 0
				}
				la.weight -= f.Weight
			}
		}
	}
}

// Simulator advances fluid flows through arrivals and completions.
type Simulator struct {
	g          *topology.Graph
	capacities []float64
	now        float64
	active     []*Flow
	pending    *arrivalHeap
	// Completed collects finished flows in completion order.
	Completed []*Flow
}

type arrival struct {
	at   float64
	flow *Flow
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int           { return len(h) }
func (h arrivalHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)        { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// New creates a fluid simulator over a graph.
func New(g *topology.Graph) *Simulator {
	caps := make([]float64, len(g.Links))
	for i, l := range g.Links {
		caps[i] = l.Capacity
	}
	return &Simulator{g: g, capacities: caps, pending: &arrivalHeap{}}
}

// Now returns the fluid clock.
func (s *Simulator) Now() float64 { return s.now }

// AddFlow schedules a flow arrival. Size is in bits.
func (s *Simulator) AddFlow(at float64, f *Flow) error {
	if f.Size <= 0 {
		return fmt.Errorf("flowsim: flow %d size %v", f.ID, f.Size)
	}
	if len(f.Path) == 0 {
		return fmt.Errorf("flowsim: flow %d empty path", f.ID)
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if at < s.now {
		return fmt.Errorf("flowsim: arrival %v in the past (now %v)", at, s.now)
	}
	heap.Push(s.pending, arrival{at: at, flow: f})
	return nil
}

// Run advances until all flows complete or the horizon is reached.
func (s *Simulator) Run(horizon float64) {
	for {
		// next arrival time
		nextArr := math.Inf(1)
		if s.pending.Len() > 0 {
			nextArr = (*s.pending)[0].at
		}
		if len(s.active) == 0 {
			if math.IsInf(nextArr, 1) || nextArr > horizon {
				s.now = math.Min(horizon, math.Max(s.now, horizon))
				return
			}
			s.now = nextArr
			s.admitArrivals()
			continue
		}
		MaxMinRates(s.active, s.capacities)
		// earliest completion among active flows
		nextDone := math.Inf(1)
		for _, f := range s.active {
			if f.Rate > 0 {
				if t := s.now + f.Size/f.Rate; t < nextDone {
					nextDone = t
				}
			}
		}
		next := math.Min(nextArr, nextDone)
		if next > horizon {
			s.drainTo(horizon)
			return
		}
		s.drainTo(next)
		s.admitArrivals()
		s.reapCompleted()
	}
}

func (s *Simulator) drainTo(t float64) {
	dt := t - s.now
	if dt < 0 {
		return
	}
	for _, f := range s.active {
		f.Size -= f.Rate * dt
	}
	s.now = t
}

func (s *Simulator) admitArrivals() {
	for s.pending.Len() > 0 && (*s.pending)[0].at <= s.now+1e-12 {
		a := heap.Pop(s.pending).(arrival)
		a.flow.Start = s.now
		s.active = append(s.active, a.flow)
	}
}

func (s *Simulator) reapCompleted() {
	kept := s.active[:0]
	for _, f := range s.active {
		if f.Size <= 1e-6 {
			f.done = true
			f.Finish = s.now
			s.Completed = append(s.Completed, f)
		} else {
			kept = append(kept, f)
		}
	}
	s.active = kept
}

// Active returns the number of in-flight flows.
func (s *Simulator) Active() int { return len(s.active) }
