package flowsim

import (
	"fmt"
	"math"
	"sort"
)

// replayMargin is the relative share margin the repair demands between
// every dirty link and a recorded round's share before replaying the
// round. A link's share is non-decreasing under a round's subtractions
// (s' − s = w·W·(s−m)/(W·(W−w)) ≥ 0), so a dirty link clear of the round's
// share by this margin — ~1000× the fill loop's satEps, absorbing
// accumulated rounding — provably cannot saturate mid-round either.
const replayMargin = 1e-9

// trace records one progressive-filling execution so the next repair can
// replay unperturbed rounds. Per round it keeps the frozen share, and —
// via [fStart, next round's fStart) spans into the flat frozen/sat arrays
// — the flows frozen that round (in freeze order, which fixes the
// floating-point subtraction order) together with the link that triggered
// each freeze. sat additionally holds the round's argmin link (recorded
// even when it froze no flow directly), because an event on the argmin's
// path changes the round's share even if every freeze was triggered
// elsewhere.
type trace struct {
	rounds []roundRec
	frozen []*Flow
	sat    []int32
}

type roundRec struct {
	minShare float64
	fStart   int32 // span start into trace.frozen
	sStart   int32 // span start into trace.sat
}

func (tr *trace) reset() {
	tr.rounds = tr.rounds[:0]
	tr.frozen = tr.frozen[:0]
	tr.sat = tr.sat[:0]
}

func (tr *trace) beginRound(minShare float64, argmin int32) {
	tr.rounds = append(tr.rounds, roundRec{
		minShare: minShare,
		fStart:   int32(len(tr.frozen)),
		sStart:   int32(len(tr.sat)),
	})
	tr.sat = append(tr.sat, argmin)
}

func (tr *trace) freeze(f *Flow, sat int32) {
	tr.frozen = append(tr.frozen, f)
	tr.sat = append(tr.sat, sat)
}

// spans returns the frozen-flow and sat-link spans of round r.
func (tr *trace) spans(r int) (frozen []*Flow, sat []int32) {
	rd := tr.rounds[r]
	fEnd, sEnd := int32(len(tr.frozen)), int32(len(tr.sat))
	if r+1 < len(tr.rounds) {
		fEnd, sEnd = tr.rounds[r+1].fStart, tr.rounds[r+1].sStart
	}
	return tr.frozen[rd.fStart:fEnd], tr.sat[rd.sStart:sEnd]
}

// dirtEnt is a lazy min-heap entry over dirty links, keyed by the share
// the link had when pushed. Link shares are non-decreasing within a
// repair, so a stale entry under-estimates — peeks detect the mismatch and
// re-push the current share, never returning a stale minimum.
type dirtEnt struct {
	share float64
	link  int32
}

// Incremental maintains a weighted max-min allocation over a mutating flow
// set, repairing it after each add/remove batch instead of re-solving from
// scratch. The repair is exact: rates after Apply are bit-for-bit equal to
// a fresh Solver.Solve over the same flows in the same order (Flows()).
//
// Each repair records a trace of its filling rounds. The next repair
// resets each occupied link's capacity and weight from incrementally
// maintained sums (bit-identical to the accumulation a full solve would
// perform — see below) and then walks the recorded rounds,
// maintaining a set of dirty links — links whose subtraction history has
// diverged from the recorded run, seeded with the added/removed flows'
// paths. A recorded round is REPLAYED verbatim when the event provably
// cannot have touched it: all its frozen flows are still present and
// unfrozen, none of its saturated links (argmin + freeze triggers) is
// dirty, and every dirty link's current share clears the round's share by
// replayMargin. Any other round is computed as a REAL round from current
// link state: the most-constrained link is found by scanning live links,
// and the freeze pass runs over only the flows of saturated links (via the
// persistent link→flows index, merged in flow-slice order, extended
// mid-round when a subtraction saturates another link) — executing exactly
// the arithmetic, order, and tolerance of Solver.fill. Flows frozen by
// real rounds dirty their paths, which is how perturbation propagates; a
// recorded flow whose freeze is skipped or altered therefore blocks replay
// (pointer stalls on its round) until it is re-frozen by a real round.
//
// The link→flows index and per-link weight sums are maintained
// incrementally across events, not rebuilt per repair: an add appends to
// each path link's list and adds its weight on the right of the link's
// running sum — bit-identical to a fresh left-to-right accumulation,
// because adds append to the end of the flow order — and a remove splices
// the link's list and re-sums it in order. Cost per event is therefore
// O(links + event·hops) bookkeeping plus O(resident·hops) for the replay
// walk itself, instead of the full O(rounds·flows·hops) re-solve.
//
// Flow order is kept stable (removals compact in place, adds append), so
// the full-solve scan order — which fixes the floating-point subtraction
// order — matches a fresh Solve over Flows().
type Incremental struct {
	caps  []float64 // capacities, referenced not copied; caller keeps it stable
	sv    *Solver
	flows []*Flow

	trA, trB trace
	cur, nxt *trace // double-buffered: cur is replayed, nxt is recorded

	// dirty-link marks (epoch-stamped, O(touched) reset) + lazy min-heap
	mark      []uint64
	markEpoch uint64
	dirt      []dirtEnt

	// persistent link→flows index: per-link flow lists in flow order (so
	// sorted by pos), the matching left-to-right weight sums, and the list
	// of occupied links (occPos = index+1 into occ, 0 = absent)
	linkFl  [][]*Flow
	weight0 []float64
	occ     []int32
	occPos  []int32

	// per-round state for real rounds
	satStamp []uint64 // per-link: round ID when admitted to the saturated set
	roundID  uint64
	candH    []*Flow   // candidate min-heap by pos
	liveH    []dirtEnt // lazy min-heap over ALL live links, by share
	satList  []int32   // links popped into the current round's saturated set

	changed    []*Flow
	changedOld []float64
	oneAdd     [1]*Flow
	oneRm      [1]*Flow
}

// NewIncremental creates an incremental solver over fixed link capacities.
// The slice is referenced, not copied; the caller must not mutate it.
func NewIncremental(capacities []float64) *Incremental {
	in := &Incremental{
		caps:     capacities,
		sv:       NewSolver(len(capacities)),
		mark:     make([]uint64, len(capacities)),
		linkFl:   make([][]*Flow, len(capacities)),
		weight0:  make([]float64, len(capacities)),
		occPos:   make([]int32, len(capacities)),
		satStamp: make([]uint64, len(capacities)),
	}
	in.cur, in.nxt = &in.trA, &in.trB
	return in
}

// Flows returns the current active flow list in solver order. Callers must
// not mutate it; a fresh Solver.Solve over this exact slice reproduces the
// incremental rates bit for bit.
func (in *Incremental) Flows() []*Flow { return in.flows }

// Changed returns the flows whose rate was altered by the last Apply
// (including flows added by it) and, index-aligned, the rate each had
// before the event (NaN for added flows). Both slices are valid until the
// next Apply.
func (in *Incremental) Changed() ([]*Flow, []float64) { return in.changed, in.changedOld }

// Reset drops all flows and recorded state, keeping allocated capacity.
func (in *Incremental) Reset() {
	for _, f := range in.flows {
		f.pos = 0
	}
	in.flows = in.flows[:0]
	for _, l := range in.occ {
		fl := in.linkFl[l]
		for i := range fl {
			fl[i] = nil
		}
		in.linkFl[l] = fl[:0]
		in.weight0[l] = 0
		in.occPos[l] = 0
	}
	in.occ = in.occ[:0]
	in.cur.reset()
	in.nxt.reset()
	in.changed = in.changed[:0]
	in.changedOld = in.changedOld[:0]
}

// Add admits one flow and repairs the allocation.
func (in *Incremental) Add(f *Flow) error {
	in.oneAdd[0] = f
	return in.Apply(in.oneAdd[:], nil)
}

// Remove retires one flow and repairs the allocation.
func (in *Incremental) Remove(f *Flow) error {
	in.oneRm[0] = f
	return in.Apply(nil, in.oneRm[:])
}

// Apply atomically admits add and retires remove, then repairs the
// allocation. On error nothing is changed. Duplicate adds, removes of
// non-active flows, and flows appearing twice across the two lists are
// rejected.
//
//scda:noalloc steady state: the flow/occupied-link appends are amortized pool growth
func (in *Incremental) Apply(add, remove []*Flow) error {
	if err := in.validate(add, remove); err != nil {
		return err
	}
	in.markEpoch++
	me := in.markEpoch
	for _, f := range remove {
		// splice the flow out of each path link's list while its claimed
		// pos (negated by validate) still identifies it, and restore the
		// link's weight sum by re-summing the list in order — the exact
		// accumulation a fresh solve would perform
		for _, l := range f.Path {
			in.mark[l] = me
			in.unlink(int32(l), -f.pos)
		}
	}
	for _, f := range add {
		for _, l := range f.Path {
			in.mark[l] = me
		}
		// NaN ≠ anything, so added flows always land in the changed list
		f.Rate = math.NaN()
	}
	if len(remove) > 0 {
		// order-preserving compaction keeps the full-solve scan order
		w := 0
		for _, f := range in.flows {
			if f.pos < 0 { // claimed for removal by validate
				f.pos = 0
				continue
			}
			in.flows[w] = f
			w++
			f.pos = w
		}
		in.flows = in.flows[:w]
	}
	for _, f := range add {
		in.flows = append(in.flows, f)
		f.pos = len(in.flows)
		for _, l := range f.Path {
			if in.occPos[l] == 0 {
				in.occ = append(in.occ, int32(l))
				in.occPos[l] = int32(len(in.occ))
			}
			in.linkFl[l] = append(in.linkFl[l], f)
			// appending on the right of the running sum is bit-identical
			// to a fresh left-to-right accumulation over the new list
			in.weight0[l] += f.Weight
		}
	}
	in.repair()
	return nil
}

// unlink removes the flow claimed at position pos (pre-compaction, so the
// lists' |pos| order is intact) from link l's flow list, re-sums the
// link's weight in list order, and retires the link from the occupied set
// when its list empties.
//
//scda:noalloc
func (in *Incremental) unlink(l int32, pos int) {
	fl := in.linkFl[l]
	// claimed flows carry negated pos, so compare magnitudes
	//scda:alloc-ok the sort.Search predicate does not escape; the compiler keeps it on the stack (0 B/op per the alloc guards)
	i := sort.Search(len(fl), func(i int) bool {
		p := fl[i].pos
		if p < 0 {
			p = -p
		}
		return p >= pos
	})
	copy(fl[i:], fl[i+1:])
	fl[len(fl)-1] = nil
	fl = fl[:len(fl)-1]
	in.linkFl[l] = fl
	if len(fl) == 0 {
		in.weight0[l] = 0
		p := in.occPos[l]
		last := in.occ[len(in.occ)-1]
		in.occ[p-1] = last
		in.occPos[last] = p
		in.occ = in.occ[:len(in.occ)-1]
		in.occPos[l] = 0
		return
	}
	s := 0.0
	for _, g := range fl {
		s += g.Weight
	}
	in.weight0[l] = s
}

// validate checks the batch atomically, using pos as a claim marker so
// duplicates within and across the two lists are caught: an active flow
// has pos = index+1, an inactive one pos = 0; claims flip the sign
// (removes) or set -1 (adds). On error all claims are rolled back.
func (in *Incremental) validate(add, remove []*Flow) error {
	rollback := func(na, nr int) {
		for _, f := range add[:na] {
			f.pos = 0
		}
		for _, f := range remove[:nr] {
			f.pos = -f.pos
		}
	}
	for i, f := range remove {
		if f.pos <= 0 {
			rollback(0, i)
			if f.pos < 0 {
				return fmt.Errorf("incremental: flow %d removed twice", f.ID)
			}
			return fmt.Errorf("incremental: flow %d not active", f.ID)
		}
		f.pos = -f.pos
	}
	for i, f := range add {
		if f.pos != 0 {
			rollback(i, len(remove))
			return fmt.Errorf("incremental: flow %d already active", f.ID)
		}
		if len(f.Path) == 0 {
			rollback(i, len(remove))
			return fmt.Errorf("incremental: flow %d empty path", f.ID)
		}
		if f.Weight <= 0 {
			rollback(i, len(remove))
			return fmt.Errorf("incremental: flow %d weight %v", f.ID, f.Weight)
		}
		f.pos = -1
	}
	return nil
}

// repair re-establishes the exact max-min allocation after the flow list
// changed: replay clean recorded rounds, recompute perturbed ones.
//
//scda:noalloc
func (in *Incremental) repair() {
	sv := in.sv
	me := in.markEpoch
	sv.ensure(len(in.caps))
	sv.epoch++
	ep := fillEpochs.Add(1)
	in.changed = in.changed[:0]
	in.changedOld = in.changedOld[:0]

	// Reset each occupied link's state from the maintained weight sums
	// (bit-identical to the fresh accumulation a full solve would do —
	// see the type comment), seed the dirty heap with event-path links,
	// and heapify the live-link heap over every occupied link.
	in.dirt = in.dirt[:0]
	in.liveH = in.liveH[:0]
	for _, l := range in.occ {
		sv.stamp[l] = sv.epoch
		sv.cap[l] = in.caps[l]
		sv.weight[l] = in.weight0[l]
		s := sv.cap[l] / sv.weight[l]
		in.liveH = append(in.liveH, dirtEnt{s, l})
		if in.mark[l] == me {
			in.pushDirt(dirtEnt{s, l})
		}
	}
	for i := len(in.liveH)/2 - 1; i >= 0; i-- {
		in.siftLive(i)
	}

	in.nxt.reset()
	remaining := len(in.flows)
	r := 0 // pointer into cur.rounds
	for remaining > 0 {
		// advance past recorded rounds whose every flow is consumed:
		// frozen this repair (replayed or re-frozen by a real round,
		// which dirtied its links if the bits differed) or removed
		// (pos == 0; its links are dirty by construction)
		for r < len(in.cur.rounds) {
			span, _ := in.cur.spans(r)
			done := true
			for _, f := range span {
				if f.pos != 0 && f.fz != ep {
					done = false
					break
				}
			}
			if !done {
				break
			}
			r++
		}
		if r < len(in.cur.rounds) && in.replayable(r, ep, me) {
			m := in.cur.rounds[r].minShare
			span, sat := in.cur.spans(r)
			in.nxt.beginRound(m, sat[0])
			for i, f := range span {
				// a replayed freeze rewrites the rate the flow already has
				// (same weight, same recorded share), so the comparison
				// below is a no-op in practice — kept for robustness
				if nr := f.Weight * m; f.Rate != nr {
					in.changed = append(in.changed, f)
					in.changedOld = append(in.changedOld, f.Rate)
					f.Rate = nr
				}
				f.fz = ep
				remaining--
				in.nxt.freeze(f, sat[i+1])
				for _, l := range f.Path {
					sv.cap[l] -= f.Rate
					if sv.cap[l] < 0 {
						sv.cap[l] = 0
					}
					sv.weight[l] -= f.Weight
				}
			}
			r++
			continue
		}
		if !in.realRound(ep, me, &remaining) {
			// no live links left: leftover flows keep rate 0, exactly as
			// the full solve leaves flows on unconstrained links
			for _, f := range in.flows {
				if f.fz != ep && f.Rate != 0 {
					// NaN (an added flow) never compares equal to 0
					in.changed = append(in.changed, f)
					in.changedOld = append(in.changedOld, f.Rate)
					f.Rate = 0
				}
			}
			break
		}
	}
	in.cur, in.nxt = in.nxt, in.cur
}

// replayable reports whether recorded round r provably unfolds exactly as
// recorded: every frozen flow still present and unfrozen, every saturated
// link clean, and every dirty link's share clear of the round's share by
// replayMargin (shares are non-decreasing within a repair, so this holds
// through the round's own subtractions too).
//
//scda:noalloc
func (in *Incremental) replayable(r int, ep uint64, me uint64) bool {
	span, sat := in.cur.spans(r)
	for _, f := range span {
		if f.pos == 0 || f.fz == ep {
			return false
		}
	}
	for _, l := range sat {
		if in.mark[l] == me {
			return false
		}
	}
	return in.dirtyMin(me) > in.cur.rounds[r].minShare*(1+replayMargin)
}

// dirtyMin returns the minimum current share among live dirty links,
// repairing stale heap entries on the way (stale keys under-estimate, so
// they are popped and re-pushed with the current share).
//
//scda:noalloc
func (in *Incremental) dirtyMin(me uint64) float64 {
	sv := in.sv
	for len(in.dirt) > 0 {
		e := in.dirt[0]
		l := e.link
		if sv.stamp[l] != sv.epoch || sv.weight[l] <= 0 {
			in.popDirt()
			continue
		}
		s := sv.cap[l] / sv.weight[l]
		if s != e.share {
			in.popDirt()
			in.pushDirt(dirtEnt{s, l})
			continue
		}
		return s
	}
	return math.Inf(1)
}

// realRound executes one true progressive-filling round from current link
// state: find the most-constrained live link via the lazy live-link heap,
// then run the freeze pass in flow-slice order over the flows of
// saturated links only — bit-identical to Solver.fill's full scan,
// because flows off every saturated link cannot freeze and saturation
// arising mid-round admits the affected link's later-positioned flows
// into the pass. Flows frozen here dirty their paths. Returns false when
// no live link remains.
//
//scda:noalloc
func (in *Incremental) realRound(ep, me uint64, remaining *int) bool {
	sv := in.sv
	minShare, argmin, ok := in.liveMin()
	if !ok {
		return false
	}
	in.roundID++
	in.candH = in.candH[:0]
	in.satList = in.satList[:0]
	// pop every link already at the round's share into the saturated set;
	// survivors with capacity left are re-pushed after the freeze pass
	thresh := minShare * (1 + satEps)
	for {
		s, l, ok := in.liveMin()
		if !ok || s > thresh {
			break
		}
		in.popLive()
		in.satList = append(in.satList, l)
		in.admitSat(l, 0)
	}
	froze := false
	lastPos := 0
	for len(in.candH) > 0 {
		f := in.popCand()
		lastPos = f.pos
		if f.fz == ep {
			continue
		}
		sat := int32(-1)
		for _, l := range f.Path {
			if sv.weight[l] > 0 && sv.cap[l]/sv.weight[l] <= minShare*(1+satEps) {
				sat = int32(l)
				break
			}
		}
		if sat < 0 {
			continue
		}
		if !froze {
			in.nxt.beginRound(minShare, argmin)
			froze = true
		}
		if nr := f.Weight * minShare; f.Rate != nr {
			in.changed = append(in.changed, f)
			in.changedOld = append(in.changedOld, f.Rate)
			f.Rate = nr
		}
		f.fz = ep
		*remaining--
		in.nxt.freeze(f, sat)
		for _, l := range f.Path {
			sv.cap[l] -= f.Rate
			if sv.cap[l] < 0 {
				sv.cap[l] = 0
			}
			sv.weight[l] -= f.Weight
			// the flow's freeze diverges from (or extends) the recorded
			// history of every link it touches
			if in.mark[l] != me {
				in.mark[l] = me
				if sv.weight[l] > 0 {
					in.pushDirt(dirtEnt{sv.cap[l] / sv.weight[l], int32(l)})
				}
			}
			// a subtraction can saturate another link mid-pass; its flows
			// positioned after the current one join this round's pass,
			// exactly as the full scan would encounter them
			if in.satStamp[l] != in.roundID && sv.weight[l] > 0 &&
				sv.cap[l]/sv.weight[l] <= minShare*(1+satEps) {
				in.admitSat(int32(l), lastPos)
			}
		}
	}
	if !froze {
		// degenerate round: the argmin carries no unfrozen flow — its
		// weight is floating-point residue (see Solver.fill); drain it
		sv.weight[argmin] = 0
	}
	for _, l := range in.satList {
		if sv.weight[l] > 0 {
			in.pushLive(dirtEnt{sv.cap[l] / sv.weight[l], l})
		}
	}
	return true
}

// liveMin peeks the live-link heap, lazily discarding drained links and
// re-keying entries whose share moved since they were pushed, and returns
// the current global minimum share with its link.
//
//scda:noalloc
func (in *Incremental) liveMin() (float64, int32, bool) {
	sv := in.sv
	for len(in.liveH) > 0 {
		e := in.liveH[0]
		l := e.link
		if sv.weight[l] <= 0 {
			in.popLive()
			continue
		}
		s := sv.cap[l] / sv.weight[l]
		if s != e.share {
			in.popLive()
			in.pushLive(dirtEnt{s, l})
			continue
		}
		return e.share, l, true
	}
	return 0, -1, false
}

// admitSat adds link l to the round's saturated set and its flows with
// pos > afterPos to the candidate heap. Flows at or before afterPos were
// already passed by this round's scan, so admitting them would freeze
// flows the full solve's single ordered pass had already skipped.
//
//scda:noalloc
func (in *Incremental) admitSat(l int32, afterPos int) {
	in.satStamp[l] = in.roundID
	fl := in.linkFl[l]
	i := 0
	if afterPos > 0 {
		//scda:alloc-ok the sort.Search predicate does not escape; the compiler keeps it on the stack (0 B/op per the alloc guards)
		i = sort.Search(len(fl), func(i int) bool { return fl[i].pos > afterPos })
	}
	for ; i < len(fl); i++ {
		in.pushCand(fl[i])
	}
}

// Candidate min-heap by flow position (binary; entries are few per round).

//scda:noalloc steady state: the heap append is amortized pool growth
func (in *Incremental) pushCand(f *Flow) {
	h := append(in.candH, f)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].pos <= h[i].pos {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	in.candH = h
}

//scda:noalloc
func (in *Incremental) popCand() *Flow {
	h := in.candH
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < n && h[l].pos < h[best].pos {
			best = l
		}
		if r < n && h[r].pos < h[best].pos {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	in.candH = h
	return top
}

// Dirty-link min-heap by pushed share.

//scda:noalloc steady state: the heap append is amortized pool growth
func (in *Incremental) pushDirt(e dirtEnt) {
	h := append(in.dirt, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].share <= h[i].share {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	in.dirt = h
}

//scda:noalloc
func (in *Incremental) popDirt() {
	h := in.dirt
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < n && h[l].share < h[best].share {
			best = l
		}
		if r < n && h[r].share < h[best].share {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	in.dirt = h
}

// Live-link min-heap by share (lazy; see liveMin).

//scda:noalloc steady state: the heap append is amortized pool growth
func (in *Incremental) pushLive(e dirtEnt) {
	h := append(in.liveH, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].share <= h[i].share {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	in.liveH = h
}

//scda:noalloc
func (in *Incremental) popLive() {
	h := in.liveH
	n := len(h) - 1
	h[0] = h[n]
	in.liveH = h[:n]
	in.siftLive(0)
}

//scda:noalloc
func (in *Incremental) siftLive(i int) {
	h := in.liveH
	n := len(h)
	for {
		best, l, r := i, 2*i+1, 2*i+2
		if l < n && h[l].share < h[best].share {
			best = l
		}
		if r < n && h[r].share < h[best].share {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
