package flowsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func chain(capacities ...float64) (*topology.Graph, []topology.LinkID) {
	g := topology.NewGraph()
	prev := g.AddNode(topology.Host, "h0", 0)
	var path []topology.LinkID
	for i, c := range capacities {
		var next topology.NodeID
		if i == len(capacities)-1 {
			next = g.AddNode(topology.Host, "hN", 0)
		} else {
			next = g.AddNode(topology.Switch, "s", 1)
		}
		path = append(path, g.AddDuplex(prev, next, c, 1e-3, 1))
		prev = next
	}
	return g, path
}

func caps(g *topology.Graph) []float64 {
	out := make([]float64, len(g.Links))
	for i, l := range g.Links {
		out[i] = l.Capacity
	}
	return out
}

func TestMaxMinSingleLink(t *testing.T) {
	g, path := chain(10e6)
	flows := []*Flow{
		{ID: 1, Path: path, Size: 1, Weight: 1},
		{ID: 2, Path: path, Size: 1, Weight: 1},
	}
	MaxMinRates(flows, caps(g))
	for _, f := range flows {
		if math.Abs(f.Rate-5e6) > 1 {
			t.Fatalf("flow %d rate %v, want 5e6", f.ID, f.Rate)
		}
	}
}

func TestMaxMinTextbookExample(t *testing.T) {
	// classic: links A (10) and B (4) in series for flow 2; flow 1 on A
	// only; flow 3 on B only. Max-min: flow 2 and 3 split B (2 each),
	// flow 1 gets the rest of A (8).
	g := topology.NewGraph()
	h0 := g.AddNode(topology.Host, "h0", 0)
	s1 := g.AddNode(topology.Switch, "s1", 1)
	h1 := g.AddNode(topology.Host, "h1", 0)
	lA := g.AddDuplex(h0, s1, 10, 1e-3, 1)
	lB := g.AddDuplex(s1, h1, 4, 1e-3, 1)
	flows := []*Flow{
		{ID: 1, Path: []topology.LinkID{lA}, Size: 1, Weight: 1},
		{ID: 2, Path: []topology.LinkID{lA, lB}, Size: 1, Weight: 1},
		{ID: 3, Path: []topology.LinkID{lB}, Size: 1, Weight: 1},
	}
	MaxMinRates(flows, caps(g))
	want := map[int64]float64{1: 8, 2: 2, 3: 2}
	for _, f := range flows {
		if math.Abs(f.Rate-want[f.ID]) > 1e-9 {
			t.Fatalf("flow %d rate %v, want %v", f.ID, f.Rate, want[f.ID])
		}
	}
}

func TestMaxMinWeights(t *testing.T) {
	g, path := chain(9e6)
	flows := []*Flow{
		{ID: 1, Path: path, Size: 1, Weight: 2},
		{ID: 2, Path: path, Size: 1, Weight: 1},
	}
	MaxMinRates(flows, caps(g))
	if math.Abs(flows[0].Rate-6e6) > 1 || math.Abs(flows[1].Rate-3e6) > 1 {
		t.Fatalf("weighted rates %v, %v", flows[0].Rate, flows[1].Rate)
	}
}

func TestMaxMinConservation(t *testing.T) {
	// property: on a single shared link rates sum to capacity
	g, path := chain(100e6)
	f := func(n uint8) bool {
		k := int(n%12) + 1
		flows := make([]*Flow, k)
		for i := range flows {
			flows[i] = &Flow{ID: int64(i), Path: path, Size: 1, Weight: 1}
		}
		MaxMinRates(flows, caps(g))
		sum := 0.0
		for _, fl := range flows {
			sum += fl.Rate
		}
		return math.Abs(sum-100e6) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimulatorSingleFlow(t *testing.T) {
	g, path := chain(10e6)
	s := New(g)
	fl := &Flow{ID: 1, Path: path, Size: 10e6} // 1 second at capacity
	if err := s.AddFlow(0, fl); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if len(s.Completed) != 1 {
		t.Fatal("flow incomplete")
	}
	if math.Abs(fl.Finish-1.0) > 1e-9 {
		t.Fatalf("finish at %v, want 1.0", fl.Finish)
	}
}

func TestSimulatorSharingThenSpeedup(t *testing.T) {
	// two equal flows: both at C/2 until the first finishes, then the
	// survivor speeds up. Flow 2 arrives later so it finishes later.
	g, path := chain(10e6)
	s := New(g)
	f1 := &Flow{ID: 1, Path: path, Size: 10e6}
	f2 := &Flow{ID: 2, Path: path, Size: 10e6}
	s.AddFlow(0, f1)
	s.AddFlow(0.5, f2)
	s.Run(100)
	if len(s.Completed) != 2 {
		t.Fatal("flows incomplete")
	}
	// f1: 0.5s solo (5e6 done) + shared until done:
	// remaining 5e6 at 5e6/s = 1s → finish 1.5
	if math.Abs(f1.Finish-1.5) > 1e-6 {
		t.Fatalf("f1 finish %v, want 1.5", f1.Finish)
	}
	// f2: 5e6 done by 1.5 (1s at 5e6/s), remaining 5e6 solo at 10e6/s =
	// 0.5s → finish 2.0
	if math.Abs(f2.Finish-2.0) > 1e-6 {
		t.Fatalf("f2 finish %v, want 2.0", f2.Finish)
	}
}

func TestSimulatorHorizonStopsEarly(t *testing.T) {
	g, path := chain(1e6)
	s := New(g)
	fl := &Flow{ID: 1, Path: path, Size: 100e6} // needs 100 s
	s.AddFlow(0, fl)
	s.Run(10)
	if len(s.Completed) != 0 {
		t.Fatal("flow completed past horizon")
	}
	if s.Active() != 1 {
		t.Fatal("flow lost")
	}
	if math.Abs(s.Now()-10) > 1e-9 {
		t.Fatalf("clock at %v", s.Now())
	}
}

func TestSimulatorValidation(t *testing.T) {
	g, path := chain(1e6)
	s := New(g)
	if err := s.AddFlow(0, &Flow{ID: 1, Path: path, Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := s.AddFlow(0, &Flow{ID: 1, Path: nil, Size: 1}); err == nil {
		t.Fatal("empty path accepted")
	}
	s.Run(1)
	if err := s.AddFlow(0.5, &Flow{ID: 1, Path: path, Size: 1}); err == nil {
		t.Fatal("past arrival accepted")
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	// regression for the former dead expression
	// s.now = math.Min(horizon, math.Max(s.now, horizon)): with no active
	// flows and no pending arrivals the clock must advance to the horizon,
	// and repeated Run calls must never move it backwards.
	g, path := chain(1e6)
	s := New(g)
	s.Run(50)
	if s.Now() != 50 {
		t.Fatalf("idle Run(50) left clock at %v, want 50", s.Now())
	}
	s.Run(10) // smaller horizon: clock must not go backwards
	if s.Now() != 50 {
		t.Fatalf("Run(10) after Run(50) moved clock to %v", s.Now())
	}
	// pending arrival beyond the horizon: clock stops at the horizon and
	// the flow is neither lost nor started
	if err := s.AddFlow(200, &Flow{ID: 1, Path: path, Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if s.Now() != 100 {
		t.Fatalf("Run(100) with arrival at 200 left clock at %v", s.Now())
	}
	if s.Active() != 0 || len(s.Completed) != 0 {
		t.Fatal("arrival beyond horizon was admitted early")
	}
	s.Run(300)
	if len(s.Completed) != 1 {
		t.Fatal("flow never completed after horizon passed its arrival")
	}
}

func TestSolverMatchesOneShot(t *testing.T) {
	// a reused (warm, dirty) Solver must produce exactly the rates of a
	// fresh computation
	flows, caps := benchWorkload(300)
	sv := NewSolver(len(caps))
	sv.Solve(flows, caps) // dirty the scratch
	sv.Solve(flows, caps)
	warm := make([]float64, len(flows))
	for i, f := range flows {
		warm[i] = f.Rate
	}
	fresh := NewSolver(len(caps))
	fresh.Solve(flows, caps)
	for i, f := range flows {
		if f.Rate != warm[i] {
			t.Fatalf("flow %d: warm solver rate %v != fresh rate %v", i, warm[i], f.Rate)
		}
	}
}

func TestSolveIsAllocationFree(t *testing.T) {
	flows, caps := benchWorkload(200)
	sv := NewSolver(len(caps))
	sv.Solve(flows, caps) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() { sv.Solve(flows, caps) }); allocs != 0 {
		t.Fatalf("warm Solve allocates %v allocs/op, want 0", allocs)
	}
}

func TestFluidOnTreeTopology(t *testing.T) {
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	r := topology.ComputeRouting(tt.Graph)
	s := New(tt.Graph)
	for i := 0; i < 50; i++ {
		src := tt.Clients[i%len(tt.Clients)]
		dst := tt.Servers[(i*3)%len(tt.Servers)]
		path, err := r.Path(src, dst, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddFlow(float64(i)*0.01, &Flow{ID: int64(i), Path: path, Size: 8e6}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(1000)
	if len(s.Completed) != 50 {
		t.Fatalf("completed %d of 50", len(s.Completed))
	}
	for _, f := range s.Completed {
		if f.Finish <= f.Start {
			t.Fatal("non-positive FCT")
		}
	}
}
