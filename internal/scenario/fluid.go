package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/flowsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fluidThptBinSeconds is the throughput time-series bin width for fluid
// runs, matching the packet engine's cluster.DefaultConfig default.
const fluidThptBinSeconds = 1

// runFluid executes a fluid-engine spec: the workload program is lowered
// onto routed max-min fluid flows (workload.FluidMapper standing in for
// the storage layer) and simulated by internal/flowsim, then reduced to
// the exact output schema the packet engine emits — same summary keys
// (cluster-only counters zero), same series kinds — so everything
// downstream of Run (CLIs, bench harness, the scda-serve job/group/cache
// stack) serves fluid results unchanged.
//
// The throughput series integrates each flow's delivered bits uniformly
// over its lifetime (fluid rates are per-flow averages, not the packet
// engine's per-delivery samples); FCT-derived outputs are exact. Like the
// packet path, the run is deterministic: one spec, one byte-identical
// Result.
func runFluid(s *Spec) (*Result, error) {
	ttSpec, err := s.topologySpec()
	if err != nil {
		return nil, err
	}
	tt, err := topology.BuildThreeTier(ttSpec)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	prog, err := s.BuildWorkload()
	if err != nil {
		return nil, err
	}
	reqs := prog.Generate(sim.NewRNG(s.Seed), s.Duration)
	mapper := workload.NewFluidMapper(tt)
	flows, err := mapper.Map(nil, reqs)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	fs := flowsim.New(tt.Graph)
	for i := range flows {
		f := fs.AcquireFlow()
		f.ID = int64(i)
		f.Path = flows[i].Path
		f.Size = flows[i].SizeBits
		if err := fs.AddFlow(flows[i].At, f); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	horizon := s.horizonOrDefault()
	fs.Run(horizon)

	m := &cluster.Metrics{
		ThptBins:  stats.NewTimeBins(fluidThptBinSeconds),
		Started:   len(flows),
		Completed: len(fs.Completed),
	}
	for _, f := range fs.Completed {
		fl := &flows[f.ID]
		m.Records = append(m.Records, cluster.FlowRecord{
			Size:  int64(fl.SizeBits / 8),
			Start: f.Start,
			FCT:   f.Finish - f.Start,
			Op:    fl.Op,
		})
		spreadBits(m, f.Start, f.Finish, fl.SizeBits)
	}
	// flows still in flight at the horizon contributed their delivered
	// bits (Run materializes every Size at the horizon) but no FCT record
	for _, f := range fs.Flows() {
		fl := &flows[f.ID]
		spreadBits(m, f.Start, horizon, fl.SizeBits-f.Size)
	}

	r := assembleResult(s, m, reqs, "Fluid")
	r.Summary["energy_kj"] = 0
	r.Summary["failed_servers"] = 0
	r.Summary["skipped_requests"] = float64(mapper.Skipped())
	r.Summary["peak_active_flows"] = float64(fs.PeakActive())
	return r, nil
}

// spreadBits books a flow's delivered bits into the throughput bins,
// spread uniformly over [start, end], and counts the flow active in every
// bin it overlaps — the fluid analogue of the packet path's per-delivery
// accounting.
func spreadBits(m *cluster.Metrics, start, end, bits float64) {
	if bits <= 0 {
		return
	}
	markActive := func(bin int) {
		for len(m.ActiveFlows) <= bin {
			m.ActiveFlows = append(m.ActiveFlows, 0)
		}
		m.ActiveFlows[bin]++
	}
	w := m.ThptBins.Width()
	if end <= start {
		m.ThptBins.Add(start, bits)
		markActive(int(start / w))
		return
	}
	rate := bits / (end - start)
	for b := int(start / w); float64(b)*w < end; b++ {
		lo, hi := float64(b)*w, float64(b+1)*w
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		m.ThptBins.Add(lo, rate*(hi-lo))
		markActive(b)
	}
}
