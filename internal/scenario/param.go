package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// SetParameter returns a copy of s with the named sweepable parameter set
// to value, the programmatic variant-synthesis primitive shared by sweep
// expansion (Expand) and the search engine (internal/search). The copy
// carries no sweep or search block — it is a single concrete experiment —
// and keeps the base spec's name; callers that need distinct output
// prefixes rename it (Expand's positional suffix, SearchVariantName's
// hashed one). Parameters and their value constraints are exactly the
// sweepable set: "system.rscale", "system.nns" (positive integer),
// "topology.k", "topology.x", "duration" (positive) and "seed" (unsigned
// integer). The copy is not re-validated here — a set value can break
// invariants the base satisfies (a duration shorter than a phase start) —
// so callers validate the variant before running it.
func SetParameter(s *Spec, param string, value float64) (*Spec, error) {
	variant := *s
	variant.Sweep = nil
	variant.Search = nil
	switch param {
	case "system.rscale":
		variant.System.Rscale = value
	case "system.nns":
		n := int(value)
		if float64(n) != value || n <= 0 {
			return nil, fmt.Errorf("scenario %s: parameter system.nns value %v not a positive integer", s.Name, value)
		}
		variant.System.NNS = n
	case "topology.k":
		variant.Topology.K = value
	case "topology.x":
		variant.Topology.X = value
	case "duration":
		if value <= 0 {
			return nil, fmt.Errorf("scenario %s: parameter duration value %v not positive", s.Name, value)
		}
		variant.Duration = value
	case "seed":
		u := uint64(value)
		if float64(u) != value {
			return nil, fmt.Errorf("scenario %s: parameter seed value %v not an unsigned integer", s.Name, value)
		}
		variant.Seed = u
	default:
		return nil, fmt.Errorf("scenario %s: unsweepable parameter %q", s.Name, param)
	}
	return &variant, nil
}

// SearchVariantName names a search-synthesized variant of base with param
// set to value: "<base>-<param with . as ->-<value>-<hash>". The trailing
// hash is the first five hex digits of the SHA-256 of the value's exact
// IEEE-754 bits, which makes the name collision-proof where the sweep
// naming scheme is only collision-detected: formatSweepValue maps both
// "." and "-" into letters ("1.5" → "1p5"), so a base scenario literally
// named with such a suffix — or any two inputs whose formatted values
// coincide — would otherwise share a name. Distinct float64 values always
// hash apart, and the textual value stays in front for readability.
func SearchVariantName(base, param string, value float64) string {
	var bits [8]byte
	binary.BigEndian.PutUint64(bits[:], math.Float64bits(value))
	sum := sha256.Sum256(bits[:])
	return fmt.Sprintf("%s-%s-%s-%s", base, strings.ReplaceAll(param, ".", "-"),
		formatSweepValue(value), fmt.Sprintf("%x", sum[:3])[:5])
}
