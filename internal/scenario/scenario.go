// Package scenario is the declarative experiment layer: a versioned,
// validated JSON spec that names a topology, a phased workload program, the
// system under test, scheduled fault injection, and the desired outputs —
// so new experiments are data under scenarios/ instead of Go code under
// internal/experiments.
//
// A spec is self-contained and deterministic: everything random derives
// from its single seed, so the same file produces byte-identical output
// CSVs on every run, at any worker count. The package splits into three
// concerns:
//
//   - parsing and validation (this file): strict JSON (unknown fields are
//     errors), version gating, and eager validation of every cross-layer
//     reference — workload generators against the registry, fault targets
//     against the topology's server count, output kinds against the known
//     reductions — so a bad spec fails at load time with a line-addressable
//     error, never mid-simulation.
//   - building (build.go): lowering a spec onto cluster.Config and a
//     workload.Program.
//   - running (run.go): executing one spec (or a directory of them, with
//     replication and CI error bars) and writing the output files.
//
// See scenarios/README.md for the spec reference and ready-to-run
// examples.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// Spec is one declarative experiment: a named, seeded simulation of a
// workload program against a system on a topology, with optional fault
// injection and sweeps.
type Spec struct {
	// Version gates the schema; must equal Version.
	Version int `json:"version"`
	// Name identifies the scenario and prefixes its output files
	// (lowercase letters, digits and hyphens).
	Name string `json:"name"`
	// Description is free-form documentation carried with the spec.
	Description string `json:"description,omitempty"`
	// Seed drives all randomness (workload, placement, power profiles).
	Seed uint64 `json:"seed"`
	// Duration is the arrival horizon in seconds: no request arrives at or
	// after it.
	Duration float64 `json:"duration"`
	// Horizon is the simulation end, letting in-flight transfers drain;
	// 0 defaults to 3× Duration.
	Horizon float64 `json:"horizon,omitempty"`
	// Engine selects the simulation backend: "packet" (default, the
	// full discrete-event cluster) or "fluid" (max-min fluid flows via
	// internal/flowsim — orders of magnitude faster, scales to 100k+
	// concurrent transfers, but models no packet/control-plane effects,
	// so packet-only system knobs and faults are rejected under it).
	Engine string `json:"engine,omitempty"`

	Topology TopologySpec `json:"topology"`
	System   SystemSpec   `json:"system"`
	// Workload is the phased generator program; phases may overlap
	// (overlay) or abut (sequence).
	Workload []PhaseSpec `json:"workload"`
	// Faults schedules injected failures.
	Faults  []FaultSpec `json:"faults,omitempty"`
	Outputs OutputSpec  `json:"outputs,omitempty"`
	// Sweep, when present, expands this spec into one variant per value.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Search, when present, turns the spec into an optimization problem
	// over one sweepable parameter (see SearchSpec); such specs are
	// submitted to the service's /v1/searches endpoint or run with
	// `scda-bench -search`.
	Search *SearchSpec `json:"search,omitempty"`
}

// TopologySpec names the network under the cluster. Kind "fig6" is the
// paper's evaluation topology and admits only the bandwidth knobs the
// paper itself varies (x, k); kind "custom" opens every parameter of the
// three-tier builder. Non-tree fabrics (fat-tree, VL2) are exercised by
// ablation A8 at the flow level but cannot host the full cluster: the
// RM/RA hierarchy of section VI-A requires a switch tree (see
// ratealloc.NewHierarchy).
type TopologySpec struct {
	// Kind is "fig6" (default) or "custom".
	Kind string `json:"kind,omitempty"`
	// Racks, ServersPerRack, AggSwitches, Clients set the tree shape
	// (custom only; 0 keeps the fig. 6 default).
	Racks          int `json:"racks,omitempty"`
	ServersPerRack int `json:"serversPerRack,omitempty"`
	AggSwitches    int `json:"aggSwitches,omitempty"`
	Clients        int `json:"clients,omitempty"`
	// X is the base bandwidth in bits/sec; K the rack-to-aggregation
	// bandwidth factor (the paper varies both).
	X float64 `json:"x,omitempty"`
	K float64 `json:"k,omitempty"`
	// CoreFactor scales aggregation-to-core links (custom only).
	CoreFactor float64 `json:"coreFactor,omitempty"`
	// DCDelay / WANDelay are one-way link delays in seconds (custom only).
	DCDelay  float64 `json:"dcDelay,omitempty"`
	WANDelay float64 `json:"wanDelay,omitempty"`
}

// SystemSpec selects and tunes the system under test.
type SystemSpec struct {
	// Kind is "scda" (default) or "randtcp".
	Kind string `json:"kind,omitempty"`
	// NNS is the name-node count (0 = default 3; 1 reproduces the
	// single-name-node bottleneck).
	NNS int `json:"nns,omitempty"`
	// Replicate issues the internal VIII-B replication write after each
	// external write.
	Replicate bool `json:"replicate,omitempty"`
	// Rscale is the passive-content scale-down threshold in bits/sec
	// (section VII-C; 0 = off).
	Rscale float64 `json:"rscale,omitempty"`
	// PowerAware enables R̂/P selection over heterogeneous power profiles
	// (section VII-D).
	PowerAware bool `json:"powerAware,omitempty"`
	// SJF attaches the implicit shortest-job-first priority policy of
	// section IV-A to every flow (scda only).
	SJF bool `json:"sjf,omitempty"`
	// MigrateInterval runs the VII-C cold-content migration pass every
	// that many seconds (0 = off; requires rscale > 0).
	MigrateInterval float64 `json:"migrateInterval,omitempty"`
	// ControlDelay models the UCL→FES→NNS→RA request path latency in
	// seconds before each transfer starts.
	ControlDelay float64 `json:"controlDelay,omitempty"`
}

// PhaseSpec is one entry of the workload program.
type PhaseSpec struct {
	// Generator names a registered workload generator (workload.Names()).
	Generator string `json:"generator"`
	// Start offsets the phase on the scenario timeline in seconds.
	Start float64 `json:"start,omitempty"`
	// Duration bounds the phase's arrival window; 0 extends to the
	// scenario's Duration.
	Duration float64 `json:"duration,omitempty"`
	// Params overlays generator parameters onto the registered defaults;
	// field names match the generator's Go spec (e.g. "ArrivalRate").
	// Unknown fields are errors.
	Params json.RawMessage `json:"params,omitempty"`
}

// FaultSpec schedules one injected failure.
type FaultSpec struct {
	// At is the injection time in seconds.
	At float64 `json:"at"`
	// Kind selects the fault; "fail-server" is the only kind today.
	Kind string `json:"kind"`
	// Server indexes the topology's block-server list (rack-major order).
	Server int `json:"server"`
}

// Engine kinds: the simulation backends a scenario can select.
const (
	// EnginePacket is the full discrete-event cluster simulation — every
	// spec feature is available. Omitting "engine" means packet, and the
	// canonical encoding treats an explicit "packet" as the omitted
	// default, so pre-engine specs keep their content hashes.
	EnginePacket = "packet"
	// EngineFluid runs the workload as max-min fluid flows on the
	// topology (internal/flowsim): no packets, no control plane, no
	// storage — just arrival-ordered transfers sharing link capacity.
	EngineFluid = "fluid"
)

// FailServer is the fault kind that takes a block server out of service
// (cluster.FailServer): selection excludes it and orphaned blocks
// re-replicate from survivors.
const FailServer = "fail-server"

// Output kinds: the series reductions a scenario can request.
const (
	// OutThroughput is the average-instantaneous-throughput time series
	// (KB/sec per active flow, the paper's figs. 7/10/17 reduction).
	OutThroughput = "throughput"
	// OutFCTCDF is the flow-completion-time CDF (figs. 8/11/14/16/18).
	OutFCTCDF = "fct-cdf"
	// OutAFCT is AFCT binned by content size (figs. 9/12/13/15).
	OutAFCT = "afct"
)

// OutputSpec selects what a run writes.
type OutputSpec struct {
	// Series lists the reductions to emit; empty selects all three.
	Series []string `json:"series,omitempty"`
	// AFCTBinBytes is the afct size-bin width (default 1 MiB).
	AFCTBinBytes float64 `json:"afctBinBytes,omitempty"`
	// CDFPoints is the fct-cdf downsample count (default 64).
	CDFPoints int `json:"cdfPoints,omitempty"`
	// Trace additionally writes the generated workload as a replayable
	// trace CSV.
	Trace bool `json:"trace,omitempty"`
}

// SweepSpec expands a spec into one variant per value of a single
// parameter, so a parameter study ships as one file.
type SweepSpec struct {
	// Parameter is one of "system.rscale", "system.nns", "topology.k",
	// "topology.x", "duration" or "seed".
	Parameter string `json:"parameter"`
	// Values are applied one per variant.
	Values []float64 `json:"values"`
}

// sweepParams enumerates the sweepable parameters.
var sweepParams = map[string]bool{
	"system.rscale": true, "system.nns": true, "topology.k": true,
	"topology.x": true, "duration": true, "seed": true,
}

// Parse reads, strictly decodes and validates one spec. Unknown JSON
// fields at any level are errors, so typos fail loudly instead of
// silently running the default.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// reject trailing garbage after the spec object
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load parses and validates the spec at path.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadDir parses every *.json file in dir (sorted by filename, so run
// order is stable) and returns the validated specs.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Validate checks the whole spec: schema version, identifiers, topology
// and system kinds, every workload phase (including generator parameters),
// fault targets against the resolved server count, output kinds, and the
// sweep. It is the single gate both the CLIs' -validate mode and Run use.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: version %d unsupported (want %d)", s.Version, Version)
	}
	if err := validName(s.Name); err != nil {
		return err
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration = %v", s.Name, s.Duration)
	}
	if s.Horizon != 0 && s.Horizon < s.Duration {
		return fmt.Errorf("scenario %s: horizon %v shorter than duration %v", s.Name, s.Horizon, s.Duration)
	}
	tt, err := s.topologySpec()
	if err != nil {
		return err
	}
	if _, err := s.systemKind(); err != nil {
		return err
	}
	eng, err := s.engineKind()
	if err != nil {
		return err
	}
	if eng == EngineFluid {
		// every knob below shapes packet- or control-plane behavior the
		// fluid model does not have; accepting one would silently run a
		// plain fluid simulation while the spec claims otherwise
		if sys, _ := s.systemKind(); sys != cluster.SCDA {
			return fmt.Errorf("scenario %s: system.kind %s requires engine packet", s.Name, s.System.Kind)
		}
		switch {
		case s.System.SJF:
			return fmt.Errorf("scenario %s: system.sjf requires engine packet", s.Name)
		case s.System.PowerAware:
			return fmt.Errorf("scenario %s: system.powerAware requires engine packet", s.Name)
		case s.System.MigrateInterval > 0:
			return fmt.Errorf("scenario %s: system.migrateInterval requires engine packet", s.Name)
		case s.System.Rscale > 0:
			return fmt.Errorf("scenario %s: system.rscale requires engine packet", s.Name)
		case s.System.Replicate:
			return fmt.Errorf("scenario %s: system.replicate requires engine packet", s.Name)
		case s.System.ControlDelay > 0:
			return fmt.Errorf("scenario %s: system.controlDelay requires engine packet", s.Name)
		case s.System.NNS != 0:
			return fmt.Errorf("scenario %s: system.nns requires engine packet", s.Name)
		case len(s.Faults) > 0:
			return fmt.Errorf("scenario %s: faults require engine packet", s.Name)
		}
	}
	if s.System.NNS < 0 {
		return fmt.Errorf("scenario %s: system.nns = %d", s.Name, s.System.NNS)
	}
	if s.System.MigrateInterval > 0 && s.System.Rscale <= 0 {
		return fmt.Errorf("scenario %s: system.migrateInterval requires system.rscale > 0", s.Name)
	}
	// the selection/scheduling knobs only exist in the SCDA branch of the
	// cluster; accepting them under randtcp would silently run a plain
	// baseline while the spec claims otherwise
	if sys, _ := s.systemKind(); sys == cluster.RandTCP {
		switch {
		case s.System.SJF:
			return fmt.Errorf("scenario %s: system.sjf requires system.kind scda", s.Name)
		case s.System.PowerAware:
			return fmt.Errorf("scenario %s: system.powerAware requires system.kind scda", s.Name)
		case s.System.Rscale > 0:
			return fmt.Errorf("scenario %s: system.rscale requires system.kind scda", s.Name)
		}
	}
	if _, err := s.BuildWorkload(); err != nil {
		return err
	}
	nServers := tt.Racks * tt.ServersPerRack
	for i, f := range s.Faults {
		if f.Kind != FailServer {
			return fmt.Errorf("scenario %s: fault %d: unknown kind %q (want %q)", s.Name, i, f.Kind, FailServer)
		}
		if f.At < 0 || f.At >= s.horizonOrDefault() {
			return fmt.Errorf("scenario %s: fault %d: at = %v outside the simulated [0, %v)", s.Name, i, f.At, s.horizonOrDefault())
		}
		if f.Server < 0 || f.Server >= nServers {
			return fmt.Errorf("scenario %s: fault %d: server %d out of range [0, %d)", s.Name, i, f.Server, nServers)
		}
		for j := 0; j < i; j++ {
			if s.Faults[j].Server == f.Server {
				return fmt.Errorf("scenario %s: faults %d and %d fail the same server %d", s.Name, j, i, f.Server)
			}
		}
	}
	for _, kind := range s.Outputs.Series {
		switch kind {
		case OutThroughput, OutFCTCDF, OutAFCT:
		default:
			return fmt.Errorf("scenario %s: unknown output series %q (want %s, %s or %s)",
				s.Name, kind, OutThroughput, OutFCTCDF, OutAFCT)
		}
	}
	if s.Outputs.AFCTBinBytes < 0 || s.Outputs.CDFPoints < 0 {
		return fmt.Errorf("scenario %s: negative output parameters", s.Name)
	}
	if s.Sweep != nil {
		if s.Search != nil {
			return fmt.Errorf("scenario %s: sweep and search blocks are mutually exclusive", s.Name)
		}
		if !sweepParams[s.Sweep.Parameter] {
			return fmt.Errorf("scenario %s: unsweepable parameter %q", s.Name, s.Sweep.Parameter)
		}
		if len(s.Sweep.Values) == 0 {
			return fmt.Errorf("scenario %s: sweep has no values", s.Name)
		}
		if _, err := s.Expand(); err != nil {
			return err
		}
	}
	if s.Search != nil {
		if err := s.Search.validate(s); err != nil {
			return err
		}
	}
	return nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("scenario: name missing")
	}
	for _, c := range name {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			return fmt.Errorf("scenario: name %q not [a-z0-9-]", name)
		}
	}
	return nil
}

// Expand resolves the sweep (if any) into one self-contained variant spec
// per value, named <name>-<param>-<value>. Every variant is re-validated
// (a swept value can break invariants the base spec satisfies — e.g. a
// duration shorter than a phase start) and variant names must be unique,
// since they prefix output files. A spec without a sweep expands to
// itself.
func (s *Spec) Expand() ([]*Spec, error) {
	if s.Sweep == nil {
		return []*Spec{s}, nil
	}
	seen := make(map[string]bool, len(s.Sweep.Values))
	out := make([]*Spec, 0, len(s.Sweep.Values))
	for _, v := range s.Sweep.Values {
		variant, err := SetParameter(s, s.Sweep.Parameter, v)
		if err != nil {
			return nil, err
		}
		suffix := strings.ReplaceAll(s.Sweep.Parameter, ".", "-")
		variant.Name = fmt.Sprintf("%s-%s-%s", s.Name, suffix, formatSweepValue(v))
		if seen[variant.Name] {
			return nil, fmt.Errorf("scenario %s: sweep value %v repeats (variant %s)", s.Name, v, variant.Name)
		}
		seen[variant.Name] = true
		// variants carry no sweep, so this cannot recurse
		if err := variant.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %s: sweep value %v: %w", s.Name, v, err)
		}
		out = append(out, variant)
	}
	return out, nil
}

// formatSweepValue renders a sweep value filename-safely: 2.5e+06 becomes
// "2.5e06", keeping variant names within [a-z0-9-].
func formatSweepValue(v float64) string {
	t := fmt.Sprintf("%g", v)
	t = strings.ReplaceAll(t, "+", "")
	t = strings.ReplaceAll(t, ".", "p")
	t = strings.ReplaceAll(t, "-", "m")
	return t
}

// ExpandAll expands every spec's sweep and flattens the result, checking
// that all resulting names are unique (they prefix output files).
func ExpandAll(specs []*Spec) ([]*Spec, error) {
	var out []*Spec
	seen := map[string]bool{}
	for _, s := range specs {
		vs, err := s.Expand()
		if err != nil {
			return nil, err
		}
		for _, v := range vs {
			if seen[v.Name] {
				return nil, fmt.Errorf("scenario: duplicate scenario name %q", v.Name)
			}
			seen[v.Name] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// decodeStrict unmarshals raw into v, rejecting unknown fields.
func decodeStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// BuildWorkload lowers the phase list onto a validated workload.Program:
// each phase's generator comes fresh from the registry with the spec's
// params overlaid on the defaults.
func (s *Spec) BuildWorkload() (workload.Program, error) {
	if len(s.Workload) == 0 {
		return workload.Program{}, fmt.Errorf("scenario %s: workload has no phases", s.Name)
	}
	prog := workload.Program{Phases: make([]workload.Phase, len(s.Workload))}
	for i, ph := range s.Workload {
		gen, err := workload.New(ph.Generator)
		if err != nil {
			return workload.Program{}, fmt.Errorf("scenario %s: phase %d: %w", s.Name, i, err)
		}
		if len(ph.Params) > 0 {
			if err := decodeStrict(ph.Params, gen); err != nil {
				return workload.Program{}, fmt.Errorf("scenario %s: phase %d (%s) params: %w", s.Name, i, ph.Generator, err)
			}
		}
		if ph.Start < 0 || ph.Start >= s.Duration {
			return workload.Program{}, fmt.Errorf("scenario %s: phase %d start %v outside [0, %v)", s.Name, i, ph.Start, s.Duration)
		}
		if ph.Duration < 0 {
			return workload.Program{}, fmt.Errorf("scenario %s: phase %d duration = %v", s.Name, i, ph.Duration)
		}
		prog.Phases[i] = workload.Phase{Gen: gen, Start: ph.Start, Duration: ph.Duration}
	}
	if err := prog.Validate(); err != nil {
		return workload.Program{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return prog, nil
}
