package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// CanonicalJSON returns the spec's canonical encoding: one compact JSON
// object with every map's keys sorted, no insignificant whitespace, and
// defaulted (zero-valued, omitempty) fields dropped. Two spec files that
// parse to the same Spec — whatever their key order, indentation, or
// explicitly-written default fields — canonicalize to the same bytes, so
// the encoding is a content address for "the same experiment".
//
// The free-form Description is excluded: it is pure documentation, read
// by nothing in the build/run path and absent from every output, so a
// typo fix must not bust result caches keyed on the hash. Name stays in —
// it prefixes output files and appears in the rendered result document,
// so results for differently-named specs are genuinely different bytes.
//
// Typed numeric fields are normalized through their Go representation
// ("1e2" and "100" for a duration are the same float64, hence the same
// canonical bytes); numeric literals inside free-form generator params are
// preserved digit-for-digit, never round-tripped through float64, so
// full-precision uint64 values survive.
func (s *Spec) CanonicalJSON() ([]byte, error) {
	// Struct marshal first: applies omitempty (dropping defaults) and
	// normalizes typed fields. The decode/re-encode pass then sorts object
	// keys everywhere, including inside raw generator params; UseNumber
	// keeps number literals verbatim instead of lossy float64.
	c := *s
	c.Description = ""
	// "packet" is the engine default: a spec writing it explicitly is the
	// same experiment as one omitting it, and pre-engine spec files must
	// keep their hashes, so the default canonicalizes to absent
	if c.Engine == EnginePacket {
		c.Engine = ""
	}
	b, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	out, err := json.Marshal(v) // map keys marshal in sorted order
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	return out, nil
}

// hashDomain separates spec hashes from any other SHA-256 use; bumping the
// schema version changes every hash even for byte-identical field sets.
const hashDomain = "scda.scenario/v%d\n"

// Hash returns the spec's stable content address: "v<version>-" plus the
// first 128 bits of the SHA-256 of the canonical JSON (domain-separated and
// version-prefixed). Equal specs share a hash; any semantic change — the
// seed included — produces a different one. The service uses it (together
// with the replicate count) as the result-cache key, and `scda-sim -hash`
// prints it.
func (s *Spec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, hashDomain, Version)
	h.Write(b)
	return fmt.Sprintf("v%d-%x", Version, h.Sum(nil)[:16]), nil
}
