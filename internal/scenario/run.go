package scenario

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/export"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SeriesGroup is one requested reduction of a run: a kind (throughput,
// fct-cdf, afct), axis labels, and the series — one per replicate-mean
// system curve.
type SeriesGroup struct {
	Kind   string
	XLabel string
	YLabel string
	Series []stats.Series
}

// Result is the outcome of running one scenario (possibly aggregated over
// replicate seeds).
type Result struct {
	Spec *Spec
	// Requests is the generated request count (of the base seed for
	// replicated runs).
	Requests int
	// Summary holds the headline metrics; replicated runs add a
	// "<key>_ci95" half-width per key and a "replicates" count.
	Summary map[string]float64
	// Groups carries the requested series reductions in spec order.
	Groups []SeriesGroup

	// reqs backs the optional trace output; nil for aggregated results
	// (replicates have no single trace).
	reqs []workload.Request
}

// Run executes one spec: validate it, generate the workload program from
// the seed, build the cluster, schedule the fault injections, simulate to
// the horizon, and reduce to the requested outputs. Deterministic: the
// same spec produces identical Results on every call.
func Run(s *Spec) (*Result, error) {
	// gate programmatically built specs too, so invariants (fault targets
	// in range, horizon ≥ duration, ...) fail with an error here instead
	// of a panic or silent mis-simulation below
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if eng, _ := s.engineKind(); eng == EngineFluid {
		return runFluid(s)
	}
	cfg, err := s.ClusterConfig()
	if err != nil {
		return nil, err
	}
	prog, err := s.BuildWorkload()
	if err != nil {
		return nil, err
	}
	reqs := prog.Generate(sim.NewRNG(s.Seed), s.Duration)
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	failed := 0
	for _, f := range s.Faults {
		node := c.TT.Servers[f.Server]
		c.Sim.At(f.At, func() {
			if err := c.FailServer(node); err == nil {
				failed++
			}
		})
	}
	m := c.RunWorkload(reqs, s.horizonOrDefault())

	c.Power.AccrueAll(c.Sim.Now())
	sysName := "SCDA"
	if cfg.System == cluster.RandTCP {
		sysName = "RandTCP"
	}
	r := assembleResult(s, m, reqs, sysName)
	r.Summary["energy_kj"] = c.Power.TotalEnergy() / 1e3
	r.Summary["failed_servers"] = float64(failed)
	return r, nil
}

// assembleResult reduces a run's metrics to the Result schema — the shared
// tail of the packet and fluid paths, which is what keeps the two engines'
// output series and summary keys identical by construction. Engine- or
// cluster-specific summary entries (energy, failed servers) are added by
// the caller afterwards.
func assembleResult(s *Spec, m *cluster.Metrics, reqs []workload.Request, sysName string) *Result {
	r := &Result{Spec: s, Requests: len(reqs), reqs: reqs}
	cdf := m.FCTCDF()
	r.Summary = map[string]float64{
		"requests":           float64(len(reqs)),
		"started":            float64(m.Started),
		"completed":          float64(m.Completed),
		"drops":              float64(m.Drops),
		"violations":         float64(m.Violations),
		"lost_blocks":        float64(m.LostBlocks),
		"rereplicated":       float64(m.ReReplicated),
		"unrecovered_blocks": float64(m.UnrecoveredBlocks),
		"migrations":         float64(m.Migrations),
	}
	if cdf.N() > 0 {
		r.Summary["mean_fct_s"] = m.MeanFCT()
		r.Summary["median_fct_s"] = cdf.Quantile(0.5)
		r.Summary["p90_fct_s"] = cdf.Quantile(0.9)
		r.Summary["p99_fct_s"] = cdf.Quantile(0.99)
	}
	for _, kind := range s.outputSeries() {
		g := SeriesGroup{Kind: kind}
		switch kind {
		case OutThroughput:
			g.XLabel, g.YLabel = "Simulation time (sec)", "Avg. Inst. Thpt (KB/sec)"
			g.Series = []stats.Series{{Name: sysName, Points: m.AvgInstThroughput()}}
		case OutFCTCDF:
			g.XLabel, g.YLabel = "FCT (sec)", "FCT CDF"
			n := s.Outputs.CDFPoints
			if n == 0 {
				n = 64
			}
			g.Series = []stats.Series{{Name: sysName, Points: cdf.Points(n)}}
		case OutAFCT:
			g.XLabel, g.YLabel = "File Size (bytes)", "AFCT (sec)"
			bin := s.Outputs.AFCTBinBytes
			if bin == 0 {
				bin = 1 << 20
			}
			g.Series = []stats.Series{{Name: sysName, Points: m.AFCTBySize(bin)}}
		}
		r.Groups = append(r.Groups, g)
	}
	return r
}

// outputSeries resolves the requested series kinds (default: all three).
func (s *Spec) outputSeries() []string {
	if len(s.Outputs.Series) > 0 {
		return s.Outputs.Series
	}
	return []string{OutThroughput, OutFCTCDF, OutAFCT}
}

// RunCtx is Run with cooperative cancellation: the check happens before
// the simulation starts, so a cancelled ctx costs nothing. One spec's
// simulation is a single uninterruptible discrete-event run — cancellation
// granularity for long work is the replicate boundary (see
// RunReplicatedCtx), which keeps the determinism contract trivially intact:
// a run either happens exactly as it always does, or not at all.
func RunCtx(ctx context.Context, s *Spec) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Run(s)
}

// RunReplicated runs the spec at reps seeds derived from its own seed,
// fanned out on the pool (nil = default), and aggregates series to mean ±
// 95% CI curves and summaries to means with "_ci95" companions. reps <= 1
// degenerates to a single Run.
func RunReplicated(s *Spec, reps int, p *runner.Pool) (*Result, error) {
	return RunReplicatedCtx(context.Background(), s, reps, p, nil)
}

// RunReplicatedCtx is RunReplicated with cooperative cancellation and
// progress reporting. Once ctx is done no further replicate starts
// (replicates already simulating run to completion) and the call returns
// ctx.Err(). onRep, when non-nil, is invoked after each replicate finishes
// with the number completed so far and the total — concurrently when the
// pool is, so it must be safe to call from multiple goroutines. The
// replicate seed stream is unchanged by either addition.
func RunReplicatedCtx(ctx context.Context, s *Spec, reps int, p *runner.Pool, onRep func(done, total int)) (*Result, error) {
	if reps <= 1 {
		r, err := RunCtx(ctx, s)
		if err == nil && onRep != nil {
			onRep(1, 1)
		}
		return r, err
	}
	var done atomic.Int64
	runs, err := runner.ReplicateCtx(ctx, p, s.Seed, reps, func(ctx context.Context, rep int, seed uint64) (*Result, error) {
		variant := *s
		variant.Seed = seed
		r, err := RunCtx(ctx, &variant)
		if err == nil && onRep != nil {
			onRep(int(done.Add(1)), reps)
		}
		return r, err
	})
	if err != nil {
		return nil, err
	}
	return aggregate(s, runs), nil
}

// RunAll executes every spec (sweeps must already be expanded) with reps
// replicate seeds each, flattening the (scenario, replicate) grid onto one
// pool so both axes fan out without nested Map calls. Results are in spec
// order.
func RunAll(specs []*Spec, reps int, p *runner.Pool) ([]*Result, error) {
	return RunAllCtx(context.Background(), specs, reps, p)
}

// RunAllCtx is RunAll with cooperative cancellation: once ctx is done no
// further (scenario, replicate) cell starts and the call returns ctx.Err().
func RunAllCtx(ctx context.Context, specs []*Spec, reps int, p *runner.Pool) ([]*Result, error) {
	if reps <= 0 {
		reps = 1
	}
	type cell struct {
		spec int
		seed uint64
	}
	var cells []cell
	for i, s := range specs {
		if s.Sweep != nil {
			return nil, fmt.Errorf("scenario %s: RunAll requires expanded specs (call ExpandAll first)", s.Name)
		}
		// reps == 1 keeps the spec's own seed (byte-identical to a lone
		// Run); replication switches to the derived-seed stream
		seeds := []uint64{s.Seed}
		if reps > 1 {
			seeds = runner.DeriveSeeds(s.Seed, reps)
		}
		for _, seed := range seeds {
			cells = append(cells, cell{spec: i, seed: seed})
		}
	}
	flat, err := runner.MapCtx(ctx, p, len(cells), func(ctx context.Context, i int) (*Result, error) {
		variant := *specs[cells[i].spec]
		variant.Seed = cells[i].seed
		return RunCtx(ctx, &variant)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(specs))
	for i, s := range specs {
		runs := flat[i*reps : (i+1)*reps]
		if reps == 1 {
			out[i] = runs[0]
			continue
		}
		out[i] = aggregate(s, runs)
	}
	return out, nil
}

// aggregate reduces replicate runs of one spec to mean series with 95% CI
// error bars and mean summaries with "_ci95" companions.
func aggregate(s *Spec, runs []*Result) *Result {
	agg := &Result{Spec: s, Requests: runs[0].Requests}
	agg.Summary = map[string]float64{"replicates": float64(len(runs))}
	// union the keys across runs: the FCT quantiles are only present in
	// replicates that completed at least one flow, and must not vanish
	// just because the first seed completed none
	keys := map[string]bool{}
	for _, r := range runs {
		for k := range r.Summary {
			keys[k] = true
		}
	}
	for k := range keys {
		vals := make([]float64, 0, len(runs))
		for _, r := range runs {
			if v, ok := r.Summary[k]; ok {
				vals = append(vals, v)
			}
		}
		mean, ci := stats.MeanCI(vals)
		agg.Summary[k] = mean
		agg.Summary[k+"_ci95"] = ci
		if len(vals) < len(runs) {
			// mean/_ci95 cover a subset; record how many replicates
			// actually contributed so the CI is not mislabeled
			agg.Summary[k+"_n"] = float64(len(vals))
		}
	}
	for g := range runs[0].Groups {
		perRun := make([][]stats.Series, len(runs))
		for i, r := range runs {
			perRun[i] = r.Groups[g].Series
		}
		agg.Groups = append(agg.Groups, SeriesGroup{
			Kind:   runs[0].Groups[g].Kind,
			XLabel: runs[0].Groups[g].XLabel,
			YLabel: runs[0].Groups[g].YLabel,
			Series: stats.AggregateSeries(perRun),
		})
	}
	return agg
}

// PrintSummary writes the summary metrics to w, one "name value" line per
// key in sorted order — the shared rendering for both CLIs.
func (r *Result) PrintSummary(w io.Writer) {
	keys := make([]string, 0, len(r.Summary))
	for k := range r.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "    %-24s %12.4g\n", k, r.Summary[k])
	}
}

// WriteFiles writes the result under dir (created if needed) and returns
// the paths: <name>-summary.csv (key,value rows, sorted), one long-format
// series CSV per requested reduction, and — for single-seed runs with
// outputs.trace — the replayable workload trace. Output is byte-identical
// across runs of the same spec.
func (r *Result) WriteFiles(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	sumPath := filepath.Join(dir, r.Spec.Name+"-summary.csv")
	if err := writeSummary(sumPath, r); err != nil {
		return nil, err
	}
	paths = append(paths, sumPath)
	for _, g := range r.Groups {
		p := filepath.Join(dir, r.Spec.Name+"-"+g.Kind+".csv")
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		err = r.WriteSeriesCSV(f, g.Kind)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: writing %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	if r.HasTrace() {
		p := filepath.Join(dir, r.Spec.Name+"-trace.csv")
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		err = r.WriteTraceCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: writing %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// HasTrace reports whether the result carries a replayable workload trace:
// the spec requested outputs.trace and the result is a single-seed run
// (aggregated replicate results have no single trace).
func (r *Result) HasTrace() bool {
	return r.Spec.Outputs.Trace && r.reqs != nil
}

// WriteTraceCSV writes the replayable workload trace to w — the same bytes
// WriteFiles puts in <name>-trace.csv. Callers must check HasTrace first;
// a traceless result errors.
func (r *Result) WriteTraceCSV(w io.Writer) error {
	if !r.HasTrace() {
		return fmt.Errorf("scenario %s: result carries no trace", r.Spec.Name)
	}
	return workload.WriteTrace(w, r.reqs)
}

// WriteSeriesCSV writes the named series reduction (throughput, fct-cdf,
// afct) to w in long format — exactly the bytes WriteFiles puts in
// <name>-<kind>.csv. It is the single series encoder shared by the CLIs
// and the service layer, which is what makes "a served CSV is
// byte-identical to the CLI's file" (including a job group's concatenated
// sweep CSV versus `scda-bench -scenario-dir` output) true by
// construction rather than by test alone. A kind the result does not
// carry errors.
func (r *Result) WriteSeriesCSV(w io.Writer, kind string) error {
	for _, g := range r.Groups {
		if g.Kind == kind {
			return export.WriteSeriesLong(w, g.Series)
		}
	}
	return fmt.Errorf("scenario %s: result carries no %s series", r.Spec.Name, kind)
}

// WriteSummaryCSV writes the summary metrics to w as metric,value rows in
// sorted key order — exactly the bytes WriteFiles puts in
// <name>-summary.csv, so network callers (scda-serve's result endpoint)
// can serve output byte-identical to the CLI's files.
func (r *Result) WriteSummaryCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "value"}); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Summary))
	for k := range r.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := cw.Write([]string{k, strconv.FormatFloat(r.Summary[k], 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeSummary emits the result's summary CSV at path.
func writeSummary(path string, r *Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteSummaryCSV(f)
}
