package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// topologySpec resolves the spec's topology block onto the three-tier
// builder parameters, enforcing the kind contract: "fig6" admits only the
// bandwidth knobs the paper varies, "custom" admits everything.
func (s *Spec) topologySpec() (topology.ThreeTierSpec, error) {
	tt := topology.DefaultThreeTier()
	t := s.Topology
	kind := t.Kind
	if kind == "" {
		kind = "fig6"
	}
	switch kind {
	case "fig6":
		if t.Racks != 0 || t.ServersPerRack != 0 || t.AggSwitches != 0 || t.Clients != 0 ||
			t.CoreFactor != 0 || t.DCDelay != 0 || t.WANDelay != 0 {
			return tt, fmt.Errorf("scenario %s: topology kind fig6 admits only x and k; use kind custom to reshape the tree", s.Name)
		}
	case "custom":
		if t.Racks != 0 {
			tt.Racks = t.Racks
		}
		if t.ServersPerRack != 0 {
			tt.ServersPerRack = t.ServersPerRack
		}
		if t.AggSwitches != 0 {
			tt.AggSwitches = t.AggSwitches
		}
		if t.Clients != 0 {
			tt.Clients = t.Clients
		}
		if t.CoreFactor != 0 {
			tt.CoreFactor = t.CoreFactor
		}
		if t.DCDelay != 0 {
			tt.DCDelay = t.DCDelay
		}
		if t.WANDelay != 0 {
			tt.WANDelay = t.WANDelay
		}
	default:
		return tt, fmt.Errorf("scenario %s: unknown topology kind %q (want fig6 or custom)", s.Name, kind)
	}
	if t.X != 0 {
		tt.X = t.X
	}
	if t.K != 0 {
		tt.K = t.K
	}
	// building validates shape and bandwidth parameters eagerly, so a bad
	// spec fails at load time
	if _, err := topology.BuildThreeTier(tt); err != nil {
		return tt, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return tt, nil
}

// engineKind resolves the spec's simulation backend.
func (s *Spec) engineKind() (string, error) {
	switch s.Engine {
	case "", EnginePacket:
		return EnginePacket, nil
	case EngineFluid:
		return EngineFluid, nil
	default:
		return "", fmt.Errorf("scenario %s: unknown engine %q (want %s or %s)", s.Name, s.Engine, EnginePacket, EngineFluid)
	}
}

// systemKind resolves the system block's kind.
func (s *Spec) systemKind() (cluster.System, error) {
	switch s.System.Kind {
	case "", "scda":
		return cluster.SCDA, nil
	case "randtcp":
		return cluster.RandTCP, nil
	default:
		return cluster.SCDA, fmt.Errorf("scenario %s: unknown system kind %q (want scda or randtcp)", s.Name, s.System.Kind)
	}
}

// ClusterConfig lowers the spec onto a cluster configuration.
func (s *Spec) ClusterConfig() (cluster.Config, error) {
	sys, err := s.systemKind()
	if err != nil {
		return cluster.Config{}, err
	}
	tt, err := s.topologySpec()
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.DefaultConfig(sys)
	cfg.Topology = tt
	cfg.Seed = s.Seed
	if s.System.NNS > 0 {
		cfg.NumNNS = s.System.NNS
	}
	cfg.Replicate = s.System.Replicate
	cfg.Rscale = s.System.Rscale
	cfg.PowerAware = s.System.PowerAware
	cfg.HeterogeneousPower = s.System.PowerAware
	cfg.SJFScheduling = s.System.SJF
	cfg.MigrateInterval = s.System.MigrateInterval
	cfg.ControlDelay = s.System.ControlDelay
	return cfg, nil
}

// horizonOrDefault returns the simulation end time.
func (s *Spec) horizonOrDefault() float64 {
	if s.Horizon > 0 {
		return s.Horizon
	}
	return s.Duration * 3
}
