package scenario

import (
	"strings"
	"testing"
)

// specJSON builds a minimal valid spec document from a fragment of extra
// top-level fields (empty or trailing-comma-free JSON snippet).
func specJSON(extra string) string {
	if extra != "" {
		extra = ", " + extra
	}
	return `{
		"version": 1,
		"name": "canon-test",
		"seed": 7,
		"duration": 10,
		"workload": [{"generator": "dc", "params": {"ArrivalRate": 2}}]` + extra + `}`
}

func mustParse(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustHash(t *testing.T, s *Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCanonicalJSONNormalizesFormatting(t *testing.T) {
	// Same spec, different key order, whitespace, and an explicit default
	// (horizon 0 is the omitempty zero): identical canonical bytes.
	a := mustParse(t, specJSON(`"topology": {"kind": "fig6", "x": 5e7, "k": 3}`))
	b := mustParse(t, `{"workload":[{"params":{"ArrivalRate":2},"generator":"dc"}],
		"duration":10,"horizon":0,"seed":7,"name":"canon-test","version":1,
		"topology":{"k":3,"x":5e7,"kind":"fig6"}}`)
	ca, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", ca, cb)
	}
	if mustHash(t, a) != mustHash(t, b) {
		t.Fatal("hashes differ for equal specs")
	}
}

func TestCanonicalJSONDeterministic(t *testing.T) {
	s := mustParse(t, specJSON(""))
	first, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := s.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatal("canonicalization not deterministic")
		}
	}
}

func TestHashIgnoresDescription(t *testing.T) {
	// Description is documentation, not experiment content: editing it
	// must not bust result caches keyed on the hash.
	a := mustParse(t, specJSON(`"description": "first draft"`))
	b := mustParse(t, specJSON(`"description": "polished prose"`))
	c := mustParse(t, specJSON(""))
	if mustHash(t, a) != mustHash(t, b) || mustHash(t, a) != mustHash(t, c) {
		t.Fatal("description edits change the hash")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := mustHash(t, mustParse(t, specJSON("")))
	for name, doc := range map[string]string{
		"seed":     `{"version":1,"name":"canon-test","seed":8,"duration":10,"workload":[{"generator":"dc","params":{"ArrivalRate":2}}]}`,
		"duration": `{"version":1,"name":"canon-test","seed":7,"duration":11,"workload":[{"generator":"dc","params":{"ArrivalRate":2}}]}`,
		"params":   `{"version":1,"name":"canon-test","seed":7,"duration":10,"workload":[{"generator":"dc","params":{"ArrivalRate":3}}]}`,
		"system":   `{"version":1,"name":"canon-test","seed":7,"duration":10,"system":{"kind":"randtcp"},"workload":[{"generator":"dc","params":{"ArrivalRate":2}}]}`,
	} {
		if h := mustHash(t, mustParse(t, doc)); h == base {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

func TestHashFullPrecisionSeed(t *testing.T) {
	// Seeds above 2^53 must not collapse through float64: two adjacent
	// full-width seeds hash differently.
	a := mustParse(t, `{"version":1,"name":"canon-test","seed":18446744073709551615,"duration":10,"workload":[{"generator":"dc"}]}`)
	b := mustParse(t, `{"version":1,"name":"canon-test","seed":18446744073709551614,"duration":10,"workload":[{"generator":"dc"}]}`)
	if mustHash(t, a) == mustHash(t, b) {
		t.Fatal("adjacent uint64 seeds share a hash (float64 round-trip?)")
	}
}

func TestHashFormat(t *testing.T) {
	h := mustHash(t, mustParse(t, specJSON("")))
	if !strings.HasPrefix(h, "v1-") || len(h) != len("v1-")+32 {
		t.Fatalf("hash %q not v1-<32 hex>", h)
	}
	for _, c := range h[len("v1-"):] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("hash %q not lowercase hex", h)
		}
	}
}
