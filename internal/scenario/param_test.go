package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestSetParameter drives the shared variant-synthesis primitive over
// every sweepable parameter and every invalid-value error path, and pins
// that the copy drops sweep/search blocks without mutating the base.
func TestSetParameter(t *testing.T) {
	base := loadMini(t)
	base.Sweep = &SweepSpec{Parameter: "topology.k", Values: []float64{2, 3}}
	cases := []struct {
		param   string
		value   float64
		check   func(v *Spec) bool
		wantErr string
	}{
		{param: "system.rscale", value: 1e7, check: func(v *Spec) bool { return v.System.Rscale == 1e7 }},
		{param: "system.nns", value: 4, check: func(v *Spec) bool { return v.System.NNS == 4 }},
		{param: "system.nns", value: 1.5, wantErr: "not a positive integer"},
		{param: "system.nns", value: 0, wantErr: "not a positive integer"},
		{param: "system.nns", value: -2, wantErr: "not a positive integer"},
		{param: "topology.k", value: 3.5, check: func(v *Spec) bool { return v.Topology.K == 3.5 }},
		{param: "topology.x", value: 2.5e7, check: func(v *Spec) bool { return v.Topology.X == 2.5e7 }},
		{param: "duration", value: 4, check: func(v *Spec) bool { return v.Duration == 4 }},
		{param: "duration", value: 0, wantErr: "not positive"},
		{param: "duration", value: -1, wantErr: "not positive"},
		{param: "seed", value: 42, check: func(v *Spec) bool { return v.Seed == 42 }},
		{param: "seed", value: 1.5, wantErr: "not an unsigned integer"},
		{param: "seed", value: -1, wantErr: "not an unsigned integer"},
		{param: "system.blocksize", value: 1, wantErr: "unsweepable"},
	}
	for _, tc := range cases {
		v, err := SetParameter(base, tc.param, tc.value)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("SetParameter(%s, %v) error %v, want %q", tc.param, tc.value, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("SetParameter(%s, %v): %v", tc.param, tc.value, err)
			continue
		}
		if !tc.check(v) {
			t.Errorf("SetParameter(%s, %v) did not apply", tc.param, tc.value)
		}
		if v.Sweep != nil || v.Search != nil {
			t.Errorf("SetParameter(%s, %v) kept the sweep/search block", tc.param, tc.value)
		}
		if v == base {
			t.Errorf("SetParameter(%s, %v) returned the base, not a copy", tc.param, tc.value)
		}
	}
	if base.Sweep == nil || base.Topology.K != 2 || base.Duration != 5 {
		t.Error("SetParameter mutated the base spec")
	}
}

// TestExpandUsesSetParameter pins that sweep expansion still goes through
// the factored-out primitive with unchanged variant semantics: values are
// applied, names keep the positional scheme, and variants re-validate.
func TestExpandUsesSetParameter(t *testing.T) {
	s := loadMini(t)
	s.Sweep = &SweepSpec{Parameter: "system.nns", Values: []float64{1, 3}}
	vs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].System.NNS != 1 || vs[1].System.NNS != 3 {
		t.Fatalf("expanded %+v", vs)
	}
	if vs[0].Name != "mini-system-nns-1" || vs[1].Name != "mini-system-nns-3" {
		t.Fatalf("variant names %q, %q", vs[0].Name, vs[1].Name)
	}
}

// TestSearchVariantNameCollisionProof is the regression test for the
// latent formatSweepValue collision: "." and "-" both render as letters,
// so a scenario literally named like a formatted variant ("x-topology-k-
// 1p5" vs base "x" value 1.5) collides under the positional sweep scheme.
// Search-synthesized names append a hash of the value's exact float bits,
// which keeps every distinct value's name distinct and distinguishes a
// synthesized name from any literal base name.
func TestSearchVariantNameCollisionProof(t *testing.T) {
	// The documented collision surface: a literal name equal to the old
	// positional scheme's output.
	positional := "x-topology-k-" + formatSweepValue(1.5)
	if positional != "x-topology-k-1p5" {
		t.Fatalf("formatSweepValue(1.5) changed: %q", positional)
	}
	hashed := SearchVariantName("x", "topology.k", 1.5)
	if hashed == positional {
		t.Fatal("search variant name equals the collision-prone positional name")
	}
	if !strings.HasPrefix(hashed, positional+"-") {
		t.Fatalf("search name %q does not extend the readable positional form", hashed)
	}
	if err := validName(hashed); err != nil {
		t.Fatalf("search name %q: %v", hashed, err)
	}
	// Deterministic, and injective across values — including pairs that
	// differ only in their last float bit.
	if hashed != SearchVariantName("x", "topology.k", 1.5) {
		t.Fatal("search variant name not deterministic")
	}
	values := []float64{1.5, 1.5000000000000002, -1.5, 15, 0.15, 1e7, -1e-7}
	seen := map[string]float64{}
	for _, v := range values {
		name := SearchVariantName("x", "topology.k", v)
		if prev, dup := seen[name]; dup {
			t.Errorf("values %v and %v share the name %q", prev, v, name)
		}
		seen[name] = v
	}
}

// TestSearchSpecValidation drives the search-block validator with
// targeted mutations, mirroring TestValidationErrors for sweeps.
func TestSearchSpecValidation(t *testing.T) {
	base, err := os.ReadFile("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]any{
		"metric": "mean_fct_s", "parameter": "topology.k", "lo": 1.0, "hi": 4.0,
	}
	cases := []struct {
		name    string
		mutate  func(search map[string]any)
		wantSub string
	}{
		{"valid", nil, ""},
		{"bad objective", func(m map[string]any) { m["objective"] = "optimize" }, "objective"},
		{"no metric", func(m map[string]any) { delete(m, "metric") }, "no metric"},
		{"bad constraint op", func(m map[string]any) {
			m["constraints"] = []any{map[string]any{"metric": "energy_kj", "op": "<", "value": 1.0}}
		}, "op"},
		{"constraint without metric", func(m map[string]any) {
			m["constraints"] = []any{map[string]any{"op": "<=", "value": 1.0}}
		}, "no metric"},
		{"unsearchable parameter", func(m map[string]any) { m["parameter"] = "system.blocksize" }, "unsweepable"},
		{"empty domain", func(m map[string]any) { delete(m, "lo"); delete(m, "hi") }, "domain empty"},
		{"inverted range", func(m map[string]any) { m["lo"] = 4.0; m["hi"] = 1.0 }, "domain empty"},
		{"both domains", func(m map[string]any) { m["values"] = []any{1.0, 2.0} }, "both"},
		{"bad strategy", func(m map[string]any) { m["strategy"] = "bayesian" }, "unknown search strategy"},
		{"one point", func(m map[string]any) { m["points"] = 1.0 }, "points"},
		{"negative tolerance", func(m map[string]any) { m["tolerance"] = -1.0 }, "tolerance"},
		{"negative budget", func(m map[string]any) { m["maxRounds"] = -1.0 }, "negative search budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m map[string]any
			if err := json.Unmarshal(base, &m); err != nil {
				t.Fatal(err)
			}
			search := map[string]any{}
			for k, v := range valid {
				search[k] = v
			}
			if tc.mutate != nil {
				tc.mutate(search)
			}
			m["search"] = search
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Parse(bytes.NewReader(raw))
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("valid search spec rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("mutation %q validated", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// sweep + search on one spec is rejected
	var m map[string]any
	if err := json.Unmarshal(base, &m); err != nil {
		t.Fatal(err)
	}
	m["search"] = valid
	m["sweep"] = map[string]any{"parameter": "topology.k", "values": []any{2.0}}
	raw, _ := json.Marshal(m)
	if _, err := Parse(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("sweep+search spec: %v", err)
	}
}
