package scenario

import (
	"strings"
	"testing"
)

func TestEngineValidation(t *testing.T) {
	// accepted spellings
	for _, extra := range []string{"", `"engine": "packet"`, `"engine": "fluid"`} {
		if _, err := Parse(strings.NewReader(specJSON(extra))); err != nil {
			t.Errorf("engine %q rejected: %v", extra, err)
		}
	}
	// unknown engine names fail loudly at parse time
	if _, err := Parse(strings.NewReader(specJSON(`"engine": "quantum"`))); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("unknown engine: got %v, want unknown-engine error", err)
	}
}

func TestEngineFluidRejectsPacketOnlyOptions(t *testing.T) {
	// Every packet- or control-plane knob must be rejected under the fluid
	// engine with an error that names the knob and the fix, instead of
	// silently simulating a spec the fluid model cannot honour.
	cases := map[string]string{
		`"system": {"kind": "randtcp"}`:                             "requires engine packet",
		`"system": {"sjf": true}`:                                   "system.sjf requires engine packet",
		`"system": {"powerAware": true}`:                            "system.powerAware requires engine packet",
		`"system": {"rscale": 1e6}`:                                 "system.rscale requires engine packet",
		`"system": {"rscale": 1e6, "migrateInterval": 5}`:           "system.migrateInterval requires engine packet",
		`"system": {"replicate": true}`:                             "system.replicate requires engine packet",
		`"system": {"controlDelay": 0.01}`:                          "system.controlDelay requires engine packet",
		`"system": {"nns": 1}`:                                      "system.nns requires engine packet",
		`"faults": [{"at": 5, "kind": "fail-server", "server": 0}]`: "faults require engine packet",
	}
	for extra, want := range cases {
		doc := specJSON(`"engine": "fluid", ` + extra)
		_, err := Parse(strings.NewReader(doc))
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("fluid + %s: got %v, want error containing %q", extra, err, want)
		}
		// the same option under the packet engine stays valid
		if _, perr := Parse(strings.NewReader(specJSON(extra))); perr != nil {
			t.Errorf("packet + %s unexpectedly invalid: %v", extra, perr)
		}
	}
}

func TestEnginePacketHashCompatibility(t *testing.T) {
	// An explicit "engine": "packet" is the default spelled out: it must
	// canonicalize — and therefore hash — byte-identically to a pre-engine
	// spec that omits the field, so existing result caches stay warm.
	old := mustParse(t, specJSON(""))
	explicit := mustParse(t, specJSON(`"engine": "packet"`))
	co, err := old.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	ce, err := explicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(co) != string(ce) {
		t.Fatalf("explicit packet engine changes canonical bytes:\n%s\n%s", co, ce)
	}
	if strings.Contains(string(co), "engine") {
		t.Fatalf("canonical form of a packet spec mentions engine: %s", co)
	}
	if mustHash(t, old) != mustHash(t, explicit) {
		t.Fatal("explicit packet engine changes the hash")
	}
	// fluid is a different experiment and must hash differently
	if mustHash(t, mustParse(t, specJSON(`"engine": "fluid"`))) == mustHash(t, old) {
		t.Fatal("fluid engine shares the packet hash")
	}
}

func TestRunFluidEndToEnd(t *testing.T) {
	s := mustParse(t, specJSON(`"engine": "fluid"`))
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 || r.Summary["started"] == 0 {
		t.Fatalf("fluid run moved no traffic: %+v", r.Summary)
	}
	if r.Summary["completed"] == 0 {
		t.Fatal("fluid run completed no flows")
	}
	// same series schema as the packet engine: all three kinds, populated
	if len(r.Groups) != 3 {
		t.Fatalf("got %d series groups, want 3", len(r.Groups))
	}
	kinds := map[string]bool{}
	for _, g := range r.Groups {
		kinds[g.Kind] = true
		if len(g.Series) != 1 || g.Series[0].Name != "Fluid" {
			t.Fatalf("group %s: series %+v, want one named Fluid", g.Kind, g.Series)
		}
		if len(g.Series[0].Points) == 0 {
			t.Fatalf("group %s has no points", g.Kind)
		}
	}
	for _, k := range []string{OutThroughput, OutFCTCDF, OutAFCT} {
		if !kinds[k] {
			t.Fatalf("missing series kind %s", k)
		}
	}
	// summary carries the packet engine's keys (cluster-only ones zero)
	for _, k := range []string{"requests", "started", "completed", "drops",
		"violations", "energy_kj", "failed_servers", "mean_fct_s"} {
		if _, ok := r.Summary[k]; !ok {
			t.Fatalf("summary missing %s: %+v", k, r.Summary)
		}
	}
}

func TestRunFluidDeterministic(t *testing.T) {
	s := mustParse(t, specJSON(`"engine": "fluid"`))
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Summary) != len(b.Summary) {
		t.Fatal("summaries differ in size")
	}
	for k, v := range a.Summary {
		if b.Summary[k] != v {
			t.Fatalf("summary %s: %v vs %v", k, v, b.Summary[k])
		}
	}
	for g := range a.Groups {
		pa, pb := a.Groups[g].Series[0].Points, b.Groups[g].Series[0].Points
		if len(pa) != len(pb) {
			t.Fatalf("group %s point counts differ", a.Groups[g].Kind)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("group %s point %d: %+v vs %+v", a.Groups[g].Kind, i, pa[i], pb[i])
			}
		}
	}
}
