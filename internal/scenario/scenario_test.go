package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/runner"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadMini(t *testing.T) *Spec {
	t.Helper()
	s, err := Load("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenRoundTrip pins the marshalled form of the parsed spec: parsing
// the testdata spec and re-marshalling it must reproduce the golden file
// byte-for-byte, and re-parsing the marshalled form must yield an equal
// Spec. Catches silent schema drift (renamed or retyped fields).
func TestGoldenRoundTrip(t *testing.T) {
	s := loadMini(t)
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "mini.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("marshalled spec differs from %s (re-run with -update if intended)\ngot:\n%s", golden, got)
	}
	// RawMessage params keep their source formatting, so compare the
	// re-marshalled forms: parse(marshal(s)) must marshal identically
	back, err := Parse(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("re-parsing marshalled spec: %v", err)
	}
	got2, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(got2, '\n'), got) {
		t.Error("spec does not survive a marshal/parse/marshal round trip")
	}
}

// TestValidationErrors drives the validator with targeted mutations of a
// valid spec and checks each fails with a message naming the problem.
func TestValidationErrors(t *testing.T) {
	base, err := os.ReadFile("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(m map[string]any)
		wantSub string
	}{
		{"bad version", func(m map[string]any) { m["version"] = 2.0 }, "version 2 unsupported"},
		{"bad name", func(m map[string]any) { m["name"] = "Mini Spec!" }, "not [a-z0-9-]"},
		{"no duration", func(m map[string]any) { delete(m, "duration") }, "duration"},
		{"horizon before duration", func(m map[string]any) { m["horizon"] = 1.0 }, "horizon"},
		{"bad topology kind", func(m map[string]any) {
			m["topology"].(map[string]any)["kind"] = "fattree"
		}, "unknown topology kind"},
		{"fig6 reshaped", func(m map[string]any) {
			m["topology"].(map[string]any)["kind"] = "fig6"
		}, "fig6 admits only x and k"},
		{"bad system kind", func(m map[string]any) {
			m["system"].(map[string]any)["kind"] = "dctcp"
		}, "unknown system kind"},
		{"migration without rscale", func(m map[string]any) {
			m["system"].(map[string]any)["migrateInterval"] = 5.0
		}, "requires system.rscale"},
		{"scda knob under randtcp", func(m map[string]any) {
			m["system"].(map[string]any)["kind"] = "randtcp"
			m["system"].(map[string]any)["sjf"] = true
		}, "requires system.kind scda"},
		{"no workload", func(m map[string]any) { m["workload"] = []any{} }, "no phases"},
		{"unknown generator", func(m map[string]any) {
			m["workload"].([]any)[0].(map[string]any)["generator"] = "bittorrent"
		}, "unknown generator"},
		{"unknown generator param", func(m map[string]any) {
			m["workload"].([]any)[0].(map[string]any)["params"] = map[string]any{"Ratez": 1.0}
		}, "params"},
		{"invalid generator param", func(m map[string]any) {
			m["workload"].([]any)[0].(map[string]any)["params"] = map[string]any{"ArrivalRate": -3.0}
		}, "ArrivalRate"},
		{"phase beyond duration", func(m map[string]any) {
			m["workload"].([]any)[1].(map[string]any)["start"] = 9.0
		}, "outside [0, 5)"},
		{"unknown fault kind", func(m map[string]any) {
			m["faults"].([]any)[0].(map[string]any)["kind"] = "cut-link"
		}, "unknown kind"},
		{"fault server out of range", func(m map[string]any) {
			m["faults"].([]any)[0].(map[string]any)["server"] = 4.0
		}, "out of range"},
		{"unknown output series", func(m map[string]any) {
			m["outputs"].(map[string]any)["series"] = []any{"latency"}
		}, "unknown output series"},
		{"unsweepable parameter", func(m map[string]any) {
			m["sweep"] = map[string]any{"parameter": "system.blocksize", "values": []any{1.0}}
		}, "unsweepable"},
		{"empty sweep", func(m map[string]any) {
			m["sweep"] = map[string]any{"parameter": "topology.k", "values": []any{}}
		}, "no values"},
		{"fractional nns sweep", func(m map[string]any) {
			m["sweep"] = map[string]any{"parameter": "system.nns", "values": []any{1.5}}
		}, "not a positive integer"},
		{"duplicate sweep values", func(m map[string]any) {
			m["sweep"] = map[string]any{"parameter": "topology.k", "values": []any{2.0, 2.0}}
		}, "repeats"},
		{"sweep variant breaks invariant", func(m map[string]any) {
			// duration 1.5 puts phase 1 (start 2) outside the horizon:
			// the base spec is fine, only the variant is invalid
			m["sweep"] = map[string]any{"parameter": "duration", "values": []any{1.5}}
		}, "outside [0, 1.5)"},
		{"fault beyond horizon", func(m map[string]any) {
			m["faults"].([]any)[0].(map[string]any)["at"] = 50.0
		}, "outside the simulated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m map[string]any
			if err := json.Unmarshal(base, &m); err != nil {
				t.Fatal(err)
			}
			tc.mutate(m)
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Parse(bytes.NewReader(raw))
			if err == nil {
				t.Fatalf("mutation %q validated", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseRejectsUnknownFieldsAndTrailing(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"version":1,"name":"x","duration":1,"workloads":[]}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	base, _ := os.ReadFile("testdata/mini.json")
	if _, err := Parse(bytes.NewReader(append(base, []byte("{}")...))); err == nil {
		t.Error("trailing data accepted")
	}
}

// TestRunDeterminism is the acceptance backstop: the same spec produces
// byte-identical output files — summary, every series CSV, and the trace —
// across two independent runs.
func TestRunDeterminism(t *testing.T) {
	s := loadMini(t)
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var files [2]map[string][]byte
	for i, dir := range dirs {
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := r.WriteFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 5 { // summary + 3 series + trace
			t.Fatalf("wrote %d files, want 5: %v", len(paths), paths)
		}
		files[i] = map[string][]byte{}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Errorf("%s is empty", p)
			}
			files[i][filepath.Base(p)] = b
		}
	}
	for name, b := range files[0] {
		if !bytes.Equal(b, files[1][name]) {
			t.Errorf("%s differs between identical runs", name)
		}
	}
}

// TestRunFaultInjection checks the scheduled fail-server fault executes:
// the summary reports the failed server, and with replication enabled the
// orphaned blocks re-replicate (or are counted lost).
func TestRunFaultInjection(t *testing.T) {
	s := loadMini(t)
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Summary["failed_servers"]; got != 1 {
		t.Errorf("failed_servers = %v, want 1", got)
	}
	recovered := r.Summary["rereplicated"] + r.Summary["lost_blocks"] + r.Summary["unrecovered_blocks"]
	if recovered == 0 {
		t.Error("fault at t=3 with prior writes left no re-replication or loss evidence")
	}
	if r.Summary["completed"] == 0 {
		t.Error("no flows completed")
	}
}

// TestRunReplicatedAddsCI: replication produces _ci95 companions, a
// replicates count, and YErr-bearing series; and RunAll over one pool is
// deterministic w.r.t. worker count.
func TestRunReplicatedAddsCI(t *testing.T) {
	s := loadMini(t)
	s.Faults = nil
	r, err := RunReplicated(s, 3, runner.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary["replicates"] != 3 {
		t.Fatalf("replicates = %v", r.Summary["replicates"])
	}
	if _, ok := r.Summary["completed_ci95"]; !ok {
		t.Error("no completed_ci95 companion")
	}
	if len(r.Groups) != 3 || r.Groups[0].Series[0].YErr == nil {
		t.Error("aggregated series missing YErr")
	}
	par, err := RunReplicated(s, 3, runner.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Summary, par.Summary) {
		t.Error("replicated summary differs between serial and 4-worker pools")
	}
}

func TestExpandSweep(t *testing.T) {
	s := loadMini(t)
	s.Sweep = &SweepSpec{Parameter: "system.rscale", Values: []float64{0, 2.5e6}}
	vs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("expanded to %d variants", len(vs))
	}
	if vs[0].Name != "mini-system-rscale-0" || vs[1].Name != "mini-system-rscale-2p5e06" {
		t.Errorf("variant names: %q, %q", vs[0].Name, vs[1].Name)
	}
	for _, v := range vs {
		if v.Sweep != nil {
			t.Error("variant still carries a sweep")
		}
		if err := validName(v.Name); err != nil {
			t.Errorf("variant name invalid: %v", err)
		}
	}
	if vs[1].System.Rscale != 2.5e6 {
		t.Errorf("rscale not applied: %v", vs[1].System.Rscale)
	}
	if s.System.Rscale != 0 {
		t.Error("Expand mutated the base spec")
	}
	if _, err := ExpandAll([]*Spec{s, s}); err == nil {
		t.Error("duplicate names not rejected")
	}
}

// TestRunValidatesSpec: Run gates programmatically built specs, so an
// out-of-range fault target errors instead of panicking mid-simulation.
func TestRunValidatesSpec(t *testing.T) {
	s := loadMini(t)
	s.Faults = []FaultSpec{{At: 1, Kind: FailServer, Server: 99}}
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Run accepted invalid spec: err = %v", err)
	}
}

// TestShippedScenariosValidate walks the repository's scenarios/ directory
// — every spec we ship must load, validate, and expand.
func TestShippedScenariosValidate(t *testing.T) {
	specs, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 6 {
		t.Errorf("only %d shipped scenarios, want >= 6", len(specs))
	}
	if _, err := ExpandAll(specs); err != nil {
		t.Error(err)
	}
}
