package scenario

import "fmt"

// Search objectives.
const (
	// Minimize seeks the smallest value of the goal metric (the default).
	Minimize = "minimize"
	// Maximize seeks the largest value of the goal metric.
	Maximize = "maximize"
)

// Search strategies.
const (
	// StrategyGridRefine evaluates an evenly spaced grid over the domain
	// and recursively re-grids the bracket around the incumbent (the
	// default). On a discrete domain it evaluates every value in one
	// round.
	StrategyGridRefine = "grid-refine"
	// StrategyHalving is successive halving: evaluate every candidate at
	// a low replicate count, keep the better half, double the replicates,
	// repeat until one survivor remains.
	StrategyHalving = "halving"
	// StrategyRandom draws seeded uniform samples from the domain each
	// round — the baseline any adaptive strategy has to beat.
	StrategyRandom = "random"
)

// Constraint operators.
const (
	// OpLE accepts variants whose constraint metric is <= the bound.
	OpLE = "<="
	// OpGE accepts variants whose constraint metric is >= the bound.
	OpGE = ">="
)

// SearchSpec turns a spec into an optimization problem: find the value of
// one sweepable parameter that minimizes (or maximizes) a summary metric,
// optionally subject to constraints on other summary metrics. The spec
// around the block is the base experiment; the engine (internal/search)
// synthesizes concrete variants from it with SetParameter. Everything is
// seeded and deterministic: the same search spec always evaluates the
// same variants in the same order and converges to the same incumbent.
type SearchSpec struct {
	// Objective is "minimize" (default) or "maximize".
	Objective string `json:"objective,omitempty"`
	// Metric names the summary metric being optimized — a key of the
	// result document's summary map (e.g. "mean_fct_s", "p99_fct_s",
	// "energy_kj") or one of the aliases "afct", "p50_fct", "p90_fct",
	// "p99_fct", "energy".
	Metric string `json:"metric"`
	// Constraints restrict which variants are feasible; the incumbent is
	// the best feasible variant evaluated so far.
	Constraints []ConstraintSpec `json:"constraints,omitempty"`

	// Parameter is the sweepable parameter being searched (the
	// SweepSpec.Parameter set).
	Parameter string `json:"parameter"`
	// Lo and Hi bound a continuous domain [lo, hi]; integer-valued
	// parameters (system.nns, seed) round proposals to integers.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Values is a discrete domain, mutually exclusive with Lo/Hi.
	Values []float64 `json:"values,omitempty"`

	// Strategy selects the optimizer: "grid-refine" (default), "halving"
	// or "random".
	Strategy string `json:"strategy,omitempty"`
	// Points is the grid width (grid-refine), initial candidate-pool size
	// (halving over a continuous domain) or samples per round (random).
	// 0 picks the strategy default (5, 8 and 4 respectively).
	Points int `json:"points,omitempty"`
	// Tolerance stops grid-refine once the bracket width is at or below
	// it (0 = refine until a budget runs out).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Seed drives the random strategy's sampling; 0 derives it from the
	// base spec's seed so the search stays deterministic either way.
	Seed uint64 `json:"seed,omitempty"`

	// MaxRounds bounds the round count (0 = 8).
	MaxRounds int `json:"maxRounds,omitempty"`
	// MaxVariants bounds the total fresh variant evaluations across all
	// rounds (0 = 64).
	MaxVariants int `json:"maxVariants,omitempty"`
	// MaxSeconds bounds the search's wall time (0 = unlimited). The cut
	// is a safety valve outside the decision path: a search that hits it
	// fails rather than producing a time-dependent trajectory.
	MaxSeconds float64 `json:"maxSeconds,omitempty"`
}

// ConstraintSpec is one feasibility predicate on a summary metric.
type ConstraintSpec struct {
	// Metric names the constrained summary metric (same keys and aliases
	// as SearchSpec.Metric).
	Metric string `json:"metric"`
	// Op is "<=" or ">=".
	Op string `json:"op"`
	// Value is the bound the metric is compared against.
	Value float64 `json:"value"`
}

// validate checks the search block's structure against the owning spec.
// Metric names are checked for presence only — the summary key set
// depends on the run (replication adds _ci95 companions), so a missing
// metric surfaces when the first round's results are read.
func (ss *SearchSpec) validate(s *Spec) error {
	switch ss.Objective {
	case "", Minimize, Maximize:
	default:
		return fmt.Errorf("scenario %s: search objective %q (want %q or %q)", s.Name, ss.Objective, Minimize, Maximize)
	}
	if ss.Metric == "" {
		return fmt.Errorf("scenario %s: search has no metric", s.Name)
	}
	for i, c := range ss.Constraints {
		if c.Metric == "" {
			return fmt.Errorf("scenario %s: search constraint %d has no metric", s.Name, i)
		}
		if c.Op != OpLE && c.Op != OpGE {
			return fmt.Errorf("scenario %s: search constraint %d op %q (want %q or %q)", s.Name, i, c.Op, OpLE, OpGE)
		}
	}
	if !sweepParams[ss.Parameter] {
		return fmt.Errorf("scenario %s: unsweepable parameter %q", s.Name, ss.Parameter)
	}
	switch {
	case len(ss.Values) > 0:
		if ss.Lo != 0 || ss.Hi != 0 {
			return fmt.Errorf("scenario %s: search has both a discrete value set and a continuous [lo, hi] range", s.Name)
		}
	case ss.Lo < ss.Hi:
	default:
		return fmt.Errorf("scenario %s: search domain empty: lo %v, hi %v and no values", s.Name, ss.Lo, ss.Hi)
	}
	switch ss.Strategy {
	case "", StrategyGridRefine, StrategyHalving, StrategyRandom:
	default:
		return fmt.Errorf("scenario %s: unknown search strategy %q (want %q, %q or %q)",
			s.Name, ss.Strategy, StrategyGridRefine, StrategyHalving, StrategyRandom)
	}
	if ss.Points < 0 || ss.Points == 1 {
		return fmt.Errorf("scenario %s: search points %d (want 0 for the default, or at least 2)", s.Name, ss.Points)
	}
	if ss.Tolerance < 0 {
		return fmt.Errorf("scenario %s: search tolerance %v negative", s.Name, ss.Tolerance)
	}
	if ss.MaxRounds < 0 || ss.MaxVariants < 0 || ss.MaxSeconds < 0 {
		return fmt.Errorf("scenario %s: negative search budget", s.Name)
	}
	return nil
}
