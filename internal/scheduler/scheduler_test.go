package scheduler

import (
	"math"
	"testing"

	"repro/internal/ratealloc"
	"repro/internal/topology"
)

type zeroReader struct{}

func (zeroReader) QueueBits(topology.LinkID) float64   { return 0 }
func (zeroReader) ArrivedBits(topology.LinkID) float64 { return 0 }

func singleLink(t *testing.T) (*ratealloc.Controller, []topology.LinkID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	l := g.AddDuplex(a, b, 100e6, 1e-3, 1)
	c, err := ratealloc.NewController(g, zeroReader{}, ratealloc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return c, []topology.LinkID{l}
}

func TestTargetRateConverges(t *testing.T) {
	ctrl, path := singleLink(t)
	for i := 1; i <= 3; i++ {
		if err := ctrl.Register(&ratealloc.Flow{ID: ratealloc.FlowID(i), Path: path}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(ctrl)
	const target = 60e6
	if err := s.Attach(1, &TargetRate{Rate: target}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ctrl.Tick(float64(i) * 0.05)
		s.Step(float64(i) * 0.05)
	}
	got := ctrl.FlowRate(1)
	if math.Abs(got-target)/target > 0.05 {
		t.Fatalf("target-rate flow = %v, want ≈ %v", got, target)
	}
	// the other flows split the remainder
	rest := ctrl.FlowRate(2) + ctrl.FlowRate(3)
	want := 0.95*100e6 - target
	if math.Abs(rest-want)/want > 0.1 {
		t.Fatalf("others = %v, want ≈ %v", rest, want)
	}
}

func TestSJFPrefersShortFlow(t *testing.T) {
	ctrl, path := singleLink(t)
	ctrl.Register(&ratealloc.Flow{ID: 1, Path: path})
	ctrl.Register(&ratealloc.Flow{ID: 2, Path: path})
	s := New(ctrl)
	short := &SJF{Scale: 1 << 20}
	long := &SJF{Scale: 1 << 20}
	short.SetRemaining(100e3) // 100 KB left
	long.SetRemaining(10e6)   // 10 MB left
	s.Attach(1, short)
	s.Attach(2, long)
	for i := 0; i < 60; i++ {
		ctrl.Tick(0)
		s.Step(0)
	}
	r1, r2 := ctrl.FlowRate(1), ctrl.FlowRate(2)
	// weights ∝ 1/remaining: ratio 100
	if r1 <= r2 {
		t.Fatalf("short flow rate %v not above long flow %v", r1, r2)
	}
	if ratio := r1 / r2; ratio < 10 {
		t.Fatalf("SJF ratio = %v, want ≫ 1", ratio)
	}
}

func TestSJFWeightClamped(t *testing.T) {
	s := &SJF{Scale: 1 << 30}
	s.SetRemaining(1)
	if w := s.Weight(0, 0); w != maxWeight {
		t.Fatalf("weight %v not clamped to max", w)
	}
	s.SetRemaining(math.Inf(1))
	if w := s.Weight(0, 0); w != minWeight {
		t.Fatalf("weight %v not clamped to min", w)
	}
}

func TestEDFUrgencyOrdering(t *testing.T) {
	ctrl, path := singleLink(t)
	ctrl.Register(&ratealloc.Flow{ID: 1, Path: path})
	ctrl.Register(&ratealloc.Flow{ID: 2, Path: path})
	s := New(ctrl)
	urgent := &EDF{Deadline: 1, BaseRate: 10e6}
	slack := &EDF{Deadline: 100, BaseRate: 10e6}
	urgent.SetRemainingBits(50e6)
	slack.SetRemainingBits(50e6)
	s.Attach(1, urgent)
	s.Attach(2, slack)
	for i := 0; i < 40; i++ {
		ctrl.Tick(0.01)
		s.Step(0.01)
	}
	if ctrl.FlowRate(1) <= ctrl.FlowRate(2) {
		t.Fatalf("urgent flow %v not above slack flow %v",
			ctrl.FlowRate(1), ctrl.FlowRate(2))
	}
}

func TestEDFPastDeadlineMaxWeight(t *testing.T) {
	e := &EDF{Deadline: 1, BaseRate: 1e6}
	e.SetRemainingBits(1e6)
	if w := e.Weight(0, 2); w != maxWeight {
		t.Fatalf("past-deadline weight = %v", w)
	}
}

func TestAttachDetach(t *testing.T) {
	ctrl, path := singleLink(t)
	ctrl.Register(&ratealloc.Flow{ID: 1, Path: path})
	s := New(ctrl)
	if err := s.Attach(1, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	s.Attach(1, &SJF{})
	if s.Attached() != 1 {
		t.Fatal("not attached")
	}
	s.Detach(1)
	if s.Attached() != 0 {
		t.Fatal("not detached")
	}
	s.Step(0) // no policies: must not panic
}

func TestClampWeightNaN(t *testing.T) {
	if clampWeight(math.NaN()) != 1 {
		t.Fatal("NaN weight not neutralised")
	}
}

func TestTargetRateZeroCurrent(t *testing.T) {
	tr := &TargetRate{Rate: 1e6}
	w := tr.Weight(0, 0)
	if w <= 0 || math.IsNaN(w) {
		t.Fatalf("weight %v with zero current rate", w)
	}
}
