// Package scheduler implements SCDA's adaptive priority control (section
// IV-A): each distributed source adjusts its flow's priority weight ℘ⱼ
// every round so the allocation plane implicitly realises a scheduling
// policy — "something like a shortest file (job) first (SJF) and early
// deadline first (EDF) scheduling algorithms can be implemented by
// assigning higher target rate for short or early deadline flows".
//
// Three policies are provided:
//
//   - TargetRate: drive a flow to an absolute rate by setting
//     ℘ ← ℘ · R_target/R_current each round (the paper's update rule).
//   - SJF: weight inversely proportional to remaining bytes, so short
//     flows finish first without any switch support.
//   - EDF: weight proportional to the rate needed to finish by the
//     deadline (remaining / time-left), the fluid analogue of
//     earliest-deadline-first.
//
// A Scheduler owns the per-flow policies and applies one weight update per
// control interval through the ratealloc.Controller.
package scheduler

import (
	"fmt"
	"math"

	"repro/internal/ratealloc"
)

// Policy computes a flow's next priority weight.
type Policy interface {
	// Weight returns the ℘ for the next round given the flow's current
	// allocated rate and the time now. Implementations must return a
	// positive, finite value.
	Weight(currentRate, now float64) float64
}

// TargetRate drives the flow toward Rate (bits/sec) using the paper's
// multiplicative rule ℘(t+τ) = R_desired / R_current per unit of current
// weight.
type TargetRate struct {
	Rate float64
	// prev tracks the weight we last requested, so the update composes
	// correctly: new℘ = prev℘ × target/current.
	prev float64
}

// Weight implements Policy.
func (t *TargetRate) Weight(currentRate, now float64) float64 {
	if t.prev <= 0 {
		t.prev = 1
	}
	if currentRate <= 0 {
		return t.prev
	}
	// currentRate ≈ prev℘ × base share; scale so next round's share hits
	// the target
	next := t.prev * t.Rate / currentRate
	t.prev = clampWeight(next)
	return t.prev
}

// SJF weights a flow by the inverse of its remaining size, normalised by
// Scale (bytes): a flow with Scale bytes left has weight 1, one with
// Scale/10 left has weight 10. Remaining is supplied by the caller via
// SetRemaining as the transfer progresses.
type SJF struct {
	Scale     float64
	remaining float64
}

// SetRemaining updates the bytes left to send.
func (s *SJF) SetRemaining(bytes float64) { s.remaining = bytes }

// Weight implements Policy.
func (s *SJF) Weight(currentRate, now float64) float64 {
	if s.Scale <= 0 {
		s.Scale = 1 << 20
	}
	r := math.Max(s.remaining, 1)
	return clampWeight(s.Scale / r)
}

// EDF weights a flow by the rate required to meet its deadline relative
// to a base rate: weight = (remaining_bits/time_left) / BaseRate. Flows
// whose deadlines loom get large weights; flows with slack get small ones.
type EDF struct {
	Deadline float64 // absolute simulation time
	BaseRate float64 // bits/sec corresponding to weight 1
	remBits  float64
}

// SetRemainingBits updates the bits left to send.
func (e *EDF) SetRemainingBits(bits float64) { e.remBits = bits }

// Weight implements Policy.
func (e *EDF) Weight(currentRate, now float64) float64 {
	if e.BaseRate <= 0 {
		e.BaseRate = 1e6
	}
	left := e.Deadline - now
	if left <= 0 {
		return maxWeight // past deadline: all-out
	}
	need := e.remBits / left
	return clampWeight(need / e.BaseRate)
}

const (
	minWeight = 0.01
	maxWeight = 100.0
)

func clampWeight(w float64) float64 {
	if math.IsNaN(w) {
		return 1
	}
	if w < minWeight {
		return minWeight
	}
	if w > maxWeight {
		return maxWeight
	}
	return w
}

// Scheduler applies policies to flows through the allocation plane.
type Scheduler struct {
	ctrl     *ratealloc.Controller
	policies map[ratealloc.FlowID]Policy
}

// New creates a scheduler over a controller.
func New(ctrl *ratealloc.Controller) *Scheduler {
	return &Scheduler{ctrl: ctrl, policies: make(map[ratealloc.FlowID]Policy)}
}

// Attach associates a policy with a registered flow.
func (s *Scheduler) Attach(id ratealloc.FlowID, p Policy) error {
	if p == nil {
		return fmt.Errorf("scheduler: nil policy for flow %d", id)
	}
	s.policies[id] = p
	return nil
}

// Detach removes a flow's policy (on completion).
func (s *Scheduler) Detach(id ratealloc.FlowID) { delete(s.policies, id) }

// Attached returns the number of managed flows.
func (s *Scheduler) Attached() int { return len(s.policies) }

// Step performs one round of weight updates: read each flow's current
// rate, ask the policy for the next weight, push it to the allocator.
// Call it once per control interval, after Controller.Tick.
func (s *Scheduler) Step(now float64) {
	for id, p := range s.policies {
		cur := s.ctrl.FlowRate(id)
		s.ctrl.SetPriority(id, p.Weight(cur, now))
	}
}
