package workload

import (
	"math"
	"testing"

	"repro/internal/content"
	"repro/internal/sim"
)

func TestMixedReadsFollowWrites(t *testing.T) {
	spec := DefaultMixedSpec()
	reqs := spec.Generate(sim.NewRNG(1), 60)
	writeTime := map[content.ID]float64{}
	reads := 0
	for _, r := range reqs {
		switch r.Op {
		case Write:
			writeTime[r.Content] = r.At
		case Read:
			reads++
			wt, ok := writeTime[r.Content]
			if !ok {
				t.Fatalf("read of never-written content %s", r.Content)
			}
			if r.At < wt {
				t.Fatalf("read at %v precedes write at %v", r.At, wt)
			}
		}
	}
	if reads == 0 {
		t.Fatal("no reads generated")
	}
	// read:write ratio near ReadsPerWrite
	ratio := float64(reads) / float64(len(writeTime))
	if ratio < spec.ReadsPerWrite/3 || ratio > spec.ReadsPerWrite*3 {
		t.Fatalf("read ratio = %v, want ≈ %v", ratio, spec.ReadsPerWrite)
	}
}

func TestMixedZipfSkew(t *testing.T) {
	spec := DefaultMixedSpec()
	spec.WriteRate = 2
	spec.ReadsPerWrite = 20
	reqs := spec.Generate(sim.NewRNG(2), 60)
	counts := map[content.ID]int{}
	total := 0
	for _, r := range reqs {
		if r.Op == Read {
			counts[r.Content]++
			total++
		}
	}
	// hottest content should draw far more than the uniform share
	maxReads := 0
	for _, c := range counts {
		if c > maxReads {
			maxReads = c
		}
	}
	uniform := float64(total) / float64(len(counts))
	if float64(maxReads) < 3*uniform {
		t.Fatalf("hottest content %d reads vs uniform %v: no Zipf skew", maxReads, uniform)
	}
}

func TestMixedClassDeclaration(t *testing.T) {
	spec := DefaultMixedSpec()
	reqs := spec.Generate(sim.NewRNG(3), 120)
	seen := map[content.Class]int{}
	for _, r := range reqs {
		if r.Op == Write {
			seen[r.Class]++
		}
	}
	for _, cls := range []content.Class{content.Interactive, content.SemiInteractive, content.Passive} {
		if seen[cls] == 0 {
			t.Fatalf("class %v never declared: %v", cls, seen)
		}
	}
	// passive is the majority (the paper's 60%-cold observation)
	if seen[content.Passive] <= seen[content.Interactive] {
		t.Fatal("passive not the majority class")
	}
}

func TestMixedNoClasses(t *testing.T) {
	spec := DefaultMixedSpec()
	spec.DeclareClasses = false
	for _, r := range spec.Generate(sim.NewRNG(4), 30) {
		if r.Op == Write && r.Class != content.Unknown {
			t.Fatal("class declared with DeclareClasses off")
		}
	}
}

func TestMixedValidation(t *testing.T) {
	bad := []MixedSpec{
		{WriteRate: 0, Clients: 1, ZipfS: 1.2, MeanSizeBytes: 1, SigmaLog: 1, CapBytes: 1},
		{WriteRate: 1, Clients: 1, ZipfS: 1.0, MeanSizeBytes: 1, SigmaLog: 1, CapBytes: 1},
		{WriteRate: 1, Clients: 1, ZipfS: 1.2, MeanSizeBytes: 0, SigmaLog: 1, CapBytes: 1},
		{WriteRate: 1, Clients: 1, ZipfS: 1.2, MeanSizeBytes: 1, SigmaLog: 1, CapBytes: 1, ReadsPerWrite: -1},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d accepted", i)
				}
			}()
			spec.Generate(sim.NewRNG(0), 1)
		}()
	}
}

func TestZipfRankDistribution(t *testing.T) {
	rng := sim.NewRNG(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		r := zipfRank(rng, 10, 1.5)
		if r < 0 || r >= 10 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// monotone-ish decreasing head
	if !(counts[0] > counts[1] && counts[1] > counts[3]) {
		t.Fatalf("zipf counts not decreasing: %v", counts)
	}
	// ratio of rank 0 to rank 1 ≈ 2^1.5
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-math.Pow(2, 1.5))/math.Pow(2, 1.5) > 0.25 {
		t.Fatalf("rank0/rank1 = %v, want ≈ %v", ratio, math.Pow(2, 1.5))
	}
	if zipfRank(rng, 1, 1.5) != 0 {
		t.Fatal("single-element zipf not rank 0")
	}
}
