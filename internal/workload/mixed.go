package workload

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/sim"
)

// MixedSpec generates a write+read workload: contents are uploaded over
// time and then retrieved with Zipf-distributed popularity — the
// write-once read-many pattern of the paper's content model (section
// II-B), where a few hot contents draw most reads while "about 60% of
// content was not accessed at all". It exercises the full SCDA serving
// path: external writes (VIII-A), internal replication (VIII-B) and
// replica-selected reads (VIII-C).
type MixedSpec struct {
	// WriteRate is content uploads per second.
	WriteRate float64
	// ReadsPerWrite is the mean number of reads issued per upload
	// (spread over the remaining horizon).
	ReadsPerWrite float64
	// ZipfS is the popularity skew (≥ 1.01; higher = hotter head).
	ZipfS float64
	// Clients is the client population.
	Clients int
	// MeanSizeBytes / SigmaLog parameterise log-normal content sizes.
	MeanSizeBytes float64
	SigmaLog      float64
	// CapBytes caps content size.
	CapBytes int64
	// DeclareClasses assigns content classes by popularity rank: the
	// hottest decile is declared Interactive, the next SemiInteractive,
	// the rest Passive (when false, classes stay Unknown so the cluster
	// learns them).
	DeclareClasses bool
}

// DefaultMixedSpec returns a CDN-ish read-heavy mix.
func DefaultMixedSpec() MixedSpec {
	return MixedSpec{
		WriteRate:      5,
		ReadsPerWrite:  4,
		ZipfS:          1.2,
		Clients:        40,
		MeanSizeBytes:  2e6,
		SigmaLog:       1.0,
		CapBytes:       30 << 20,
		DeclareClasses: true,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (m MixedSpec) Validate() error {
	switch {
	case m.WriteRate <= 0 || m.Clients <= 0:
		return fmt.Errorf("workload: mixed rate/clients invalid")
	case m.ReadsPerWrite < 0:
		return fmt.Errorf("workload: ReadsPerWrite = %v", m.ReadsPerWrite)
	case m.ZipfS <= 1:
		return fmt.Errorf("workload: ZipfS = %v, need > 1", m.ZipfS)
	case m.MeanSizeBytes <= 0 || m.SigmaLog <= 0 || m.CapBytes <= 0:
		return fmt.Errorf("workload: mixed size params invalid")
	}
	return nil
}

// zipfRank draws a rank in [0, n) with P(r) ∝ 1/(r+1)^s via inversion on
// the truncated harmonic weights.
func zipfRank(rng *sim.RNG, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// cheap inversion: walk the CDF; n stays small per call because
	// popularity is sampled over already-written contents
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
	}
	u := rng.Float64() * total
	acc := 0.0
	for r := 0; r < n; r++ {
		acc += 1 / math.Pow(float64(r+1), s)
		if u <= acc {
			return r
		}
	}
	return n - 1
}

// Generate implements Generator. Reads always reference contents whose
// write request precedes them in time.
func (m MixedSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	mu := math.Log(m.MeanSizeBytes) - m.SigmaLog*m.SigmaLog/2
	var reqs []Request
	var written []content.ID
	now := 0.0
	seq := 0
	for {
		now += rng.Exp(m.WriteRate)
		if now >= duration {
			break
		}
		seq++
		id := content.ID(fmt.Sprintf("mixed-%d", seq))
		size := int64(rng.LogNormal(mu, m.SigmaLog))
		if size < 1 {
			size = 1
		}
		if size > m.CapBytes {
			size = m.CapBytes
		}
		cls := content.Unknown
		if m.DeclareClasses {
			switch {
			case seq%10 == 0:
				cls = content.Interactive
			case seq%10 < 4:
				cls = content.SemiInteractive
			default:
				cls = content.Passive
			}
		}
		reqs = append(reqs, Request{
			At: now, Client: rng.Intn(m.Clients), Content: id,
			Size: size, Op: Write, Class: cls,
		})
		written = append(written, id)
		// schedule Poisson-count reads of Zipf-popular earlier contents
		nReads := int(rng.Exp(1/math.Max(m.ReadsPerWrite, 1e-9)) + 0.5)
		if m.ReadsPerWrite == 0 {
			nReads = 0
		}
		for k := 0; k < nReads; k++ {
			at := now + rng.Float64()*(duration-now)
			target := written[zipfRank(rng, len(written), m.ZipfS)]
			reqs = append(reqs, Request{
				At: at, Client: rng.Intn(m.Clients), Content: target, Op: Read,
			})
		}
	}
	sortRequests(reqs)
	return reqs
}
