package workload

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/sim"
)

// FlashCrowdSpec generates a steady background of content writes plus a
// step read burst on a single hot object — the "everyone opens the same
// video at once" pattern that stresses read replica selection (section
// VIII-C): during the burst every client hammers one content, so the
// replica with the best up-link rate changes continuously and a random
// selector piles the crowd onto one server.
//
// The hot object is written at t = 0 so it exists (and, with replication
// enabled, has a second copy) before the crowd arrives.
type FlashCrowdSpec struct {
	// BackgroundRate is the Poisson rate of background writes per second.
	BackgroundRate float64
	// Clients is the client population.
	Clients int
	// MeanSizeBytes / SigmaLog / CapBytes parameterise log-normal
	// background content sizes.
	MeanSizeBytes float64
	SigmaLog      float64
	CapBytes      int64
	// HotSizeBytes is the size of the hot object.
	HotSizeBytes int64
	// BurstStart / BurstDuration bound the step burst window in seconds
	// from generation start.
	BurstStart    float64
	BurstDuration float64
	// BurstRate is the Poisson rate of hot-object reads per second inside
	// the window (the step height).
	BurstRate float64
}

// DefaultFlashCrowdSpec puts a 10 s, 100 reads/sec crowd in the middle of
// the quick-scale 30 s horizon over a light write background.
func DefaultFlashCrowdSpec() FlashCrowdSpec {
	return FlashCrowdSpec{
		BackgroundRate: 10,
		Clients:        40,
		MeanSizeBytes:  1e6,
		SigmaLog:       1.0,
		CapBytes:       30 << 20,
		HotSizeBytes:   4 << 20,
		BurstStart:     10,
		BurstDuration:  10,
		BurstRate:      100,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (f FlashCrowdSpec) Validate() error {
	switch {
	case f.BackgroundRate < 0:
		return fmt.Errorf("workload: flashcrowd BackgroundRate = %v", f.BackgroundRate)
	case f.Clients <= 0:
		return fmt.Errorf("workload: flashcrowd Clients = %d", f.Clients)
	case f.MeanSizeBytes <= 0 || f.SigmaLog <= 0 || f.CapBytes <= 0:
		return fmt.Errorf("workload: flashcrowd size params invalid")
	case f.HotSizeBytes <= 0:
		return fmt.Errorf("workload: flashcrowd HotSizeBytes = %d", f.HotSizeBytes)
	case f.BurstStart < 0:
		return fmt.Errorf("workload: flashcrowd BurstStart = %v", f.BurstStart)
	case f.BurstDuration <= 0:
		return fmt.Errorf("workload: flashcrowd BurstDuration = %v", f.BurstDuration)
	case f.BurstRate <= 0:
		return fmt.Errorf("workload: flashcrowd BurstRate = %v", f.BurstRate)
	}
	return nil
}

// HotContent is the ID of the flash crowd's hot object.
const HotContent = content.ID("flash-hot")

// Generate implements Generator.
func (f FlashCrowdSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	var reqs []Request
	// the hot object goes in first, declared interactive so a
	// class-aware system places it on a well-connected server
	reqs = append(reqs, Request{
		At: 0, Client: rng.Intn(f.Clients), Content: HotContent,
		Size: f.HotSizeBytes, Op: Write, Class: content.Interactive,
	})
	// background writes
	mu := math.Log(f.MeanSizeBytes) - f.SigmaLog*f.SigmaLog/2
	if f.BackgroundRate > 0 {
		now, seq := 0.0, 0
		for {
			now += rng.Exp(f.BackgroundRate)
			if now >= duration {
				break
			}
			seq++
			size := int64(rng.LogNormal(mu, f.SigmaLog))
			if size < 1 {
				size = 1
			}
			if size > f.CapBytes {
				size = f.CapBytes
			}
			reqs = append(reqs, Request{
				At: now, Client: rng.Intn(f.Clients),
				Content: content.ID(fmt.Sprintf("flash-bg-%d", seq)),
				Size:    size, Op: Write, Class: content.Unknown,
			})
		}
	}
	// the step burst: Poisson reads of the hot object inside the window
	end := f.BurstStart + f.BurstDuration
	if end > duration {
		end = duration
	}
	now := f.BurstStart
	for {
		now += rng.Exp(f.BurstRate)
		if now >= end {
			break
		}
		reqs = append(reqs, Request{
			At: now, Client: rng.Intn(f.Clients), Content: HotContent, Op: Read,
		})
	}
	sortRequests(reqs)
	return reqs
}
