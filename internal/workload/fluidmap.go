package workload

import (
	"fmt"
	"hash/fnv"

	"repro/internal/content"
	"repro/internal/topology"
)

// FluidFlow is one request lowered onto the flow level for the fluid
// simulation backend: a sized, routed transfer with an arrival time.
type FluidFlow struct {
	// At is the arrival time in seconds.
	At float64
	// SizeBits is the transfer size in bits.
	SizeBits float64
	// Path is the routed link sequence (client→server for writes,
	// server→client for reads).
	Path []topology.LinkID
	// Op records the originating request's operation for metrics.
	Op Op
}

// FluidMapper lowers workload requests onto fluid flows over a three-tier
// topology. It stands in for the storage layer the fluid engine does not
// model: each content is pinned to one block server by a stable hash of
// its ID (so repeated reads of the same content traverse the same paths,
// like a single-replica placement), writes run client→server, reads
// server→client at the size the content was written with. The mapping is
// pure — no RNG — so a request sequence maps to the same flows on every
// call.
type FluidMapper struct {
	tt     *topology.ThreeTier
	routes *topology.Routing
	sizes  map[content.ID]int64
	// skipped counts requests that map to no flow: reads of never-written
	// content (no size to transfer) and zero-sized transfers.
	skipped int
}

// NewFluidMapper builds a mapper over the topology. Routing is computed
// once and shared across Map calls.
func NewFluidMapper(tt *topology.ThreeTier) *FluidMapper {
	return &FluidMapper{
		tt:     tt,
		routes: topology.ComputeRouting(tt.Graph),
		sizes:  make(map[content.ID]int64),
	}
}

// Skipped returns how many requests mapped to no flow so far.
func (m *FluidMapper) Skipped() int { return m.skipped }

// server pins a content to a block server by stable hash.
func (m *FluidMapper) server(id content.ID) topology.NodeID {
	h := fnv.New64a()
	h.Write([]byte(id))
	return m.tt.Servers[h.Sum64()%uint64(len(m.tt.Servers))]
}

// Map lowers requests (in arrival order) onto fluid flows, appending to
// dst and returning it. Writes record the content size for later reads;
// reads of unknown content and zero-sized transfers are skipped and
// counted. The flow's ECMP hash is its index in the request sequence, so
// path selection is deterministic and spread across equal-cost uplinks.
func (m *FluidMapper) Map(dst []FluidFlow, reqs []Request) ([]FluidFlow, error) {
	for i, req := range reqs {
		client := m.tt.Clients[req.Client%len(m.tt.Clients)]
		srv := m.server(req.Content)
		size := req.Size
		var src, sink topology.NodeID
		if req.Op == Write {
			m.sizes[req.Content] = size
			src, sink = client, srv
		} else {
			size = m.sizes[req.Content]
			src, sink = srv, client
		}
		if size <= 0 {
			m.skipped++
			continue
		}
		path, err := m.routes.Path(src, sink, uint64(i))
		if err != nil {
			return dst, fmt.Errorf("workload: fluid map request %d: %w", i, err)
		}
		dst = append(dst, FluidFlow{
			At:       req.At,
			SizeBits: float64(size) * 8,
			Path:     path,
			Op:       req.Op,
		})
	}
	return dst, nil
}
