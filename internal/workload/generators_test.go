package workload

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/sim"
)

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"video", "videonoctl", "dc", "pareto",
		"mixed", "diurnal", "flashcrowd", "zipfchurn"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q", want)
		}
		if Describe(want) == "" {
			t.Errorf("registry entry %q has no description", want)
		}
	}
}

func TestRegistryNewGeneratesAndErrors(t *testing.T) {
	for _, name := range Names() {
		gen, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		reqs := gen.Generate(sim.NewRNG(1), 5)
		if len(reqs) == 0 {
			t.Errorf("generator %q produced no requests in 5s", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("New(nope) did not error")
	}
}

// TestDiurnalRateModulation: arrivals inside the peak half-period must
// dominate arrivals inside the trough half-period.
func TestDiurnalRateModulation(t *testing.T) {
	spec := DefaultDiurnalSpec()
	spec.ReadFraction = 0 // pure arrival process
	spec.Period = 30
	spec.Phase = 0
	reqs := spec.Generate(sim.NewRNG(7), 30)
	// sin > 0 on (0, 15): peak half; sin < 0 on (15, 30): trough half
	peakN, troughN := 0, 0
	for _, r := range reqs {
		if r.At < 15 {
			peakN++
		} else {
			troughN++
		}
	}
	if peakN <= troughN {
		t.Fatalf("diurnal modulation absent: peak-half %d <= trough-half %d", peakN, troughN)
	}
	// with amplitude 0.8 the halves integrate to base·(15 ± 15·2·0.8/π):
	// expect a ratio near (1+0.509)/(1−0.509) ≈ 3.1; demand at least 2
	if float64(peakN) < 2*float64(troughN) {
		t.Errorf("modulation weaker than expected: %d vs %d", peakN, troughN)
	}
}

// TestDiurnalReadsReferenceWrites: every read must target content written
// earlier in the sequence.
func TestDiurnalReadsReferenceWrites(t *testing.T) {
	spec := DefaultDiurnalSpec()
	reqs := spec.Generate(sim.NewRNG(3), 20)
	written := map[string]bool{}
	reads := 0
	for _, r := range reqs {
		if r.Op == Write {
			written[string(r.Content)] = true
			continue
		}
		reads++
		if !written[string(r.Content)] {
			t.Fatalf("read of %q before its write", r.Content)
		}
	}
	if reads == 0 {
		t.Fatal("diurnal spec with ReadFraction > 0 produced no reads")
	}
}

// TestFlashCrowdStep: hot-object reads are confined to the burst window and
// their count matches the configured rate; the hot write precedes them all.
func TestFlashCrowdStep(t *testing.T) {
	spec := DefaultFlashCrowdSpec()
	reqs := spec.Generate(sim.NewRNG(5), 30)
	if reqs[0].Content != HotContent || reqs[0].Op != Write || reqs[0].At != 0 {
		t.Fatalf("first request is not the hot write: %+v", reqs[0])
	}
	hotReads := 0
	for _, r := range reqs {
		if r.Op != Read {
			continue
		}
		if r.Content != HotContent {
			t.Fatalf("read of unexpected content %q", r.Content)
		}
		if r.At < spec.BurstStart || r.At >= spec.BurstStart+spec.BurstDuration {
			t.Fatalf("hot read at %.3f outside burst window [%v, %v)", r.At, spec.BurstStart, spec.BurstStart+spec.BurstDuration)
		}
		hotReads++
	}
	want := spec.BurstRate * spec.BurstDuration
	if float64(hotReads) < 0.7*want || float64(hotReads) > 1.3*want {
		t.Errorf("burst read count %d far from rate·duration = %.0f", hotReads, want)
	}
}

// TestZipfChurnHeadConcentrationAndTurnover: reads concentrate on few
// contents, and with churn the most-read content differs across the run's
// halves (the head turned over).
func TestZipfChurnHeadConcentrationAndTurnover(t *testing.T) {
	spec := DefaultZipfChurnSpec()
	spec.ChurnInterval = 2
	reqs := spec.Generate(sim.NewRNG(11), 40)
	readsBy := map[string]int{}
	reads := 0
	writesSeen := map[string]bool{}
	for _, r := range reqs {
		if r.Op == Write {
			writesSeen[string(r.Content)] = true
			continue
		}
		if !writesSeen[string(r.Content)] {
			t.Fatalf("read of %q before its write", r.Content)
		}
		readsBy[string(r.Content)]++
		reads++
	}
	if reads < 100 {
		t.Fatalf("too few reads to judge: %d", reads)
	}
	// Zipf s=1.3 over ≥50 contents: the top content should far exceed the
	// uniform share
	top := 0
	for _, n := range readsBy {
		if n > top {
			top = n
		}
	}
	if float64(top) < 3*float64(reads)/float64(len(writesSeen)) {
		t.Errorf("no popularity head: top=%d reads=%d catalog=%d", top, reads, len(writesSeen))
	}
	// turnover: the most-read content of the first half differs from the
	// second half's at this seed (churn promotes every 2 s over 40 s)
	headOf := func(lo, hi float64) string {
		counts := map[string]int{}
		for _, r := range reqs {
			if r.Op == Read && r.At >= lo && r.At < hi {
				counts[string(r.Content)]++
			}
		}
		best, bestN := "", -1
		for c, n := range counts {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		return best
	}
	if a, b := headOf(0, 20), headOf(20, 40); a == b {
		t.Errorf("popularity head did not turn over: %q in both halves", a)
	}
}

func TestZipfChurnNoChurnKeepsHead(t *testing.T) {
	spec := DefaultZipfChurnSpec()
	spec.ChurnInterval = 0
	spec.WriteRate = 0
	reqs := spec.Generate(sim.NewRNG(11), 40)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	// the first-written content stays rank 0 and must be the global top
	first := ""
	counts := map[string]int{}
	for _, r := range reqs {
		if r.Op == Write && first == "" {
			first = string(r.Content)
		}
		if r.Op == Read {
			counts[string(r.Content)]++
		}
	}
	best, bestN := "", -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if best != first {
		t.Errorf("frozen popularity order: top read %q, want first write %q", best, first)
	}
}

// TestProgramComposition: phases offset, namespace, and merge
// deterministically; editing a later phase leaves earlier streams intact.
func TestProgramComposition(t *testing.T) {
	dc := DefaultDCSpec()
	fc := DefaultFlashCrowdSpec()
	prog := Program{Phases: []Phase{
		{Gen: dc, Start: 0},
		{Gen: fc, Start: 10, Duration: 25},
	}}
	reqs := prog.Generate(sim.NewRNG(1), 30)
	if len(reqs) == 0 {
		t.Fatal("empty program output")
	}
	for i, r := range reqs {
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatalf("requests not time-ordered at %d", i)
		}
		if r.At >= 30 {
			t.Fatalf("request beyond horizon: %v", r.At)
		}
	}
	// namespacing: phase 1's hot content carries the p1: prefix and first
	// appears at its phase offset
	sawHot := false
	for _, r := range reqs {
		if r.Content == "p1:"+HotContent {
			sawHot = true
			if r.At < 10 {
				t.Fatalf("phase-1 request before its Start: %v", r.At)
			}
		}
	}
	if !sawHot {
		t.Fatal("phase 1 content not namespaced as p1:")
	}
	// phase isolation: replacing phase 1's generator must not change
	// phase 0's stream
	alt := Program{Phases: []Phase{
		{Gen: dc, Start: 0},
		{Gen: DefaultZipfChurnSpec(), Start: 10, Duration: 25},
	}}
	phase0 := func(reqs []Request) []Request {
		var out []Request
		for _, r := range reqs {
			if len(r.Content) > 3 && r.Content[:3] == "p0:" {
				out = append(out, r)
			}
		}
		return out
	}
	a := phase0(reqs)
	b := phase0(alt.Generate(sim.NewRNG(1), 30))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("editing phase 1 perturbed phase 0's request stream")
	}
}

func TestProgramValidate(t *testing.T) {
	if err := (Program{}).Validate(); err == nil {
		t.Error("empty program validated")
	}
	bad := Program{Phases: []Phase{{Gen: DiurnalSpec{}, Start: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid phase spec validated")
	}
	neg := Program{Phases: []Phase{{Gen: DefaultDCSpec(), Start: -1}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative phase start validated")
	}
}
