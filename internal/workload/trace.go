package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/content"
)

// WriteTrace serialises requests as CSV (time,client,content,size,op,class)
// so generated workloads can be stored, inspected and replayed byte-for-
// byte — the repo's stand-in for the paper's trace files.
func WriteTrace(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at", "client", "content", "size", "op", "class"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.At, 'g', -1, 64),
			strconv.Itoa(r.Client),
			string(r.Content),
			strconv.FormatInt(r.Size, 10),
			r.Op.String(),
			strconv.Itoa(int(r.Class)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if len(header) != 6 || header[0] != "at" {
		return nil, fmt.Errorf("workload: unrecognised trace header %v", header)
	}
	var reqs []Request
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d time: %w", line, err)
		}
		client, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d client: %w", line, err)
		}
		size, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d size: %w", line, err)
		}
		var op Op
		switch rec[4] {
		case "write":
			op = Write
		case "read":
			op = Read
		default:
			return nil, fmt.Errorf("workload: trace line %d op %q", line, rec[4])
		}
		cls, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d class: %w", line, err)
		}
		reqs = append(reqs, Request{
			At: at, Client: client, Content: content.ID(rec[2]),
			Size: size, Op: op, Class: content.Class(cls),
		})
	}
	return reqs, nil
}
