package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds a fresh generator preset with its default parameters.
// The returned value must be a pointer so callers (the scenario layer, the
// CLIs) can overlay JSON parameters onto the defaults before generating.
type Factory func() Generator

// Validator is implemented by every generator spec in this package; the
// scenario layer calls it after overlaying user parameters so invalid specs
// fail with a descriptive error instead of a panic mid-generation.
type Validator interface {
	Validate() error
}

// entry is one registered generator preset.
type entry struct {
	describe string
	factory  Factory
}

var (
	registryMu sync.RWMutex
	registry   = map[string]entry{}
)

// Register adds a named generator preset. Registering a duplicate name
// panics: the registry is the single source of truth the CLIs print as
// usage text, so a silent overwrite would make help output ambiguous.
func Register(name, describe string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: generator %q registered twice", name))
	}
	registry[name] = entry{describe: describe, factory: f}
}

// Names returns all registered generator names, sorted, so CLI usage text
// and error messages enumerate workloads programmatically and stay truthful
// as generators are added.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Help returns the registered names joined with "|" for flag usage strings.
func Help() string {
	return strings.Join(Names(), "|")
}

// Describe returns the one-line description of a registered generator
// ("" for unknown names).
func Describe(name string) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name].describe
}

// New returns a fresh default-parameter generator for a registered name.
// The error for unknown names lists what is available.
func New(name string) (Generator, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q (have %s)", name, Help())
	}
	return e.factory(), nil
}

// The built-in presets. Factories return pointers to fresh default specs so
// JSON parameter overlays never mutate shared state.
func init() {
	Register("video", "YouTube-style video traces with HTTP control flows (section X-A1)",
		func() Generator { s := DefaultVideoSpec(); return &s })
	Register("videonoctl", "video traces without the <5KB control flows (figs. 10-12)",
		func() Generator { s := DefaultVideoSpec(); s.ControlFlows = false; return &s })
	Register("dc", "general datacenter traces: mice + elephant tail, log-normal arrivals (X-A2)",
		func() Generator { s := DefaultDCSpec(); return &s })
	Register("pareto", "Pareto file sizes with Poisson arrivals (section X-B)",
		func() Generator { s := DefaultParetoSpec(); return &s })
	Register("mixed", "write-once read-many mix with Zipf-popular reads",
		func() Generator { s := DefaultMixedSpec(); return &s })
	Register("diurnal", "sinusoidally modulated arrival rate (day/night load)",
		func() Generator { s := DefaultDiurnalSpec(); return &s })
	Register("flashcrowd", "background writes plus a step read burst on one hot object",
		func() Generator { s := DefaultFlashCrowdSpec(); return &s })
	Register("zipfchurn", "Zipf-popular reads over a growing catalog with popularity churn",
		func() Generator { s := DefaultZipfChurnSpec(); return &s })
}
