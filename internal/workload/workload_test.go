package workload

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestVideoWorkloadShape(t *testing.T) {
	spec := DefaultVideoSpec()
	reqs := spec.Generate(sim.NewRNG(1), 100)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	st := Summarize(reqs)
	// arrival rate ≈ 30 videos/s plus control flows over 100 s
	videos := 0
	for _, r := range reqs {
		if r.Size >= ControlFlowMaxBytes {
			videos++
		}
		if r.Size > spec.CapBytes {
			t.Fatalf("video size %d exceeds cap", r.Size)
		}
		if r.At < 0 || r.At >= 100 {
			t.Fatalf("request at %v outside horizon", r.At)
		}
		if r.Client < 0 || r.Client >= spec.Clients {
			t.Fatalf("client %d out of range", r.Client)
		}
	}
	wantVideos := spec.ArrivalRate * 100
	if math.Abs(float64(videos)-wantVideos)/wantVideos > 0.15 {
		t.Fatalf("videos = %d, want ≈ %v", videos, wantVideos)
	}
	if st.ControlCount == 0 {
		t.Fatal("no control flows with ControlFlows on")
	}
}

func TestVideoWorkloadNoControl(t *testing.T) {
	spec := DefaultVideoSpec()
	spec.ControlFlows = false
	reqs := spec.Generate(sim.NewRNG(2), 50)
	for _, r := range reqs {
		if r.Size < ControlFlowMaxBytes {
			t.Fatalf("control-sized flow %d with ControlFlows off", r.Size)
		}
	}
}

func TestVideoSizeCap(t *testing.T) {
	spec := DefaultVideoSpec()
	spec.SigmaLog = 2.5 // fat spread to hit the cap often
	reqs := spec.Generate(sim.NewRNG(3), 60)
	hitCap := 0
	for _, r := range reqs {
		if r.Size == spec.CapBytes {
			hitCap++
		}
		if r.Size > spec.CapBytes {
			t.Fatal("cap exceeded")
		}
	}
	if hitCap == 0 {
		t.Fatal("30MB cap never engaged despite fat distribution")
	}
}

func TestDCWorkloadShape(t *testing.T) {
	spec := DefaultDCSpec()
	reqs := spec.Generate(sim.NewRNG(4), 100)
	if len(reqs) < 1000 {
		t.Fatalf("only %d requests", len(reqs))
	}
	small := 0
	for _, r := range reqs {
		if r.Size <= 10_000 {
			small++
		}
		if r.Size > spec.CapBytes {
			t.Fatal("cap exceeded")
		}
	}
	frac := float64(small) / float64(len(reqs))
	if frac < 0.6 || frac > 0.95 {
		t.Fatalf("mice fraction = %v, want ≈ 0.8 (Benson et al. shape)", frac)
	}
}

func TestParetoWorkloadMoments(t *testing.T) {
	spec := DefaultParetoSpec()
	reqs := spec.Generate(sim.NewRNG(5), 200)
	st := Summarize(reqs)
	// 200 flows/s × 200 s = 40000 flows
	if math.Abs(float64(st.Count)-40000)/40000 > 0.1 {
		t.Fatalf("count = %d, want ≈ 40000", st.Count)
	}
	// heavy tail: generous band around the 500 KB mean
	if st.MeanBytes < 300e3 || st.MeanBytes > 900e3 {
		t.Fatalf("mean size = %v, want ≈ 500e3", st.MeanBytes)
	}
}

func TestGeneratorsSorted(t *testing.T) {
	gens := []Generator{DefaultVideoSpec(), DefaultDCSpec(), DefaultParetoSpec()}
	for i, g := range gens {
		reqs := g.Generate(sim.NewRNG(uint64(i)), 30)
		if !sort.SliceIsSorted(reqs, func(a, b int) bool { return reqs[a].At < reqs[b].At }) {
			t.Errorf("generator %d output not sorted", i)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := DefaultVideoSpec().Generate(sim.NewRNG(7), 20)
	b := DefaultVideoSpec().Generate(sim.NewRNG(7), 20)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInvalidSpecsPanic(t *testing.T) {
	cases := []Generator{
		VideoSpec{ArrivalRate: 0, Clients: 1, MeanSizeBytes: 1, SigmaLog: 1, CapBytes: 1},
		DCSpec{ArrivalRate: 1, Clients: 0},
		ParetoSpec{ArrivalRate: 1, Clients: 1, MeanSizeBytes: 5, Shape: 0.9},
	}
	for i, g := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d accepted", i)
				}
			}()
			g.Generate(sim.NewRNG(0), 1)
		}()
	}
}

func TestTraceRoundTrip(t *testing.T) {
	reqs := DefaultDCSpec().Generate(sim.NewRNG(9), 10)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip count %d != %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not,a,trace\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
	bad := "at,client,content,size,op,class\nxx,0,c,10,write,0\n"
	if _, err := ReadTrace(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("bad time accepted")
	}
	bad = "at,client,content,size,op,class\n1.0,0,c,10,frob,0\n"
	if _, err := ReadTrace(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Count != 0 || st.TotalBytes != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestRequestsWithinHorizonProperty(t *testing.T) {
	f := func(seed uint64, durRaw uint8) bool {
		dur := float64(durRaw%50) + 1
		reqs := DefaultParetoSpec().Generate(sim.NewRNG(seed), dur)
		for _, r := range reqs {
			if r.At < 0 || r.At >= dur || r.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if Write.String() != "write" || Read.String() != "read" {
		t.Fatal("Op strings wrong")
	}
}
