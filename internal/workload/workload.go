// Package workload generates the three traffic mixes of the paper's
// evaluation (section X):
//
//  1. Video traces (X-A1): YouTube-style traffic — HTTP control flows
//     under 5 KB exchanged before each video, and video flows with a
//     heavy-tailed size distribution capped near 30 MB ("there is a
//     maximum size limit of about 30MB for most YouTube video files"),
//     with Poisson arrivals scaled to 20 servers.
//  2. General datacenter traces (X-A2): the Benson et al. IMC'10 shape —
//     most flows a few KB, an elephant tail up to ~7 MB (the fig. 13
//     x-axis), log-normal inter-arrivals.
//  3. Pareto/Poisson (X-B): Pareto file sizes with mean 500 KB and shape
//     1.6, Poisson arrivals at 200 flows/sec.
//
// The original traces ([28], [22], [12], [3]) are not redistributable;
// these synthetic generators reproduce the published shape statistics the
// figures depend on (size mix, tail caps, arrival process). Generators are
// deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/content"
	"repro/internal/sim"
)

// Op distinguishes content writes (uploads) from reads (retrievals).
type Op int

const (
	// Write uploads content into the cloud (the paper's figures measure
	// "content upload time").
	Write Op = iota
	// Read retrieves previously written content.
	Read
)

// String names the operation for traces and logs.
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Request is one client operation against the cloud.
type Request struct {
	// At is the arrival time in seconds from experiment start.
	At float64
	// Client indexes into the experiment's client list.
	Client int
	// Content identifies the content being written or read.
	Content content.ID
	// Size in bytes (for writes; reads use the stored size).
	Size int64
	// Op is write or read.
	Op Op
	// Class is the declared content class (Unknown lets the cluster
	// learn it).
	Class content.Class
}

// Generator produces a time-ordered request sequence.
type Generator interface {
	// Generate returns all requests with At < duration, sorted by At.
	Generate(rng *sim.RNG, duration float64) []Request
}

// VideoSpec parameterises the YouTube-trace-shaped workload.
type VideoSpec struct {
	// ArrivalRate is video flows per second across all clients (the
	// paper scales trace arrival rates to 20 of 2138 YouTube servers).
	ArrivalRate float64
	// Clients is the number of distinct requesting clients.
	Clients int
	// ControlFlows includes the <5 KB HTTP control flows exchanged
	// "between the Flash Plugin and a content server before a video flow
	// starts" (figs. 7-9 include them; figs. 10-12 exclude them).
	ControlFlows bool
	// ControlPerVideo is the mean number of control flows per video.
	ControlPerVideo float64
	// MeanSizeBytes is the mean video size; sizes are log-normal with
	// this mean, capped at CapBytes.
	MeanSizeBytes float64
	// SigmaLog is the log-normal shape (spread) parameter.
	SigmaLog float64
	// CapBytes is the maximum video size (the paper's ~30 MB YouTube cap).
	CapBytes int64
}

// DefaultVideoSpec mirrors the section X-A1 setup.
func DefaultVideoSpec() VideoSpec {
	return VideoSpec{
		ArrivalRate:     30,
		Clients:         40,
		ControlFlows:    true,
		ControlPerVideo: 2,
		MeanSizeBytes:   8e6,
		SigmaLog:        1.0,
		CapBytes:        30 << 20,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (v VideoSpec) Validate() error {
	switch {
	case v.ArrivalRate <= 0:
		return fmt.Errorf("workload: video ArrivalRate = %v", v.ArrivalRate)
	case v.Clients <= 0:
		return fmt.Errorf("workload: video Clients = %d", v.Clients)
	case v.MeanSizeBytes <= 0 || v.CapBytes <= 0:
		return fmt.Errorf("workload: video sizes invalid")
	case v.SigmaLog <= 0:
		return fmt.Errorf("workload: video SigmaLog = %v", v.SigmaLog)
	case v.ControlFlows && v.ControlPerVideo <= 0:
		return fmt.Errorf("workload: ControlPerVideo = %v with control flows on", v.ControlPerVideo)
	}
	return nil
}

// ControlFlowMaxBytes is the paper's control/video split: "control flows
// which are less than 5KB and YouTube video flows which are greater than
// or equal to 5KB".
const ControlFlowMaxBytes = 5_000

// Generate implements Generator.
func (v VideoSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	// log-normal with the requested mean: mean = exp(mu + sigma²/2)
	mu := math.Log(v.MeanSizeBytes) - v.SigmaLog*v.SigmaLog/2
	var reqs []Request
	now := 0.0
	videoSeq := 0
	for {
		now += rng.Exp(v.ArrivalRate)
		if now >= duration {
			break
		}
		client := rng.Intn(v.Clients)
		videoSeq++
		id := content.ID(fmt.Sprintf("video-%d", videoSeq))
		if v.ControlFlows {
			// geometric-ish count around the mean, at least 1
			n := 1 + int(rng.Exp(1/math.Max(v.ControlPerVideo-1, 1e-9)))
			if v.ControlPerVideo <= 1 {
				n = 1
			}
			for k := 0; k < n; k++ {
				size := int64(200 + rng.Float64()*(ControlFlowMaxBytes-200))
				reqs = append(reqs, Request{
					At:      now,
					Client:  client,
					Content: content.ID(fmt.Sprintf("ctl-%d-%d", videoSeq, k)),
					Size:    size,
					Op:      Write,
					Class:   content.SemiInteractive,
				})
			}
		}
		size := int64(rng.LogNormal(mu, v.SigmaLog))
		if size < ControlFlowMaxBytes {
			size = ControlFlowMaxBytes // videos are ≥ 5 KB by definition
		}
		if size > v.CapBytes {
			size = v.CapBytes // the ~30 MB YouTube cap
		}
		reqs = append(reqs, Request{
			At: now, Client: client, Content: id, Size: size,
			Op: Write, Class: content.SemiInteractive,
		})
	}
	sortRequests(reqs)
	return reqs
}

// DCSpec parameterises the general-datacenter-trace workload (X-A2).
type DCSpec struct {
	// ArrivalRate is flows per second.
	ArrivalRate float64
	// Clients is the number of distinct clients.
	Clients int
	// MiceFraction of flows are small (a few KB); the rest draw from the
	// elephant tail. Benson et al. report ~80% of DC flows under 10 KB.
	MiceFraction float64
	// MiceMeanBytes is the mean mouse size.
	MiceMeanBytes float64
	// ElephantShape / ElephantMinBytes parameterise the Pareto tail.
	ElephantShape    float64
	ElephantMinBytes float64
	// CapBytes caps the tail (fig. 13's axis ends near 7 MB).
	CapBytes int64
	// InterArrivalSigma is the log-normal inter-arrival spread; Benson et
	// al. found DC inter-arrivals log-normal, burstier than Poisson.
	InterArrivalSigma float64
}

// DefaultDCSpec mirrors section X-A2.
func DefaultDCSpec() DCSpec {
	return DCSpec{
		ArrivalRate:       60,
		Clients:           40,
		MiceFraction:      0.8,
		MiceMeanBytes:     4e3,
		ElephantShape:     1.3,
		ElephantMinBytes:  100e3,
		CapBytes:          7 << 20,
		InterArrivalSigma: 1.0,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (d DCSpec) Validate() error {
	switch {
	case d.ArrivalRate <= 0:
		return fmt.Errorf("workload: dc ArrivalRate = %v", d.ArrivalRate)
	case d.Clients <= 0:
		return fmt.Errorf("workload: dc Clients = %d", d.Clients)
	case d.MiceFraction < 0 || d.MiceFraction > 1:
		return fmt.Errorf("workload: MiceFraction = %v", d.MiceFraction)
	case d.MiceMeanBytes <= 0 || d.ElephantMinBytes <= 0 || d.ElephantShape <= 0:
		return fmt.Errorf("workload: dc size params invalid")
	case d.CapBytes <= 0 || d.InterArrivalSigma <= 0:
		return fmt.Errorf("workload: dc cap/sigma invalid")
	}
	return nil
}

// Generate implements Generator.
func (d DCSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	// log-normal inter-arrivals with mean 1/rate: mean = exp(mu+sigma²/2)
	mu := math.Log(1/d.ArrivalRate) - d.InterArrivalSigma*d.InterArrivalSigma/2
	var reqs []Request
	now := 0.0
	seq := 0
	for {
		now += rng.LogNormal(mu, d.InterArrivalSigma)
		if now >= duration {
			break
		}
		seq++
		var size int64
		if rng.Float64() < d.MiceFraction {
			size = int64(rng.Exp(1/d.MiceMeanBytes)) + 100
		} else {
			size = int64(rng.Pareto(d.ElephantMinBytes, d.ElephantShape))
		}
		if size > d.CapBytes {
			size = d.CapBytes
		}
		reqs = append(reqs, Request{
			At:      now,
			Client:  rng.Intn(d.Clients),
			Content: content.ID(fmt.Sprintf("dc-%d", seq)),
			Size:    size,
			Op:      Write,
			Class:   content.Unknown,
		})
	}
	sortRequests(reqs)
	return reqs
}

// ParetoSpec parameterises the distribution-based workload of section X-B:
// "File sizes are Pareto distributed with mean 500KB and shape parameter
// of 1.6. Flow arrival rates are Poisson distributed with mean 200
// flows/sec."
type ParetoSpec struct {
	ArrivalRate   float64
	Clients       int
	MeanSizeBytes float64
	Shape         float64
	// CapBytes bounds the unbounded Pareto tail so a single sample cannot
	// dominate a finite simulation; 0 means uncapped.
	CapBytes int64
}

// DefaultParetoSpec mirrors section X-B.
func DefaultParetoSpec() ParetoSpec {
	return ParetoSpec{ArrivalRate: 200, Clients: 40, MeanSizeBytes: 500e3, Shape: 1.6, CapBytes: 100 << 20}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (p ParetoSpec) Validate() error {
	switch {
	case p.ArrivalRate <= 0 || p.Clients <= 0:
		return fmt.Errorf("workload: pareto rate/clients invalid")
	case p.MeanSizeBytes <= 0 || p.Shape <= 1:
		return fmt.Errorf("workload: pareto mean/shape invalid (shape must exceed 1 for a finite mean)")
	}
	return nil
}

// Generate implements Generator.
func (p ParetoSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	xm := p.MeanSizeBytes * (p.Shape - 1) / p.Shape
	var reqs []Request
	now := 0.0
	seq := 0
	for {
		now += rng.Exp(p.ArrivalRate)
		if now >= duration {
			break
		}
		seq++
		size := int64(rng.Pareto(xm, p.Shape))
		if p.CapBytes > 0 && size > p.CapBytes {
			size = p.CapBytes
		}
		reqs = append(reqs, Request{
			At:      now,
			Client:  rng.Intn(p.Clients),
			Content: content.ID(fmt.Sprintf("pp-%d", seq)),
			Size:    size,
			Op:      Write,
			Class:   content.Unknown,
		})
	}
	sortRequests(reqs)
	return reqs
}

func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
}

// Stats summarises a request sequence for reporting and validation.
type Stats struct {
	Count      int
	TotalBytes int64
	MeanBytes  float64
	MaxBytes   int64
	// ControlCount is requests under the 5 KB control threshold.
	ControlCount int
	// Duration spans first to last arrival.
	Duration float64
}

// Summarize computes Stats.
func Summarize(reqs []Request) Stats {
	var s Stats
	s.Count = len(reqs)
	if len(reqs) == 0 {
		return s
	}
	for _, r := range reqs {
		s.TotalBytes += r.Size
		if r.Size > s.MaxBytes {
			s.MaxBytes = r.Size
		}
		if r.Size < ControlFlowMaxBytes {
			s.ControlCount++
		}
	}
	s.MeanBytes = float64(s.TotalBytes) / float64(len(reqs))
	s.Duration = reqs[len(reqs)-1].At - reqs[0].At
	return s
}
