package workload

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/sim"
)

// ZipfChurnSpec generates reads over a growing catalog with Zipf popularity
// and popularity churn: contents are written at a steady rate, reads draw a
// Zipf rank over the current catalog, and every ChurnInterval a uniformly
// chosen content is promoted to rank 0 (the head), demoting everything it
// passes. The head of the popularity order therefore turns over during the
// run — the property that defeats static placement and makes the learned
// content classes of section II-B (and cold-content migration, VII-C) earn
// their keep: yesterday's hot content must decay to Passive as today's
// takes its place.
type ZipfChurnSpec struct {
	// Catalog is the number of contents written up front, spread uniformly
	// over WarmupFraction of the horizon.
	Catalog int
	// WarmupFraction of the horizon carries the initial catalog writes.
	WarmupFraction float64
	// WriteRate adds new contents per second after warmup (0 = static
	// catalog).
	WriteRate float64
	// ReadRate is Poisson reads per second (reads start after the first
	// write exists).
	ReadRate float64
	// ZipfS is the popularity skew (> 1).
	ZipfS float64
	// ChurnInterval promotes a random content to rank 0 every that many
	// seconds (0 = no churn, a frozen popularity order).
	ChurnInterval float64
	// Clients is the client population.
	Clients int
	// MeanSizeBytes / SigmaLog / CapBytes parameterise log-normal sizes.
	MeanSizeBytes float64
	SigmaLog      float64
	CapBytes      int64
}

// DefaultZipfChurnSpec serves a 50-content catalog at 60 reads/sec with a
// head turnover every 3 s.
func DefaultZipfChurnSpec() ZipfChurnSpec {
	return ZipfChurnSpec{
		Catalog:        50,
		WarmupFraction: 0.2,
		WriteRate:      2,
		ReadRate:       60,
		ZipfS:          1.3,
		ChurnInterval:  3,
		Clients:        40,
		MeanSizeBytes:  2e6,
		SigmaLog:       1.0,
		CapBytes:       30 << 20,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (z ZipfChurnSpec) Validate() error {
	switch {
	case z.Catalog <= 0:
		return fmt.Errorf("workload: zipfchurn Catalog = %d", z.Catalog)
	case z.WarmupFraction <= 0 || z.WarmupFraction > 1:
		return fmt.Errorf("workload: zipfchurn WarmupFraction = %v, need (0, 1]", z.WarmupFraction)
	case z.WriteRate < 0:
		return fmt.Errorf("workload: zipfchurn WriteRate = %v", z.WriteRate)
	case z.ReadRate <= 0:
		return fmt.Errorf("workload: zipfchurn ReadRate = %v", z.ReadRate)
	case z.ZipfS <= 1:
		return fmt.Errorf("workload: zipfchurn ZipfS = %v, need > 1", z.ZipfS)
	case z.ChurnInterval < 0:
		return fmt.Errorf("workload: zipfchurn ChurnInterval = %v", z.ChurnInterval)
	case z.Clients <= 0:
		return fmt.Errorf("workload: zipfchurn Clients = %d", z.Clients)
	case z.MeanSizeBytes <= 0 || z.SigmaLog <= 0 || z.CapBytes <= 0:
		return fmt.Errorf("workload: zipfchurn size params invalid")
	}
	return nil
}

// Generate implements Generator.
func (z ZipfChurnSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := z.Validate(); err != nil {
		panic(err)
	}
	mu := math.Log(z.MeanSizeBytes) - z.SigmaLog*z.SigmaLog/2
	var reqs []Request
	seq := 0
	newContent := func(at float64) content.ID {
		seq++
		id := content.ID(fmt.Sprintf("zipf-%d", seq))
		size := int64(rng.LogNormal(mu, z.SigmaLog))
		if size < 1 {
			size = 1
		}
		if size > z.CapBytes {
			size = z.CapBytes
		}
		reqs = append(reqs, Request{
			At: at, Client: rng.Intn(z.Clients), Content: id,
			Size: size, Op: Write, Class: content.Unknown,
		})
		return id
	}

	// event-merge loop over four deterministic streams: catalog writes at
	// fixed warmup offsets, churn promotions at fixed intervals, Poisson
	// churn writes, Poisson reads. ranked[0] is the current head.
	warmEnd := duration * z.WarmupFraction
	warmStep := warmEnd / float64(z.Catalog)
	var ranked []content.ID
	nextCatalog, catalogLeft := 0.0, z.Catalog
	nextChurn := math.Inf(1)
	if z.ChurnInterval > 0 {
		nextChurn = z.ChurnInterval
	}
	nextWrite := math.Inf(1)
	if z.WriteRate > 0 {
		nextWrite = warmEnd + rng.Exp(z.WriteRate)
	}
	nextRead := rng.Exp(z.ReadRate)
	for {
		now := math.Min(math.Min(nextCatalog, nextChurn), math.Min(nextWrite, nextRead))
		if now >= duration {
			break
		}
		switch now {
		case nextCatalog:
			ranked = append(ranked, newContent(now))
			catalogLeft--
			if catalogLeft > 0 {
				nextCatalog += warmStep
			} else {
				nextCatalog = math.Inf(1)
			}
		case nextChurn:
			if len(ranked) > 1 {
				i := rng.Intn(len(ranked))
				promoted := ranked[i]
				copy(ranked[1:i+1], ranked[:i])
				ranked[0] = promoted
			}
			nextChurn += z.ChurnInterval
		case nextWrite:
			// fresh content debuts mid-pack, not at the head: it must be
			// promoted by churn to become hot
			id := newContent(now)
			ranked = append(ranked, id)
			nextWrite += rng.Exp(z.WriteRate)
		default: // nextRead
			if len(ranked) > 0 {
				reqs = append(reqs, Request{
					At: now, Client: rng.Intn(z.Clients),
					Content: ranked[zipfRank(rng, len(ranked), z.ZipfS)], Op: Read,
				})
			}
			nextRead = now + rng.Exp(z.ReadRate)
		}
	}
	sortRequests(reqs)
	return reqs
}
