package workload

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/sim"
)

// DiurnalSpec generates writes (and optional follow-up reads) whose arrival
// rate follows a sinusoidal day/night cycle:
//
//	rate(t) = BaseRate · (1 + Amplitude · sin(2π·(t/Period + Phase)))
//
// Sampling uses Lewis-Shedler thinning of a homogeneous Poisson process at
// the peak rate, so the output is an exact inhomogeneous Poisson draw and
// fully deterministic given the RNG. Periods are simulation-scale (tens of
// seconds) rather than literal days: what the experiments exercise is the
// allocation plane tracking a smoothly varying load, not wall-clock time.
type DiurnalSpec struct {
	// BaseRate is the mean arrival rate in requests/sec.
	BaseRate float64
	// Amplitude in [0, 1) scales the swing: peak = Base·(1+A), trough =
	// Base·(1−A).
	Amplitude float64
	// Period is the cycle length in seconds.
	Period float64
	// Phase shifts the cycle as a fraction of Period in [0, 1); the default
	// 0.75 starts the horizon near the trough so a full run shows ramp-up,
	// peak, and decay.
	Phase float64
	// Clients is the client population.
	Clients int
	// MeanSizeBytes / SigmaLog parameterise log-normal content sizes,
	// capped at CapBytes.
	MeanSizeBytes float64
	SigmaLog      float64
	CapBytes      int64
	// ReadFraction of arrivals are reads of an already-written content
	// (Zipf-popular by recency rank with skew ZipfS); the rest are writes.
	// Reads before the first write are re-drawn as writes.
	ReadFraction float64
	// ZipfS is the read-popularity skew (> 1).
	ZipfS float64
}

// DefaultDiurnalSpec returns a cycle sized for the quick-scale horizon:
// one full period in 30 s with a 2.3:1 peak-to-trough swing.
func DefaultDiurnalSpec() DiurnalSpec {
	return DiurnalSpec{
		BaseRate:      40,
		Amplitude:     0.8,
		Period:        30,
		Phase:         0.75,
		Clients:       40,
		MeanSizeBytes: 1e6,
		SigmaLog:      1.0,
		CapBytes:      30 << 20,
		ReadFraction:  0.5,
		ZipfS:         1.2,
	}
}

// Validate checks the spec parameters, returning a descriptive error for
// the first invalid field.
func (d DiurnalSpec) Validate() error {
	switch {
	case d.BaseRate <= 0:
		return fmt.Errorf("workload: diurnal BaseRate = %v", d.BaseRate)
	case d.Amplitude < 0 || d.Amplitude >= 1:
		return fmt.Errorf("workload: diurnal Amplitude = %v, need [0, 1)", d.Amplitude)
	case d.Period <= 0:
		return fmt.Errorf("workload: diurnal Period = %v", d.Period)
	case d.Phase < 0 || d.Phase >= 1:
		return fmt.Errorf("workload: diurnal Phase = %v, need [0, 1)", d.Phase)
	case d.Clients <= 0:
		return fmt.Errorf("workload: diurnal Clients = %d", d.Clients)
	case d.MeanSizeBytes <= 0 || d.SigmaLog <= 0 || d.CapBytes <= 0:
		return fmt.Errorf("workload: diurnal size params invalid")
	case d.ReadFraction < 0 || d.ReadFraction > 1:
		return fmt.Errorf("workload: diurnal ReadFraction = %v", d.ReadFraction)
	case d.ReadFraction > 0 && d.ZipfS <= 1:
		return fmt.Errorf("workload: diurnal ZipfS = %v, need > 1 with reads on", d.ZipfS)
	}
	return nil
}

// Rate returns the instantaneous arrival rate at time t.
func (d DiurnalSpec) Rate(t float64) float64 {
	return d.BaseRate * (1 + d.Amplitude*math.Sin(2*math.Pi*(t/d.Period+d.Phase)))
}

// Generate implements Generator.
func (d DiurnalSpec) Generate(rng *sim.RNG, duration float64) []Request {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	mu := math.Log(d.MeanSizeBytes) - d.SigmaLog*d.SigmaLog/2
	peak := d.BaseRate * (1 + d.Amplitude)
	var reqs []Request
	var written []content.ID
	now := 0.0
	seq := 0
	for {
		// thinning: candidate points at the peak rate, accepted with
		// probability rate(t)/peak
		now += rng.Exp(peak)
		if now >= duration {
			break
		}
		if rng.Float64() >= d.Rate(now)/peak {
			continue
		}
		client := rng.Intn(d.Clients)
		if d.ReadFraction > 0 && len(written) > 0 && rng.Float64() < d.ReadFraction {
			// reads favour recent content: rank 0 = newest write
			rank := zipfRank(rng, len(written), d.ZipfS)
			reqs = append(reqs, Request{
				At: now, Client: client,
				Content: written[len(written)-1-rank], Op: Read,
			})
			continue
		}
		seq++
		id := content.ID(fmt.Sprintf("diurnal-%d", seq))
		size := int64(rng.LogNormal(mu, d.SigmaLog))
		if size < 1 {
			size = 1
		}
		if size > d.CapBytes {
			size = d.CapBytes
		}
		reqs = append(reqs, Request{
			At: now, Client: client, Content: id, Size: size,
			Op: Write, Class: content.Unknown,
		})
		written = append(written, id)
	}
	sortRequests(reqs)
	return reqs
}
