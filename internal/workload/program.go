package workload

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/sim"
)

// Phase places one generator on the program timeline. Phases may overlay
// (overlapping windows superpose their arrival processes) or run in
// sequence (disjoint windows); nothing distinguishes the two cases beyond
// the window arithmetic.
type Phase struct {
	// Gen produces the phase's requests on its own local clock starting
	// at 0.
	Gen Generator
	// Start offsets the phase on the program timeline, in seconds.
	Start float64
	// Duration bounds the phase's arrival window; 0 extends it to the end
	// of the program horizon.
	Duration float64
}

// Program composes phased generators into one deterministic request
// sequence — the workload half of a declarative scenario. Each phase
// generates from an independent child RNG derived in phase order from the
// program's RNG, so:
//
//   - adding or editing phase k never perturbs the streams of phases < k,
//   - two phases running the same generator draw disjoint randomness,
//   - the composite is reproducible from a single seed.
//
// Content IDs are namespaced per phase (p0:, p1:, ...) when the program has
// more than one phase, so two phases of the same generator never collide on
// content written under the same name.
type Program struct {
	Phases []Phase
}

// Validate checks the program shape and every phase spec that implements
// Validator.
func (p Program) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: program has no phases")
	}
	for i, ph := range p.Phases {
		if ph.Gen == nil {
			return fmt.Errorf("workload: phase %d has no generator", i)
		}
		if ph.Start < 0 {
			return fmt.Errorf("workload: phase %d Start = %v", i, ph.Start)
		}
		if ph.Duration < 0 {
			return fmt.Errorf("workload: phase %d Duration = %v", i, ph.Duration)
		}
		if v, ok := ph.Gen.(Validator); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("workload: phase %d: %w", i, err)
			}
		}
	}
	return nil
}

// Generate implements Generator.
func (p Program) Generate(rng *sim.RNG, duration float64) []Request {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	var out []Request
	for i, ph := range p.Phases {
		// derive the child stream whether or not the phase is live, so a
		// phase pushed past the horizon still doesn't perturb its siblings;
		// the label offset keeps phase streams disjoint from the cluster's
		// internal Split(1..3) streams when both derive from one seed
		child := rng.Split(uint64(i) + 64)
		if ph.Start >= duration {
			continue
		}
		window := duration - ph.Start
		if ph.Duration > 0 && ph.Duration < window {
			window = ph.Duration
		}
		reqs := ph.Gen.Generate(child, window)
		for _, r := range reqs {
			r.At += ph.Start
			if r.At >= duration {
				continue
			}
			if len(p.Phases) > 1 {
				r.Content = content.ID(fmt.Sprintf("p%d:%s", i, r.Content))
			}
			out = append(out, r)
		}
	}
	sortRequests(out)
	return out
}
