package cluster

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestConservationInvariant checks end-to-end byte accounting: every
// completed external flow's size must have crossed the network at least
// once (delivered payload ≥ sum of completed sizes; retransmissions and
// replication can only add).
func TestConservationInvariant(t *testing.T) {
	for _, sys := range []System{SCDA, RandTCP} {
		cfg := smallConfig(sys)
		cfg.Replicate = true
		c := mustNew(t, cfg)
		spec := workload.DefaultDCSpec()
		spec.ArrivalRate = 15
		spec.Clients = 10
		reqs := spec.Generate(sim.NewRNG(5), 5)
		m := c.RunWorkload(reqs, 60)
		var completedBytes int64
		for _, r := range m.Records {
			completedBytes += r.Size
		}
		var deliveredBits float64
		for _, p := range m.ThptBins.Sums() {
			deliveredBits += p.Y
		}
		if deliveredBits < float64(completedBytes)*8 {
			t.Fatalf("%v: delivered %v bits < completed %v bits",
				sys, deliveredBits, completedBytes*8)
		}
	}
}

// TestMixedWorkloadEndToEnd drives the full write/replicate/read pipeline
// (sections VIII-A/B/C) with Zipf-popular reads on both systems.
func TestMixedWorkloadEndToEnd(t *testing.T) {
	for _, sys := range []System{SCDA, RandTCP} {
		cfg := smallConfig(sys)
		cfg.Replicate = true
		c := mustNew(t, cfg)
		spec := workload.DefaultMixedSpec()
		spec.Clients = 10
		spec.WriteRate = 3
		reqs := spec.Generate(sim.NewRNG(8), 8)
		m := c.RunWorkload(reqs, 90)
		reads, writes := 0, 0
		for _, r := range m.Records {
			if r.Internal {
				continue
			}
			if r.Op == workload.Read {
				reads++
			} else {
				writes++
			}
		}
		if writes == 0 || reads == 0 {
			t.Fatalf("%v: writes=%d reads=%d", sys, writes, reads)
		}
		if frac := float64(m.Completed) / float64(m.Started); frac < 0.9 {
			t.Fatalf("%v: completion %v", sys, frac)
		}
	}
}

// TestStressManyFlows pushes ~1500 flows through the tree and checks the
// system stays stable (completions, no runaway drops, bounded FCT tail).
func TestStressManyFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := DefaultConfig(SCDA)
	c := mustNew(t, cfg)
	spec := workload.DefaultDCSpec()
	spec.Clients = cfg.Topology.Clients
	reqs := spec.Generate(sim.NewRNG(13), 25) // ≈1500 requests
	m := c.RunWorkload(reqs, 120)
	if m.Started < 1000 {
		t.Fatalf("only %d flows started", m.Started)
	}
	if frac := float64(m.Completed) / float64(m.Started); frac < 0.99 {
		t.Fatalf("completion fraction %v", frac)
	}
	cdf := m.FCTCDF()
	if p999 := cdf.Quantile(0.999); p999 > 60 {
		t.Fatalf("p99.9 FCT %v: starvation", p999)
	}
	// drops should be a vanishing fraction of delivered packets
	if m.Drops > c.Net.Delivered/100 {
		t.Fatalf("drops %d vs delivered %d", m.Drops, c.Net.Delivered)
	}
}

// TestDeterminism: identical seeds must give byte-identical outcomes.
func TestDeterminism(t *testing.T) {
	run := func() (int, float64) {
		cfg := smallConfig(SCDA)
		c := mustNew(t, cfg)
		spec := workload.DefaultDCSpec()
		spec.ArrivalRate = 20
		spec.Clients = 10
		reqs := spec.Generate(sim.NewRNG(99), 4)
		m := c.RunWorkload(reqs, 60)
		return m.Completed, m.MeanFCT()
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", c1, f1, c2, f2)
	}
}
