package cluster

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/workload"
)

// FailServer takes a block server out of service at the current simulation
// time: it is excluded from all future selection, its metadata replicas
// are dropped, and every orphaned block that still has a surviving replica
// is re-replicated onto a freshly selected server (an internal VIII-B-style
// transfer). Blocks whose only copy was on the failed server are counted
// in Metrics.LostBlocks.
//
// This implements the recovery role the paper sketches for the monitoring
// plane: "the roles of these SCDA components can be extended to constantly
// monitor the performance of the cloud against malicious attacks or
// failures".
func (c *Cluster) FailServer(node topology.NodeID) error {
	if c.failed[node] {
		return fmt.Errorf("cluster: server %d already failed", node)
	}
	if c.FES.BlockServer(node) == nil {
		return fmt.Errorf("cluster: %d is not a block server", node)
	}
	c.failed[node] = true
	if c.Ctrl != nil {
		// the RM stops advertising the server: its R_other collapses
		c.Ctrl.SetHostOther(node, c.Cfg.Alloc.MinRate)
	}
	if c.Random != nil {
		kept := c.Random.Servers[:0:0]
		for _, s := range c.Random.Servers {
			if s != node {
				kept = append(kept, s)
			}
		}
		c.Random.Servers = kept
	}
	orphans, err := c.FES.FailServer(node)
	if err != nil {
		return err
	}
	for _, o := range orphans {
		if len(o.Survivors) == 0 {
			c.Metrics.LostBlocks++
			continue
		}
		src := o.Survivors[0]
		target, err := c.pickRecoveryTarget(o.Survivors, o.Size)
		if err != nil {
			c.Metrics.UnrecoveredBlocks++
			continue
		}
		if err := c.FES.AddReplica(o.ID, target); err != nil {
			c.Metrics.UnrecoveredBlocks++
			continue
		}
		c.Metrics.ReReplicated++
		c.startTransfer(src, target, o.Size, workload.Write, true, nil)
	}
	return nil
}

// Failed reports whether a server has been failed.
func (c *Cluster) Failed(node topology.NodeID) bool { return c.failed[node] }

// pickRecoveryTarget selects a re-replication destination excluding failed
// servers and existing replica holders.
func (c *Cluster) pickRecoveryTarget(holders []topology.NodeID, size int64) (topology.NodeID, error) {
	holding := make(map[topology.NodeID]bool, len(holders))
	for _, h := range holders {
		holding[h] = true
	}
	f := func(n topology.NodeID) bool {
		if c.failed[n] || holding[n] {
			return false
		}
		bs := c.FES.BlockServer(n)
		return bs != nil && bs.CanStore(size)
	}
	if c.Cfg.System == SCDA {
		// recovery wants a fast-write target: best down-link rate
		return c.Picker.PickWrite(c.Hier.Root(), 0, f, c.Sim.Now())
	}
	return c.Random.PickWrite(f)
}

// aliveFilter excludes failed servers from a replica list.
func (c *Cluster) aliveReplicas(replicas []topology.NodeID) []topology.NodeID {
	if len(c.failed) == 0 {
		return replicas
	}
	alive := make([]topology.NodeID, 0, len(replicas))
	for _, r := range replicas {
		if !c.failed[r] {
			alive = append(alive, r)
		}
	}
	return alive
}
