package cluster

import (
	"testing"

	"repro/internal/content"
	"repro/internal/workload"
)

// populate writes n contents with replication and drains the simulation.
func populate(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := c.SubmitWrite(workload.Request{
			Client:  i % len(c.TT.Clients),
			Content: content.ID("f" + string(rune('a'+i))),
			Size:    200_000,
			Class:   content.SemiInteractive,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.Sim.RunUntil(60)
}

func TestFailServerReReplicates(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Replicate = true
	c := mustNew(t, cfg)
	populate(t, c, 6)

	// find a server holding at least one block
	var victim = c.TT.Servers[0]
	found := false
	for _, s := range c.TT.Servers {
		if c.FES.BlockServer(s).NumBlocks() > 0 {
			victim = s
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no server holds blocks")
	}
	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	if !c.Failed(victim) {
		t.Fatal("server not marked failed")
	}
	c.Sim.RunUntil(c.Sim.Now() + 60)

	if c.Metrics.ReReplicated == 0 {
		t.Fatal("no blocks re-replicated")
	}
	if c.Metrics.LostBlocks != 0 {
		t.Fatalf("%d blocks lost despite replication", c.Metrics.LostBlocks)
	}
	// every content still has 2 replicas, none on the victim
	for _, id := range c.FES.Contents() {
		meta, err := c.FES.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range meta.Blocks {
			if len(b.Replicas) < 2 {
				t.Fatalf("%v has %d replicas after recovery", b.ID, len(b.Replicas))
			}
			for _, r := range b.Replicas {
				if r == victim {
					t.Fatalf("%v still lists the failed server", b.ID)
				}
			}
		}
	}
}

func TestFailServerWithoutReplicationLosesBlocks(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Replicate = false
	c := mustNew(t, cfg)
	populate(t, c, 6)
	var victim = c.TT.Servers[0]
	for _, s := range c.TT.Servers {
		if c.FES.BlockServer(s).NumBlocks() > 0 {
			victim = s
			break
		}
	}
	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	if c.Metrics.LostBlocks == 0 {
		t.Fatal("single-replica blocks not reported lost")
	}
}

func TestFailedServerExcludedFromPlacement(t *testing.T) {
	cfg := smallConfig(SCDA)
	c := mustNew(t, cfg)
	victim := c.TT.Servers[0]
	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.SubmitWrite(workload.Request{
			Client: 0, Content: content.ID("post-fail-" + string(rune('0'+i))), Size: 50_000,
		})
	}
	c.Sim.RunUntil(c.Sim.Now() + 30)
	if got := c.FES.BlockServer(victim).NumBlocks(); got != 0 {
		t.Fatalf("failed server received %d new blocks", got)
	}
}

func TestFailServerErrors(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	if err := c.FailServer(c.TT.Clients[0]); err == nil {
		t.Fatal("failing a client accepted")
	}
	if err := c.FailServer(c.TT.Servers[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.FailServer(c.TT.Servers[0]); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestReadsAvoidFailedReplica(t *testing.T) {
	cfg := smallConfig(RandTCP)
	cfg.Replicate = true
	c := mustNew(t, cfg)
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "x", Size: 100_000, Class: content.SemiInteractive}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(60)
	meta, err := c.FES.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	victim := meta.Blocks[0].Replicas[0]
	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(c.Sim.Now() + 30)
	done := c.Metrics.Completed
	if err := c.SubmitRead(workload.Request{Client: 1, Content: "x", Op: workload.Read}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(c.Sim.Now() + 60)
	if c.Metrics.Completed != done+1 {
		t.Fatal("read did not complete from surviving replica")
	}
}

func TestHostResourcesLimitSelectionAndRates(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.ServerCPURate = 5e6 // CPU-bound fleet: 5 Mb/s service per server
	c := mustNew(t, cfg)
	if c.Hosts == nil {
		t.Fatal("host resource model not built")
	}
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "cpu", Size: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(60)
	if c.Metrics.Completed != 1 {
		t.Fatal("transfer incomplete")
	}
	fct := c.Metrics.Records[0].FCT
	// 8 Mb at 5 Mb/s ≥ 1.6 s: the CPU, not the 100 Mb/s link, binds
	if fct < 1.5 {
		t.Fatalf("fct %v too fast for a 5 Mb/s CPU-bound server", fct)
	}
}
