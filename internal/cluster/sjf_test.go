package cluster

import (
	"testing"

	"repro/internal/content"
	"repro/internal/workload"
)

// sjfScenario runs two elephants plus a train of mice against one cluster
// configuration and returns the mean FCT of the mice.
func sjfScenario(t *testing.T, sjf bool) float64 {
	t.Helper()
	cfg := smallConfig(SCDA)
	cfg.SJFScheduling = sjf
	c := mustNew(t, cfg)
	// force everything onto one server by filtering all but one via disk:
	// instead, simply address the same content server by writing huge
	// elephants first so placement concentrates naturally is flaky;
	// use many mice so averages stabilise.
	for i := 0; i < 2; i++ {
		if err := c.SubmitWrite(workload.Request{
			Client:  i,
			Content: content.ID("elephant" + string(rune('0'+i))),
			Size:    40 << 20,
			Class:   content.SemiInteractive,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var miceSum float64
	var miceDone int
	for i := 0; i < 12; i++ {
		req := workload.Request{
			At:      0.5 + float64(i)*0.2,
			Client:  (i + 2) % len(c.TT.Clients),
			Content: content.ID("mouse" + string(rune('a'+i))),
			Size:    100_000,
			Class:   content.SemiInteractive,
		}
		c.Sim.At(req.At, func() { _ = c.SubmitWrite(req) })
	}
	c.Sim.RunUntil(120)
	for _, r := range c.Metrics.Records {
		if r.Size == 100_000 {
			miceSum += r.FCT
			miceDone++
		}
	}
	if miceDone != 12 {
		t.Fatalf("mice completed %d of 12 (sjf=%v)", miceDone, sjf)
	}
	return miceSum / float64(miceDone)
}

func TestSJFSchedulingHelpsMice(t *testing.T) {
	neutral := sjfScenario(t, false)
	sjf := sjfScenario(t, true)
	if sjf > neutral*1.05 {
		t.Fatalf("SJF hurt mice: %v vs neutral %v", sjf, neutral)
	}
}

func TestSJFSchedulerWiring(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.SJFScheduling = true
	c := mustNew(t, cfg)
	if c.Sched == nil {
		t.Fatal("scheduler not built")
	}
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "w", Size: 500_000}); err != nil {
		t.Fatal(err)
	}
	if c.Sched.Attached() != 1 {
		t.Fatalf("attached = %d", c.Sched.Attached())
	}
	c.Sim.RunUntil(60)
	if c.Sched.Attached() != 0 {
		t.Fatal("policy not detached on completion")
	}
	if c.Metrics.Completed != 1 {
		t.Fatal("flow incomplete under SJF")
	}
}
