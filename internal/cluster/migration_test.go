package cluster

import (
	"testing"

	"repro/internal/content"
	"repro/internal/ratealloc"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestClassifierLearnsFromAccesses(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "hot", Size: 50_000}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(5)
	// hammer it with reads
	for i := 0; i < 15; i++ {
		at := c.Sim.Now() + float64(i)*0.5
		c.Sim.At(at, func() {
			_ = c.SubmitRead(workload.Request{Client: 1, Content: "hot", Op: workload.Read})
		})
	}
	c.Sim.RunUntil(c.Sim.Now() + 30)
	meta, err := c.FES.Lookup("hot")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Info.Learned != content.SemiInteractive {
		t.Fatalf("learned class = %v, want semi-interactive after a read storm", meta.Info.Learned)
	}
}

// loadUplinks pushes background flows onto every server uplink except the
// exempt set, so their UpHat drops below Rscale.
func loadUplinks(t *testing.T, c *Cluster, exempt map[topology.NodeID]bool) {
	t.Helper()
	id := 50000
	for _, s := range c.TT.Servers {
		if exempt[s] {
			continue
		}
		for k := 0; k < 4; k++ {
			if err := c.Ctrl.Register(&ratealloc.Flow{
				ID:   ratealloc.FlowID(id),
				Path: []topology.LinkID{c.TT.UplinkOf[s]},
			}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
}

func TestMigrateColdMovesToDormantCandidates(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Rscale = 0.5 * 0.95 * cfg.Topology.X
	c := mustNew(t, cfg)

	// write a passive content; with an idle cluster it lands anywhere
	if err := c.SubmitWrite(workload.Request{
		Client: 0, Content: "archive", Size: 300_000, Class: content.Passive,
	}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(10)
	meta, _ := c.FES.Lookup("archive")
	holder := meta.Blocks[0].Replicas[0]

	// make every server except one busy — including the holder
	dormant := c.TT.Servers[len(c.TT.Servers)-1]
	if dormant == holder {
		dormant = c.TT.Servers[len(c.TT.Servers)-2]
	}
	loadUplinks(t, c, map[topology.NodeID]bool{dormant: true})
	c.Sim.RunUntil(c.Sim.Now() + 2) // let rates converge

	// content must be cold: advance past the classifier window
	c.Sim.RunUntil(c.Sim.Now() + 70)

	moved := c.MigrateCold()
	if moved != 1 {
		t.Fatalf("migrated %d replicas, want 1", moved)
	}
	c.Sim.RunUntil(c.Sim.Now() + 30) // let the copy finish

	meta, _ = c.FES.Lookup("archive")
	reps := meta.Blocks[0].Replicas
	if len(reps) != 1 {
		t.Fatalf("replicas after migration = %v", reps)
	}
	if reps[0] != dormant {
		t.Fatalf("replica on %v, want dormant candidate %v", reps[0], dormant)
	}
	if c.Metrics.Migrations != 1 {
		t.Fatalf("Migrations = %d", c.Metrics.Migrations)
	}
}

func TestMigrateColdSkipsWarmContent(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Rscale = 0.5 * 0.95 * cfg.Topology.X
	c := mustNew(t, cfg)
	if err := c.SubmitWrite(workload.Request{
		Client: 0, Content: "warm", Size: 100_000, Class: content.Passive,
	}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(5)
	// fresh write: access count is nonzero within the window
	if moved := c.MigrateCold(); moved != 0 {
		t.Fatalf("migrated warm content (%d moves)", moved)
	}
}

func TestMigrateColdNoopWithoutRscale(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	if moved := c.MigrateCold(); moved != 0 {
		t.Fatal("migration ran with Rscale unset")
	}
	r := mustNew(t, smallConfig(RandTCP))
	if moved := r.MigrateCold(); moved != 0 {
		t.Fatal("migration ran on RandTCP")
	}
}

func TestPeriodicMigrationTicker(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Rscale = 0.5 * 0.95 * cfg.Topology.X
	cfg.MigrateInterval = 5
	c := mustNew(t, cfg)
	if err := c.SubmitWrite(workload.Request{
		Client: 0, Content: "cold", Size: 100_000, Class: content.Passive,
	}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(3)
	holder := func() topology.NodeID {
		m, _ := c.FES.Lookup("cold")
		return m.Blocks[0].Replicas[0]
	}
	dormant := c.TT.Servers[len(c.TT.Servers)-1]
	if dormant == holder() {
		dormant = c.TT.Servers[len(c.TT.Servers)-2]
	}
	loadUplinks(t, c, map[topology.NodeID]bool{dormant: true})
	// run past the classifier window plus a migration tick
	c.Sim.RunUntil(c.Sim.Now() + 90)
	if c.Metrics.Migrations == 0 {
		t.Fatal("periodic ticker never migrated the cold content")
	}
	if got := holder(); got != dormant {
		t.Fatalf("cold content on %v, want %v", got, dormant)
	}
}
