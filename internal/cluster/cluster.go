// Package cluster assembles the full SCDA system — topology, packet
// network, RM/RA rate allocation, FES/NNS/BS file system, content-aware
// server selection and the explicit-rate transport — and the RandTCP
// baseline (random server selection + TCP Reno) the paper compares
// against, behind one API that the experiment harness drives with
// generated workloads.
//
// The request-serving sequences follow section VIII: an external write
// hashes through the FES to the owning NNS, asks the RA tree for the best
// block server, transfers at the allocated rate, then optionally issues
// the internal replication write of VIII-B to a class-selected second
// server; an external read picks the replica with the best up-link rate.
// Control-plane exchanges (FES/NNS/RA messages) are modelled as a fixed
// configurable latency rather than in-band packets — the paper keeps
// control flows logical (fig. 1's arrows) and consolidates RMs/RAs "in a
// few powerful servers close to each other to minimize communication
// overheads".
package cluster

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/dfs"
	"repro/internal/hostres"
	"repro/internal/netsim"
	"repro/internal/power"
	"repro/internal/ratealloc"
	"repro/internal/scdatp"
	"repro/internal/scheduler"
	"repro/internal/selection"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// System selects the architecture under test.
type System int

const (
	// SCDA is the paper's system: RM/RA explicit rates + content-aware
	// selection + rate-paced transport.
	SCDA System = iota
	// RandTCP is the baseline: uniform random server selection and TCP
	// Reno, the behaviour the paper attributes to VL2/Hedera-class
	// architectures.
	RandTCP
)

// String names the system for logs and summaries.
func (s System) String() string {
	if s == SCDA {
		return "SCDA"
	}
	return "RandTCP"
}

// Config assembles a cluster.
type Config struct {
	System   System
	Topology topology.ThreeTierSpec

	// NumNNS is the name-node count (1 reproduces the GFS/HDFS
	// single-name-node bottleneck).
	NumNNS int
	// BlockSize for content chunking.
	BlockSize int64
	// DiskBytes per block server.
	DiskBytes int64

	// Alloc tunes the RM/RA plane (SCDA only).
	Alloc ratealloc.Params
	// SCDATransport tunes the explicit-rate transport (SCDA only).
	SCDATransport scdatp.Config
	// TCP tunes the Reno baseline transport (RandTCP only).
	TCP tcp.Config
	// Net tunes queues and scheduling.
	Net netsim.Config

	// Replicate issues the internal VIII-B replication write after each
	// external write completes.
	Replicate bool
	// Rscale is the passive-content scale-down threshold (VII-C);
	// 0 disables dormancy logic.
	Rscale float64
	// PowerAware enables the R̂/P selection metric (VII-D); requires
	// PowerProfiles or defaults are used.
	PowerAware bool
	// HeterogeneousPower draws varied per-server power profiles.
	HeterogeneousPower bool

	// ControlDelay models the request path (UCL→FES→NNS→RA→BS) before
	// data flows; applied identically to both systems.
	ControlDelay float64

	// MigrateInterval, when positive, runs the VII-C cold-content
	// migration pass every that many seconds (SCDA with Rscale > 0 only).
	MigrateInterval float64

	// SJFScheduling attaches the implicit shortest-job-first policy of
	// section IV-A to every SCDA flow: priority weights are adapted each
	// control interval to favour flows with fewer bytes remaining.
	SJFScheduling bool

	// ServerCPURate / ServerDiskRate model per-server service capacity
	// (the R_other multi-resource term of section VI-A) in bits/sec;
	// 0 leaves servers unconstrained. ServerBackgroundMax draws each
	// server's background-computation fraction uniformly from
	// [0, ServerBackgroundMax).
	ServerCPURate       float64
	ServerDiskRate      float64
	ServerBackgroundMax float64

	// ThptBinSeconds sets the throughput time-series bin (default 1 s).
	ThptBinSeconds float64

	Seed uint64
}

// DefaultConfig returns the paper's video-trace setup on the fig. 6
// topology.
func DefaultConfig(system System) Config {
	return Config{
		System:         system,
		Topology:       topology.DefaultThreeTier(),
		NumNNS:         3,
		BlockSize:      64 << 20, // GFS-style chunks; most contents are one block
		DiskBytes:      1 << 40,
		Alloc:          ratealloc.DefaultParams(),
		SCDATransport:  scdatp.DefaultConfig(),
		TCP:            tcp.DefaultConfig(),
		Net:            netsim.DefaultConfig(),
		Replicate:      false,
		ThptBinSeconds: 1,
		Seed:           1,
	}
}

// FlowRecord is one completed transfer.
type FlowRecord struct {
	Size     int64
	Start    float64
	FCT      float64
	Op       workload.Op
	Internal bool // replication traffic, excluded from client-facing stats
}

// Metrics aggregates an experiment run.
type Metrics struct {
	Records []FlowRecord
	// ThptBins accumulates delivered payload bits per time bin across all
	// external flows; ActiveFlows counts distinct flows seen per bin. The
	// ratio reproduces the paper's "average instantaneous throughput".
	ThptBins    *stats.TimeBins
	ActiveFlows []int
	// Started / Completed count external transfers.
	Started   int
	Completed int
	// Violations counts SLA detections (SCDA only).
	Violations int64
	// Drops is the total packet-drop count.
	Drops int64
	// LostBlocks counts blocks whose only replica was on a failed server;
	// ReReplicated counts blocks recovered onto new servers;
	// UnrecoveredBlocks had survivors but no placement target.
	LostBlocks        int64
	ReReplicated      int64
	UnrecoveredBlocks int64
	// Migrations counts cold-content replica moves (section VII-C).
	Migrations int64
}

// AvgInstThroughput returns the paper's fig. 7/10/17 series: per bin,
// delivered bits divided by bin width and by the number of active flows,
// in KB/sec.
func (m *Metrics) AvgInstThroughput() []stats.Point {
	sums := m.ThptBins.Sums()
	out := make([]stats.Point, len(sums))
	for i, p := range sums {
		n := 1
		if i < len(m.ActiveFlows) && m.ActiveFlows[i] > 0 {
			n = m.ActiveFlows[i]
		}
		out[i] = stats.Point{X: p.X, Y: p.Y / m.ThptBins.Width() / float64(n) / 8 / 1000}
	}
	return out
}

// FCTCDF returns the external-flow completion-time CDF.
func (m *Metrics) FCTCDF() *stats.CDF {
	var c stats.CDF
	for _, r := range m.Records {
		if !r.Internal {
			c.Add(r.FCT)
		}
	}
	return &c
}

// AFCTBySize bins external-flow FCT by content size (bin width in bytes).
func (m *Metrics) AFCTBySize(binBytes float64) []stats.Point {
	sb := stats.NewSizeBins(binBytes)
	for _, r := range m.Records {
		if !r.Internal {
			sb.Add(float64(r.Size), r.FCT)
		}
	}
	return sb.Curve()
}

// Cluster is a fully wired simulated datacenter.
type Cluster struct {
	Cfg   Config
	Sim   *sim.Simulator
	Net   *netsim.Network
	TT    *topology.ThreeTier
	FES   *dfs.FES
	Power *power.Model
	// Classifier learns content classes from observed accesses
	// (section II-B).
	Classifier *content.Classifier
	// Hosts models per-server CPU/disk service capacity (nil when
	// unconstrained).
	Hosts  *hostres.Model
	Ctrl   *ratealloc.Controller // nil for RandTCP
	Sched  *scheduler.Scheduler  // nil unless SJFScheduling
	Hier   *ratealloc.Hierarchy  // nil for RandTCP
	Picker *selection.Picker     // nil for RandTCP
	Random *selection.Random     // nil for SCDA

	Metrics Metrics

	rng     *sim.RNG
	ids     transport.FlowIDSource
	stacks  map[topology.NodeID]*transport.Stack
	lastBin map[netsim.FlowID]int
	failed  map[topology.NodeID]bool

	// OnViolation, when set, receives SLA violations (SCDA only).
	OnViolation func(ratealloc.Violation)
	// MitigateViolations activates spare capacity on a violated link
	// (+50%), the "reserve, backup or recovery links" response of IV-A.
	MitigateViolations bool
	mitigated          map[topology.LinkID]bool
}

// New builds and wires a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.NumNNS <= 0 {
		return nil, fmt.Errorf("cluster: NumNNS = %d", cfg.NumNNS)
	}
	if cfg.ThptBinSeconds <= 0 {
		cfg.ThptBinSeconds = 1
	}
	tt, err := topology.BuildThreeTier(cfg.Topology)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	net := netsim.New(s, tt.Graph, cfg.Net)
	c := &Cluster{
		Cfg:       cfg,
		Sim:       s,
		Net:       net,
		TT:        tt,
		rng:       sim.NewRNG(cfg.Seed),
		stacks:    make(map[topology.NodeID]*transport.Stack),
		lastBin:   make(map[netsim.FlowID]int),
		failed:    make(map[topology.NodeID]bool),
		mitigated: make(map[topology.LinkID]bool),
	}
	c.Metrics.ThptBins = stats.NewTimeBins(cfg.ThptBinSeconds)
	c.Classifier = content.NewClassifier(content.DefaultClassifierConfig())

	if cfg.MigrateInterval > 0 {
		s.NewTicker(cfg.MigrateInterval, func() { c.MigrateCold() })
	}

	c.FES, err = dfs.New(cfg.NumNNS, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	for _, srv := range tt.Servers {
		if err := c.FES.AddBlockServer(dfs.NewBlockServer(srv, cfg.DiskBytes)); err != nil {
			return nil, err
		}
	}

	c.Power = power.NewModel()
	prng := c.rng.Split(1)
	for _, srv := range tt.Servers {
		prof := power.DefaultProfile()
		if cfg.HeterogeneousPower {
			prof = power.HeterogeneousProfile(prng)
		}
		if _, err := c.Power.Add(srv, prof); err != nil {
			return nil, err
		}
	}

	if cfg.ServerCPURate > 0 || cfg.ServerDiskRate > 0 {
		c.Hosts = hostres.NewModel()
		hrng := c.rng.Split(3)
		for _, srv := range tt.Servers {
			spec := hostres.Spec{CPURate: cfg.ServerCPURate, DiskRate: cfg.ServerDiskRate}
			if cfg.ServerBackgroundMax > 0 {
				spec.Background = cfg.ServerBackgroundMax * hrng.Float64()
			}
			if _, err := c.Hosts.Add(srv, spec); err != nil {
				return nil, err
			}
		}
	}

	switch cfg.System {
	case SCDA:
		ctrl, err := ratealloc.NewController(tt.Graph, net, cfg.Alloc)
		if err != nil {
			return nil, err
		}
		servers := make(map[topology.NodeID]bool, len(tt.Servers))
		for _, srv := range tt.Servers {
			servers[srv] = true
		}
		hier, err := ratealloc.NewHierarchy(ctrl, tt.Graph, servers)
		if err != nil {
			return nil, err
		}
		c.Ctrl, c.Hier = ctrl, hier
		c.Picker = &selection.Picker{H: hier, Power: c.Power, PowerAware: cfg.PowerAware, Rscale: cfg.Rscale}
		ctrl.OnViolation = c.handleViolation
		// the RM/RA control loop: rate computation then fig. 2 max/min
		// aggregation, every control interval τ
		sampleHosts := func() {
			if c.Hosts == nil {
				return
			}
			// refresh the R_other multi-resource terms before the rate
			// computation (section VI-A)
			for _, srv := range tt.Servers {
				ctrl.SetHostOther(srv, c.Hosts.Sample(c.Hosts.Get(srv)))
			}
		}
		if cfg.SJFScheduling {
			c.Sched = scheduler.New(ctrl)
		}
		s.NewTicker(cfg.Alloc.Tau, func() {
			sampleHosts()
			ctrl.Tick(s.Now())
			if c.Sched != nil {
				c.Sched.Step(s.Now())
			}
			hier.Update()
		})
		sampleHosts()
		ctrl.Tick(0)
		hier.Update()
	case RandTCP:
		c.Random = &selection.Random{Servers: tt.Servers, RNG: c.rng.Split(2)}
	default:
		return nil, fmt.Errorf("cluster: unknown system %d", cfg.System)
	}

	// power accounting: once per second, derive each server's utilisation
	// from its access-link byte counters and integrate energy
	prev := make(map[topology.NodeID][2]int64, len(tt.Servers))
	s.NewTicker(1.0, func() {
		now := s.Now()
		for _, srv := range tt.Servers {
			up := tt.UplinkOf[srv]
			down := tt.Graph.Links[up].Reverse
			sentUp := net.Stats(up).SentBytes
			sentDown := net.Stats(down).SentBytes
			p := prev[srv]
			bits := float64((sentUp-p[0])+(sentDown-p[1])) * 8
			prev[srv] = [2]int64{sentUp, sentDown}
			ps := c.Power.Get(srv)
			ps.SetUtilization(bits / tt.Graph.Links[up].Capacity)
			ps.Accrue(now)
			// feed the running-average sensor (P = T/τ path)
			ps.Measure(c.Power, ps.Draw(now))
		}
	})

	// throughput accounting: payload bits delivered to any host, binned
	net.OnDeliver = func(p *netsim.Packet) {
		if p.Ack {
			return
		}
		bin := int(s.Now() / cfg.ThptBinSeconds)
		c.Metrics.ThptBins.Add(s.Now(), float64(p.Size*8))
		if c.lastBin[p.Flow] != bin+1 {
			c.lastBin[p.Flow] = bin + 1
			for len(c.Metrics.ActiveFlows) <= bin {
				c.Metrics.ActiveFlows = append(c.Metrics.ActiveFlows, 0)
			}
			c.Metrics.ActiveFlows[bin]++
		}
	}
	return c, nil
}

func (c *Cluster) handleViolation(v ratealloc.Violation) {
	c.Metrics.Violations++
	if c.MitigateViolations && !c.mitigated[v.Link] {
		c.mitigated[v.Link] = true
		// bring up the reserve link: +50% capacity in both planes
		newCap := c.TT.Graph.Links[v.Link].Capacity * 1.5
		c.Net.SetCapacity(v.Link, newCap)
		c.Ctrl.SetCapacity(v.Link, newCap)
	}
	if c.OnViolation != nil {
		c.OnViolation(v)
	}
}

func (c *Cluster) stack(n topology.NodeID) *transport.Stack {
	st, ok := c.stacks[n]
	if !ok {
		st = transport.NewStack(c.Net, n)
		c.stacks[n] = st
	}
	return st
}

// canStoreFilter admits live servers with disk space for size bytes.
func (c *Cluster) canStoreFilter(size int64) selection.Filter {
	return func(n topology.NodeID) bool {
		if c.failed[n] {
			return false
		}
		bs := c.FES.BlockServer(n)
		return bs != nil && bs.CanStore(size)
	}
}

// pickWriteServer selects the primary per the active system.
func (c *Cluster) pickWriteServer(class content.Class, size int64) (topology.NodeID, error) {
	f := c.canStoreFilter(size)
	if c.Cfg.System == SCDA {
		return c.Picker.PickWrite(c.Hier.Root(), class, f, c.Sim.Now())
	}
	return c.Random.PickWrite(f)
}

// startTransfer launches a flow on the system's transport and registers
// bookkeeping. done runs on completion with the FCT.
func (c *Cluster) startTransfer(src, dst topology.NodeID, size int64, op workload.Op, internal bool, done func(float64)) {
	id := c.ids.Next()
	var busy []*hostres.Host
	if c.Hosts != nil {
		for _, ep := range []topology.NodeID{src, dst} {
			if h := c.Hosts.Get(ep); h != nil {
				h.Begin()
				busy = append(busy, h)
			}
		}
	}
	record := func(fct float64) {
		for _, h := range busy {
			h.End()
		}
		c.Metrics.Records = append(c.Metrics.Records, FlowRecord{
			Size: size, Start: c.Sim.Now() - fct, FCT: fct, Op: op, Internal: internal,
		})
		if !internal {
			c.Metrics.Completed++
		}
		if done != nil {
			done(fct)
		}
	}
	if !internal {
		c.Metrics.Started++
	}
	switch c.Cfg.System {
	case SCDA:
		path, err := c.Net.Routes.Path(src, dst, transport.Hash(id))
		if err != nil || len(path) == 0 {
			return
		}
		if err := c.Ctrl.Register(&ratealloc.Flow{ID: id, Path: path}); err != nil {
			return
		}
		fl := scdatp.Start(c.Sim, c.Net, c.Ctrl, c.stack(src), c.stack(dst), &scdatp.Flow{
			ID: id, Src: src, Dst: dst, Size: size,
			OnComplete: func(fct sim.Time) {
				if c.Sched != nil {
					c.Sched.Detach(id)
				}
				c.Ctrl.Unregister(id)
				record(fct)
			},
		}, c.Cfg.SCDATransport)
		if c.Sched != nil {
			// implicit SJF (section IV-A): weight by bytes remaining,
			// refreshed live from the transport's ACK state
			pol := &sjfPolicy{flow: fl, sjf: &scheduler.SJF{Scale: float64(c.FES.BlockSize)}}
			_ = c.Sched.Attach(id, pol)
		}
	case RandTCP:
		tcp.Start(c.Sim, c.Net, c.stack(src), c.stack(dst), &tcp.Flow{
			ID: id, Src: src, Dst: dst, Size: size,
			OnComplete: func(fct sim.Time) { record(fct) },
		}, c.Cfg.TCP)
	}
}

// SubmitWrite serves an external write request (section VIII-A): place the
// content, transfer it from the client, then optionally replicate
// internally (VIII-B).
func (c *Cluster) SubmitWrite(req workload.Request) error {
	if req.Client < 0 || req.Client >= len(c.TT.Clients) {
		return fmt.Errorf("cluster: client %d out of range", req.Client)
	}
	ucl := c.TT.Clients[req.Client]
	class := req.Class
	info := content.Info{ID: req.Content, Size: req.Size, Declared: class}
	primary, err := c.pickWriteServer(info.Effective(), req.Size)
	if err != nil {
		return fmt.Errorf("cluster: placing %s: %w", req.Content, err)
	}
	placements := make([]topology.NodeID, len(c.FES.SplitBlocks(req.Size)))
	for i := range placements {
		placements[i] = primary
	}
	meta, err := c.FES.Create(info, placements)
	if err != nil {
		return err
	}
	c.observeAccess(req.Content, workload.Write)
	start := func() {
		c.startTransfer(ucl, primary, req.Size, workload.Write, false, func(float64) {
			if c.Cfg.Replicate {
				c.replicate(meta, primary)
			}
		})
	}
	if c.Cfg.ControlDelay > 0 {
		c.Sim.After(c.Cfg.ControlDelay, start)
	} else {
		start()
	}
	return nil
}

// replicate performs the internal write of VIII-B for every block.
func (c *Cluster) replicate(meta *dfs.Meta, primary topology.NodeID) {
	class := meta.Info.Effective()
	var target topology.NodeID
	var err error
	if c.Cfg.System == SCDA {
		target, err = c.Picker.PickReplica(c.Hier.Root(), class, primary, c.canStoreFilter(meta.TotalSize()), c.Sim.Now())
	} else {
		target, err = c.Random.PickReplica(primary, c.canStoreFilter(meta.TotalSize()))
	}
	if err != nil {
		return // nowhere to replicate; content stays single-copy
	}
	for _, b := range meta.Blocks {
		if err := c.FES.AddReplica(b.ID, target); err != nil {
			continue
		}
		c.startTransfer(primary, target, b.Size, workload.Write, true, nil)
	}
}

// SubmitRead serves an external read (section VIII-C): choose the replica
// with the best up-link rate and transfer server→client.
func (c *Cluster) SubmitRead(req workload.Request) error {
	if req.Client < 0 || req.Client >= len(c.TT.Clients) {
		return fmt.Errorf("cluster: client %d out of range", req.Client)
	}
	ucl := c.TT.Clients[req.Client]
	meta, err := c.FES.Lookup(req.Content)
	if err != nil {
		return err
	}
	c.observeAccess(req.Content, workload.Read)
	start := func() {
		for _, b := range meta.Blocks {
			var src topology.NodeID
			var err error
			alive := c.aliveReplicas(b.Replicas)
			if c.Cfg.System == SCDA {
				src, err = c.Picker.PickRead(alive, c.Sim.Now())
			} else {
				src, err = c.Random.PickRead(alive)
			}
			if err != nil {
				continue
			}
			c.FES.MarkRead(b.ID, src)
			c.startTransfer(src, ucl, b.Size, workload.Read, false, nil)
		}
	}
	if c.Cfg.ControlDelay > 0 {
		c.Sim.After(c.Cfg.ControlDelay, start)
	} else {
		start()
	}
	return nil
}

// Submit dispatches a request by operation.
func (c *Cluster) Submit(req workload.Request) error {
	if req.Op == workload.Read {
		return c.SubmitRead(req)
	}
	return c.SubmitWrite(req)
}

// RunWorkload schedules all requests at their arrival times and runs the
// simulation until horizon seconds (flows still in flight at the horizon
// are not recorded, matching the paper's "flows ... which finish within
// simulation time"). Returns the metrics.
func (c *Cluster) RunWorkload(reqs []workload.Request, horizon float64) *Metrics {
	for i := range reqs {
		req := reqs[i]
		c.Sim.At(req.At, func() {
			// placement failures (disk full, no candidate) drop the
			// request, as a real admission-controlled cloud would
			_ = c.Submit(req)
		})
	}
	c.Sim.RunUntil(horizon)
	c.Metrics.Drops = c.Net.TotalDrops
	if c.Ctrl != nil {
		c.Metrics.Violations = c.Ctrl.Violations
	}
	return &c.Metrics
}

// sjfPolicy adapts scheduler.SJF to live transport progress.
type sjfPolicy struct {
	flow *scdatp.Flow
	sjf  *scheduler.SJF
}

// Weight implements scheduler.Policy.
func (p *sjfPolicy) Weight(currentRate, now float64) float64 {
	p.sjf.SetRemaining(float64(p.flow.RemainingBytes()))
	return p.sjf.Weight(currentRate, now)
}

// MeanFCT returns the mean external-flow completion time (NaN when none).
func (m *Metrics) MeanFCT() float64 {
	var o stats.Online
	for _, r := range m.Records {
		if !r.Internal {
			o.Add(r.FCT)
		}
	}
	if o.N() == 0 {
		return math.NaN()
	}
	return o.Mean()
}
