package cluster

import (
	"math"
	"testing"

	"repro/internal/content"
	"repro/internal/power"
	"repro/internal/ratealloc"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// smallConfig shrinks the fabric so tests run fast.
func smallConfig(sys System) Config {
	cfg := DefaultConfig(sys)
	cfg.Topology.X = 100e6
	cfg.Topology.Clients = 10
	cfg.Topology.Racks = 2
	cfg.Topology.ServersPerRack = 3
	cfg.Topology.AggSwitches = 2
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSCDAWriteReadRoundTrip(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	err := c.SubmitWrite(workload.Request{
		At: 0, Client: 0, Content: "hello", Size: 500_000,
		Op: workload.Write, Class: content.SemiInteractive,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(30)
	if c.Metrics.Completed != 1 {
		t.Fatalf("completed = %d", c.Metrics.Completed)
	}
	// the content is stored and readable
	if err := c.SubmitRead(workload.Request{At: 0, Client: 3, Content: "hello", Op: workload.Read}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(60)
	if c.Metrics.Completed != 2 {
		t.Fatalf("completed after read = %d", c.Metrics.Completed)
	}
	for _, r := range c.Metrics.Records {
		if r.FCT <= 0 {
			t.Fatalf("bad FCT %v", r.FCT)
		}
	}
}

func TestRandTCPWriteReadRoundTrip(t *testing.T) {
	c := mustNew(t, smallConfig(RandTCP))
	if err := c.SubmitWrite(workload.Request{Client: 1, Content: "x", Size: 300_000}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(60)
	if c.Metrics.Completed != 1 {
		t.Fatal("write did not complete")
	}
	if err := c.SubmitRead(workload.Request{Client: 2, Content: "x", Op: workload.Read}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(120)
	if c.Metrics.Completed != 2 {
		t.Fatal("read did not complete")
	}
}

func TestReadUnknownContentFails(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	if err := c.SubmitRead(workload.Request{Client: 0, Content: "ghost", Op: workload.Read}); err == nil {
		t.Fatal("read of unknown content accepted")
	}
}

func TestBadClientRejected(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	if err := c.SubmitWrite(workload.Request{Client: 99, Content: "x", Size: 100}); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	if err := c.SubmitRead(workload.Request{Client: -1, Content: "x", Op: workload.Read}); err == nil {
		t.Fatal("negative client accepted")
	}
}

func TestReplicationCreatesSecondCopy(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.Replicate = true
	c := mustNew(t, cfg)
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "repl", Size: 400_000, Class: content.SemiInteractive}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(60)
	meta, err := c.FES.Lookup("repl")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(meta.Blocks[0].Replicas); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	// internal replication flow recorded as internal
	internal := 0
	for _, r := range c.Metrics.Records {
		if r.Internal {
			internal++
		}
	}
	if internal != 1 {
		t.Fatalf("internal records = %d", internal)
	}
	// internal traffic is excluded from the client CDF
	if c.Metrics.FCTCDF().N() != 1 {
		t.Fatalf("client CDF has %d samples", c.Metrics.FCTCDF().N())
	}
}

func TestWorkloadRunBothSystems(t *testing.T) {
	spec := workload.DefaultDCSpec()
	spec.ArrivalRate = 20
	spec.Clients = 10
	for _, sys := range []System{SCDA, RandTCP} {
		cfg := smallConfig(sys)
		c := mustNew(t, cfg)
		reqs := spec.Generate(sim.NewRNG(cfg.Seed), 5)
		m := c.RunWorkload(reqs, 60)
		if m.Started == 0 {
			t.Fatalf("%v: no flows started", sys)
		}
		frac := float64(m.Completed) / float64(m.Started)
		if frac < 0.9 {
			t.Fatalf("%v: only %v of flows completed", sys, frac)
		}
		if pts := m.AvgInstThroughput(); len(pts) == 0 {
			t.Fatalf("%v: no throughput series", sys)
		}
		if pts := m.AFCTBySize(500e3); len(pts) == 0 {
			t.Fatalf("%v: no AFCT curve", sys)
		}
	}
}

func TestSCDABeatsRandTCPOnFCT(t *testing.T) {
	// the paper's headline: SCDA achieves substantially lower FCT than
	// random placement + TCP under the same workload
	spec := workload.DefaultDCSpec()
	spec.ArrivalRate = 30
	spec.Clients = 10
	var mean [2]float64
	for i, sys := range []System{SCDA, RandTCP} {
		cfg := smallConfig(sys)
		c := mustNew(t, cfg)
		reqs := spec.Generate(sim.NewRNG(7), 8)
		m := c.RunWorkload(reqs, 120)
		if m.Completed < len(reqs)/2 {
			t.Fatalf("%v completed %d of %d", sys, m.Completed, len(reqs))
		}
		mean[i] = m.MeanFCT()
	}
	if !(mean[0] < mean[1]) {
		t.Fatalf("SCDA mean FCT %v not below RandTCP %v", mean[0], mean[1])
	}
}

func TestSLAMitigationRestoresCapacity(t *testing.T) {
	cfg := smallConfig(SCDA)
	c := mustNew(t, cfg)
	c.MitigateViolations = true
	// oversubscribe one server uplink with reservations to force a
	// violation
	srv := c.TT.Servers[0]
	up := c.TT.UplinkOf[srv]
	for i := 0; i < 3; i++ {
		if err := c.Ctrl.Register(&ratealloc.Flow{
			ID:      ratealloc.FlowID(9000 + i),
			Path:    []topology.LinkID{up},
			MinRate: 0.5 * cfg.Topology.X,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Sim.RunUntil(1)
	if c.Metrics.Violations == 0 {
		t.Fatal("no violation detected")
	}
	// mitigation bumped the link capacity by 50%
	if got := c.Ctrl.Link(up).Capacity; math.Abs(got-1.5*cfg.Topology.X) > 1 {
		t.Fatalf("capacity after mitigation = %v, want %v", got, 1.5*cfg.Topology.X)
	}
}

func TestControlDelayDefersTransfer(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.ControlDelay = 0.5
	c := mustNew(t, cfg)
	c.SubmitWrite(workload.Request{Client: 0, Content: "slow", Size: 10_000})
	c.Sim.RunUntil(0.4)
	if c.Metrics.Started != 0 {
		t.Fatal("transfer started before control delay elapsed")
	}
	c.Sim.RunUntil(30)
	if c.Metrics.Completed != 1 {
		t.Fatal("transfer never completed")
	}
}

func TestDiskFullFailsPlacement(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.DiskBytes = 1000
	c := mustNew(t, cfg)
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "big", Size: 10_000}); err == nil {
		t.Fatal("placement on full cluster accepted")
	}
}

func TestInvalidConfigs(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.NumNNS = 0
	if _, err := New(cfg); err != nil {
		// expected
	} else {
		t.Fatal("0 NNS accepted")
	}
	cfg = smallConfig(SCDA)
	cfg.Topology.Racks = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestMetricsThroughputAccounting(t *testing.T) {
	c := mustNew(t, smallConfig(SCDA))
	c.SubmitWrite(workload.Request{Client: 0, Content: "t", Size: 2_000_000})
	c.Sim.RunUntil(60)
	pts := c.Metrics.AvgInstThroughput()
	total := 0.0
	for _, p := range pts {
		total += p.Y
	}
	if total <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestHeterogeneousPowerProfiles(t *testing.T) {
	cfg := smallConfig(SCDA)
	cfg.HeterogeneousPower = true
	cfg.PowerAware = true
	c := mustNew(t, cfg)
	peaks := map[float64]bool{}
	c.Power.Each(func(s *power.Server) { peaks[s.Profile.PeakWatts] = true })
	if len(peaks) < 2 {
		t.Fatal("power profiles not heterogeneous")
	}
	// write still succeeds under power-aware selection
	if err := c.SubmitWrite(workload.Request{Client: 0, Content: "p", Size: 100_000}); err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(30)
	if c.Metrics.Completed != 1 {
		t.Fatal("power-aware write failed")
	}
}
