package cluster

import (
	"repro/internal/content"
	"repro/internal/dfs"
	"repro/internal/topology"
	"repro/internal/workload"
)

// observeAccess feeds the access-frequency classifier (section II-B: "the
// RMs of the servers can learn the type of content from the server access
// frequencies") and refreshes the learned class on the metadata.
func (c *Cluster) observeAccess(id content.ID, op workload.Op) {
	now := c.Sim.Now()
	if op == workload.Read {
		c.Classifier.ObserveRead(id, now)
	} else {
		c.Classifier.ObserveWrite(id, now)
	}
	if meta, err := c.FES.Lookup(id); err == nil {
		meta.Info.Learned = c.Classifier.Classify(id, now)
	}
}

// MigrateCold implements the section VII-C consolidation: "passive content
// which is initially written to the active servers can be totally moved to
// the dormant servers after the active servers learn the low frequency of
// the content". Every content whose effective class is Passive and whose
// window access count is zero has each replica that sits on a busy
// (non-dormant-candidate) server moved to a dormant candidate: the data is
// copied with an internal transfer and the old replica dropped.
//
// Returns the number of replicas migrated. Requires SCDA with Rscale > 0;
// otherwise it is a no-op.
func (c *Cluster) MigrateCold() int {
	if c.Cfg.System != SCDA || c.Cfg.Rscale <= 0 {
		return 0
	}
	now := c.Sim.Now()
	migrated := 0
	for _, id := range c.FES.Contents() {
		meta, err := c.FES.Lookup(id)
		if err != nil {
			continue
		}
		if meta.Info.Effective() != content.Passive {
			continue
		}
		if c.Classifier.AccessCount(id, now) > 0 {
			continue // still warm: leave it
		}
		for bi := range meta.Blocks {
			b := &meta.Blocks[bi]
			for _, holder := range b.Replicas {
				rm := c.Hier.RMFor(holder)
				if rm == nil || rm.UpHat > c.Cfg.Rscale {
					continue // already on a dormant candidate
				}
				if c.migrateReplica(b, holder) {
					migrated++
					break // one move per block per pass keeps churn bounded
				}
			}
		}
	}
	c.Metrics.Migrations += int64(migrated)
	return migrated
}

// migrateReplica copies a block from a busy holder to a dormant candidate
// and drops the old replica. Returns false when no target exists.
func (c *Cluster) migrateReplica(b *dfs.Block, from topology.NodeID) bool {
	holding := make(map[topology.NodeID]bool, len(b.Replicas))
	for _, r := range b.Replicas {
		holding[r] = true
	}
	f := func(n topology.NodeID) bool {
		if c.failed[n] || holding[n] {
			return false
		}
		rm := c.Hier.RMFor(n)
		if rm == nil || rm.UpHat <= c.Cfg.Rscale {
			return false // not a dormant candidate
		}
		bs := c.FES.BlockServer(n)
		return bs != nil && bs.CanStore(b.Size)
	}
	target, _, err := c.Picker.ScanUp(c.Hier.Root(), f, c.Sim.Now())
	if err != nil {
		return false
	}
	if err := c.FES.AddReplica(b.ID, target); err != nil {
		return false
	}
	// copy the data, then release the busy server's replica: "totally
	// moved", not just re-replicated
	src := from
	c.startTransfer(src, target, b.Size, workload.Write, true, func(float64) {
		_ = c.FES.RemoveReplica(b.ID, src)
	})
	return true
}
