package runner

import (
	"context"

	"repro/internal/sim"
)

// DeriveSeeds expands a base experiment seed into n per-replicate seeds via
// the deterministic SplitMix64 stream, so replicates are statistically
// independent yet fully reproducible from the base seed. The derivation is
// position-stable: the first k seeds of DeriveSeeds(base, n) equal
// DeriveSeeds(base, k).
func DeriveSeeds(base uint64, n int) []uint64 {
	rng := sim.NewRNG(base)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	return seeds
}

// Replicate runs fn once per seed derived from base, fanned out on the
// pool, and returns the per-replicate results in replicate order. Each
// invocation receives its own seed and must build all randomness from it
// (sim.NewRNG(seed) per task, never shared across tasks).
func Replicate[T any](p *Pool, base uint64, n int, fn func(rep int, seed uint64) (T, error)) ([]T, error) {
	return ReplicateCtx(context.Background(), p, base, n, func(_ context.Context, rep int, seed uint64) (T, error) {
		return fn(rep, seed)
	})
}

// ReplicateCtx is Replicate with cooperative cancellation (MapCtx's rules):
// no replicate starts once ctx is done, and the seed stream is unchanged —
// replicate i always receives DeriveSeeds(base, n)[i] regardless of how
// many replicates actually ran.
func ReplicateCtx[T any](ctx context.Context, p *Pool, base uint64, n int, fn func(ctx context.Context, rep int, seed uint64) (T, error)) ([]T, error) {
	seeds := DeriveSeeds(base, n)
	return MapCtx(ctx, p, n, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, seeds[i])
	})
}
