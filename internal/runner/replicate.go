package runner

import "repro/internal/sim"

// DeriveSeeds expands a base experiment seed into n per-replicate seeds via
// the deterministic SplitMix64 stream, so replicates are statistically
// independent yet fully reproducible from the base seed. The derivation is
// position-stable: the first k seeds of DeriveSeeds(base, n) equal
// DeriveSeeds(base, k).
func DeriveSeeds(base uint64, n int) []uint64 {
	rng := sim.NewRNG(base)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	return seeds
}

// Replicate runs fn once per seed derived from base, fanned out on the
// pool, and returns the per-replicate results in replicate order. Each
// invocation receives its own seed and must build all randomness from it
// (sim.NewRNG(seed) per task, never shared across tasks).
func Replicate[T any](p *Pool, base uint64, n int, fn func(rep int, seed uint64) (T, error)) ([]T, error) {
	seeds := DeriveSeeds(base, n)
	return Map(p, n, func(i int) (T, error) {
		return fn(i, seeds[i])
	})
}
