// Package runner is the experiment-level parallelism layer promised by the
// sim core's design contract: the discrete-event engine itself is
// single-threaded, so speed at suite scale comes from executing independent
// experiment runs — one per figure, per sweep point, per replicate seed —
// concurrently across a bounded worker pool.
//
// Determinism is preserved by construction: every task derives its own
// sim.RNG from an explicit seed and shares no mutable state with its
// siblings, so a run fanned out over N workers produces byte-identical
// results to the same run executed serially. The package also provides a
// per-key singleflight cache (Group) so that tasks requesting the same
// expensive scenario share one computation without serialising unrelated
// scenarios, and multi-seed replication helpers that reduce replicate runs
// to mean ± 95% confidence intervals.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a task panic converted into an ordinary error: Map and its
// derivatives recover panics inside task functions so one broken (or
// fault-injected) experiment cannot take down a resident process hosting
// many, and so pool-worker goroutines can never die with an unjoined
// WaitGroup. The panic value and the goroutine stack at the panic site are
// preserved for the caller's diagnostics (the service surfaces both in the
// failed job's status).
type PanicError struct {
	// Value is what the task passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace, captured at recover.
	Stack []byte
}

// Error summarizes the panic with its stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task panic: %v\n%s", e.Value, e.Stack)
}

// safeCall invokes fn, converting a panic into a *PanicError. A
// runtime.Goexit (from something like t.Fatal inside a task) is not
// recoverable and keeps its normal semantics.
func safeCall[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Pool bounds the number of experiment tasks running concurrently. The
// zero-cost way to get serial execution (stable per-task timing for
// benchmarks, simpler debugging) is a pool of one worker.
type Pool struct {
	workers int
	sem     chan struct{}
}

// New returns a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Serial returns a one-worker pool: Map degenerates to an in-order loop on
// the calling goroutine.
func Serial() *Pool { return New(1) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared GOMAXPROCS-sized pool used when callers pass a
// nil *Pool.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

func orDefault(p *Pool) *Pool {
	if p == nil {
		return Default()
	}
	return p
}

// Map runs fn(0..n-1) on the pool and returns the results in index order.
// A nil pool means Default(). A task that panics is recovered and reported
// as a *PanicError instead of crashing the process (one broken experiment
// must not take down a resident service running many). On error Map
// returns the lowest-index error observed and fails fast: with a serial pool later tasks are not started
// (matching a plain loop); with a concurrent pool already-started tasks
// finish but no further tasks are submitted. fn must not call Map on the
// same pool (tasks waiting on nested tasks can exhaust the workers and
// deadlock); use a separate pool for nested fan-out.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), p, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cooperative cancellation: once ctx is done no further
// task starts — a serial pool stops between iterations, a concurrent pool
// stops submitting while already-running tasks finish — and MapCtx returns
// ctx.Err() (a task error from a lower index wins, matching Map's error
// rule). A Map whose every task already ran to completion returns its
// results even if ctx fired during the last task: the cancellation
// arrived too late to prevent any work, and discarding a finished result
// would only force the caller to redo it. This holds identically on
// serial and concurrent pools, so outcomes never depend on pool width.
// Each task receives ctx so long-running bodies can observe the
// cancellation themselves; a task already executing when ctx fires is
// never interrupted by the pool.
func MapCtx[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	p = orDefault(p)
	out := make([]T, n)
	if p.workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := safeCall(ctx, i, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	submitted := 0
submit:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		// A fired ctx must win even when a sem slot is also free — the
		// two-case select alone picks uniformly between ready cases, which
		// would launch tasks after cancellation about half the time.
		select {
		case <-ctx.Done():
			break submit
		default:
		}
		select {
		case <-ctx.Done():
			break submit
		case p.sem <- struct{}{}:
		}
		i := i
		submitted++
		wg.Add(1)
		go func() {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			out[i], errs[i] = safeCall(ctx, i, fn)
			if errs[i] != nil {
				failed.Store(true)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if submitted < n {
		// Cancellation (the only error-free way to stop submitting)
		// actually prevented work: report it.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Each is Map for tasks with no result value.
func Each(p *Pool, n int, fn func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// EachCtx is MapCtx for tasks with no result value.
func EachCtx(ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
