package runner

import "sync"

// call is one execution of a Group key's function: in flight until done is
// closed, then a cache entry if it succeeded.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group is a memoizing per-key singleflight: the first Do for a key runs
// the function, concurrent Dos for the same key wait for that result, and
// successful results are cached for later callers. Distinct keys never
// block each other — the Group's lock is held only to look up or install a
// call, not while the function runs. Failed calls are forgotten so a later
// Do can retry.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// NewGroup returns an empty group.
func NewGroup[K comparable, V any]() *Group[K, V] {
	return &Group[K, V]{calls: make(map[K]*call[V])}
}

// Do returns the cached value for key, or runs fn to produce it. Exactly
// one caller runs fn per key per Clear generation; the rest wait.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	if c.err != nil {
		g.mu.Lock()
		// Remove only our own entry: a Clear may have replaced the map (or
		// a retry may already have installed a fresh call) in the meantime.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
	}
	return c.val, c.err
}

// Peek returns the completed cached value for key without running or
// waiting for anything: ok is false while the key is absent or still in
// flight. It lets a cache front-end (e.g. the simulation service's submit
// path) answer instantly from memoized results while leaving computation
// and in-flight coalescing to Do.
func (g *Group[K, V]) Peek(key K) (V, bool) {
	var zero V
	g.mu.Lock()
	c, ok := g.calls[key]
	g.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-c.done:
	default:
		return zero, false
	}
	if c.err != nil {
		return zero, false
	}
	return c.val, true
}

// Add installs val as the completed cached value for key, reporting
// whether it was installed: false when a cached or in-flight call already
// holds the key, which preserves Do's exactly-once semantics. It lets a
// caller seed the memo from an external source (e.g. a disk cache layer)
// without blocking in Do.
func (g *Group[K, V]) Add(key K, val V) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if _, ok := g.calls[key]; ok {
		return false
	}
	c := &call[V]{done: make(chan struct{}), val: val}
	close(c.done)
	g.calls[key] = c
	return true
}

// Forget drops the completed entry for key, if any, so the next Do
// recomputes it. An in-flight call is left alone — its waiters still get
// the result and it caches as usual. This is the eviction hook for
// callers bounding a Group used as a long-lived memo cache.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return
	}
	select {
	case <-c.done:
	default:
		return
	}
	delete(g.calls, key)
}

// Clear drops all cached and in-flight entries. Callers already waiting on
// an in-flight call still receive its result; the next Do for any key
// recomputes.
func (g *Group[K, V]) Clear() {
	g.mu.Lock()
	g.calls = make(map[K]*call[V])
	g.mu.Unlock()
}

// Len reports the number of cached or in-flight keys.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
