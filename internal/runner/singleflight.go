package runner

import "sync"

// call is one execution of a Group key's function: in flight until done is
// closed, then a cache entry if it succeeded.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group is a memoizing per-key singleflight: the first Do for a key runs
// the function, concurrent Dos for the same key wait for that result, and
// successful results are cached for later callers. Distinct keys never
// block each other — the Group's lock is held only to look up or install a
// call, not while the function runs. Failed calls are forgotten so a later
// Do can retry.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// NewGroup returns an empty group.
func NewGroup[K comparable, V any]() *Group[K, V] {
	return &Group[K, V]{calls: make(map[K]*call[V])}
}

// Do returns the cached value for key, or runs fn to produce it. Exactly
// one caller runs fn per key per Clear generation; the rest wait.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	if c.err != nil {
		g.mu.Lock()
		// Remove only our own entry: a Clear may have replaced the map (or
		// a retry may already have installed a fresh call) in the meantime.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
	}
	return c.val, c.err
}

// Clear drops all cached and in-flight entries. Callers already waiting on
// an in-flight call still receive its result; the next Do for any key
// recomputes.
func (g *Group[K, V]) Clear() {
	g.mu.Lock()
	g.calls = make(map[K]*call[V])
	g.mu.Unlock()
}

// Len reports the number of cached or in-flight keys.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
