package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(New(workers), 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(New(workers), 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := Map(New(workers), 16, func(i int) (int, error) {
			if i == 5 || i == 11 {
				return 0, sentinel
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestMapConcurrentFailsFast(t *testing.T) {
	// Task 0 fails immediately; the submission loop must stop launching
	// new tasks once the failure is visible, so far fewer than n run.
	var started atomic.Int64
	_, err := Map(New(2), 200, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(5 * time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if s := started.Load(); s >= 100 {
		t.Fatalf("%d of 200 tasks started after an immediate failure; fail-fast is not working", s)
	}
}

func TestMapSerialStopsAtError(t *testing.T) {
	ran := 0
	_, err := Map(Serial(), 10, func(i int) (int, error) {
		ran++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("err=%v ran=%d, want error after 4 tasks", err, ran)
	}
}

func TestEach(t *testing.T) {
	var n atomic.Int64
	if err := Each(New(4), 32, func(i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 32 {
		t.Fatalf("ran %d of 32", n.Load())
	}
}

func TestDefaultPool(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default pool not shared")
	}
	if Default().Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if Serial().Workers() != 1 {
		t.Fatal("Serial pool width != 1")
	}
}

func TestGroupMemoizesPerKey(t *testing.T) {
	g := NewGroup[string, int]()
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := g.Do("a", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("v=%d err=%v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGroupSingleflightConcurrent(t *testing.T) {
	g := NewGroup[int, int]()
	var calls atomic.Int64
	var wg sync.WaitGroup
	release := make(chan struct{})
	const waiters = 16
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Do(7, func() (int, error) {
				calls.Add(1)
				<-release // hold the flight open so everyone piles on
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	close(release)
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times under contention, want 1", c)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
}

func TestGroupDistinctKeysDontSerialize(t *testing.T) {
	// If the group held its lock across fn, the second key's Do would
	// deadlock waiting for the first (which blocks until the second runs).
	g := NewGroup[int, int]()
	aStarted := make(chan struct{})
	bDone := make(chan struct{})
	go func() {
		g.Do(1, func() (int, error) {
			close(aStarted)
			<-bDone
			return 1, nil
		})
	}()
	<-aStarted
	if _, err := g.Do(2, func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	close(bDone)
}

func TestGroupErrorNotCached(t *testing.T) {
	g := NewGroup[string, int]()
	calls := 0
	if _, err := g.Do("k", func() (int, error) { calls++; return 0, errors.New("first") }); err == nil {
		t.Fatal("error swallowed")
	}
	v, err := g.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || calls != 2 {
		t.Fatalf("v=%d err=%v calls=%d, want retry after error", v, err, calls)
	}
}

func TestGroupClear(t *testing.T) {
	g := NewGroup[string, int]()
	calls := 0
	fn := func() (int, error) { calls++; return calls, nil }
	g.Do("k", fn)
	g.Clear()
	if g.Len() != 0 {
		t.Fatalf("Len after Clear = %d", g.Len())
	}
	v, _ := g.Do("k", fn)
	if v != 2 || calls != 2 {
		t.Fatalf("Clear did not force recompute: v=%d calls=%d", v, calls)
	}
}

func TestGroupClearDuringFlight(t *testing.T) {
	// Clear while a call is in flight: existing waiters still get the
	// result; the next Do recomputes.
	g := NewGroup[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- v
	}()
	<-started
	g.Clear()
	close(release)
	if v := <-done; v != 1 {
		t.Fatalf("in-flight waiter got %d", v)
	}
	calls := 0
	v, _ := g.Do("k", func() (int, error) { calls++; return 2, nil })
	if v != 2 || calls != 1 {
		t.Fatalf("post-Clear Do returned stale value %d (calls=%d)", v, calls)
	}
}

func TestMapCtxSerialStopsBetweenTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := MapCtx(ctx, Serial(), 10, func(ctx context.Context, i int) (int, error) {
		ran++
		if i == 2 {
			cancel() // takes effect before task 3 starts
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d tasks after cancel at task 2, want 3", ran)
	}
}

func TestMapCtxConcurrentStopsSubmitting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := MapCtx(ctx, New(2), 200, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s >= 100 {
		t.Fatalf("%d of 200 tasks started after cancellation", s)
	}
}

func TestMapCtxLateCancelKeepsCompletedResults(t *testing.T) {
	// ctx firing during the final task prevented nothing: the completed
	// results are returned, on serial and concurrent pools alike. (The
	// cancel inside task n-1 necessarily post-dates every submission, so
	// the all-tasks-ran condition holds deterministically.)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := MapCtx(ctx, New(workers), 4, func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				cancel()
			}
			return i * 10, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v, want completed results", workers, err)
		}
		for i, v := range out {
			if v != i*10 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		cancel()
	}
}

func TestMapCtxTaskErrorWinsOverCancel(t *testing.T) {
	// A real task failure must not be masked by the ctx being cancelled
	// afterwards: Map's lowest-index-error rule still applies.
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := MapCtx(ctx, Serial(), 5, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			cancel()
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want task error", err)
	}
}

func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	out, err := MapCtx(context.Background(), New(4), 32, func(_ context.Context, i int) (int, error) {
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestEachCtx(t *testing.T) {
	var n atomic.Int64
	if err := EachCtx(context.Background(), New(3), 24, func(_ context.Context, i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 24 {
		t.Fatalf("ran %d of 24", n.Load())
	}
}

func TestReplicateCtxSeedsStableUnderCancel(t *testing.T) {
	// Cancelling must not shift the seed stream: whatever replicates do run
	// see exactly the seeds a full run would have given them.
	seeds := DeriveSeeds(9, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	got := map[int]uint64{}
	_, err := ReplicateCtx(ctx, Serial(), 9, 6, func(ctx context.Context, rep int, seed uint64) (int, error) {
		mu.Lock()
		got[rep] = seed
		mu.Unlock()
		if rep == 1 {
			cancel()
		}
		return rep, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for rep, seed := range got {
		if seed != seeds[rep] {
			t.Fatalf("rep %d seed %d, want %d", rep, seed, seeds[rep])
		}
	}
}

func TestGroupPeek(t *testing.T) {
	g := NewGroup[string, int]()
	if _, ok := g.Peek("missing"); ok {
		t.Fatal("Peek hit on an absent key")
	}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 41, nil
		})
		close(done)
	}()
	<-started
	if _, ok := g.Peek("k"); ok {
		t.Fatal("Peek hit on an in-flight key")
	}
	close(release)
	<-done
	v, ok := g.Peek("k")
	if !ok || v != 41 {
		t.Fatalf("Peek = %d, %v after completion", v, ok)
	}
}

func TestGroupAdd(t *testing.T) {
	g := NewGroup[string, int]()
	if !g.Add("k", 5) {
		t.Fatal("Add to an empty key refused")
	}
	if v, ok := g.Peek("k"); !ok || v != 5 {
		t.Fatalf("Peek after Add = %d, %v", v, ok)
	}
	calls := 0
	if v, _ := g.Do("k", func() (int, error) { calls++; return 0, nil }); v != 5 || calls != 0 {
		t.Fatalf("Do after Add recomputed: v=%d calls=%d", v, calls)
	}
	if g.Add("k", 6) {
		t.Fatal("Add over a cached entry succeeded")
	}
	if v, _ := g.Peek("k"); v != 5 {
		t.Fatalf("losing Add clobbered the entry: %d", v)
	}

	// Add must not displace an in-flight call.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := g.Do("flight", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- v
	}()
	<-started
	if g.Add("flight", 2) {
		t.Fatal("Add displaced an in-flight call")
	}
	close(release)
	if v := <-done; v != 1 {
		t.Fatalf("in-flight waiter got %d after Add", v)
	}
}

func TestGroupForget(t *testing.T) {
	g := NewGroup[string, int]()
	calls := 0
	fn := func() (int, error) { calls++; return calls, nil }
	g.Do("k", fn)
	g.Forget("k")
	if g.Len() != 0 {
		t.Fatalf("Len after Forget = %d", g.Len())
	}
	if v, _ := g.Do("k", fn); v != 2 || calls != 2 {
		t.Fatalf("Forget did not force recompute: v=%d calls=%d", v, calls)
	}
	g.Forget("absent") // no-op

	// Forget must not disturb an in-flight call.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := g.Do("flight", func() (int, error) {
			close(started)
			<-release
			return 9, nil
		})
		done <- v
	}()
	<-started
	g.Forget("flight")
	close(release)
	if v := <-done; v != 9 {
		t.Fatalf("in-flight waiter got %d after Forget", v)
	}
	if v, ok := g.Peek("flight"); !ok || v != 9 {
		t.Fatalf("in-flight call evicted by Forget: %d %v", v, ok)
	}
}

func TestDeriveSeeds(t *testing.T) {
	a := DeriveSeeds(1, 8)
	b := DeriveSeeds(1, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("derivation not deterministic")
		}
	}
	if prefix := DeriveSeeds(1, 3); prefix[0] != a[0] || prefix[2] != a[2] {
		t.Fatal("derivation not position-stable")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate derived seed")
		}
		seen[s] = true
	}
	if other := DeriveSeeds(2, 1); other[0] == a[0] {
		t.Fatal("different bases derived the same first seed")
	}
}

func TestReplicate(t *testing.T) {
	seeds := DeriveSeeds(5, 4)
	got, err := Replicate(New(4), 5, 4, func(rep int, seed uint64) (uint64, error) {
		if seed != seeds[rep] {
			t.Errorf("rep %d seed %d, want %d", rep, seed, seeds[rep])
		}
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != seeds[i] {
			t.Fatalf("results out of replicate order: %v", got)
		}
	}
}

func TestMapCtxPanicBecomesError(t *testing.T) {
	// A panicking task must surface as a *PanicError from MapCtx — on both
	// the serial and the concurrent path — never unwind into the caller.
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(context.Background(), New(workers), 4, func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				panic("boom at task 2")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "boom at task 2" {
			t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "task panic") {
			t.Fatalf("workers=%d: error %q lacks the stack", workers, pe.Error())
		}
	}
}

func TestMapCtxPanicDoesNotPoisonPool(t *testing.T) {
	// After a panic the pool keeps working for subsequent calls.
	p := New(2)
	if _, err := MapCtx(context.Background(), p, 2, func(ctx context.Context, i int) (int, error) {
		panic("first call dies")
	}); err == nil {
		t.Fatal("panicking call reported success")
	}
	got, err := MapCtx(context.Background(), p, 3, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 4 {
		t.Fatalf("results %v", got)
	}
}
