package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO tie-break broken: order[%d]=%d", i, v)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(2.5, func() { at = s.Now() })
	s.Run()
	if at != 2.5 {
		t.Fatalf("Now inside event = %v, want 2.5", at)
	}
	if s.Now() != 2.5 {
		t.Fatalf("final Now = %v, want 2.5", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending before run")
	}
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelInsideEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(2, func() { fired = true })
	s.At(1, func() { e.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=1 still fired at t=2")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestNonFiniteTimePanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheduling at %v did not panic", bad)
				}
			}()
			s.At(bad, func() {})
		}()
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v after RunUntil(3)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v after RunUntil(10), want 10 (idle advance)", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("processed %d events after Stop at 4", count)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var times []Time
	tk := s.NewTicker(0.5, func() {
		times = append(times, s.Now())
		if len(times) == 4 {
			// cancel from inside the callback
			return
		}
	})
	s.At(2.1, func() { tk.Cancel() })
	s.Run()
	want := []Time{0.5, 1.0, 1.5, 2.0}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerCancelInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.NewTicker(1, func() {
		count++
		if count == 2 {
			tk.Cancel()
		}
	})
	s.RunUntil(100)
	if count != 2 {
		t.Fatalf("ticker fired %d times after self-cancel at 2", count)
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	f := func(steps uint16) bool {
		for i := 0; i < int(steps%256)+1; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(3)
	const rate = 200.0 // paper's Poisson arrival rate, flows/sec
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestParetoMinAndMean(t *testing.T) {
	r := NewRNG(4)
	// paper's content sizes: mean 500KB, shape 1.6
	const alpha = 1.6
	const mean = 500e3
	xm := mean * (alpha - 1) / alpha
	n := 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto produced %v < xm %v", v, xm)
		}
		sum += v
	}
	got := sum / float64(n)
	// heavy-tailed: generous tolerance
	if got < 0.7*mean || got > 1.6*mean {
		t.Fatalf("Pareto sample mean %v too far from %v", got, mean)
	}
}

func TestGaussMoments(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Gauss()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Gauss mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Gauss variance = %v", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(6)
	f := func(n uint8) bool {
		m := int(n%32) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
}
