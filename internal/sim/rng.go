package sim

import "math"

// RNG is a deterministic SplitMix64-based pseudo-random generator.
//
// We deliberately avoid math/rand's global state: every component that needs
// randomness (workload generators, random server selection, ECMP hashing
// jitter) receives its own RNG derived from the experiment seed, so results
// are reproducible regardless of package initialisation order or map
// iteration, and two components never perturb each other's streams.
type RNG struct {
	state uint64
	// cached second normal variate for Box-Muller
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded with seed. Seed zero is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator. The constant is the golden
// ratio increment used by SplitMix64; mixing in a label keeps streams for
// different subsystems disjoint even with equal seeds.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9E3779B97F4A7C15))
}

// Uint64 returns the next 64 uniformly random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exp returns an exponential variate with the given rate (events per
// second). Used for Poisson arrival processes.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// Mean is xm*alpha/(alpha-1) for alpha > 1; the paper's workload uses
// mean 500KB with shape 1.6, i.e. xm = mean*(alpha-1)/alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("sim: Pareto requires positive xm and alpha")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Gauss returns a standard normal variate (Box-Muller).
func (r *RNG) Gauss() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// LogNormal returns exp(mu + sigma*Z).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Gauss())
}
