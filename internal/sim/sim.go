// Package sim provides the discrete-event simulation core used by every
// SCDA substrate: a time-ordered event loop, timers, and a deterministic
// pseudo-random number generator so that every experiment is reproducible
// from a seed.
//
// The engine is single-threaded by design. Datacenter simulations of the
// scale used in the SCDA paper (thousands of flows, millions of packet
// events) are dominated by heap operations and cache behaviour, not by
// parallelism; a single goroutine with a binary heap is both faster and
// easier to make deterministic than a parallel event queue. Parallelism in
// this repository lives one level up: independent experiment runs (one per
// figure, one per seed) execute concurrently.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in seconds. float64 seconds keeps the arithmetic
// in the paper's units (rates in bits/sec, intervals in sec) direct.
type Time = float64

// Event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (FIFO tie-break via sequence numbers), which keeps
// runs deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

// At returns the scheduled firing time.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending-event heap.
type Simulator struct {
	now     Time
	seq     uint64
	heap    eventHeap
	running bool
	stopped bool

	// Processed counts events executed since construction; useful for
	// progress reporting and for benchmark metrics (events/sec).
	Processed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Len returns the number of queued (possibly cancelled) events.
func (s *Simulator) Len() int { return len(s.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic bug in the caller, and silently clamping would
// corrupt causality.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue empties or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= end, then sets the clock to end if
// the queue drained early (so that successive RunUntil calls advance the
// clock monotonically even through idle periods).
func (s *Simulator) RunUntil(end Time) {
	if s.running {
		panic("sim: RunUntil re-entered")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.heap) > 0 && !s.stopped {
		e := s.heap[0]
		if e.at > end {
			break
		}
		heap.Pop(&s.heap)
		if e.dead {
			continue
		}
		s.now = e.at
		s.Processed++
		e.fn()
	}
	if !s.stopped && !math.IsInf(end, 1) && s.now < end {
		s.now = end
	}
}

// Ticker invokes fn every period seconds, starting at now+period, until
// Cancel is called. It is the building block for the RM/RA control loops
// (one tick per control interval τ).
type Ticker struct {
	sim    *Simulator
	period Time
	fn     func()
	ev     *Event
	done   bool
}

// NewTicker starts a repeating callback. period must be positive.
func (s *Simulator) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.sim.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.schedule()
		}
	})
}

// Cancel stops the ticker.
func (t *Ticker) Cancel() {
	t.done = true
	t.ev.Cancel()
}
