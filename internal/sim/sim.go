// Package sim provides the discrete-event simulation core used by every
// SCDA substrate: a time-ordered event loop, timers, and a deterministic
// pseudo-random number generator so that every experiment is reproducible
// from a seed.
//
// The engine is single-threaded by design. Datacenter simulations of the
// scale used in the SCDA paper (thousands of flows, millions of packet
// events) are dominated by heap operations and cache behaviour, not by
// parallelism; a single goroutine with an index heap is both faster and
// easier to make deterministic than a parallel event queue. Parallelism in
// this repository lives one level up: independent experiment runs (one per
// figure, one per seed) execute concurrently.
//
// The event queue is allocation-free in steady state: event state lives in
// a flat arena owned by the Simulator, recycled through a free list, and
// ordered by a 4-ary heap of arena indices. A 4-ary heap does the same
// comparisons-per-level work as a binary heap but halves the tree depth,
// which matters when every sift touches the arena; events with equal time
// fire in the order they were scheduled (FIFO tie-break via sequence
// numbers), which keeps runs deterministic.
package sim

import (
	"fmt"
	"math"
)

// Time is simulation time in seconds. float64 seconds keeps the arithmetic
// in the paper's units (rates in bits/sec, intervals in sec) direct.
type Time = float64

// eventSlot is the arena-resident state of one scheduled callback. Slots
// are recycled: gen increments on every reuse so stale Event handles can
// detect that their slot now belongs to a different logical event.
type eventSlot struct {
	at    Time
	seq   uint64
	fn    func()
	fnArg func(any)
	arg   any
	gen   uint32
	idx   int32 // position in the heap, -1 when not queued
}

// Event is a cancellable handle to a scheduled callback. It is a small
// value (no heap allocation per schedule); the zero Event is valid and
// behaves like an event that already fired: Cancel is a no-op and Pending
// reports false. Handles stay safe after their event fires or is
// cancelled — the underlying slot's generation changes on reuse, so a
// stale handle can never affect a later event.
type Event struct {
	s   *Simulator
	id  int32
	gen uint32
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
//
//scda:noalloc
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	slot := &e.s.arena[e.id]
	if slot.gen != e.gen || slot.idx < 0 {
		return
	}
	e.s.remove(slot.idx)
	e.s.recycle(e.id)
}

// Pending reports whether the event is still queued and not cancelled.
//
//scda:noalloc
func (e Event) Pending() bool {
	if e.s == nil {
		return false
	}
	slot := &e.s.arena[e.id]
	return slot.gen == e.gen && slot.idx >= 0
}

// At returns the scheduled firing time, or NaN if the event has already
// fired or been cancelled.
func (e Event) At() Time {
	if !e.Pending() {
		return math.NaN()
	}
	return e.s.arena[e.id].at
}

// Simulator owns the virtual clock, the event arena and the pending-event
// heap.
type Simulator struct {
	now     Time
	seq     uint64
	arena   []eventSlot
	heap    []int32 // 4-ary min-heap of arena indices
	free    []int32 // recycled arena indices
	running bool
	stopped bool

	// Processed counts events executed since construction; useful for
	// progress reporting and for benchmark metrics (events/sec).
	Processed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Len returns the number of queued events.
func (s *Simulator) Len() int { return len(s.heap) }

// alloc takes a slot from the free list (or grows the arena), stamps it
// with t and the next FIFO sequence number, and returns its index.
//
//scda:noalloc steady state: the arena append is amortized pool growth
func (s *Simulator) alloc(t Time) int32 {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	var id int32
	if k := len(s.free); k > 0 {
		id = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		s.arena = append(s.arena, eventSlot{})
		id = int32(len(s.arena) - 1)
	}
	slot := &s.arena[id]
	slot.at = t
	slot.seq = s.seq
	s.seq++
	return id
}

// recycle returns a slot to the free list. Bumping gen invalidates every
// outstanding handle to the slot's previous occupant.
//
//scda:noalloc
func (s *Simulator) recycle(id int32) {
	slot := &s.arena[id]
	slot.gen++
	slot.fn = nil
	slot.fnArg = nil
	slot.arg = nil
	slot.idx = -1
	s.free = append(s.free, id)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic bug in the caller, and silently clamping would
// corrupt causality.
//
//scda:noalloc
func (s *Simulator) At(t Time, fn func()) Event {
	id := s.alloc(t)
	s.arena[id].fn = fn
	s.push(id)
	return Event{s: s, id: id, gen: s.arena[id].gen}
}

// AtArg schedules fn(arg) to run at absolute time t. It exists so hot
// paths (one event per packet) can reuse a single long-lived callback and
// pass per-event state through arg instead of allocating a closure per
// schedule; boxing a pointer into arg does not allocate.
//
//scda:noalloc
func (s *Simulator) AtArg(t Time, fn func(any), arg any) Event {
	id := s.alloc(t)
	slot := &s.arena[id]
	slot.fnArg = fn
	slot.arg = arg
	s.push(id)
	return Event{s: s, id: id, gen: slot.gen}
}

// After schedules fn to run d seconds from now.
//
//scda:noalloc
func (s *Simulator) After(d Time, fn func()) Event {
	return s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg) to run d seconds from now.
//
//scda:noalloc
func (s *Simulator) AfterArg(d Time, fn func(any), arg any) Event {
	return s.AtArg(s.now+d, fn, arg)
}

// less orders heap entries by (time, sequence): FIFO among equal times.
//
//scda:noalloc
func (s *Simulator) less(a, b int32) bool {
	sa, sb := &s.arena[a], &s.arena[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

//scda:noalloc steady state: the heap append is amortized pool growth
func (s *Simulator) push(id int32) {
	s.heap = append(s.heap, id)
	s.siftUp(len(s.heap) - 1)
}

//scda:noalloc
func (s *Simulator) siftUp(i int) {
	h := s.heap
	id := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !s.less(id, h[p]) {
			break
		}
		h[i] = h[p]
		s.arena[h[i]].idx = int32(i)
		i = p
	}
	h[i] = id
	s.arena[id].idx = int32(i)
}

//scda:noalloc
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	id := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.less(h[j], h[m]) {
				m = j
			}
		}
		if !s.less(h[m], id) {
			break
		}
		h[i] = h[m]
		s.arena[h[i]].idx = int32(i)
		i = m
	}
	h[i] = id
	s.arena[id].idx = int32(i)
}

// remove deletes the heap entry at position i (eager deletion keeps the
// heap small under timer churn — cancel/re-arm per ACK is the common case
// in the transports).
//
//scda:noalloc
func (s *Simulator) remove(i int32) {
	h := s.heap
	n := len(h) - 1
	s.arena[h[i]].idx = -1
	last := h[n]
	s.heap = h[:n]
	if int(i) == n {
		return
	}
	s.heap[i] = last
	s.arena[last].idx = i
	s.siftDown(int(i))
	s.siftUp(int(s.arena[last].idx))
}

// popMin removes and returns the earliest event's arena index.
//
//scda:noalloc
func (s *Simulator) popMin() int32 {
	h := s.heap
	top := h[0]
	s.arena[top].idx = -1
	n := len(h) - 1
	last := h[n]
	s.heap = h[:n]
	if n > 0 {
		s.heap[0] = last
		s.siftDown(0)
	}
	return top
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue empties or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= end, then sets the clock to end if
// the queue drained early (so that successive RunUntil calls advance the
// clock monotonically even through idle periods).
//
//scda:noalloc guarded by TestScheduleFireIsAllocationFree and BenchmarkEventLoop
func (s *Simulator) RunUntil(end Time) {
	if s.running {
		panic("sim: RunUntil re-entered")
	}
	s.running = true
	s.stopped = false
	//scda:alloc-ok the deferred reset is an open-coded defer (single static site), proven 0 B/op by TestScheduleFireIsAllocationFree
	defer func() { s.running = false }()
	for len(s.heap) > 0 && !s.stopped {
		top := s.heap[0]
		slot := &s.arena[top]
		if slot.at > end {
			break
		}
		s.now = slot.at
		s.Processed++
		fn, fnArg, arg := slot.fn, slot.fnArg, slot.arg
		// Pop and recycle before invoking the callback: the handle reads
		// as not-Pending inside its own callback (matching pre-arena
		// semantics), and the slot is immediately reusable by whatever
		// the callback schedules.
		s.popMin()
		s.recycle(top)
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
	}
	if !s.stopped && !math.IsInf(end, 1) && s.now < end {
		s.now = end
	}
}

// Ticker invokes fn every period seconds, starting at now+period, until
// Cancel is called. It is the building block for the RM/RA control loops
// (one tick per control interval τ). The rescheduling callback is
// allocated once at construction, so a running ticker does not allocate
// per tick.
type Ticker struct {
	sim    *Simulator
	period Time
	fn     func()
	fire   func()
	ev     Event
	done   bool
}

// NewTicker starts a repeating callback. period must be positive.
func (s *Simulator) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.fire = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.ev = t.sim.After(t.period, t.fire)
		}
	}
	t.ev = s.After(period, t.fire)
	return t
}

// Cancel stops the ticker.
func (t *Ticker) Cancel() {
	t.done = true
	t.ev.Cancel()
}
