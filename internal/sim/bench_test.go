package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventLoop measures the schedule→fire cycle of the event core.
// depth is the number of events outstanding at any moment — depth=1 is the
// pure scheduling overhead, depth=1024 exercises the heap at the occupancy
// a loaded packet simulation sees.
func BenchmarkEventLoop(b *testing.B) {
	for _, depth := range []int{1, 1024} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := New()
			fired := 0
			var tick func()
			tick = func() {
				fired++
				if fired+depth-1 < b.N {
					s.After(1, tick)
				}
			}
			for i := 0; i < depth && i < b.N; i++ {
				s.After(1, tick)
			}
			b.ReportAllocs()
			b.ResetTimer()
			s.Run()
		})
	}
}
