package sim

import "testing"

// TestScheduleFireIsAllocationFree pins the event-arena property: after
// warm-up, schedule→fire→recycle cycles (with and without AtArg payloads,
// including a cancel) do not allocate.
func TestScheduleFireIsAllocationFree(t *testing.T) {
	s := New()
	fn := func() {}
	fnArg := func(any) {}
	arg := &struct{ x int }{}
	cycle := func() {
		s.After(1, fn)
		s.AfterArg(2, fnArg, arg)
		e := s.After(3, fn)
		e.Cancel()
		s.Run()
	}
	cycle() // warm the arena, heap and free list
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("warm schedule/fire/cancel allocates %v allocs/op, want 0", allocs)
	}
}

// TestStaleHandleCannotTouchRecycledSlot verifies the generation guard: a
// handle kept across its event's firing must not cancel (or report
// pending for) the unrelated event that later reuses the slot.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	s := New()
	stale := s.At(1, func() {})
	s.Run() // fires; slot recycled
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}
	fired := false
	fresh := s.At(2, func() { fired = true }) // reuses the recycled slot
	stale.Cancel()                            // must be a no-op
	if !fresh.Pending() {
		t.Fatal("stale Cancel killed an unrelated event in the reused slot")
	}
	s.Run()
	if !fired {
		t.Fatal("event in reused slot did not fire")
	}
}

// TestCancelRemovesFromHeap verifies eager cancellation: cancelled events
// leave the queue immediately instead of lingering until their deadline,
// so timer-churn workloads (cancel/re-arm per ACK) keep the heap small.
func TestCancelRemovesFromHeap(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, s.At(Time(i+1), func() {}))
	}
	for _, e := range evs[:50] {
		e.Cancel()
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d after cancelling 50 of 100, want 50", s.Len())
	}
	s.Run()
	if s.Processed != 50 {
		t.Fatalf("Processed = %d, want 50", s.Processed)
	}
}
