// Package scdatp implements SCDA's data transport: a rate-paced
// sliding-window protocol whose window is set from the explicit rates
// allocated by the RM/RA plane rather than probed by loss, per section
// VIII of the paper.
//
// Every control interval τ (section VIII-D) the sender re-reads its flow's
// allocated bottleneck rate Rⱼ from its resource monitor and sets
//
//	cwnd = Rⱼ × RTT
//
// while the receiver-side constraint (rcvw = downlink rate × RTT) is
// already folded into Rⱼ, which the allocator computes as the minimum over
// the flow's full path including both access links and the endpoint
// CPU/disk limits (eq. 4). This enforces the allocation "without changing
// routers, switches and the TCP/IP stack": it is plain window flow control.
//
// Packets are paced at the allocated rate rather than burst window-at-a-
// time, so queues stay near empty even while the allocator is converging
// after arrivals or departures. Loss is therefore rare; a cumulative-ACK
// retransmission scheme (dup-ACK retransmit plus a go-back-N RTO safety
// net, with no window reduction — the window is rate-controlled, not
// loss-controlled) handles the residue.
package scdatp

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// RateProvider supplies per-flow allocated rates; *ratealloc.Controller
// implements it.
type RateProvider interface {
	FlowRate(netsim.FlowID) float64
}

// Config tunes the transport.
type Config struct {
	// Tau is the window-refresh control interval (section VIII-D); match
	// the allocator's τ.
	Tau float64
	// InitialRTT seeds cwnd before the first measurement; the paper has
	// the endpoints obtain it "from the time stamp values in the headers".
	InitialRTT float64
	// MinRTO floors the retransmission safety-net timer.
	MinRTO float64
	// MaxWindowSegments caps the window (memory guard).
	MaxWindowSegments int64
	// WindowHeadroom multiplies the rate×RTT window so pacing, not the
	// window edge, is the normal constraint. 1.2 by default.
	WindowHeadroom float64
}

// DefaultConfig matches the fig. 6 fabric: ~100 ms worst-case RTTs.
func DefaultConfig() Config {
	return Config{Tau: 0.05, InitialRTT: 0.06, MinRTO: 0.2, MaxWindowSegments: 1 << 16, WindowHeadroom: 1.2}
}

// Flow transfers Size bytes from Src to Dst at the allocated rate.
type Flow struct {
	ID   netsim.FlowID
	Src  topology.NodeID
	Dst  topology.NodeID
	Size int64

	// OnComplete fires once with the flow completion time.
	OnComplete func(fct sim.Time)

	net   *netsim.Network
	s     *sim.Simulator
	cfg   Config
	rates RateProvider
	hash  uint64

	start   sim.Time
	segs    int64
	nextSeq int64
	highAck int64
	dupAcks int
	done    bool

	srtt   float64
	window int64

	// pacing state
	nextSend sim.Time
	sendEv   sim.Event
	sendFire func()

	ticker      *sim.Ticker
	timer       sim.Event
	onTimeoutFn func()

	srcStack *transport.Stack
	dstStack *transport.Stack

	rcvd    map[int64]bool
	cumRcvd int64

	// Retransmits counts re-sent segments (diagnostics; should stay near
	// zero when the allocator keeps queues empty).
	Retransmits int64
}

type senderEP struct{ f *Flow }
type receiverEP struct{ f *Flow }

func (e *senderEP) Receive(p *netsim.Packet)   { e.f.onAck(p) }
func (e *receiverEP) Receive(p *netsim.Packet) { e.f.onData(p) }

// Start begins the transfer. The flow must already be registered with the
// rate allocator so that rates.FlowRate(f.ID) returns its allocation.
func Start(s *sim.Simulator, net *netsim.Network, rates RateProvider, srcStack, dstStack *transport.Stack, f *Flow, cfg Config) *Flow {
	if f.Size <= 0 {
		panic("scdatp: flow size must be positive")
	}
	if cfg.Tau <= 0 || cfg.InitialRTT <= 0 {
		panic("scdatp: Tau and InitialRTT must be positive")
	}
	if cfg.WindowHeadroom <= 0 {
		cfg.WindowHeadroom = 1.2
	}
	f.net = net
	f.s = s
	f.cfg = cfg
	f.rates = rates
	f.hash = transport.Hash(f.ID)
	f.start = s.Now()
	f.segs = transport.Segments(f.Size)
	f.srtt = cfg.InitialRTT
	f.rcvd = make(map[int64]bool)
	f.nextSend = s.Now()
	f.sendFire = f.firePaced // one closure per flow, not per paced send
	f.onTimeoutFn = f.onTimeout
	f.srcStack, f.dstStack = srcStack, dstStack
	srcStack.Bind(f.ID, &senderEP{f})
	dstStack.Bind(f.ID, &receiverEP{f})

	f.refreshWindow()
	// section VIII-D: "these two cwnd updates ... are done by the RM of
	// each BS every control interval τ"
	f.ticker = s.NewTicker(cfg.Tau, func() {
		f.refreshWindow()
		f.pump()
	})
	f.pump()
	f.armTimer()
	return f
}

// rate returns the current allocated rate, floored to keep pacing finite.
func (f *Flow) rate() float64 {
	r := f.rates.FlowRate(f.ID)
	if r < 1e3 {
		r = 1e3
	}
	return r
}

// refreshWindow sets cwnd = rate × RTT (in segments, at least 2).
func (f *Flow) refreshWindow() {
	bitsInFlight := f.rate() * f.srtt * f.cfg.WindowHeadroom
	w := int64(bitsInFlight / (8 * transport.MSS))
	if w < 2 {
		w = 2
	}
	if w > f.cfg.MaxWindowSegments {
		w = f.cfg.MaxWindowSegments
	}
	f.window = w
}

// Window returns the current window in segments (diagnostics).
func (f *Flow) Window() int64 { return f.window }

// SRTT returns the smoothed RTT estimate (diagnostics).
func (f *Flow) SRTT() float64 { return f.srtt }

// Done reports completion.
func (f *Flow) Done() bool { return f.done }

// RemainingBytes returns the bytes not yet cumulatively acknowledged —
// the live job size the implicit-SJF scheduler weighs flows by.
func (f *Flow) RemainingBytes() int64 {
	rem := f.Size - f.highAck*transport.MSS
	if rem < 0 {
		rem = 0
	}
	return rem
}

func (f *Flow) flight() int64 { return f.nextSeq - f.highAck }

// pump schedules the next paced transmission if the window allows one.
func (f *Flow) pump() {
	if f.done || f.sendEv.Pending() {
		return
	}
	if f.nextSeq >= f.segs || f.flight() >= f.window {
		return
	}
	delay := f.nextSend - f.s.Now()
	if delay < 0 {
		delay = 0
	}
	f.sendEv = f.s.After(delay, f.sendFire)
}

// firePaced transmits one segment at its paced slot, then re-arms pump.
func (f *Flow) firePaced() {
	if f.done || f.nextSeq >= f.segs || f.flight() >= f.window {
		return
	}
	seq := f.nextSeq
	f.nextSeq++
	f.sendSeg(seq, false)
	// pace: next transmission one serialization interval later at
	// the allocated rate
	gap := float64(transport.SegmentWire(f.Size, seq)*8) / f.rate()
	now := f.s.Now()
	if f.nextSend < now {
		f.nextSend = now
	}
	f.nextSend += gap
	f.pump()
}

func (f *Flow) sendSeg(seq int64, retransmit bool) {
	if retransmit {
		f.Retransmits++
	}
	p := f.net.NewPacket()
	p.Flow = f.ID
	p.Src = f.Src
	p.Dst = f.Dst
	p.Seq = seq
	p.Size = transport.SegmentWire(f.Size, seq)
	p.Hash = f.hash
	p.SentAt = f.s.Now()
	f.net.Send(p)
}

func (f *Flow) onData(p *netsim.Packet) {
	if p.Seq >= f.cumRcvd && !f.rcvd[p.Seq] {
		f.rcvd[p.Seq] = true
		for f.rcvd[f.cumRcvd] {
			delete(f.rcvd, f.cumRcvd)
			f.cumRcvd++
		}
	}
	// echo the data packet's send timestamp so the sender can measure RTT
	// from the ACK ("the receiving cloud server can obtain the RTT from
	// the time stamp values in the headers", section VIII-A step 8)
	ack := f.net.NewPacket()
	ack.Flow = f.ID
	ack.Src = f.Dst
	ack.Dst = f.Src
	ack.Ack = true
	ack.AckSeq = f.cumRcvd
	ack.Size = transport.AckBytes
	ack.Hash = f.hash
	ack.SentAt = p.SentAt
	f.net.Send(ack)
}

func (f *Flow) onAck(p *netsim.Packet) {
	if f.done || !p.Ack {
		return
	}
	// RTT sample from the echoed timestamp
	if sample := f.s.Now() - p.SentAt; sample > 0 {
		const alpha = 0.125
		f.srtt = (1-alpha)*f.srtt + alpha*sample
	}
	switch {
	case p.AckSeq > f.highAck:
		f.highAck = p.AckSeq
		f.dupAcks = 0
		f.armTimer()
	case p.AckSeq == f.highAck:
		f.dupAcks++
		if f.dupAcks == 3 {
			f.dupAcks = 0
			f.sendSeg(f.highAck, true) // retransmit the hole, no rate cut
		}
	}
	if f.highAck >= f.segs {
		f.complete()
		return
	}
	f.pump()
}

func (f *Flow) rto() float64 {
	return math.Max(2*f.srtt, f.cfg.MinRTO)
}

func (f *Flow) armTimer() {
	f.timer.Cancel()
	if f.done {
		return
	}
	f.timer = f.s.After(f.rto(), f.onTimeoutFn)
}

func (f *Flow) onTimeout() {
	if f.done {
		return
	}
	// go-back-N: rewind to the hole so pacing re-sends everything
	// outstanding (receiver deduplicates); guarantees progress even after
	// pathological multi-loss.
	f.Retransmits++
	f.nextSeq = f.highAck
	f.nextSend = f.s.Now()
	f.armTimer()
	f.pump()
}

func (f *Flow) complete() {
	if f.done {
		return
	}
	f.done = true
	f.ticker.Cancel()
	f.timer.Cancel()
	f.sendEv.Cancel()
	f.srcStack.Unbind(f.ID)
	f.dstStack.Unbind(f.ID)
	if f.OnComplete != nil {
		f.OnComplete(f.s.Now() - f.start)
	}
}
