package scdatp

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/ratealloc"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// rig wires a chain topology, a live allocator ticking every τ, and stacks.
type rig struct {
	s    *sim.Simulator
	net  *netsim.Network
	ctrl *ratealloc.Controller
	a, b topology.NodeID
	sa   *transport.Stack
	sb   *transport.Stack
	path []topology.LinkID
}

func newRig(t *testing.T, capacity, delay float64) *rig {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	sw := g.AddNode(topology.Switch, "sw", 1)
	b := g.AddNode(topology.Host, "b", 0)
	l1 := g.AddDuplex(a, sw, capacity, delay, 1)
	l2 := g.AddDuplex(sw, b, capacity, delay, 1)
	s := sim.New()
	n := netsim.New(s, g, netsim.DefaultConfig())
	ctrl, err := ratealloc.NewController(g, n, ratealloc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s.NewTicker(ctrl.Params.Tau, func() { ctrl.Tick(s.Now()) })
	return &rig{s: s, net: n, ctrl: ctrl, a: a, b: b,
		sa: transport.NewStack(n, a), sb: transport.NewStack(n, b),
		path: []topology.LinkID{l1, l2}}
}

func (r *rig) startFlow(t *testing.T, id netsim.FlowID, size int64, onDone func(sim.Time)) *Flow {
	t.Helper()
	if err := r.ctrl.Register(&ratealloc.Flow{ID: id, Path: r.path}); err != nil {
		t.Fatal(err)
	}
	f := &Flow{ID: id, Src: r.a, Dst: r.b, Size: size, OnComplete: func(d sim.Time) {
		r.ctrl.Unregister(id)
		if onDone != nil {
			onDone(d)
		}
	}}
	return Start(r.s, r.net, r.ctrl, r.sa, r.sb, f, DefaultConfig())
}

func TestSingleFlowCompletes(t *testing.T) {
	r := newRig(t, 100e6, 5e-3)
	var fct sim.Time = -1
	r.startFlow(t, 1, 1_000_000, func(d sim.Time) { fct = d })
	r.s.RunUntil(60)
	if fct < 0 {
		t.Fatal("flow did not complete")
	}
	ideal := 1_000_000 * 8 / (0.95 * 100e6)
	if fct < ideal {
		t.Fatalf("fct %v beats allocated rate %v", fct, ideal)
	}
	if fct > 4*ideal {
		t.Fatalf("fct %v, want ≲ 4× ideal %v", fct, ideal)
	}
}

func TestRateEnforcement(t *testing.T) {
	// a 10 Mb/s bottleneck: a 1 MB transfer should take ≈ 8Mb/9.5Mb ≈ 0.84s
	r := newRig(t, 10e6, 2e-3)
	var fct sim.Time = -1
	r.startFlow(t, 1, 1_000_000, func(d sim.Time) { fct = d })
	r.s.RunUntil(120)
	if fct < 0 {
		t.Fatal("no completion")
	}
	ideal := 1_000_000 * 8 / (0.95 * 10e6)
	if fct < ideal || fct > 1.5*ideal {
		t.Fatalf("fct = %v, want within [%v, %v]", fct, ideal, 1.5*ideal)
	}
}

func TestNoLossUnderAllocation(t *testing.T) {
	r := newRig(t, 50e6, 2e-3)
	done := 0
	for i := 0; i < 4; i++ {
		r.startFlow(t, netsim.FlowID(i+1), 2_000_000, func(d sim.Time) { done++ })
	}
	r.s.RunUntil(120)
	if done != 4 {
		t.Fatalf("%d of 4 completed", done)
	}
	if r.net.TotalDrops > 0 {
		t.Fatalf("%d drops despite explicit rate control", r.net.TotalDrops)
	}
}

func TestFairSharing(t *testing.T) {
	r := newRig(t, 40e6, 2e-3)
	var fcts []float64
	for i := 0; i < 4; i++ {
		r.startFlow(t, netsim.FlowID(i+1), 1_000_000, func(d sim.Time) { fcts = append(fcts, d) })
	}
	r.s.RunUntil(120)
	if len(fcts) != 4 {
		t.Fatalf("completed %d", len(fcts))
	}
	// equal sizes, equal start, equal rate → near-equal FCTs
	min, max := fcts[0], fcts[0]
	for _, f := range fcts {
		min = math.Min(min, f)
		max = math.Max(max, f)
	}
	if max/min > 1.25 {
		t.Fatalf("unfair FCT spread: %v", fcts)
	}
	// 4 flows × 8Mb over 9.5Mb/s effective each: ≈ 3.4s
	ideal := 4 * 1_000_000 * 8 / (0.95 * 40e6)
	if max > 1.6*ideal {
		t.Fatalf("slowest fct %v, want ≲ 1.6× %v", max, ideal)
	}
}

func TestWindowTracksRateChanges(t *testing.T) {
	r := newRig(t, 100e6, 5e-3)
	f := r.startFlow(t, 1, 50_000_000, nil)
	r.s.RunUntil(1)
	soloWindow := f.Window()
	// a competitor halves the rate; the window must shrink within ~2τ
	r.startFlow(t, 2, 50_000_000, nil)
	r.s.RunUntil(1.5)
	sharedWindow := f.Window()
	if sharedWindow >= soloWindow {
		t.Fatalf("window did not shrink: solo=%d shared=%d", soloWindow, sharedWindow)
	}
	ratio := float64(soloWindow) / float64(sharedWindow)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("window ratio = %v, want ≈ 2", ratio)
	}
}

func TestShortFlowLatency(t *testing.T) {
	// one-segment flow: FCT ≈ one RTT (no slow start to climb through —
	// the core of the paper's AFCT advantage for small content)
	r := newRig(t, 100e6, 5e-3)
	var fct sim.Time = -1
	r.startFlow(t, 1, 1000, func(d sim.Time) { fct = d })
	r.s.RunUntil(10)
	if fct < 0 {
		t.Fatal("no completion")
	}
	rtt := 4 * 5e-3 // 2 links each way
	if fct < rtt || fct > rtt+0.01 {
		t.Fatalf("1-segment fct = %v, want ≈ RTT %v", fct, rtt)
	}
}

func TestSRTTConverges(t *testing.T) {
	r := newRig(t, 100e6, 10e-3)
	f := r.startFlow(t, 1, 10_000_000, nil)
	r.s.RunUntil(2)
	// true RTT = 4×10ms plus small tx/queueing
	if f.SRTT() < 0.040 || f.SRTT() > 0.055 {
		t.Fatalf("srtt = %v, want ≈ 0.04", f.SRTT())
	}
}

func TestRecoveryFromInducedLoss(t *testing.T) {
	// sabotage: shrink queue so the initial optimistic window overflows
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	sw := g.AddNode(topology.Switch, "sw", 1)
	b := g.AddNode(topology.Host, "b", 0)
	l1 := g.AddDuplex(a, sw, 5e6, 2e-3, 1)
	g.AddDuplex(sw, b, 100e6, 2e-3, 1)
	s := sim.New()
	cfg := netsim.DefaultConfig()
	cfg.QueueBytes = 8000 // ~5 packets
	n := netsim.New(s, g, cfg)
	ctrl, err := ratealloc.NewController(g, n, ratealloc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s.NewTicker(ctrl.Params.Tau, func() { ctrl.Tick(s.Now()) })
	sa, sb := transport.NewStack(n, a), transport.NewStack(n, b)
	lnk := topology.LinkID(l1)
	_ = lnk
	ctrl.Register(&ratealloc.Flow{ID: 1, Path: []topology.LinkID{l1}})
	var fct sim.Time = -1
	f := Start(s, n, ctrl, sa, sb, &Flow{ID: 1, Src: a, Dst: b, Size: 400_000,
		OnComplete: func(d sim.Time) { fct = d }}, DefaultConfig())
	s.RunUntil(300)
	if fct < 0 {
		t.Fatalf("flow never recovered from loss (retransmits=%d)", f.Retransmits)
	}
}

func TestOnCompleteOnce(t *testing.T) {
	r := newRig(t, 50e6, 1e-3)
	calls := 0
	r.startFlow(t, 1, 100_000, func(d sim.Time) { calls++ })
	r.s.RunUntil(30)
	if calls != 1 {
		t.Fatalf("OnComplete ×%d", calls)
	}
	if r.sa.Bound() != 0 || r.sb.Bound() != 0 {
		t.Fatal("stacks not unbound")
	}
}

func TestZeroSizePanics(t *testing.T) {
	r := newRig(t, 50e6, 1e-3)
	defer func() {
		if recover() == nil {
			t.Fatal("zero size accepted")
		}
	}()
	Start(r.s, r.net, r.ctrl, r.sa, r.sb, &Flow{ID: 1, Src: r.a, Dst: r.b, Size: 0}, DefaultConfig())
}

func TestManyFlowsConserveCapacity(t *testing.T) {
	// aggregate goodput of 8 concurrent flows should approach α×capacity
	r := newRig(t, 80e6, 2e-3)
	const size = 1_500_000
	done := 0
	var last sim.Time
	for i := 0; i < 8; i++ {
		r.startFlow(t, netsim.FlowID(i+1), size, func(d sim.Time) {
			done++
			last = r.s.Now()
		})
	}
	r.s.RunUntil(300)
	if done != 8 {
		t.Fatalf("completed %d/8", done)
	}
	goodput := float64(8*size*8) / last
	if goodput < 0.80*80e6 {
		t.Fatalf("aggregate goodput %v < 80%% of capacity", goodput)
	}
}

func BenchmarkSCDATransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := topology.NewGraph()
		a := g.AddNode(topology.Host, "a", 0)
		sw := g.AddNode(topology.Switch, "sw", 1)
		c := g.AddNode(topology.Host, "b", 0)
		l1 := g.AddDuplex(a, sw, 100e6, 1e-3, 1)
		l2 := g.AddDuplex(sw, c, 100e6, 1e-3, 1)
		s := sim.New()
		n := netsim.New(s, g, netsim.DefaultConfig())
		ctrl, _ := ratealloc.NewController(g, n, ratealloc.DefaultParams())
		s.NewTicker(ctrl.Params.Tau, func() { ctrl.Tick(s.Now()) })
		ctrl.Register(&ratealloc.Flow{ID: 1, Path: []topology.LinkID{l1, l2}})
		sa, sb := transport.NewStack(n, a), transport.NewStack(n, c)
		done := false
		Start(s, n, ctrl, sa, sb, &Flow{ID: 1, Src: a, Dst: c, Size: 1_000_000,
			OnComplete: func(d sim.Time) { done = true; s.Stop() }}, DefaultConfig())
		s.RunUntil(60)
		if !done {
			b.Fatal("incomplete")
		}
	}
}

func TestRemainingBytesDecreases(t *testing.T) {
	r := newRig(t, 50e6, 2e-3)
	f := r.startFlow(t, 1, 1_000_000, nil)
	if got := f.RemainingBytes(); got != 1_000_000 {
		t.Fatalf("initial remaining = %d", got)
	}
	r.s.RunUntil(0.1)
	mid := f.RemainingBytes()
	if mid >= 1_000_000 {
		t.Fatal("remaining did not decrease")
	}
	r.s.RunUntil(60)
	if got := f.RemainingBytes(); got != 0 {
		t.Fatalf("final remaining = %d", got)
	}
}
