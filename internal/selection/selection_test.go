package selection

import (
	"errors"
	"testing"

	"repro/internal/content"
	"repro/internal/power"
	"repro/internal/ratealloc"
	"repro/internal/sim"
	"repro/internal/topology"
)

type fakeReader struct{}

func (fakeReader) QueueBits(topology.LinkID) float64   { return 0 }
func (fakeReader) ArrivedBits(topology.LinkID) float64 { return 0 }

type rig struct {
	tt   *topology.ThreeTier
	ctrl *ratealloc.Controller
	h    *ratealloc.Hierarchy
}

func newRig(t *testing.T) *rig {
	t.Helper()
	tt, err := topology.BuildThreeTier(topology.DefaultThreeTier())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ratealloc.NewController(tt.Graph, fakeReader{}, ratealloc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	servers := map[topology.NodeID]bool{}
	for _, s := range tt.Servers {
		servers[s] = true
	}
	h, err := ratealloc.NewHierarchy(ctrl, tt.Graph, servers)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Tick(0)
	h.Update()
	return &rig{tt: tt, ctrl: ctrl, h: h}
}

// load adds n unit flows on a directed link and refreshes metrics.
func (r *rig) load(t *testing.T, link topology.LinkID, n int, idBase int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.ctrl.Register(&ratealloc.Flow{
			ID:   ratealloc.FlowID(idBase + i),
			Path: []topology.LinkID{link},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		r.ctrl.Tick(0)
	}
	r.h.Update()
}

func TestSemiInteractiveWriteAvoidsLoadedDownlink(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	// swamp server 0's downlink
	down := r.tt.Graph.Links[r.tt.UplinkOf[r.tt.Servers[0]]].Reverse
	r.load(t, down, 10, 1000)
	got, err := p.PickWrite(r.h.Root(), content.SemiInteractive, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == r.tt.Servers[0] {
		t.Fatal("write placed on the congested server")
	}
}

func TestInteractiveUsesMinMetric(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	// all servers CPU-limited except one
	for _, s := range r.tt.Servers {
		r.ctrl.SetHostOther(s, 1e6)
	}
	fast := r.tt.Servers[9]
	r.ctrl.SetHostOther(fast, 1e9)
	r.ctrl.Tick(0)
	r.h.Update()
	got, err := p.PickWrite(r.h.Root(), content.Interactive, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != fast {
		t.Fatalf("interactive pick = %d, want %d", got, fast)
	}
}

func TestReplicaExcludesPrimary(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	primary := r.tt.Servers[0]
	got, err := p.PickReplica(r.h.Root(), content.SemiInteractive, primary, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == primary {
		t.Fatal("replica placed on the primary")
	}
}

func TestPassiveReplicaPrefersDormantCandidates(t *testing.T) {
	r := newRig(t)
	idle := 0.95 * r.tt.Spec.X
	p := &Picker{H: r.h, Rscale: idle * 0.5}
	// load every server's uplink except server 3, whose up rate stays
	// above Rscale (a dormant candidate)
	id := 1
	for i, s := range r.tt.Servers {
		if i == 3 {
			continue
		}
		r.load(t, r.tt.UplinkOf[s], 3, id*100)
		id++
	}
	got, err := p.PickReplica(r.h.Root(), content.Passive, r.tt.Servers[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != r.tt.Servers[3] {
		t.Fatalf("passive replica = %d, want dormant candidate %d", got, r.tt.Servers[3])
	}
}

func TestActiveContentAvoidsDormantCandidates(t *testing.T) {
	r := newRig(t)
	idle := 0.95 * r.tt.Spec.X
	p := &Picker{H: r.h, Rscale: idle * 0.5}
	// two dormant candidates (idle); the rest moderately loaded so their
	// up rates fall below Rscale
	for i, s := range r.tt.Servers {
		if i == 3 || i == 7 {
			continue
		}
		r.load(t, r.tt.UplinkOf[s], 3, 100*(i+1))
	}
	got, err := p.PickReplica(r.h.Root(), content.SemiInteractive, r.tt.Servers[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == r.tt.Servers[3] || got == r.tt.Servers[7] {
		t.Fatalf("active replica %d landed on a dormant candidate", got)
	}
}

func TestActiveFallsBackWhenAllDormant(t *testing.T) {
	// idle cluster with Rscale below every rate: no compliant server —
	// active content must still be placeable
	r := newRig(t)
	p := &Picker{H: r.h, Rscale: 1} // everything is a "dormant candidate"
	if _, err := p.PickWrite(r.h.Root(), content.SemiInteractive, nil, 0); err != nil {
		t.Fatalf("active content unplaceable on idle cluster: %v", err)
	}
}

func TestPowerAwareSelection(t *testing.T) {
	r := newRig(t)
	pm := power.NewModel()
	for i, s := range r.tt.Servers {
		prof := power.DefaultProfile()
		// server 5 is far more efficient
		if i == 5 {
			prof.IdleWatts, prof.PeakWatts = 40, 80
		}
		if _, err := pm.Add(s, prof); err != nil {
			t.Fatal(err)
		}
	}
	p := &Picker{H: r.h, Power: pm, PowerAware: true}
	got, err := p.PickWrite(r.h.Root(), content.SemiInteractive, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != r.tt.Servers[5] {
		t.Fatalf("power-aware pick = %d, want efficient server %d", got, r.tt.Servers[5])
	}
}

func TestFilterRespected(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	allowed := r.tt.Servers[13]
	only := func(n topology.NodeID) bool { return n == allowed }
	got, err := p.PickWrite(r.h.Root(), content.SemiInteractive, only, 0)
	if err != nil || got != allowed {
		t.Fatalf("filtered pick = %d, %v", got, err)
	}
	none := func(topology.NodeID) bool { return false }
	if _, err := p.PickWrite(r.h.Root(), content.SemiInteractive, none, 0); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("want ErrNoCandidate, got %v", err)
	}
}

func TestPickReadBestUplink(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	a, b := r.tt.Servers[0], r.tt.Servers[1]
	r.load(t, r.tt.UplinkOf[a], 8, 500)
	got, err := p.PickRead([]topology.NodeID{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("read replica = %d, want unloaded %d", got, b)
	}
	if _, err := p.PickRead(nil, 0); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("empty replicas accepted")
	}
}

func TestRackScopedSelection(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	rackRA := r.h.AncestorAt(r.tt.Servers[0], 1)
	got, err := p.PickWrite(rackRA, content.SemiInteractive, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.tt.RackOf[got] != r.tt.RackOf[r.tt.Servers[0]] {
		t.Fatal("rack-scoped pick escaped the rack")
	}
}

func TestRandomSelection(t *testing.T) {
	r := newRig(t)
	rnd := &Random{Servers: r.tt.Servers, RNG: sim.NewRNG(11)}
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 200; i++ {
		n, err := rnd.PickWrite(nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[n] = true
	}
	if len(seen) < len(r.tt.Servers)/2 {
		t.Fatalf("random selection concentrated on %d servers", len(seen))
	}
	primary := r.tt.Servers[0]
	for i := 0; i < 50; i++ {
		n, err := rnd.PickReplica(primary, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n == primary {
			t.Fatal("random replica on primary")
		}
	}
	if _, err := rnd.PickRead(nil); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("empty replica read accepted")
	}
	got, _ := rnd.PickRead([]topology.NodeID{42})
	if got != 42 {
		t.Fatal("single replica read wrong")
	}
}

func TestRandomFilterExhaustion(t *testing.T) {
	rnd := &Random{Servers: []topology.NodeID{1, 2, 3}, RNG: sim.NewRNG(5)}
	if _, err := rnd.PickWrite(func(topology.NodeID) bool { return false }); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("unsatisfiable filter accepted")
	}
	// filter admitting exactly one server must find it
	got, err := rnd.PickWrite(func(n topology.NodeID) bool { return n == 3 })
	if err != nil || got != 3 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestInteractiveFastPathUsesAggregate(t *testing.T) {
	// unfiltered, power-blind, no Rscale: PickWrite must return the
	// fig. 2 BestMin aggregate directly
	r := newRig(t)
	p := &Picker{H: r.h}
	got, err := p.PickWrite(r.h.Root(), content.Interactive, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != r.h.Root().BestMin.Server {
		t.Fatalf("fast path returned %d, aggregate says %d", got, r.h.Root().BestMin.Server)
	}
}

func TestPowerAwareWithoutModelFallsBack(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h, PowerAware: true} // Power nil: metric unchanged
	if _, err := p.PickWrite(r.h.Root(), content.SemiInteractive, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPassiveWriteIgnoresDormancyRestriction(t *testing.T) {
	// passive stage-1 writes land on the best-downlink server even when
	// it is a dormant candidate (data lands on an active server first,
	// consolidation happens at replication)
	r := newRig(t)
	p := &Picker{H: r.h, Rscale: 1} // every server "dormant"
	if _, err := p.PickWrite(r.h.Root(), content.Passive, nil, 0); err != nil {
		t.Fatalf("passive write blocked by Rscale: %v", err)
	}
}

func TestScanUpExported(t *testing.T) {
	r := newRig(t)
	p := &Picker{H: r.h}
	n, rate, err := p.ScanUp(r.h.Root(), nil, 0)
	if err != nil || rate <= 0 {
		t.Fatalf("ScanUp: %v %v %v", n, rate, err)
	}
}
