// Package selection implements SCDA's content-aware server selection
// (section VII) plus the random selection used by the RandTCP baseline.
//
// Policies by content class:
//
//   - Interactive (HWHR): pick the server with the highest min(R̂d, R̂u) —
//     interaction speed is limited by the slower direction (VII-A).
//   - Semi-interactive (HWLR/LWHR): two stages — write to the server with
//     the best down-link rate, then replicate to the server with the best
//     up-link rate so retrieval is fast (VII-B).
//   - Passive (LWLR): write to the best down-link server, then replicate
//     to a dormant server whose up-link rate exceeds the scale-down
//     threshold Rscale; active content avoids those servers so they stay
//     dormant (VII-C).
//   - Power-aware: any of the above with the rate metric replaced by
//     rate/P(t), preferring efficient servers (VII-D).
//
// Selection operates over the RM/RA hierarchy's per-server metrics and an
// optional power model; a Filter (capacity, exclusions) narrows candidates.
package selection

import (
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/power"
	"repro/internal/ratealloc"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Filter restricts candidate servers; nil accepts all. Return false to
// exclude (e.g. server out of disk, already holding a replica).
type Filter func(topology.NodeID) bool

// Picker selects servers using hierarchy metrics.
type Picker struct {
	H *ratealloc.Hierarchy
	// Power enables the VII-D rate-to-power metric when non-nil and
	// PowerAware is set.
	Power      *power.Model
	PowerAware bool
	// Rscale is the scale-down threshold rate of section VII-C in
	// bits/sec: servers advertising up-link rates above it are "dormant
	// candidates" reserved for passive content.
	Rscale float64
}

// ErrNoCandidate is wrapped by selection failures.
var ErrNoCandidate = fmt.Errorf("selection: no candidate server")

// metric converts an RM's advertised rates into the policy score. level
// is the tree level of the RA scoping the selection: ranking uses the
// fig. 2 path rates down to that level (Rˇ), not just the server's own
// access link, so a rack whose uplink is the bottleneck stops advertising
// fast servers.
type metric func(rm *ratealloc.RM, level int) float64

func (p *Picker) adjust(server topology.NodeID, rate, now float64) float64 {
	if !p.PowerAware || p.Power == nil {
		return rate
	}
	s := p.Power.Get(server)
	if s == nil {
		return rate
	}
	return s.RateToPower(rate, now)
}

// scan returns the best server in ra's subtree by metric, honouring the
// filter. Deterministic tie-break on node ID keeps runs reproducible.
func (p *Picker) scan(ra *ratealloc.RA, m metric, f Filter, now float64) (topology.NodeID, float64, error) {
	best := topology.NodeID(topology.None)
	bestScore := math.Inf(-1)
	ra.EachServer(func(rm *ratealloc.RM) {
		if f != nil && !f(rm.Host) {
			return
		}
		score := p.adjust(rm.Host, m(rm, ra.Level), now)
		if score > bestScore || (score == bestScore && (best == topology.None || rm.Host < best)) {
			best, bestScore = rm.Host, score
		}
	})
	if best == topology.None {
		return best, 0, fmt.Errorf("%w in subtree of switch %d", ErrNoCandidate, ra.Switch)
	}
	return best, bestScore, nil
}

func levelAt(rm *ratealloc.RM, level int) int {
	if level >= len(rm.UpToLevel) {
		level = len(rm.UpToLevel) - 1
	}
	if level < 1 {
		level = 1
	}
	return level
}

func upMetric(rm *ratealloc.RM, level int) float64 {
	return rm.UpToLevel[levelAt(rm, level)]
}
func downMetric(rm *ratealloc.RM, level int) float64 {
	return rm.DownFromLevel[levelAt(rm, level)]
}
func minMetric(rm *ratealloc.RM, level int) float64 {
	l := levelAt(rm, level)
	return math.Min(rm.UpToLevel[l], rm.DownFromLevel[l])
}

// activeFilter composes the caller's filter with the VII-C rule that
// active (interactive/semi-interactive) content avoids dormant candidates:
// "interactive and semi-interactive contents do not use servers whose
// upload rates are greater than Rscale".
func (p *Picker) activeFilter(ra *ratealloc.RA, f Filter) Filter {
	if p.Rscale <= 0 {
		return f
	}
	// only apply the avoidance when at least one compliant server exists,
	// otherwise active content would be unplaceable on an idle cluster
	any := false
	ra.EachServer(func(rm *ratealloc.RM) {
		if rm.UpHat < p.Rscale && (f == nil || f(rm.Host)) {
			any = true
		}
	})
	if !any {
		return f
	}
	return func(n topology.NodeID) bool {
		if f != nil && !f(n) {
			return false
		}
		rm := p.H.RMFor(n)
		return rm != nil && rm.UpHat < p.Rscale
	}
}

// PickWrite chooses the primary server for a new content of the given
// class within ra's subtree (use the root RA for datacenter-wide
// placement, a rack's level-1 RA for rack-local placement).
func (p *Picker) PickWrite(ra *ratealloc.RA, class content.Class, f Filter, now float64) (topology.NodeID, error) {
	switch class {
	case content.Interactive:
		// fast path: the fig. 2 aggregate when unfiltered and power-blind
		if f == nil && !p.PowerAware && p.Rscale <= 0 && ra.BestMin.Server != topology.None {
			return ra.BestMin.Server, nil
		}
		n, _, err := p.scan(ra, minMetric, p.activeFilter(ra, f), now)
		return n, err
	case content.Passive:
		// stage 1 (VII-C): fastest write — best down-link, no dormancy
		// restriction (the data lands on an active server first)
		n, _, err := p.scan(ra, downMetric, f, now)
		return n, err
	default: // semi-interactive and unknown: stage 1 of VII-B
		n, _, err := p.scan(ra, downMetric, p.activeFilter(ra, f), now)
		return n, err
	}
}

// PickReplica chooses the replication target after the primary write
// (stage 2 of VII-B/VII-C). primary is always excluded.
func (p *Picker) PickReplica(ra *ratealloc.RA, class content.Class, primary topology.NodeID, f Filter, now float64) (topology.NodeID, error) {
	notPrimary := func(n topology.NodeID) bool {
		if n == primary {
			return false
		}
		return f == nil || f(n)
	}
	switch class {
	case content.Passive:
		// dormant candidates: up-link rate above Rscale (least loaded)
		dormant := func(n topology.NodeID) bool {
			if !notPrimary(n) {
				return false
			}
			rm := p.H.RMFor(n)
			return rm != nil && (p.Rscale <= 0 || rm.UpHat > p.Rscale)
		}
		if n, _, err := p.scan(ra, upMetric, dormant, now); err == nil {
			return n, nil
		}
		// no dormant candidate: fall back to best up-link
		n, _, err := p.scan(ra, upMetric, notPrimary, now)
		return n, err
	case content.Interactive:
		n, _, err := p.scan(ra, minMetric, p.activeFilter(ra, notPrimary), now)
		return n, err
	default:
		// semi-interactive: "the server to which data is being written
		// chooses another replication server with the best uplink rate"
		n, _, err := p.scan(ra, upMetric, p.activeFilter(ra, notPrimary), now)
		return n, err
	}
}

// ScanUp exposes the up-link-metric subtree scan for callers composing
// custom placement passes (e.g. the VII-C cold-content migration, which
// needs "dormant candidate" filtering the caller defines).
func (p *Picker) ScanUp(ra *ratealloc.RA, f Filter, now float64) (topology.NodeID, float64, error) {
	return p.scan(ra, upMetric, f, now)
}

// PickRead chooses which replica to read from: the one advertising the
// best up-link rate (section VIII-C step 3), optionally power-adjusted.
func (p *Picker) PickRead(replicas []topology.NodeID, now float64) (topology.NodeID, error) {
	best := topology.NodeID(topology.None)
	bestScore := math.Inf(-1)
	for _, r := range replicas {
		rm := p.H.RMFor(r)
		if rm == nil {
			continue
		}
		// rank by the min up-link rate all the way to the top of the
		// tree (Rˇ at hmax): external readers sit beyond the core
		score := p.adjust(r, rm.UpToLevel[len(rm.UpToLevel)-1], now)
		if score > bestScore || (score == bestScore && (best == topology.None || r < best)) {
			best, bestScore = r, score
		}
	}
	if best == topology.None {
		return best, fmt.Errorf("%w among %d replicas", ErrNoCandidate, len(replicas))
	}
	return best, nil
}

// Random selects servers uniformly at random — the server-selection half
// of the RandTCP baseline ("random switch (server) selection strategies",
// standing in for VL2's VLB/ECMP placement).
type Random struct {
	Servers []topology.NodeID
	RNG     *sim.RNG
}

// PickWrite ignores class and load.
func (r *Random) PickWrite(f Filter) (topology.NodeID, error) {
	return r.pick(f)
}

// PickReplica excludes only the primary.
func (r *Random) PickReplica(primary topology.NodeID, f Filter) (topology.NodeID, error) {
	return r.pick(func(n topology.NodeID) bool {
		if n == primary {
			return false
		}
		return f == nil || f(n)
	})
}

// PickRead picks a uniform random replica.
func (r *Random) PickRead(replicas []topology.NodeID) (topology.NodeID, error) {
	if len(replicas) == 0 {
		return topology.None, fmt.Errorf("%w: no replicas", ErrNoCandidate)
	}
	return replicas[r.RNG.Intn(len(replicas))], nil
}

func (r *Random) pick(f Filter) (topology.NodeID, error) {
	// rejection-sample a bounded number of times, then linear scan
	for i := 0; i < 8; i++ {
		n := r.Servers[r.RNG.Intn(len(r.Servers))]
		if f == nil || f(n) {
			return n, nil
		}
	}
	start := r.RNG.Intn(len(r.Servers))
	for i := 0; i < len(r.Servers); i++ {
		n := r.Servers[(start+i)%len(r.Servers)]
		if f == nil || f(n) {
			return n, nil
		}
	}
	return topology.None, fmt.Errorf("%w after full scan", ErrNoCandidate)
}
