package hostres

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.Add(1, Spec{CPURate: -1}); err == nil {
		t.Fatal("negative CPU accepted")
	}
	if _, err := m.Add(1, Spec{Background: 1}); err == nil {
		t.Fatal("background=1 accepted")
	}
	if _, err := m.Add(1, Spec{CPURate: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(1, Spec{}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if m.Get(1) == nil || m.Get(2) != nil {
		t.Fatal("Get wrong")
	}
}

func TestUnconstrainedIsInfinite(t *testing.T) {
	m := NewModel()
	h, _ := m.Add(1, Spec{})
	if !math.IsInf(h.ROther(), 1) {
		t.Fatal("unconstrained host not +Inf")
	}
	if !math.IsInf(m.Sample(h), 1) {
		t.Fatal("sampled unconstrained host not +Inf")
	}
}

func TestFlowSharingDividesCapacity(t *testing.T) {
	m := NewModel()
	m.Weight = 1 // no smoothing for exactness
	h, _ := m.Add(1, Spec{CPURate: 100e6})
	if got := m.Sample(h); got != 100e6 {
		t.Fatalf("idle rate = %v", got)
	}
	h.Begin()
	h.Begin()
	h.Begin()
	h.Begin()
	if got := m.Sample(h); got != 25e6 {
		t.Fatalf("4-flow rate = %v, want 25e6", got)
	}
	h.End()
	h.End()
	if got := m.Sample(h); got != 50e6 {
		t.Fatalf("2-flow rate = %v, want 50e6", got)
	}
}

func TestBackgroundLoadReducesCPU(t *testing.T) {
	m := NewModel()
	m.Weight = 1
	h, _ := m.Add(1, Spec{CPURate: 100e6, Background: 0.6})
	if got := m.Sample(h); math.Abs(got-40e6) > 1 {
		t.Fatalf("rate with 60%% background = %v, want 40e6", got)
	}
}

func TestDiskBindsWhenSlower(t *testing.T) {
	m := NewModel()
	m.Weight = 1
	h, _ := m.Add(1, Spec{CPURate: 1e9, DiskRate: 30e6})
	if got := m.Sample(h); got != 30e6 {
		t.Fatalf("disk-bound rate = %v", got)
	}
}

func TestEWMASmoothing(t *testing.T) {
	m := NewModel() // weight 0.3
	h, _ := m.Add(1, Spec{CPURate: 100e6})
	m.Sample(h) // seeds at 100e6
	h.Begin()   // instantaneous drops to 100e6 (1 flow still /1)
	h.Begin()   // now /2 = 50e6
	got := m.Sample(h)
	want := 0.7*100e6 + 0.3*50e6
	if math.Abs(got-want) > 1 {
		t.Fatalf("smoothed = %v, want %v", got, want)
	}
	if h.ROther() != got {
		t.Fatal("ROther does not return the EWMA")
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	m := NewModel()
	h, _ := m.Add(1, Spec{})
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched End did not panic")
		}
	}()
	h.End()
}

func TestRatePositiveProperty(t *testing.T) {
	m := NewModel()
	h, _ := m.Add(1, Spec{CPURate: 50e6, DiskRate: 80e6, Background: 0.2})
	f := func(ops []bool) bool {
		for _, begin := range ops {
			if begin {
				h.Begin()
			} else if h.Active() > 0 {
				h.End()
			}
			if r := m.Sample(h); r <= 0 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
