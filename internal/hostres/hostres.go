// Package hostres models per-server CPU and disk service capacity — the
// R_other term of section VI-A that makes SCDA "a multi-resource
// allocation mechanism": "the CPU of the server which sends or receives
// flow j may be too busy with internal computations to serve external
// write or read requests at the e2e link rate. Or the server may not have
// enough disk space."
//
// Each host has a CPU service rate and a disk service rate (both in
// bits/sec of deliverable content, obtained in practice by profiling
// "what CPU and/or usage can serve what link rate"). Background
// computation consumes a fraction of CPU; concurrent flows share the
// remainder. The exported rate is an exponentially weighted average over
// control intervals, matching the paper's "measured from the previous
// control interval ... or the weighted average of previous intervals".
package hostres

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Spec is a server's static service capability.
type Spec struct {
	// CPURate is the content-serving rate the CPU sustains when idle of
	// background work (bits/sec). 0 means unconstrained.
	CPURate float64
	// DiskRate is the storage subsystem's sustainable rate (bits/sec).
	// 0 means unconstrained.
	DiskRate float64
	// Background is the fraction of CPU consumed by internal computation
	// (compaction, analytics, the paper's "other compute intensive or
	// background tasks"), in [0,1).
	Background float64
}

func (s Spec) validate() error {
	if s.CPURate < 0 || s.DiskRate < 0 {
		return fmt.Errorf("hostres: negative rate %+v", s)
	}
	if s.Background < 0 || s.Background >= 1 {
		return fmt.Errorf("hostres: background fraction %v outside [0,1)", s.Background)
	}
	return nil
}

// Host tracks one server's live service state.
type Host struct {
	Node topology.NodeID
	Spec Spec

	active int     // concurrent flows served
	avg    float64 // EWMA of the per-flow service rate
	seeded bool
}

// Model owns all hosts.
type Model struct {
	hosts map[topology.NodeID]*Host
	// Weight is the EWMA weight on the newest measurement.
	Weight float64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{hosts: make(map[topology.NodeID]*Host), Weight: 0.3}
}

// Add registers a host.
func (m *Model) Add(node topology.NodeID, s Spec) (*Host, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if _, dup := m.hosts[node]; dup {
		return nil, fmt.Errorf("hostres: host %d already added", node)
	}
	h := &Host{Node: node, Spec: s}
	m.hosts[node] = h
	return h, nil
}

// Get returns a host, or nil.
func (m *Model) Get(node topology.NodeID) *Host { return m.hosts[node] }

// Begin records a flow starting service at the host.
func (h *Host) Begin() { h.active++ }

// End records a flow finishing; unmatched Ends are a caller bug and panic.
func (h *Host) End() {
	if h.active == 0 {
		panic("hostres: End without Begin")
	}
	h.active--
}

// Active returns the concurrent flow count.
func (h *Host) Active() int { return h.active }

// instantaneous returns the current per-flow service rate: the tighter of
// CPU-after-background and disk, split across active flows.
func (h *Host) instantaneous() float64 {
	cpu := math.Inf(1)
	if h.Spec.CPURate > 0 {
		cpu = h.Spec.CPURate * (1 - h.Spec.Background)
	}
	disk := math.Inf(1)
	if h.Spec.DiskRate > 0 {
		disk = h.Spec.DiskRate
	}
	agg := math.Min(cpu, disk)
	if math.IsInf(agg, 1) {
		return agg
	}
	n := h.active
	if n < 1 {
		n = 1
	}
	return agg / float64(n)
}

// Sample folds the current instantaneous rate into the EWMA (call once per
// control interval) and returns the smoothed R_other.
func (m *Model) Sample(h *Host) float64 {
	inst := h.instantaneous()
	if math.IsInf(inst, 1) {
		h.avg = inst
		h.seeded = true
		return inst
	}
	if !h.seeded {
		h.avg = inst
		h.seeded = true
	} else {
		h.avg = (1-m.Weight)*h.avg + m.Weight*inst
	}
	return h.avg
}

// ROther returns the smoothed per-flow service rate (+Inf when
// unconstrained or never sampled on an unconstrained host).
func (h *Host) ROther() float64 {
	if !h.seeded {
		return h.instantaneous()
	}
	return h.avg
}
