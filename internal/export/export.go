// Package export writes experiment series to CSV so the figure data can be
// plotted with any tool (gnuplot, matplotlib) or diffed across runs.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/stats"
)

// WriteSeries emits one CSV with a column per series: x, then one y column
// per series (rows aligned by index; series of different lengths pad with
// empty cells). All series are assumed to share x semantics.
func WriteSeries(w io.Writer, series []stats.Series) error {
	cw := csv.NewWriter(w)
	header := []string{"x"}
	maxLen := 0
	for _, s := range series {
		header = append(header, s.Name)
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(series)+1)
		x := ""
		for _, s := range series {
			if i < len(s.Points) {
				x = strconv.FormatFloat(s.Points[i].X, 'g', -1, 64)
				break
			}
		}
		row = append(row, x)
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, strconv.FormatFloat(s.Points[i].Y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesLong emits tidy long-format CSV: series,x,y — one row per
// point, robust to series with different x grids (CDFs). When any series
// carries replicate error bars (Series.YErr), a fourth yerr column holds
// the 95% CI half-width (empty for series without error bars).
func WriteSeriesLong(w io.Writer, series []stats.Series) error {
	cw := csv.NewWriter(w)
	hasErr := false
	for _, s := range series {
		if s.YErr != nil {
			hasErr = true
			break
		}
	}
	header := []string{"series", "x", "y"}
	if hasErr {
		header = append(header, "yerr")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range series {
		for i, p := range s.Points {
			row := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			}
			if hasErr {
				cell := ""
				if i < len(s.YErr) {
					cell = strconv.FormatFloat(s.YErr[i], 'g', -1, 64)
				}
				row = append(row, cell)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveSeries writes long-format CSV to dir/name.csv, creating dir.
func SaveSeries(dir, name string, series []stats.Series) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := WriteSeriesLong(f, series); err != nil {
		return "", fmt.Errorf("export: writing %s: %w", path, err)
	}
	return path, nil
}
