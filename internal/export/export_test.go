package export

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleSeries() []stats.Series {
	return []stats.Series{
		{Name: "SCDA", Points: []stats.Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
		{Name: "RandTCP", Points: []stats.Point{{X: 1, Y: 5}}},
	}
}

func TestWriteSeriesWide(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 data rows
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "x" || rows[0][1] != "SCDA" || rows[0][2] != "RandTCP" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][1] != "10" || rows[1][2] != "5" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	// ragged series pads with empty
	if rows[2][2] != "" {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestWriteSeriesLong(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesLong(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 points
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0] != "SCDA" || rows[3][0] != "RandTCP" {
		t.Fatalf("series column wrong: %v", rows)
	}
}

func TestSaveSeries(t *testing.T) {
	dir := t.TempDir()
	path, err := SaveSeries(filepath.Join(dir, "nested"), "fig07", sampleSeries())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y") {
		t.Fatalf("unexpected content: %q", data[:20])
	}
	if !strings.HasSuffix(path, "fig07.csv") {
		t.Fatalf("path = %s", path)
	}
}

func TestWriteSeriesLongYErr(t *testing.T) {
	series := []stats.Series{
		{Name: "SCDA", Points: []stats.Point{{X: 1, Y: 10}, {X: 2, Y: 20}}, YErr: []float64{0.5, 0.25}},
		{Name: "RandTCP", Points: []stats.Point{{X: 1, Y: 5}}}, // no error bars
	}
	var buf bytes.Buffer
	if err := WriteSeriesLong(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 4 || rows[0][3] != "yerr" {
		t.Fatalf("header = %v, want yerr column", rows[0])
	}
	if rows[1][3] != "0.5" || rows[2][3] != "0.25" {
		t.Fatalf("yerr cells = %v %v", rows[1][3], rows[2][3])
	}
	if rows[3][3] != "" {
		t.Fatalf("series without YErr should have empty cell, got %q", rows[3][3])
	}
}

func TestEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesLong(&buf, []stats.Series{{Name: "empty"}}); err != nil {
		t.Fatal(err)
	}
}
