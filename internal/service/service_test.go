package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testSpec is small enough that one replicate runs in well under a second
// but still produces non-trivial output series.
const testSpec = `{
  "version": 1,
  "name": "svc-test",
  "seed": 3,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput", "fct-cdf"]}
}`

// slowSpec is the cancellation workhorse: heavy enough per replicate that
// a DELETE issued after the first replicate lands long before the last.
const slowSpec = `{
  "version": 1,
  "name": "svc-slow",
  "seed": 5,
  "duration": 30,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 6}}]
}`

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func submit(t *testing.T, ts *httptest.Server, spec, query string) (Status, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return st, resp.StatusCode
}

func get(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return b, resp.StatusCode
}

func TestSubmitWaitStreamFetch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobRunners: 1})

	st, code := submit(t, ts, testSpec, "?wait=true&reps=2")
	if code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if st.State != StateDone || st.CacheHit {
		t.Fatalf("job %+v, want fresh done", st)
	}
	if st.Name != "svc-test" || st.Reps != 2 || st.RepsDone != 2 {
		t.Fatalf("status fields %+v", st)
	}
	if !strings.HasPrefix(st.Key, "v1-") {
		t.Fatalf("cache key %q not hash-derived", st.Key)
	}

	// Status endpoint agrees.
	b, code := get(t, ts.URL+"/v1/jobs/"+st.ID)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"state": "done"`)) {
		t.Fatalf("status fetch: %d %s", code, b)
	}

	// Result JSON carries the summary and both requested series groups.
	b, code = get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result fetch: %d %s", code, b)
	}
	var wire resultWire
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Name != "svc-test" || wire.Replicates != 2 || len(wire.Groups) != 2 {
		t.Fatalf("result wire %+v", wire)
	}
	if wire.Summary["requests"] <= 0 {
		t.Fatalf("summary has no requests: %v", wire.Summary)
	}
	if wire.Summary["replicates"] != 2 {
		t.Fatalf("replicated summary missing replicates key: %v", wire.Summary)
	}

	// CSV artifacts: the summary and each requested kind.
	for _, kind := range []string{"summary", "throughput", "fct-cdf"} {
		b, code = get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?csv="+kind)
		if code != http.StatusOK || len(b) == 0 {
			t.Fatalf("csv %s: %d", kind, code)
		}
	}
	if _, code = get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?csv=afct"); code != http.StatusNotFound {
		t.Fatalf("unrequested series served: %d", code)
	}

	// Event stream: replay of the full deterministic lifecycle.
	evs := readEvents(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(evs) < 3 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].State != StateQueued || evs[0].Seq != 1 {
		t.Fatalf("first event %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.State != StateDone || last.RepsDone != 2 {
		t.Fatalf("last event %+v", last)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// readEvents consumes one NDJSON stream to termination.
func readEvents(t *testing.T, url string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestResultBytesMatchCLIFiles(t *testing.T) {
	// The acceptance criterion: a spec submitted over HTTP yields CSVs
	// byte-identical to what scda-sim -scenario writes for the same
	// spec and seed.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: %d %+v", code, st)
	}

	spec, err := scenario.Parse(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	for csvParam, file := range map[string]string{
		"summary":    "svc-test-summary.csv",
		"throughput": "svc-test-throughput.csv",
		"fct-cdf":    "svc-test-fct-cdf.csv",
	} {
		want, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		got, code := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?csv="+csvParam)
		if code != http.StatusOK {
			t.Fatalf("csv %s: %d", csvParam, code)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between service and CLI:\nservice: %q\ncli:     %q", csvParam, got, want)
		}
	}
}

func TestCacheHitSecondSubmissionByteIdentical(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})

	first, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || first.State != StateDone || first.CacheHit {
		t.Fatalf("first submit: %d %+v", code, first)
	}
	// Re-submit with different formatting of the same spec: the canonical
	// hash must still hit.
	reformatted := strings.ReplaceAll(testSpec, "\n", " ")
	second, code := submit(t, ts, reformatted, "?wait=true")
	if code != http.StatusOK || second.State != StateDone {
		t.Fatalf("second submit: %d %+v", code, second)
	}
	if !second.CacheHit {
		t.Fatal("second submission of an identical spec was not a cache hit")
	}
	if second.ID == first.ID {
		t.Fatal("jobs must be distinct even when the result is shared")
	}
	if second.Key != first.Key {
		t.Fatalf("cache keys differ: %s vs %s", first.Key, second.Key)
	}

	for _, path := range []string{"/result", "/result?csv=summary", "/result?csv=throughput", "/result?csv=fct-cdf"} {
		a, _ := get(t, ts.URL+"/v1/jobs/"+first.ID+path)
		b, _ := get(t, ts.URL+"/v1/jobs/"+second.ID+path)
		if !bytes.Equal(a, b) {
			t.Errorf("%s not byte-identical across cache hit", path)
		}
	}

	if hits := svc.met.cacheHits.Load(); hits != 1 {
		t.Fatalf("cacheHits = %d, want 1", hits)
	}
	if misses := svc.met.cacheMisses.Load(); misses != 1 {
		t.Fatalf("cacheMisses = %d, want 1", misses)
	}
	b, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"scda_cache_hits_total 1",
		"scda_cache_misses_total 1",
		`scda_jobs_done_total{state="done"} 2`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q:\n%s", want, b)
		}
	}
}

func TestCancelMidReplication(t *testing.T) {
	const reps = 16
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})

	st, code := submit(t, ts, slowSpec, fmt.Sprintf("?reps=%d", reps))
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}

	// Watch the live stream until the first replicate completes, so the
	// cancel provably lands mid-replication.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawProgress := false
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.RepsDone >= 1 && ev.State == StateRunning {
			sawProgress = true
			break
		}
		if ev.State.Terminal() {
			t.Fatalf("job terminated (%s) before any progress event", ev.State)
		}
	}
	if !sawProgress {
		t.Fatal("event stream ended without a progress event")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}

	final := waitTerminal(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s after cancel, want cancelled", final.State)
	}
	if final.RepsDone >= reps {
		t.Fatalf("all %d replicates ran despite the cancel", reps)
	}

	// The result endpoint must refuse: there is no result.
	if _, code := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("result of a cancelled job: %d, want 409", code)
	}
	// Cancelling again conflicts: the job is terminal.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: %d, want 409", dresp.StatusCode)
	}
}

// waitTerminal polls the status endpoint until the job terminates.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b, code := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status fetch %d", code)
		}
		var st Status
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job never terminated")
	return Status{}
}

func TestCancelQueuedJob(t *testing.T) {
	// One runner busy with a slow job: the second job sits queued and a
	// DELETE must cancel it without it ever running.
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	slow, code := submit(t, ts, slowSpec, "?reps=8")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	queued, code := submit(t, ts, testSpec, "")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	if st := waitTerminal(t, ts, queued.ID); st.State != StateCancelled || st.RepsDone != 0 {
		t.Fatalf("queued job ended %+v, want cancelled before any work", st)
	}
	// The queue-depth gauge must not count the cancelled job's dead heap
	// entry: nothing is waiting any more.
	if m, _ := get(t, ts.URL+"/metrics"); !bytes.Contains(m, []byte("scda_jobs_queued 0\n")) {
		t.Fatalf("queue gauge still counts a cancelled job:\n%s", m)
	}
	// And the heap entry itself is gone, not just the gauge: cancelled
	// submissions must not pin memory until a runner drains them.
	if n := svc.queue.Len(); n != 0 {
		t.Fatalf("cancelled job still occupies the heap (%d entries)", n)
	}
	// Unblock the suite quickly.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+slow.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitTerminal(t, ts, slow.ID)
}

func TestCancelJoinedJobHonoured(t *testing.T) {
	// Two identical submissions share one flight; cancelling the joined
	// one must report cancelled once the flight resolves, never flip the
	// DELETE acknowledgement into a done.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 2})
	a, code := submit(t, ts, slowSpec, "?reps=8")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	b, code := submit(t, ts, slowSpec, "?reps=8")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	// Wait until the second job is running (i.e. joined or computing).
	deadline := time.Now().Add(30 * time.Second)
	for {
		bb, _ := get(t, ts.URL+"/v1/jobs/"+b.ID)
		var st Status
		json.Unmarshal(bb, &st)
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job b terminated early: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job b never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	sb := waitTerminal(t, ts, b.ID)
	if sb.State != StateCancelled {
		t.Fatalf("cancelled joined job ended %s", sb.State)
	}
	// The other submission is unaffected: whichever side owned the
	// flight, the uncancelled job completes (re-running it itself if the
	// cancelled sibling owned the computation).
	if sa := waitTerminal(t, ts, a.ID); sa.State != StateDone {
		t.Fatalf("sibling job ended %s, want done", sa.State)
	}
}

func TestJobHistoryEviction(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, JobHistory: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st, code := submit(t, ts, testSpec, "?wait=true")
		if code != http.StatusOK {
			t.Fatalf("submit %d status %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	if _, code := get(t, ts.URL+"/v1/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job still served: %d, want 404 after eviction", code)
	}
	for _, id := range ids[1:] {
		if _, code := get(t, ts.URL+"/v1/jobs/"+id); code != http.StatusOK {
			t.Fatalf("recent job %s evicted: %d", id, code)
		}
	}
	if n := len(svc.Jobs()); n != 2 {
		t.Fatalf("ledger holds %d jobs, want 2", n)
	}
	// The result survives eviction: it lives in the cache, not the job.
	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || !st.CacheHit {
		t.Fatalf("post-eviction submit: %d %+v, want cache hit", code, st)
	}
}

func TestTraceArtifactMatchesCLI(t *testing.T) {
	// outputs.trace parity: the service serves the same trace CSV the CLI
	// writes for a single-seed run.
	traceSpec := strings.Replace(testSpec,
		`"outputs": {"series": ["throughput", "fct-cdf"]}`,
		`"outputs": {"series": ["throughput"], "trace": true}`, 1)
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	st, code := submit(t, ts, traceSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: %d %+v", code, st)
	}
	got, code := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?csv=trace")
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d", code)
	}
	spec, err := scenario.Parse(strings.NewReader(traceSpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "svc-test-trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trace CSV differs between service and CLI")
	}
}

func TestJobHistorySkipsActiveFront(t *testing.T) {
	// An active job at the front of a saturated ledger must be kept while
	// terminal jobs behind it are evicted.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 2, JobHistory: 2})
	slow, code := submit(t, ts, slowSpec, "?reps=16")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	var done []string
	for i := 0; i < 3; i++ {
		st, code := submit(t, ts, testSpec, "?wait=true")
		if code != http.StatusOK {
			t.Fatalf("submit %d status %d", i, code)
		}
		done = append(done, st.ID)
	}
	// Ledger was [slow(running), d0, d1, d2] with bound 2: d0 and d1 go.
	if _, code := get(t, ts.URL+"/v1/jobs/"+slow.ID); code != http.StatusOK {
		t.Fatalf("active front job evicted: %d", code)
	}
	for _, id := range done[:2] {
		if _, code := get(t, ts.URL+"/v1/jobs/"+id); code != http.StatusNotFound {
			t.Fatalf("old terminal job %s survived: %d", id, code)
		}
	}
	if _, code := get(t, ts.URL+"/v1/jobs/"+done[2]); code != http.StatusOK {
		t.Fatalf("newest job evicted: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+slow.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitTerminal(t, ts, slow.ID)
}

func TestPruneNeverEvictsJustSubmittedJob(t *testing.T) {
	// Saturated ledger where everything old is active: a born-done cache
	// hit is the only terminal entry, and pruning must not evict it before
	// the client can fetch it.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, JobHistory: 2})
	warm, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || warm.State != StateDone {
		t.Fatalf("warmup: %d %+v", code, warm)
	}
	slow1, code := submit(t, ts, slowSpec, "?reps=8")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	slow2, code := submit(t, ts, slowSpec, "?reps=16") // distinct key: queued
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	// Ledger is now [warm(done), slow1(active), slow2(active)]; the next
	// submit prunes warm, leaving only active jobs plus the new cache hit.
	hit, code := submit(t, ts, testSpec, "")
	if code != http.StatusOK || !hit.CacheHit {
		t.Fatalf("cache-hit submit: %d %+v", code, hit)
	}
	if _, code := get(t, ts.URL+"/v1/jobs/"+hit.ID); code != http.StatusOK {
		t.Fatalf("just-submitted cache hit already evicted: %d", code)
	}
	if _, code := get(t, ts.URL+"/v1/jobs/"+hit.ID+"/result"); code != http.StatusOK {
		t.Fatalf("just-submitted cache hit result unfetchable: %d", code)
	}
	for _, id := range []string{slow1.ID, slow2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		waitTerminal(t, ts, id)
	}
}

func TestCacheEntriesEviction(t *testing.T) {
	// Three distinct specs through a 2-entry memory cache: the first
	// entry is evicted (resubmission recomputes), recent ones still hit.
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheEntries: 2})
	specs := make([]string, 3)
	for i := range specs {
		specs[i] = strings.Replace(testSpec, `"seed": 3`, fmt.Sprintf(`"seed": %d`, 100+i), 1)
		if st, code := submit(t, ts, specs[i], "?wait=true"); code != http.StatusOK || st.State != StateDone {
			t.Fatalf("submit %d: %d %+v", i, code, st)
		}
	}
	if n := svc.CacheLen(); n != 2 {
		t.Fatalf("memory cache holds %d entries, want 2", n)
	}
	st, code := submit(t, ts, specs[0], "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("resubmit: %d %+v", code, st)
	}
	if st.CacheHit {
		t.Fatal("evicted entry still hit the cache")
	}
	st, _ = submit(t, ts, specs[2], "?wait=true")
	if !st.CacheHit {
		t.Fatal("recent entry was evicted")
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	svc1 := New(Config{Workers: 1, JobRunners: 1, CacheDir: dir})
	ts1 := httptest.NewServer(svc1.Handler())
	first, code := submit(t, ts1, testSpec, "?wait=true")
	if code != http.StatusOK || first.State != StateDone {
		t.Fatalf("first submit: %d %+v", code, first)
	}
	firstJSON, _ := get(t, ts1.URL+"/v1/jobs/"+first.ID+"/result")
	firstCSV, _ := get(t, ts1.URL+"/v1/jobs/"+first.ID+"/result?csv=summary")
	ts1.Close()
	svc1.Close()

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("disk cache entries: %v (err %v)", entries, err)
	}

	svc2, ts2 := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheDir: dir})
	second, code := submit(t, ts2, testSpec, "?wait=true")
	if code != http.StatusOK || second.State != StateDone {
		t.Fatalf("second submit: %d %+v", code, second)
	}
	if !second.CacheHit {
		t.Fatal("restarted service recomputed a disk-cached result")
	}
	if svc2.met.cacheMisses.Load() != 0 {
		t.Fatal("disk hit counted as a miss")
	}
	secondJSON, _ := get(t, ts2.URL+"/v1/jobs/"+second.ID+"/result")
	secondCSV, _ := get(t, ts2.URL+"/v1/jobs/"+second.ID+"/result?csv=summary")
	if !bytes.Equal(firstJSON, secondJSON) || !bytes.Equal(firstCSV, secondCSV) {
		t.Fatal("disk-cached result not byte-identical to the original")
	}
}

func TestInFlightDeduplication(t *testing.T) {
	// Two identical submissions racing: exactly one computation, both done.
	svc, ts := newTestServer(t, Config{Workers: 2, JobRunners: 2})
	a, code := submit(t, ts, testSpec, "?reps=3")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	b, code := submit(t, ts, testSpec, "?reps=3")
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	sa, sb := waitTerminal(t, ts, a.ID), waitTerminal(t, ts, b.ID)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states %s / %s", sa.State, sb.State)
	}
	if misses := svc.met.cacheMisses.Load(); misses != 1 {
		t.Fatalf("%d computations for two identical submissions", misses)
	}
	ra, _ := get(t, ts.URL+"/v1/jobs/"+a.ID+"/result")
	rb, _ := get(t, ts.URL+"/v1/jobs/"+b.ID+"/result")
	if !bytes.Equal(ra, rb) {
		t.Fatal("deduplicated jobs returned different bytes")
	}
}

func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, MaxReps: 4})

	cases := map[string]struct {
		body  string
		query string
	}{
		"malformed json":  {body: "{not json", query: ""},
		"unknown field":   {body: `{"version":1,"name":"x","seed":1,"duration":5,"bogus":1,"workload":[{"generator":"dc"}]}`, query: ""},
		"invalid spec":    {body: `{"version":1,"name":"x","seed":1,"duration":-5,"workload":[{"generator":"dc"}]}`, query: ""},
		"sweep spec":      {body: `{"version":1,"name":"x","seed":1,"duration":5,"workload":[{"generator":"dc"}],"sweep":{"parameter":"seed","values":[1,2]}}`, query: ""},
		"reps over limit": {body: testSpec, query: "?reps=5"},
		"bad reps":        {body: testSpec, query: "?reps=abc"},
		// PR 5 edge validation: before it, a negative ?reps silently
		// became the server default and any priority magnitude was
		// accepted into the queue and the wire format.
		"negative reps":         {body: testSpec, query: "?reps=-1"},
		"very negative reps":    {body: testSpec, query: "?reps=-9999999"},
		"bad priority":          {body: testSpec, query: "?priority=abc"},
		"absurd priority":       {body: testSpec, query: "?priority=1048577"},
		"absurd neg priority":   {body: testSpec, query: "?priority=-1048577"},
		"float reps":            {body: testSpec, query: "?reps=1.5"},
		"overflow reps":         {body: testSpec, query: "?reps=99999999999999999999"},
		"overflow neg priority": {body: testSpec, query: "?priority=-99999999999999999999"},
	}
	for name, tc := range cases {
		if _, code := submit(t, ts, tc.body, tc.query); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// In-range knobs still pass: negative priority is a legitimate
	// "run me last", zero reps selects the default.
	if st, code := submit(t, ts, testSpec, "?wait=true&reps=0&priority=-5"); code != http.StatusOK || st.Priority != -5 {
		t.Errorf("valid knobs rejected: %d %+v", code, st)
	}

	// Oversized bodies get the honest status, not a spec-syntax 400.
	big := strings.Repeat(" ", maxSpecBytes+1) + testSpec
	if _, code := submit(t, ts, big, ""); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", code)
	}

	if _, code := get(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if _, code := get(t, ts.URL+"/v1/jobs/j999999/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}
}

func TestJobListOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	a, _ := submit(t, ts, testSpec, "?wait=true")
	b, _ := submit(t, ts, testSpec, "?wait=true")
	body, code := get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	var list []Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list %+v not in submission order", list)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue()
	spec := &scenario.Spec{Name: "q"}
	mk := func(id string, prio int) *Job { return newJob(id, spec, "k", "h", 1, prio, time.Time{}, nil) }
	q.Push(mk("low-1", 0))
	q.Push(mk("high", 5))
	q.Push(mk("low-2", 0))
	q.Push(mk("mid", 3))
	var order []string
	for i := 0; i < 4; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, j.ID)
	}
	want := []string{"high", "mid", "low-1", "low-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
	rest := q.Close()
	if len(rest) != 0 {
		t.Fatalf("drained queue returned %d jobs at close", len(rest))
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on a closed queue")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	running, code := submit(t, ts, slowSpec, "?reps=8")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	queued, code := submit(t, ts, testSpec, "")
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	// Wait for the first job to actually start.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if j, _ := svc.Job(running.ID); j.Status().State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close() // must return: runners drain, running job cancels at a replicate boundary

	jr, _ := svc.Job(running.ID)
	jq, _ := svc.Job(queued.ID)
	if st := jr.Status().State; st != StateCancelled {
		t.Fatalf("running job ended %s after Close", st)
	}
	if st := jq.Status().State; st != StateCancelled {
		t.Fatalf("queued job ended %s after Close", st)
	}

	// Submitting after Close yields a cancelled job, not a hang.
	spec, err := scenario.Parse(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(spec, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("post-Close submit never terminated")
	}
	if st := j.Status().State; st != StateCancelled {
		t.Fatalf("post-Close job state %s", st)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	b, code := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, b)
	}
}
