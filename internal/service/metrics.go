package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/ring"
)

// metrics is the service's dependency-free instrumentation: a handful of
// atomic counters and gauges rendered in the Prometheus text exposition
// format by writeTo. No client library — the format is six lines of
// fmt.Fprintf per family, and keeping the module stdlib-only is a design
// constraint.
type metrics struct {
	jobsQueued    atomic.Int64 // gauge: jobs waiting in the priority queue
	jobsRunning   atomic.Int64 // gauge: jobs currently executing (== busy runners, one job per runner)
	doneOK        atomic.Int64 // counter: jobs that reached state done
	doneFailed    atomic.Int64 // counter: jobs that reached state failed
	doneCancelled atomic.Int64 // counter: jobs that reached state cancelled
	cacheHits     atomic.Int64 // counter: results served without recomputation
	cacheMisses   atomic.Int64 // counter: results computed fresh

	shedTotal     atomic.Int64 // counter: submissions rejected 429 by admission control
	jobsRecovered atomic.Int64 // counter: journaled jobs resubmitted at startup
	jobPanics     atomic.Int64 // counter: job computes that panicked (recovered to failed)

	groupsActive    atomic.Int64 // gauge: job groups not yet terminal
	groupsDone      atomic.Int64 // counter: groups whose variants all completed
	groupsFailed    atomic.Int64 // counter: groups with a failed variant or submission
	groupsCancelled atomic.Int64 // counter: groups cancelled before completing

	// Search families, rendered only once a search has been submitted so
	// the established exposition stays byte-stable on services that never
	// run one.
	searchesSubmitted atomic.Int64 // counter: searches accepted (also the render gate)
	searchesActive    atomic.Int64 // gauge: searches not yet terminal
	searchesDone      atomic.Int64 // counter: searches that converged or exhausted budgets
	searchesFailed    atomic.Int64 // counter: searches that failed
	searchesCancelled atomic.Int64 // counter: searches cancelled before completing
	searchRounds      atomic.Int64 // counter: completed search rounds
	searchPruned      atomic.Int64 // counter: variants pruned from contention

	// Coordinator-mode families, rendered only when the service has a
	// ring so the single-node exposition stays byte-stable.
	ringForwards  atomic.Int64 // counter: submissions forwarded to their owning peer
	ringProxied   atomic.Int64 // counter: ID-routed requests proxied to their home peer
	ringRemote    atomic.Int64 // counter: local jobs executed on their owning peer
	ringFallbacks atomic.Int64 // counter: remote work degraded to local execution
	ringLoops     atomic.Int64 // counter: forwarded requests refused 502 by the loop guard
}

// writeTo renders the exposition text. The non-counter arguments are
// point-in-time gauges owned by the Service (pool width, runner count,
// cache sizes, peer health) rather than the metrics struct; a nil peers
// slice means single-node, which renders no ring families at all so the
// established exposition is byte-for-byte unchanged.
func (m *metrics) writeTo(w io.Writer, poolWorkers, jobRunners, cacheEntries, diskEntries int, diskBytes int64, peers []ring.PeerHealth) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("scda_jobs_queued", "Jobs waiting in the priority queue.", m.jobsQueued.Load())
	gauge("scda_jobs_running", "Jobs currently executing.", m.jobsRunning.Load())

	fmt.Fprintf(w, "# HELP scda_jobs_done_total Jobs that reached a terminal state, by state.\n")
	fmt.Fprintf(w, "# TYPE scda_jobs_done_total counter\n")
	fmt.Fprintf(w, "scda_jobs_done_total{state=\"done\"} %d\n", m.doneOK.Load())
	fmt.Fprintf(w, "scda_jobs_done_total{state=\"failed\"} %d\n", m.doneFailed.Load())
	fmt.Fprintf(w, "scda_jobs_done_total{state=\"cancelled\"} %d\n", m.doneCancelled.Load())

	gauge("scda_groups_active", "Job groups not yet in a terminal state.", m.groupsActive.Load())
	fmt.Fprintf(w, "# HELP scda_groups_done_total Job groups that reached a terminal state, by state.\n")
	fmt.Fprintf(w, "# TYPE scda_groups_done_total counter\n")
	fmt.Fprintf(w, "scda_groups_done_total{state=\"done\"} %d\n", m.groupsDone.Load())
	fmt.Fprintf(w, "scda_groups_done_total{state=\"failed\"} %d\n", m.groupsFailed.Load())
	fmt.Fprintf(w, "scda_groups_done_total{state=\"cancelled\"} %d\n", m.groupsCancelled.Load())

	counter("scda_shed_total", "Submissions rejected with 429 by admission control.", m.shedTotal.Load())
	counter("scda_jobs_recovered_total", "Journaled jobs resubmitted after a restart.", m.jobsRecovered.Load())
	counter("scda_job_panics_total", "Job computations that panicked and were recovered to state failed.", m.jobPanics.Load())

	counter("scda_cache_hits_total", "Results served from the cache (memory, disk, or an in-flight duplicate).", m.cacheHits.Load())
	counter("scda_cache_misses_total", "Results computed fresh.", m.cacheMisses.Load())
	gauge("scda_cache_entries", "Completed or in-flight entries in the in-memory result cache.", int64(cacheEntries))
	gauge("scda_disk_cache_entries", "Entries in the bounded disk cache layer (0 when disabled).", int64(diskEntries))
	gauge("scda_disk_cache_bytes", "Total bytes in the bounded disk cache layer (0 when disabled).", diskBytes)

	// One job per runner, so busy runners == running jobs; the family is
	// exported under the operator-facing name without duplicating state.
	gauge("scda_job_runners", "Job runner goroutines (the job-level concurrency bound).", int64(jobRunners))
	gauge("scda_job_runners_busy", "Job runners currently executing a job; busy/total is worker utilization.", m.jobsRunning.Load())
	gauge("scda_pool_workers", "Replicate fan-out pool width shared by all jobs.", int64(poolWorkers))

	if m.searchesSubmitted.Load() > 0 {
		gauge("scda_searches_active", "Adaptive searches not yet in a terminal state.", m.searchesActive.Load())
		fmt.Fprintf(w, "# HELP scda_searches_done_total Adaptive searches that reached a terminal state, by state.\n")
		fmt.Fprintf(w, "# TYPE scda_searches_done_total counter\n")
		fmt.Fprintf(w, "scda_searches_done_total{state=\"done\"} %d\n", m.searchesDone.Load())
		fmt.Fprintf(w, "scda_searches_done_total{state=\"failed\"} %d\n", m.searchesFailed.Load())
		fmt.Fprintf(w, "scda_searches_done_total{state=\"cancelled\"} %d\n", m.searchesCancelled.Load())
		counter("scda_search_rounds_total", "Completed adaptive-search rounds.", m.searchRounds.Load())
		counter("scda_search_variants_pruned_total", "Search variants pruned from contention.", m.searchPruned.Load())
	}

	if peers == nil {
		return
	}
	gauge("scda_ring_peers", "Peers in the placement ring, this node included.", int64(len(peers)))
	fmt.Fprintf(w, "# HELP scda_ring_peer_up Peer health from the /readyz prober: 1 up, 0 down.\n")
	fmt.Fprintf(w, "# TYPE scda_ring_peer_up gauge\n")
	for _, p := range peers {
		up := 0
		if p.Up {
			up = 1
		}
		fmt.Fprintf(w, "scda_ring_peer_up{peer=%q} %d\n", p.Peer, up)
	}
	fmt.Fprintf(w, "# HELP scda_ring_forwards_total Requests sent to another peer, by kind: submit (edge forward), proxy (ID-routed), execute (remote job execution).\n")
	fmt.Fprintf(w, "# TYPE scda_ring_forwards_total counter\n")
	fmt.Fprintf(w, "scda_ring_forwards_total{kind=\"submit\"} %d\n", m.ringForwards.Load())
	fmt.Fprintf(w, "scda_ring_forwards_total{kind=\"proxy\"} %d\n", m.ringProxied.Load())
	fmt.Fprintf(w, "scda_ring_forwards_total{kind=\"execute\"} %d\n", m.ringRemote.Load())
	counter("scda_ring_local_fallbacks_total", "Remote-owned work executed locally because the owner was down or unreachable.", m.ringFallbacks.Load())
	counter("scda_ring_loop_rejects_total", "Forwarded requests refused with 502 by the single-hop loop guard.", m.ringLoops.Load())
}
