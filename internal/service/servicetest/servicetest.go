// Package servicetest is the in-process multi-node harness behind the
// coordinator-mode tests: it boots an N-peer scda-serve ring inside one
// test process — real service.Service instances behind real TCP
// listeners on loopback, wired together by the same Config.Self/Peers
// knobs the binary exposes — so ring behavior (placement, forwarding,
// proxying, fallback, crash recovery) is exercised over actual HTTP
// with none of the flakiness of spawning processes.
//
// Peers get deterministic health: the background prober is disabled
// (ProbeInterval -1) and tests drive transitions explicitly with
// Fleet.ProbeAll. Each peer owns a private cache and journal directory
// under the test's temp dir, so crash/restart cycles (Peer.Crash,
// Peer.Restart) exercise the journal-recovery path exactly as a
// process kill would.
package servicetest

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/service"
)

// Peer is one ring member: a live Service behind a real loopback
// listener.
type Peer struct {
	// Index is the peer's ring node index — the position of its URL in
	// the sorted peer list, i.e. the "n<Index>-" prefix on IDs it mints.
	Index int
	// URL is the peer's base URL ("http://127.0.0.1:<port>").
	URL string
	// Addr is the bound listen address, pinned across Restart so the
	// ring's static peer list stays valid.
	Addr string
	// Config is the service configuration the peer (re)starts with.
	Config service.Config
	// Svc is the running service; replaced by Restart.
	Svc *service.Service

	srv  *http.Server
	ln   net.Listener
	down bool
}

// Fleet is a started ring of peers. Peers[i].Index == i.
type Fleet struct {
	t *testing.T
	// Peers holds every ring member in node-index order.
	Peers []*Peer
}

// StartRing boots an n-peer ring: n loopback listeners are bound first
// (so every peer knows the full URL set before any service starts),
// then one Service per listener with Self/Peers wired and per-peer
// cache and journal directories under t.TempDir(). configure, when
// non-nil, may adjust each peer's Config before it starts (it must
// leave Self and Peers alone). The fleet is torn down by t.Cleanup.
func StartRing(t *testing.T, n int, configure func(i int, cfg *service.Config)) *Fleet {
	t.Helper()
	lns := make(map[string]net.Listener, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("servicetest: binding peer listener: %v", err)
		}
		u := "http://" + ln.Addr().String()
		lns[u] = ln
		urls = append(urls, u)
	}
	// Node indices are positions in the sorted URL list (the ring's
	// order); building Peers in that order makes Peers[i].Index == i.
	sort.Strings(urls)
	root := t.TempDir()
	f := &Fleet{t: t}
	for i, u := range urls {
		cfg := service.Config{
			Self:          u,
			Peers:         urls,
			ProbeInterval: -1, // health is test-driven via ProbeAll
			CacheDir:      filepath.Join(root, fmt.Sprintf("cache-n%d", i)),
			JournalDir:    filepath.Join(root, fmt.Sprintf("journal-n%d", i)),
		}
		if configure != nil {
			configure(i, &cfg)
		}
		p := &Peer{Index: i, URL: u, Addr: lns[u].Addr().String(), Config: cfg, ln: lns[u]}
		p.start()
		f.Peers = append(f.Peers, p)
	}
	t.Cleanup(f.Stop)
	return f
}

// start launches the peer's service and HTTP server on its listener.
func (p *Peer) start() {
	p.Svc = service.New(p.Config)
	p.srv = &http.Server{Handler: p.Svc.Handler()}
	ln := p.ln
	srv := p.srv
	go srv.Serve(ln)
	p.down = false
}

// Crash kills the peer: the HTTP server force-closes (in-flight
// connections are severed, not drained — what peers of a kill -9'd
// node observe) and the service shuts down with its journal retained,
// so Restart exercises real crash recovery. Idempotent.
func (p *Peer) Crash() {
	if p.down {
		return
	}
	p.down = true
	p.srv.Close()
	p.Svc.Close()
}

// Restart brings a crashed peer back on its original address with its
// original config — same cache directory, same journal directory — so
// journaled work is recovered and the ring's static peer list still
// points at it.
func (p *Peer) Restart(t *testing.T) {
	t.Helper()
	if !p.down {
		t.Fatal("servicetest: Restart on a peer that was never crashed")
	}
	// The old listener died with srv.Close; rebind the pinned address.
	// A brief retry absorbs the OS releasing the port.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", p.Addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("servicetest: rebinding %s: %v", p.Addr, err)
	}
	p.ln = ln
	p.start()
}

// Stop tears the whole fleet down; registered with t.Cleanup by
// StartRing and safe to call again.
func (f *Fleet) Stop() {
	for _, p := range f.Peers {
		p.Crash()
	}
}

// ProbeAll runs rounds synchronous health-probe rounds on every live
// peer — the deterministic substitute for the background prober. Two
// rounds eject a dead peer; one round recovers it (see internal/ring's
// EWMA constants).
func (f *Fleet) ProbeAll(rounds int) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < rounds; i++ {
		for _, p := range f.Peers {
			if !p.down {
				p.Svc.ProbePeers(ctx)
			}
		}
	}
}

// OwnerIndex returns the node index owning the given placement key
// (a canonical spec hash) — which peer a submission routes to.
func (f *Fleet) OwnerIndex(key string) int {
	return f.Peers[0].Svc.Ring().OwnerIndex(key)
}
