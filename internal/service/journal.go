package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/scenario"
)

// journal is the write-ahead job log that makes accepted work survive a
// crash: every submission that is not served straight from the cache is
// persisted as one JSON file under the journal directory before the
// submit response reaches the client, and the file is removed when the
// job reaches a client-driven terminal state (done, failed, or an explicit
// DELETE). A `kill -9` therefore leaves exactly the accepted-but-
// unsettled jobs on disk, and the next process with the same -journal-dir
// resubmits them at startup — results land in the content-addressed
// cache, so recovered work is byte-identical to an uninterrupted run and
// specs that had already completed are served without recomputation.
//
// Graceful shutdown deliberately retains entries too: Close cancels
// queued and running jobs to let the process exit, but those
// cancellations are the server's doing, not the client's, so the work is
// still owed and is recovered on restart (the shutdown-under-load
// contract).
//
// Writes use the same tmp+rename protocol as the disk cache: a crash
// mid-write leaves only a ".tmp-" file (swept at startup), never a
// half-written entry, and load tolerates unreadable or non-JSON entries
// by skipping them — a corrupt journal degrades to losing that one job,
// never to a startup failure.
type journal struct {
	dir string
}

// journalEntry is the persisted form of one accepted job: everything
// submit needs to reconstruct it.
type journalEntry struct {
	// ID is the job's handle in the process that accepted it (diagnostic
	// only — recovery assigns fresh IDs).
	ID string `json:"id"`
	// Spec is the canonical scenario JSON (scenario.Spec.CanonicalJSON),
	// re-parsed with the same strict parser at recovery.
	Spec json.RawMessage `json:"spec"`
	// Reps and Priority echo the submission knobs.
	Reps     int `json:"reps"`
	Priority int `json:"priority"`
	// Deadline, when set, is the job's absolute completion deadline; an
	// entry recovered past it fails immediately rather than running.
	Deadline time.Time `json:"deadline,omitempty"`
}

// newJournal opens (creating if needed) the journal directory and sweeps
// stale ".tmp-" write debris. Errors are reported but leave a usable
// nil-journal path: callers treat a nil *journal as journaling disabled.
func newJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &journal{dir: dir}, nil
}

// append persists one entry write-ahead: tmp file + rename, fsync-free by
// design (the journal trades the last-instant write for zero submit-path
// latency cliffs; a crash can lose at most entries whose rename had not
// landed, which is the same window as the response not having been sent).
// Safe on a nil receiver: journaling disabled.
func (jl *journal) append(e journalEntry) error {
	if jl == nil {
		return nil
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(jl.dir, ".tmp-"+e.ID+"-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(jl.dir, e.ID+".json"))
}

// remove deletes the entry for id; best-effort and nil-safe.
func (jl *journal) remove(id string) {
	if jl == nil {
		return
	}
	os.Remove(filepath.Join(jl.dir, id+".json"))
}

// load reads every journal entry, oldest job ID first (IDs are zero-padded
// sequence numbers, so lexical order is submission order within one
// process life). Unreadable or malformed files are skipped, not fatal.
func (jl *journal) load() []journalEntry {
	if jl == nil {
		return nil
	}
	files, err := os.ReadDir(jl.dir)
	if err != nil {
		return nil
	}
	var out []journalEntry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(jl.dir, f.Name()))
		if err != nil {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil || len(e.Spec) == 0 {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// len reports the number of persisted entries; nil-safe, for tests and
// shutdown assertions.
func (jl *journal) len() int {
	if jl == nil {
		return 0
	}
	files, err := os.ReadDir(jl.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".json") {
			n++
		}
	}
	return n
}

// parseEntrySpec re-parses a journal entry's canonical spec through the
// strict scenario parser, so recovery validates exactly like a fresh
// submission.
func parseEntrySpec(e journalEntry) (*scenario.Spec, error) {
	return scenario.Parse(bytes.NewReader(e.Spec))
}
