package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/scenario"
)

// journalFiles lists the entry files in a journal directory.
func journalFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	return names
}

// metricValue extracts one un-labelled metric's value from an exposition
// body, failing the test if the family is missing.
func metricValue(t *testing.T, body []byte, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return 0
}

func TestOverloadShedsHonestly(t *testing.T) {
	// A saturated queue behind a tight SLO: programmatic submissions build
	// the backlog (Submit bypasses admission by design), then an HTTP burst
	// 10× past capacity gets nothing but clean answers — every response is
	// a 2xx or a 429 carrying Retry-After, nothing hangs, and the shed
	// counter owns the difference. With the cost estimate seeded at 2s per
	// job against a 100ms SLO every burst submission must shed.
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, SLO: 100 * time.Millisecond})
	svc.adm.observe(2 * time.Second)

	// Occupy the runner and stack a backlog the admission gate can see.
	// Programmatic Submit bypasses admission by design (in-process callers
	// own their own load), which is exactly what building the overload
	// fixture needs.
	specs := distinctSpecs(4, 900)
	ids := make([]string, 0, len(specs)+1)
	slow, err := svc.Submit(mustParse(t, slowSpec), 64, 0)
	if err != nil {
		t.Fatalf("backlog seed: %v", err)
	}
	ids = append(ids, slow.ID)
	for i, spec := range specs {
		j, err := svc.Submit(mustParse(t, spec), 1, 0)
		if err != nil {
			t.Fatalf("backlog %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}

	// Node-level signal: the queue alone now exceeds the SLO.
	if b, code := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !bytes.Contains(b, []byte("overloaded")) {
		t.Fatalf("readyz under overload: %d %s", code, b)
	}

	// The burst: 20 concurrent submissions against 1 runner.
	const burst = 20
	var mu sync.Mutex
	codes := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(testSpec))
			if err != nil {
				t.Errorf("burst: %v", err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			codes[resp.StatusCode]++
			switch resp.StatusCode {
			case http.StatusOK, http.StatusCreated:
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("burst status %d breaks the overload contract", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests] != burst {
		t.Fatalf("burst codes %v, want all %d shed", codes, burst)
	}

	b, _ := get(t, ts.URL+"/metrics")
	if shed := metricValue(t, b, "scda_shed_total"); shed < burst {
		t.Fatalf("scda_shed_total = %d, want >= %d", shed, burst)
	}

	// Drain: cancel the backlog and watch the gauges go to zero.
	for _, id := range ids {
		if _, code := get(t, ts.URL+"/v1/jobs/"+id); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
		}
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	b, _ = get(t, ts.URL+"/metrics")
	if q := metricValue(t, b, "scda_jobs_queued"); q != 0 {
		t.Fatalf("scda_jobs_queued = %d after drain", q)
	}
	if r := metricValue(t, b, "scda_jobs_running"); r != 0 {
		t.Fatalf("scda_jobs_running = %d after drain", r)
	}
	// With the backlog gone the node is ready again.
	if _, code := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after drain: %d", code)
	}
}

func TestShedLowestPriorityFirst(t *testing.T) {
	// The queue charge is depth at-or-above the submission's priority:
	// with a 60ms cost estimate against a 100ms SLO and three queued
	// priority-5 jobs, a low-priority submission is charged the whole
	// backlog plus itself (≥ 240ms, shed) while a priority-9 submission
	// jumps the queue and is charged only itself (60ms, admitted).
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, SLO: 100 * time.Millisecond})
	svc.adm.observe(60 * time.Millisecond)

	if _, err := svc.Submit(mustParse(t, slowSpec), 64, 5); err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	for i, spec := range distinctSpecs(3, 920) {
		if _, err := svc.Submit(mustParse(t, spec), 1, 5); err != nil {
			t.Fatalf("backlog %d: %v", i, err)
		}
	}
	if _, code := submit(t, ts, testSpec, "?priority=1"); code != http.StatusTooManyRequests {
		t.Fatalf("low-priority submission got %d, want 429", code)
	}
	if _, code := submit(t, ts, testSpec, "?priority=9"); code != http.StatusCreated {
		t.Fatalf("high-priority submission got %d, want 201", code)
	}
}

func TestJournalCrashRecovery(t *testing.T) {
	// Accepted work survives an abrupt death. Build a service with a
	// journal and a disk cache, warm one spec into the cache, stack a
	// backlog, and drain (Close retains journal entries by design — the
	// same on-disk state a kill -9 leaves). A second service on the same
	// directories must resubmit every journaled job, finish them all, and
	// serve the already-cached spec without recomputing it.
	jdir, cdir := t.TempDir(), t.TempDir()
	svc1 := New(Config{Workers: 1, JobRunners: 1, JournalDir: jdir, CacheDir: cdir})
	ts1 := newServerFor(t, svc1)

	warm, code := submit(t, ts1, testSpec, "?wait=true")
	if code != http.StatusOK || warm.State != StateDone {
		t.Fatalf("warm submit: %d %+v", code, warm)
	}
	// Terminal via the normal path → journal entry gone.
	if n := len(journalFiles(t, jdir)); n != 0 {
		t.Fatalf("journal holds %d entries after a completed job", n)
	}

	// Backlog: one slow running job, three queued fresh specs.
	if _, code := submit(t, ts1, slowSpec, "?reps=64"); code != http.StatusCreated {
		t.Fatalf("slow submit: %d", code)
	}
	backlog := distinctSpecs(3, 940)
	for i, spec := range backlog {
		if _, code := submit(t, ts1, spec, ""); code != http.StatusCreated {
			t.Fatalf("backlog submit %d: %d", i, code)
		}
	}
	ts1.Close()
	svc1.Close()
	journaled := len(journalFiles(t, jdir))
	if journaled != 4 {
		t.Fatalf("journal retained %d entries across the drain, want 4", journaled)
	}

	// Restart on the same state.
	svc2 := New(Config{Workers: 1, JobRunners: 1, JournalDir: jdir, CacheDir: cdir})
	ts2 := newServerFor(t, svc2)
	t.Cleanup(func() {
		ts2.Close()
		svc2.Close()
	})

	b, _ := get(t, ts2.URL+"/metrics")
	if rec := metricValue(t, b, "scda_jobs_recovered_total"); rec != int64(journaled) {
		t.Fatalf("scda_jobs_recovered_total = %d, want %d", rec, journaled)
	}
	// Every recovered job is in the ledger and reaches done.
	var ids []string
	bb, code := get(t, ts2.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("job list: %d", code)
	}
	var sts []Status
	if err := json.Unmarshal(bb, &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != journaled {
		t.Fatalf("restarted ledger has %d jobs, want %d", len(sts), journaled)
	}
	for _, st := range sts {
		ids = append(ids, st.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			bb, _ := get(t, ts2.URL+"/v1/jobs/"+id)
			var st Status
			if err := json.Unmarshal(bb, &st); err != nil {
				t.Fatal(err)
			}
			if st.State.Terminal() {
				if st.State != StateDone {
					t.Fatalf("recovered job %s ended %s (%s)", id, st.State, st.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("recovered job %s never finished", id)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	// All settled → the journal is clean again.
	if n := len(journalFiles(t, jdir)); n != 0 {
		t.Fatalf("journal holds %d entries after recovery settled", n)
	}

	// The pre-crash cached spec is served from disk, not recomputed — the
	// disk entry carries the exact pre-crash bytes, so a cache hit IS the
	// byte-parity guarantee.
	st2, code := submit(t, ts2, testSpec, "?wait=true")
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("cached spec after restart: %d %+v, want cache hit", code, st2)
	}
}

func TestJournalSurvivesAbandonedService(t *testing.T) {
	// The harder crash shape: the first service is never drained at all
	// (abandoned mid-run, as kill -9 leaves it). The journal entries for
	// the queued jobs must already be on disk — the write is write-ahead,
	// not at-exit.
	jdir := t.TempDir()
	svc1 := New(Config{Workers: 1, JobRunners: 1, JournalDir: jdir})
	ts1 := newServerFor(t, svc1)
	if _, code := submit(t, ts1, slowSpec, "?reps=64"); code != http.StatusCreated {
		t.Fatalf("slow submit: %d", code)
	}
	for i, spec := range distinctSpecs(2, 960) {
		if _, code := submit(t, ts1, spec, ""); code != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	if n := len(journalFiles(t, jdir)); n != 3 {
		t.Fatalf("journal holds %d entries while jobs are live, want 3", n)
	}
	// Abandon svc1 without Close — its goroutines die with the test
	// process; close only the listener so the port is freed.
	ts1.Close()

	svc2 := New(Config{Workers: 1, JobRunners: 2, JournalDir: t.TempDir()})
	defer svc2.Close()
	// A different journal dir recovers nothing — no cross-talk.
	if n := svc2.met.jobsRecovered.Load(); n != 0 {
		t.Fatalf("fresh journal recovered %d jobs", n)
	}
	svc1.Close() // release the runner goroutines before the test exits
}

func TestPanicIsolation(t *testing.T) {
	// A panicking compute must fail its own job — stack preserved in the
	// job error, panic counter bumped — while the service keeps answering.
	inj := chaos.New(chaos.Config{Seed: 1, Panic: 1})
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, Chaos: inj})

	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateFailed {
		t.Fatalf("panicking job: %d %+v, want failed", code, st)
	}
	if !strings.Contains(st.Error, "task panic") || !strings.Contains(st.Error, "chaos: injected job panic") {
		t.Fatalf("panic job error %q lacks the panic and stack", st.Error)
	}
	// Service is still alive and honest about it.
	if _, code := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
	st2, code := submit(t, ts, slowSpec, "?wait=true&reps=1")
	if code != http.StatusOK || st2.State != StateFailed {
		t.Fatalf("second panicking job: %d %+v", code, st2)
	}
	b, _ := get(t, ts.URL+"/metrics")
	if n := metricValue(t, b, "scda_job_panics_total"); n != 2 {
		t.Fatalf("scda_job_panics_total = %d, want 2", n)
	}
}

func TestClientDeadlineFailsSlowJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	st, code := submit(t, ts, slowSpec, "?reps=64&deadline=250ms")
	if code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("deadlined job %+v, want failed with deadline error", final)
	}
	if final.RepsDone >= 64 {
		t.Fatalf("deadlined job completed all %d replicates", final.RepsDone)
	}
}

func TestServerMaxJobRuntime(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, MaxJobRuntime: 250 * time.Millisecond})
	st, code := submit(t, ts, slowSpec, "?reps=64")
	if code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "max runtime") {
		t.Fatalf("capped job %+v, want failed with max-runtime error", final)
	}
	// A cheap job clears the same cap.
	st2, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || st2.State != StateDone {
		// testSpec takes well under 250ms per replicate boundary on any
		// machine this suite runs on; a failure here means the cap leaked
		// into healthy jobs.
		t.Fatalf("cheap job under cap: %d %+v", code, st2)
	}
}

func TestFarFutureDeadlineHarmless(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	st, code := submit(t, ts, testSpec, "?wait=true&deadline=1h")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("deadline=1h job: %d %+v, want done", code, st)
	}
	// Absolute RFC3339 form parses too.
	abs := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
	st2, code := submit(t, ts, slowSpec, "?wait=true&reps=1&deadline="+abs)
	if code != http.StatusOK || st2.State != StateDone {
		t.Fatalf("absolute-deadline job: %d %+v, want done", code, st2)
	}
	// Garbage is a 400, not an accepted job.
	if _, code := submit(t, ts, testSpec, "?deadline=soon"); code != http.StatusBadRequest {
		t.Fatalf("deadline=soon: %d, want 400", code)
	}
}

func TestHeartbeatOnLiveStreamOnly(t *testing.T) {
	// A live stream with a quiet job emits heartbeat lines; the replay of
	// a finished job's stream never does, and stays byte-stable.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, HeartbeatInterval: 10 * time.Millisecond})
	st, code := submit(t, ts, slowSpec, "?reps=64")
	if code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawHeartbeat := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			line := sc.Bytes()
			if bytes.Contains(line, []byte(`"heartbeat": true`)) || bytes.Contains(line, []byte(`"heartbeat":true`)) {
				sawHeartbeat = true
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
	resp.Body.Close()
	<-done
	if !sawHeartbeat {
		t.Fatal("live stream never emitted a heartbeat")
	}

	// Cancel, then replay twice: no heartbeats, identical bytes.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitTerminal(t, ts, st.ID)
	replay1, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	replay2, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if bytes.Contains(replay1, []byte("heartbeat")) {
		t.Fatalf("replay contains heartbeats:\n%s", replay1)
	}
	if !bytes.Equal(replay1, replay2) {
		t.Fatal("replayed streams differ between fetches")
	}
}

func TestShutdownUnderLoad(t *testing.T) {
	// SIGTERM mid-burst, in miniature: Close with a running job and a
	// queued backlog. The drain must return promptly, zero the gauges,
	// mark everything terminal, and leave the journal carrying the
	// undrained work.
	jdir := t.TempDir()
	svc := New(Config{Workers: 1, JobRunners: 1, JournalDir: jdir})
	ts := newServerFor(t, svc)

	if _, code := submit(t, ts, slowSpec, "?reps=64"); code != http.StatusCreated {
		t.Fatalf("slow submit: %d", code)
	}
	for i, spec := range distinctSpecs(3, 980) {
		if _, code := submit(t, ts, spec, ""); code != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, code)
		}
	}

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain")
	}

	if q, r := svc.met.jobsQueued.Load(), svc.met.jobsRunning.Load(); q != 0 || r != 0 {
		t.Fatalf("gauges after drain: queued=%d running=%d", q, r)
	}
	for _, st := range svc.Jobs() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left %s after drain", st.ID, st.State)
		}
	}
	if n := len(journalFiles(t, jdir)); n != 4 {
		t.Fatalf("journal carries %d entries across the shutdown, want 4", n)
	}
	// The drained service reports itself unready.
	if b, code := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !bytes.Contains(b, []byte("draining")) {
		t.Fatalf("readyz while draining: %d %s", code, b)
	}
	ts.Close()
}

func TestDiskCacheCorruptionTolerated(t *testing.T) {
	// A truncated result.json in a persisted entry is a cache miss plus
	// eviction, never a startup failure or a served half-result.
	dir := t.TempDir()
	svc1 := New(Config{Workers: 1, JobRunners: 1, CacheDir: dir})
	ts1 := newServerFor(t, svc1)
	st, code := submit(t, ts1, testSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("warm submit: %d %+v", code, st)
	}
	ts1.Close()
	svc1.Close()

	// Corrupt the persisted entry: truncate result.json mid-document.
	resPath := filepath.Join(dir, st.Key, "result.json")
	full, err := os.ReadFile(resPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(resPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart on the damaged directory: must come up, treat the entry as
	// a miss, evict it, recompute cleanly.
	svc2 := New(Config{Workers: 1, JobRunners: 1, CacheDir: dir})
	ts2 := newServerFor(t, svc2)
	t.Cleanup(func() {
		ts2.Close()
		svc2.Close()
	})
	st2, code := submit(t, ts2, testSpec, "?wait=true")
	if code != http.StatusOK || st2.State != StateDone {
		t.Fatalf("resubmit over corrupt entry: %d %+v", code, st2)
	}
	if st2.CacheHit {
		t.Fatal("corrupt entry served as a cache hit")
	}
	// The recomputed entry is valid JSON again.
	fresh, err := os.ReadFile(resPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(fresh) {
		t.Fatal("recomputed result.json is not valid JSON")
	}
	if !bytes.Equal(fresh, full) {
		t.Fatal("recomputed result differs from the original bytes")
	}
}

func TestChaosDiskErrorsDoNotCorrupt(t *testing.T) {
	// With disk faults injected on every cache probe and save, jobs still
	// finish and nothing half-written lands in the cache directory.
	dir := t.TempDir()
	inj := chaos.New(chaos.Config{Seed: 3, DiskErr: 1})
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheDir: dir, Chaos: inj})
	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit under disk faults: %d %+v", code, st)
	}
	// Every save was suppressed → no cache entries, tmp debris included.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("disk cache holds %d entries under 100%% disk faults", len(entries))
	}
}

func TestChaosStreamDropSeversConnection(t *testing.T) {
	// drop=1 must sever event streams mid-flight: the client sees a
	// truncated body, not a clean end — and a plain re-fetch works once
	// chaos would allow it (deterministically never here, so just assert
	// the sever).
	inj := chaos.New(chaos.Config{Seed: 5, DropStream: 1})
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, Chaos: inj})
	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		// The abort landed before the response headers — the sever is
		// visible as a transport error, which is the point.
		return
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	var total int
	var readErr error
	for {
		n, err := resp.Body.Read(buf)
		total += n
		if err != nil {
			readErr = err
			break
		}
	}
	if readErr.Error() == "EOF" {
		t.Fatalf("dropped stream ended cleanly after %d bytes", total)
	}
}

// mustParse parses a JSON spec string for programmatic submission.
func mustParse(t *testing.T, spec string) *scenario.Spec {
	t.Helper()
	s, err := scenario.Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s
}
