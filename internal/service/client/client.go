// Package client is the retrying HTTP client for scda-serve: the
// robustness layer's consumer-side half. The server sheds overload with
// 429 + Retry-After and cuts jobs at deadlines; this package turns those
// honest rejections back into eventual success, with capped exponential
// backoff, deterministic jitter, and a total retry budget so a client
// under sustained overload gives up in bounded time instead of hammering
// or hanging.
//
// It deliberately does not import internal/service: the wire types here
// are the client's own view of the JSON API, so the service's tests can
// exercise the client against a live handler without an import cycle,
// and the package doubles as documentation of the over-the-wire
// contract.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Status is the client-side view of a job status document.
type Status struct {
	// ID is the job handle; Name the scenario; Key the result-cache key.
	ID   string `json:"id"`
	Name string `json:"name"`
	Key  string `json:"key"`
	// State is the lifecycle state: queued, running, done, failed,
	// cancelled.
	State string `json:"state"`
	// Priority, Reps and RepsDone echo the submission knobs and progress.
	Priority int `json:"priority"`
	Reps     int `json:"reps"`
	RepsDone int `json:"repsDone"`
	// CacheHit reports a result served without recomputation.
	CacheHit bool `json:"cacheHit"`
	// Error carries the failure reason for a failed job.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "cancelled"
}

// APIError is a non-2xx response from the service, preserving the pieces
// retry logic and callers need: the status code, the server's error
// message, and the Retry-After hint on 429s.
type APIError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's {"error": ...} text (or the raw body).
	Message string
	// RetryAfter is the parsed Retry-After hint; zero when absent.
	RetryAfter time.Duration
}

// Error renders the code and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("scda-serve: %d: %s", e.Code, e.Message)
}

// Retryable reports whether the request that produced this error may
// succeed later: shed load (429) and server-side trouble (5xx) are
// retryable, client mistakes (4xx) are not.
func (e *APIError) Retryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code >= 500
}

// RetryPolicy shapes the backoff loop. The zero value selects the
// defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts bounds tries per request, first attempt included
	// (0 = 6; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (0 = 100ms); each retry doubles
	// it, capped at MaxDelay (0 = 5s). A server Retry-After overrides the
	// computed delay — the server knows its queue better than the curve.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Budget caps the *total* time spent sleeping between retries across
	// one request (0 = 30s): once spent, the next failure is final. This
	// is the give-up knob — attempts bound the count, the budget bounds
	// the wall clock.
	Budget time.Duration
	// Seed drives the jitter PRNG so tests replay exact backoff
	// sequences. The zero seed is a fixed default, not randomness:
	// determinism is the point.
	Seed int64
}

// withDefaults resolves the zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Budget == 0 {
		p.Budget = 30 * time.Second
	}
	return p
}

// Client talks to scda-serve with retries — one instance (New) or a
// coordinator-mode fleet (NewMulti), where a failed attempt rotates to
// the next endpoint before retrying. Create with New or NewMulti; the
// zero value is not usable.
type Client struct {
	bases []string
	http  *http.Client

	policy RetryPolicy

	// sleep pauses between retries; tests replace it to run backoff
	// schedules instantly while still observing the requested delays.
	sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
	cur int // index into bases of the endpoint attempts currently use
}

// Option customizes a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test servers).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetryPolicy substitutes the retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.policy = p }
}

// WithSleep substitutes the inter-retry sleep — the test hook that makes
// backoff schedules observable without waiting them out.
func WithSleep(fn func(ctx context.Context, d time.Duration) error) Option {
	return func(c *Client) { c.sleep = fn }
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	return NewMulti([]string{baseURL}, opts...)
}

// NewMulti returns a client over several equivalent endpoints — the
// peers of a coordinator-mode fleet, where any node accepts any request
// (submissions route internally, remote IDs proxy). Requests stick to
// one endpoint until an attempt fails with a transport error or a
// retryable status; the retry then moves to the next endpoint
// round-robin, so a dead or draining peer costs one failed attempt, not
// a failed request. An empty list panics: it is a programming error,
// same as New("").
func NewMulti(baseURLs []string, opts ...Option) *Client {
	if len(baseURLs) == 0 {
		panic("client: NewMulti with no endpoints")
	}
	bases := make([]string, len(baseURLs))
	for i, u := range baseURLs {
		bases[i] = strings.TrimRight(u, "/")
	}
	c := &Client{
		bases:  bases,
		http:   &http.Client{Timeout: 2 * time.Minute},
		policy: RetryPolicy{},
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	c.policy = c.policy.withDefaults()
	c.rng = rand.New(rand.NewSource(c.policy.Seed))
	return c
}

// endpoint returns the base URL attempts currently use.
func (c *Client) endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.cur]
}

// rotate moves to the next endpoint after a failed attempt; a no-op
// with a single endpoint.
func (c *Client) rotate() {
	c.mu.Lock()
	c.cur = (c.cur + 1) % len(c.bases)
	c.mu.Unlock()
}

// jitter scales d to [d/2, d): full-magnitude synchronized retries are
// what turns one overload into a retry storm, so every client spreads
// its schedule.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// do runs one HTTP request through the retry loop. body is re-sent on
// every attempt (byte slices, not readers, so replays are safe). The
// caller owns closing nothing: the full response body is read and
// returned.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body []byte) ([]byte, http.Header, error) {
	suffix := path
	if len(query) > 0 {
		suffix += "?" + query.Encode()
	}
	var lastErr error
	delay := c.policy.BaseDelay
	var spent time.Duration
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.jitter(delay)
			if ra := retryAfterOf(lastErr); ra > 0 {
				wait = ra
			}
			if spent+wait > c.policy.Budget {
				return nil, nil, fmt.Errorf("retry budget %s exhausted after %d attempts: %w", c.policy.Budget, attempt, lastErr)
			}
			if err := c.sleep(ctx, wait); err != nil {
				return nil, nil, err
			}
			spent += wait
			if delay *= 2; delay > c.policy.MaxDelay {
				delay = c.policy.MaxDelay
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.endpoint()+suffix, rd)
		if err != nil {
			return nil, nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			// Transport errors (connection refused or reset — a restarting
			// or chaos-dropped server) are retryable by nature.
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
			c.rotate()
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			c.rotate()
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return b, resp.Header, nil
		}
		apiErr := &APIError{Code: resp.StatusCode, Message: errorMessage(b), RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		if !apiErr.Retryable() {
			return nil, nil, apiErr
		}
		lastErr = apiErr
		c.rotate()
	}
	return nil, nil, fmt.Errorf("giving up after %d attempts: %w", c.policy.MaxAttempts, lastErr)
}

// retryAfterOf extracts a server Retry-After hint from a retryable error.
func retryAfterOf(err error) time.Duration {
	if apiErr, ok := err.(*APIError); ok {
		return apiErr.RetryAfter
	}
	return 0
}

// parseRetryAfter reads the whole-seconds form of the header the service
// emits (the HTTP-date form is not produced by scda-serve).
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// errorMessage unwraps the service's {"error": "..."} envelope, falling
// back to the raw body.
func errorMessage(b []byte) string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		return env.Error
	}
	return strings.TrimSpace(string(b))
}

// SubmitOpts carries the submission query knobs; zero values are omitted.
type SubmitOpts struct {
	// Reps and Priority mirror ?reps= and ?priority=.
	Reps     int
	Priority int
	// Deadline mirrors ?deadline= verbatim (a duration like "30s" or an
	// RFC 3339 time).
	Deadline string
	// Wait submits with ?wait=true, blocking until the job is terminal.
	Wait bool
}

// query renders the options.
func (o SubmitOpts) query() url.Values {
	q := url.Values{}
	if o.Reps > 0 {
		q.Set("reps", strconv.Itoa(o.Reps))
	}
	if o.Priority != 0 {
		q.Set("priority", strconv.Itoa(o.Priority))
	}
	if o.Deadline != "" {
		q.Set("deadline", o.Deadline)
	}
	if o.Wait {
		q.Set("wait", "true")
	}
	return q
}

// Submit posts one scenario spec (raw JSON bytes) to /v1/jobs, retrying
// through shed load, and returns the job status.
func (c *Client) Submit(ctx context.Context, spec []byte, opts SubmitOpts) (Status, error) {
	b, _, err := c.do(ctx, http.MethodPost, "/v1/jobs", opts.query(), spec)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		return Status{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (Status, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		return Status{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// Jobs lists every job the service remembers, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]Status, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, nil)
	if err != nil {
		return nil, err
	}
	var sts []Status
	if err := json.Unmarshal(b, &sts); err != nil {
		return nil, fmt.Errorf("decoding job list: %w", err)
	}
	return sts, nil
}

// WaitJob polls the job until it reaches a terminal state, backing off
// between polls (jittered BaseDelay..MaxDelay — status polls are cheap
// but not free).
func (c *Client) WaitJob(ctx context.Context, id string) (Status, error) {
	delay := c.policy.BaseDelay
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, c.jitter(delay)); err != nil {
			return Status{}, err
		}
		if delay *= 2; delay > c.policy.MaxDelay {
			delay = c.policy.MaxDelay
		}
	}
}

// Result fetches a done job's result: the JSON document by default, or
// one CSV artifact with csv set ("summary", "throughput", ...).
func (c *Client) Result(ctx context.Context, id, csv string) ([]byte, error) {
	q := url.Values{}
	if csv != "" {
		q.Set("csv", csv)
	}
	b, _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", q, nil)
	return b, err
}

// Cancel DELETEs the job; the returned status reflects the cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	b, _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		return Status{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// Ready probes /readyz, reporting whether the service is accepting
// traffic. Transport errors report not-ready rather than failing: the
// question "is it up?" expects no for a dead server.
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint()+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Metrics fetches the Prometheus text exposition — the chaos harness
// reads counters like scda_job_panics_total through this.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil)
	return string(b), err
}
