package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// SearchVariant is the client-side view of one evaluated search variant.
type SearchVariant struct {
	// Name is the synthesized variant scenario name; Value the domain
	// value it was evaluated at.
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Reps is the replicate count behind the metrics.
	Reps int `json:"reps"`
	// Objective is the goal metric's value; Feasible whether every
	// constraint held.
	Objective float64 `json:"objective"`
	Feasible  bool    `json:"feasible"`
	// Reused marks metrics carried over from an earlier round; Kept
	// whether the variant stayed in contention after pruning.
	Reused bool `json:"reused,omitempty"`
	Kept   bool `json:"kept"`
}

// SearchStatus is the client-side view of a search status document.
type SearchStatus struct {
	// ID is the search handle; Name the base scenario name.
	ID   string `json:"id"`
	Name string `json:"name"`
	// State is the lifecycle state: queued, running, done, failed,
	// cancelled.
	State string `json:"state"`
	// Strategy, Objective, Metric and Parameter echo the compiled search.
	Strategy  string `json:"strategy"`
	Objective string `json:"objective"`
	Metric    string `json:"metric"`
	Parameter string `json:"parameter"`
	// Reps and Priority echo the submission knobs.
	Reps     int `json:"reps"`
	Priority int `json:"priority"`
	// Rounds, Evaluations, CacheHits and Pruned count the work so far; a
	// replayed identical search reports CacheHits == Evaluations.
	Rounds      int `json:"rounds"`
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cacheHits"`
	Pruned      int `json:"pruned"`
	// Incumbent is the best feasible variant so far.
	Incumbent *SearchVariant `json:"incumbent,omitempty"`
	// Error carries the failure reason for a failed search.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the search status is final.
func (s SearchStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "cancelled"
}

// SearchOpts carries the search submission knobs; zero values are
// omitted. Searches take no deadline — the spec's maxSeconds budget is
// the supported wall-clock valve.
type SearchOpts struct {
	// Reps is the base replicate count per evaluation (?reps=).
	Reps int
	// Priority mirrors ?priority=.
	Priority int
	// Wait submits with ?wait=true, blocking until the search is
	// terminal.
	Wait bool
}

// query renders the options.
func (o SearchOpts) query() url.Values {
	q := url.Values{}
	if o.Reps > 0 {
		q.Set("reps", strconv.Itoa(o.Reps))
	}
	if o.Priority != 0 {
		q.Set("priority", strconv.Itoa(o.Priority))
	}
	if o.Wait {
		q.Set("wait", "true")
	}
	return q
}

// SubmitSearch posts one scenario spec with a search block (raw JSON
// bytes) to /v1/searches, retrying through shed load, and returns the
// search status.
func (c *Client) SubmitSearch(ctx context.Context, spec []byte, opts SearchOpts) (SearchStatus, error) {
	b, _, err := c.do(ctx, http.MethodPost, "/v1/searches", opts.query(), spec)
	if err != nil {
		return SearchStatus{}, err
	}
	var st SearchStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return SearchStatus{}, fmt.Errorf("decoding search status: %w", err)
	}
	return st, nil
}

// Search fetches one search's status.
func (c *Client) Search(ctx context.Context, id string) (SearchStatus, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/v1/searches/"+id, nil, nil)
	if err != nil {
		return SearchStatus{}, err
	}
	var st SearchStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return SearchStatus{}, fmt.Errorf("decoding search status: %w", err)
	}
	return st, nil
}

// Searches lists every search the service remembers, in submission
// order.
func (c *Client) Searches(ctx context.Context) ([]SearchStatus, error) {
	b, _, err := c.do(ctx, http.MethodGet, "/v1/searches", nil, nil)
	if err != nil {
		return nil, err
	}
	var sts []SearchStatus
	if err := json.Unmarshal(b, &sts); err != nil {
		return nil, fmt.Errorf("decoding search list: %w", err)
	}
	return sts, nil
}

// WaitSearch polls the search until it reaches a terminal state, backing
// off between polls like WaitJob.
func (c *Client) WaitSearch(ctx context.Context, id string) (SearchStatus, error) {
	delay := c.policy.BaseDelay
	for {
		st, err := c.Search(ctx, id)
		if err != nil {
			return SearchStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, c.jitter(delay)); err != nil {
			return SearchStatus{}, err
		}
		if delay *= 2; delay > c.policy.MaxDelay {
			delay = c.policy.MaxDelay
		}
	}
}

// SearchResult fetches a done search's result: the deterministic JSON
// document by default, or the round-by-round trajectory CSV with csv set
// to "trajectory".
func (c *Client) SearchResult(ctx context.Context, id, csv string) ([]byte, error) {
	q := url.Values{}
	if csv != "" {
		q.Set("csv", csv)
	}
	b, _, err := c.do(ctx, http.MethodGet, "/v1/searches/"+id+"/result", q, nil)
	return b, err
}

// CancelSearch DELETEs the search; the cancel fans out to the in-flight
// round's jobs. The returned status reflects the cancellation.
func (c *Client) CancelSearch(ctx context.Context, id string) (SearchStatus, error) {
	b, _, err := c.do(ctx, http.MethodDelete, "/v1/searches/"+id, nil, nil)
	if err != nil {
		return SearchStatus{}, err
	}
	var st SearchStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return SearchStatus{}, fmt.Errorf("decoding search status: %w", err)
	}
	return st, nil
}
