package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitSearchRetriesThroughShed(t *testing.T) {
	// A search submission shed twice with Retry-After: 1 then accepted:
	// the client waits the hinted second each time and decodes the
	// eventual status.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/searches" || r.Method != http.MethodPost {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("reps") != "2" || r.URL.Query().Get("wait") != "true" {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error": "submission knobs not forwarded"}`))
			return
		}
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error": "overloaded"}`))
			return
		}
		w.Write([]byte(`{"id": "s000001", "state": "done", "strategy": "grid-refine",
		                 "rounds": 2, "evaluations": 7, "cacheHits": 0,
		                 "incumbent": {"name": "x-p42", "value": 3e6, "reps": 1, "objective": 0.5, "feasible": true, "kept": true}}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays), WithRetryPolicy(RetryPolicy{Budget: time.Minute}))
	st, err := c.SubmitSearch(context.Background(), []byte(`{}`), SearchOpts{Reps: 2, Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "s000001" || !st.Terminal() || st.Evaluations != 7 {
		t.Fatalf("status %+v", st)
	}
	if st.Incumbent == nil || st.Incumbent.Value != 3e6 || !st.Incumbent.Feasible {
		t.Fatalf("incumbent %+v", st.Incumbent)
	}
	if len(delays) != 2 || delays[0] != time.Second || delays[1] != time.Second {
		t.Fatalf("sleeps %v, want two 1s waits from Retry-After", delays)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("%d submissions, want 3", n)
	}
}

func TestSubmitSearchBadSpecFailsFast(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error": "spec has no search block; submit plain specs to /v1/jobs or /v1/groups"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays))
	_, err := c.SubmitSearch(context.Background(), []byte(`{}`), SearchOpts{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("error %v, want the 400 APIError", err)
	}
	if hits.Load() != 1 || len(delays) != 0 {
		t.Fatalf("%d requests, %v sleeps — a 400 must not retry", hits.Load(), delays)
	}
}

func TestWaitSearchPollsToTerminal(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/searches/s000003" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		state := "running"
		if hits.Add(1) >= 3 {
			state = "done"
		}
		w.Write([]byte(`{"id": "s000003", "state": "` + state + `"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays))
	st, err := c.WaitSearch(context.Background(), "s000003")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || !st.Terminal() {
		t.Fatalf("status %+v", st)
	}
	if len(delays) != 2 {
		t.Fatalf("polled with %d sleeps, want 2", len(delays))
	}
}

func TestSearchResultAndTrajectory(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/searches/s000004/result" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("csv") == "trajectory" {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			w.Write([]byte("round,reps,evaluations,pruned,incumbent,value,objective\n1,1,2,1,x-p42,3e+06,0.5\n"))
			return
		}
		w.Write([]byte(`{"name": "x", "rounds": []}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	doc, err := c.SearchResult(context.Background(), "s000004", "")
	if err != nil || string(doc) != `{"name": "x", "rounds": []}` {
		t.Fatalf("result %s, %v", doc, err)
	}
	csv, err := c.SearchResult(context.Background(), "s000004", "trajectory")
	if err != nil {
		t.Fatal(err)
	}
	if want := "round,reps,evaluations,pruned,incumbent,value,objective\n"; len(csv) == 0 || string(csv[:len(want)]) != want {
		t.Fatalf("trajectory %s", csv)
	}
}

func TestCancelSearchDecodesStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete || r.URL.Path != "/v1/searches/s000005" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte(`{"id": "s000005", "state": "cancelled"}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	st, err := c.CancelSearch(context.Background(), "s000005")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" || !st.Terminal() {
		t.Fatalf("status %+v", st)
	}
}

func TestSearchesLists(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/searches" || r.Method != http.MethodGet {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte(`[{"id": "s000001", "state": "done"}, {"id": "s000002", "state": "running"}]`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	sts, err := c.Searches(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].ID != "s000001" || sts[1].State != "running" {
		t.Fatalf("list %+v", sts)
	}
}
