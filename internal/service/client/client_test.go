package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// recordingSleep returns a WithSleep hook that records requested delays
// without actually sleeping.
func recordingSleep(delays *[]time.Duration) Option {
	return WithSleep(func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	})
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	// Two sheds with Retry-After: 2, then success. The recorded sleeps
	// must be the server's hint verbatim, not the exponential curve.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error": "overloaded"}`))
			return
		}
		w.Write([]byte(`{"id": "j000001", "state": "done"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays), WithRetryPolicy(RetryPolicy{Budget: time.Minute}))
	st, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000001" || st.State != "done" {
		t.Fatalf("status %+v", st)
	}
	if len(delays) != 2 || delays[0] != 2*time.Second || delays[1] != 2*time.Second {
		t.Fatalf("sleeps %v, want two 2s waits from Retry-After", delays)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("%d requests, want 3", n)
	}
}

func TestExponentialBackoffWithJitter(t *testing.T) {
	// Without Retry-After the curve applies: each recorded sleep lands in
	// [d/2, d) of the doubling schedule.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id": "j000001", "state": "done"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays),
		WithRetryPolicy(RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Budget: time.Minute, Seed: 42}))
	if _, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("sleeps %v, want %d entries", delays, len(want))
	}
	for i, d := range delays {
		if d < want[i]/2 || d >= want[i] {
			t.Fatalf("sleep %d = %s outside [%s, %s)", i, d, want[i]/2, want[i])
		}
	}
}

func TestBudgetBoundsRetries(t *testing.T) {
	// A server that sheds forever with a 10s hint against a 5s budget:
	// the client must give up before sleeping past the budget, with the
	// underlying 429 preserved in the error chain.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "10")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error": "overloaded"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays), WithRetryPolicy(RetryPolicy{Budget: 5 * time.Second}))
	_, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	if err == nil {
		t.Fatal("submission succeeded against a permanently shedding server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("error %v does not carry the 429", err)
	}
	if len(delays) != 0 {
		t.Fatalf("client slept %v although the first wait already broke the budget", delays)
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error": "spec: missing topology"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays))
	_, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("error %v, want the 400 APIError", err)
	}
	if apiErr.Message != "spec: missing topology" {
		t.Fatalf("message %q not unwrapped from the envelope", apiErr.Message)
	}
	if apiErr.Retryable() {
		t.Fatal("400 reported retryable")
	}
	if hits.Load() != 1 || len(delays) != 0 {
		t.Fatalf("%d requests, %v sleeps — a 400 must not retry", hits.Load(), delays)
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	// A connection-refused target is retryable by nature; with 3 attempts
	// the client tries thrice and reports giving up.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens here anymore

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays), WithRetryPolicy(RetryPolicy{MaxAttempts: 3, Budget: time.Minute}))
	_, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	if err == nil {
		t.Fatal("submission to a dead server succeeded")
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2 (attempts 2 and 3)", len(delays))
	}
}

func TestMultiEndpointFailover(t *testing.T) {
	// First endpoint is dead, second is live: the transport failure costs
	// one attempt, the retry rotates, and the request succeeds. Later
	// requests stick to the live endpoint — no further rotation, no
	// further sleeps.
	var hits atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"id": "n1-j000001", "state": "done"}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // nothing listens here anymore

	var delays []time.Duration
	c := NewMulti([]string{dead.URL, live.URL}, recordingSleep(&delays),
		WithRetryPolicy(RetryPolicy{Budget: time.Minute}))
	st, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "n1-j000001" {
		t.Fatalf("status %+v", st)
	}
	if len(delays) != 1 {
		t.Fatalf("slept %d times, want 1 (the rotation retry)", len(delays))
	}
	if _, err := c.Job(context.Background(), "n1-j000001"); err != nil {
		t.Fatal(err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("live endpoint saw %d requests, want 2 — client did not stick after failover", n)
	}
	if len(delays) != 1 {
		t.Fatalf("second request slept (%v): client rotated away from a healthy endpoint", delays)
	}
}

func TestMultiEndpointRotatesOnShed(t *testing.T) {
	// A 429 from one peer rotates to the next before retrying, so a
	// draining peer sheds exactly one attempt per request.
	var shedHits, liveHits atomic.Int64
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shedHits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error": "overloaded"}`))
	}))
	defer shed.Close()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveHits.Add(1)
		w.Write([]byte(`{"id": "n1-j000002", "state": "done"}`))
	}))
	defer live.Close()

	var delays []time.Duration
	c := NewMulti([]string{shed.URL, live.URL}, recordingSleep(&delays),
		WithRetryPolicy(RetryPolicy{Budget: time.Minute}))
	st, err := c.Submit(context.Background(), []byte(`{}`), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "n1-j000002" {
		t.Fatalf("status %+v", st)
	}
	if shedHits.Load() != 1 || liveHits.Load() != 1 {
		t.Fatalf("shed saw %d, live saw %d — want exactly one attempt each", shedHits.Load(), liveHits.Load())
	}
}

func TestWaitJobPollsToTerminal(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j000007" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		state := "running"
		if hits.Add(1) >= 3 {
			state = "done"
		}
		w.Write([]byte(`{"id": "j000007", "state": "` + state + `"}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, recordingSleep(&delays))
	st, err := c.WaitJob(context.Background(), "j000007")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || !st.Terminal() {
		t.Fatalf("status %+v", st)
	}
	if len(delays) != 2 {
		t.Fatalf("polled with %d sleeps, want 2", len(delays))
	}
}

func TestReadyProbe(t *testing.T) {
	ready := atomic.Bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}))
	defer srv.Close()

	c := New(srv.URL)
	if c.Ready(context.Background()) {
		t.Fatal("unready server reported ready")
	}
	ready.Store(true)
	if !c.Ready(context.Background()) {
		t.Fatal("ready server reported unready")
	}
	dead := New("http://127.0.0.1:1") // nothing listens on port 1
	if dead.Ready(context.Background()) {
		t.Fatal("dead server reported ready")
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":    0,
		"0":   0,
		"5":   5 * time.Second,
		"-3":  0,
		"abc": 0,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", in, got, want)
		}
	}
	// Round-trip with the header the server actually sets.
	h := http.Header{}
	h.Set("Retry-After", strconv.Itoa(2))
	if got := parseRetryAfter(h.Get("Retry-After")); got != 2*time.Second {
		t.Fatalf("round-trip = %s", got)
	}
}
