package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/scenario"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                submit a scenario spec (the body is the
//	                               scenario JSON; query: reps, priority,
//	                               wait=true to block until terminal)
//	GET    /v1/jobs                list job statuses in submission order
//	GET    /v1/jobs/{id}           one job's status
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /v1/jobs/{id}/result    the completed result: JSON by default,
//	                               ?csv=summary|throughput|fct-cdf|afct for
//	                               the CLI's byte-identical CSVs
//	GET    /v1/jobs/{id}/events    NDJSON progress stream: full replay,
//	                               then live until the job terminates
//	POST   /v1/groups              submit a spec *with* a sweep block (or a
//	                               JSON array of specs) as one job group;
//	                               same query knobs as /v1/jobs
//	GET    /v1/groups              list group statuses in submission order
//	GET    /v1/groups/{id}         aggregate status + per-variant states
//	DELETE /v1/groups/{id}         cancel the group; fans out to children
//	GET    /v1/groups/{id}/result  all-variants-done result: JSON by
//	                               default, ?csv=... for the per-variant
//	                               CSVs concatenated in expansion order —
//	                               byte-identical to the files
//	                               `scda-bench -scenario-dir` writes
//	GET    /v1/groups/{id}/events  NDJSON group lifecycle stream
//	POST   /v1/searches            submit a spec *with* a search block: the
//	                               service compiles it into an adaptive
//	                               optimization and drives rounds of
//	                               variants through the group machinery
//	                               (query: reps, priority, wait=true)
//	GET    /v1/searches            list search statuses in submission order
//	GET    /v1/searches/{id}       one search's status (rounds so far,
//	                               evaluations, cache hits, incumbent)
//	DELETE /v1/searches/{id}       cancel: no further rounds, and the
//	                               in-flight round's jobs are cancelled
//	GET    /v1/searches/{id}/result  the completed search: incumbent +
//	                               canonical incumbent spec + per-round
//	                               table (JSON), or ?csv=trajectory for
//	                               the round-by-round incumbent CSV —
//	                               both byte-identical across identical
//	                               resubmitted searches
//	GET    /v1/searches/{id}/events  NDJSON round-by-round progress stream
//	GET    /healthz                liveness
//	GET    /readyz                 readiness: 503 while draining or while
//	                               the queue is past the latency SLO
//	GET    /metrics                Prometheus text metrics
//
// Submissions accept ?deadline= (an RFC 3339 time or a relative duration
// like "30s"): the job fails with a deadline error if it cannot complete
// in time. Under overload — when the predicted queue wait for a
// submission's priority exceeds the configured SLO — submissions are
// rejected with 429 and a Retry-After header instead of queueing
// unboundedly.
//
// Errors are JSON objects {"error": "..."} with conventional status codes
// (400 invalid spec or knob, 404 unknown job or path, 405 wrong method,
// 409 conflict with the job's or group's state, 429 shed by admission
// control).
//
// In coordinator mode (Config.Self/Peers set) the same API is served by
// every peer: job submissions route across the fleet by spec hash,
// status/result/events/cancel requests for a job or group minted
// elsewhere are transparently proxied to its home peer, and
// GET /v1/jobs/{id}/artifacts (coordinator mode only) serves a done
// job's full artifact set as base64 JSON — the fleet-internal bulk
// transfer behind remote execution. Requests that already crossed one
// peer hop (the X-Scda-Forwarded header) are never forwarded again;
// a misrouted one is answered 502.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/groups", s.handleGroups)
	mux.HandleFunc("/v1/groups/", s.handleGroup)
	mux.HandleFunc("/v1/searches", s.handleSearches)
	mux.HandleFunc("/v1/searches/", s.handleSearch)
	if s.chaos == nil {
		return mux
	}
	// Chaos latency wraps the API routes only: operator endpoints
	// (/healthz, /readyz, /metrics) stay honest so the harness can still
	// observe the server it is abusing.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if d := s.chaos.HandlerLatency(); d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
				}
			}
		}
		mux.ServeHTTP(w, r)
	})
}

// maxSpecBytes bounds a submitted spec body (1 MiB is orders of magnitude
// above any real spec).
const maxSpecBytes = 1 << 20

// maxGroupBytes bounds a group submission body, which may carry an
// explicit JSON array of many specs.
const maxGroupBytes = 4 << 20

// maxPriorityMagnitude bounds |?priority|: the knob orders a single
// service's queue, so magnitudes beyond this are client bugs (an absurd
// value would also survive forever in the Status wire format).
const maxPriorityMagnitude = 1 << 20

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealthz answers liveness probes.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz answers readiness probes: 200 while the service should
// receive traffic, 503 while draining (Close has begun) or while the
// queue is so deep that new submissions would be shed anyway — the signal
// a load balancer needs to route around an overloaded node before clients
// burn retries on 429s.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !s.Ready():
		httpError(w, http.StatusServiceUnavailable, "overloaded: queue depth exceeds the latency SLO")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	diskEntries, diskBytes := s.disk.stats()
	s.met.writeTo(w, s.pool.Workers(), s.cfg.JobRunners, s.CacheLen(), diskEntries, diskBytes, s.PeerHealth())
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if s.ring != nil {
			s.handleSubmitRing(w, r)
			return
		}
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/jobs", r.Method)
	}
}

// submitParams parses and bounds the query knobs shared by the job and
// group submission endpoints. Before PR 5 negative or absurd values flowed
// straight through strconv.Atoi into Submit — a negative ?reps silently
// became the server default, and any priority magnitude was accepted —
// so validation lives here at the HTTP edge, keeping the programmatic
// Submit's "<= 0 means default" contract intact for in-process callers.
// ok is false when the response has already been written.
func (s *Service) submitParams(w http.ResponseWriter, r *http.Request) (reps, priority int, deadline time.Time, ok bool) {
	q := r.URL.Query()
	reps, err := intParam(q.Get("reps"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reps: %v", err)
		return 0, 0, time.Time{}, false
	}
	if reps < 0 {
		httpError(w, http.StatusBadRequest, "reps: %d is negative (omit or use 0 for the server default)", reps)
		return 0, 0, time.Time{}, false
	}
	if reps > s.cfg.MaxReps {
		httpError(w, http.StatusBadRequest, "reps: %d exceeds the limit %d", reps, s.cfg.MaxReps)
		return 0, 0, time.Time{}, false
	}
	priority, err = intParam(q.Get("priority"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "priority: %v", err)
		return 0, 0, time.Time{}, false
	}
	if priority > maxPriorityMagnitude || priority < -maxPriorityMagnitude {
		httpError(w, http.StatusBadRequest, "priority: %d outside [%d, %d]", priority, -maxPriorityMagnitude, maxPriorityMagnitude)
		return 0, 0, time.Time{}, false
	}
	deadline, err = deadlineParam(q.Get("deadline"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "deadline: %v", err)
		return 0, 0, time.Time{}, false
	}
	return reps, priority, deadline, true
}

// deadlineParam parses the optional ?deadline= knob: a relative duration
// ("30s", "2m") resolved against now, or an absolute RFC 3339 time. A
// deadline in the past is accepted — the job simply fails fast with a
// deadline error, which is more useful to retrying clients than a 400.
func deadlineParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return time.Time{}, fmt.Errorf("duration %s is not positive", d)
		}
		return time.Now().Add(d), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("%q is neither a duration nor an RFC 3339 time", s)
	}
	return t, nil
}

// shed answers a submission rejected by admission control: 429 with a
// Retry-After header in whole seconds (the header's unit), the contract
// the client package's backoff honors.
func (s *Service) shed(w http.ResponseWriter, retryAfter time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	httpError(w, http.StatusTooManyRequests,
		"overloaded: estimated queue wait exceeds the %s latency SLO; retry after %s", s.cfg.SLO, retryAfter)
}

// handleSubmit parses the spec body and query knobs, submits, and answers
// with the job status (201 for a fresh job, 200 when served from cache or
// after ?wait=true).
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reps, priority, deadline, ok := s.submitParams(w, r)
	if !ok {
		return
	}
	// Admission before the body is even read: shedding exists to keep an
	// overloaded server cheap, so the rejection path must not pay for
	// parsing and hashing a spec it will refuse anyway.
	if retryAfter, ok := s.admitHTTP(priority, 1); !ok {
		s.shed(w, retryAfter)
		return
	}
	spec, err := scenario.Parse(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.finishSubmit(w, r, spec, reps, priority, deadline)
}

// finishSubmit is the back half of a local job submission — submit,
// optional ?wait=true block, status response — shared by the single-node
// edge and every coordinator-mode arm that executes locally (ownership,
// degraded fallback, forwarded arrivals).
func (s *Service) finishSubmit(w http.ResponseWriter, r *http.Request, spec *scenario.Spec, reps, priority int, deadline time.Time) {
	j, err := s.SubmitWithDeadline(spec, reps, priority, deadline)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		select {
		case <-j.Done():
			// The wait may have outlived the server's WriteTimeout; push
			// the connection's write deadline out for the response.
			http.NewResponseController(w).SetWriteDeadline(time.Now().Add(streamWriteSlack))
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while waiting for %s", j.ID)
			return
		}
	}
	st := j.Status()
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	code := http.StatusCreated
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleJob routes /v1/jobs/{id}[/result|/events|/artifacts]. In
// coordinator mode an ID minted by another peer is proxied to it.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if peer, remote := s.routeRemote(id); remote {
		s.proxyToPeer(w, r, peer)
		return
	}
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, j.Status())
		case http.MethodDelete:
			s.handleCancel(w, j)
		default:
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a job", r.Method)
		}
	case "result":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a result", r.Method)
			return
		}
		s.handleResult(w, r, j)
	case "events":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on an event stream", r.Method)
			return
		}
		s.handleEvents(w, r, j)
	case "artifacts":
		if s.ring == nil {
			// Fleet-internal bulk transfer; not part of the single-node
			// API surface.
			httpError(w, http.StatusNotFound, "no resource %q under job %s", sub, id)
			return
		}
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on artifacts", r.Method)
			return
		}
		s.handleArtifacts(w, j)
	default:
		httpError(w, http.StatusNotFound, "no resource %q under job %s", sub, id)
	}
}

// handleArtifacts serves a done job's complete artifact set as a JSON
// object of base64 file bytes — the coordinator's bulk fetch after a
// remote execution, so the fetching peer serves byte-identical results.
func (s *Service) handleArtifacts(w http.ResponseWriter, j *Job) {
	art, ok := j.Artifacts()
	if !ok {
		httpError(w, http.StatusConflict, "job %s is %s; artifacts exist only once it is done", j.ID, j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, art.files)
}

// handleCancel cancels a job over the API.
func (s *Service) handleCancel(w http.ResponseWriter, j *Job) {
	cancelled, _ := s.Cancel(j.ID)
	if !cancelled {
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult serves the completed result document or one of its CSVs.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request, j *Job) {
	art, ok := j.Artifacts()
	if !ok {
		httpError(w, http.StatusConflict, "job %s is %s; the result exists only once it is done", j.ID, j.Status().State)
		return
	}
	name, contentType := artResult, "application/json"
	if kind := r.URL.Query().Get("csv"); kind != "" {
		name, contentType = kind+".csv", "text/csv; charset=utf-8"
	}
	b, ok := art.file(name)
	if !ok {
		httpError(w, http.StatusNotFound, "job %s has no %s artifact (have summary, %s)",
			j.ID, name, strings.Join(art.seriesKinds(), ", "))
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// handleEvents streams the job's events as NDJSON: a full replay first
// (cheap — event logs are short and bounded by the replicate count), then
// live events until the job reaches a terminal state or the client
// disconnects. Each line is one Event; flushed per line so curl shows
// progress as it happens.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	s.streamNDJSON(w, r, j.eventsSince)
}

// heartbeatLine is the NDJSON keepalive record emitted on live streams
// after HeartbeatInterval without an event, so intermediaries and clients
// can tell a slow job from a dead connection. Heartbeats fire only while
// *waiting* for a live event, never during replay: a stream of an
// already-terminal job replays and closes without waiting, so recorded
// streams stay wall-clock-free and byte-stable.
type heartbeatLine struct {
	// Heartbeat is always true; its presence is the marker. Event lines
	// never carry the field, so consumers skip heartbeats by key.
	Heartbeat bool `json:"heartbeat"`
}

// streamWriteSlack is the per-write deadline extension on event streams.
// The server's WriteTimeout protects against dead clients, but an NDJSON
// stream legitimately outlives any fixed response timeout — so each write
// burst (and each heartbeat) pushes the connection's write deadline out by
// this much instead. A stream that emits nothing for longer falls back to
// heartbeats, which keep the deadline moving.
const streamWriteSlack = time.Minute

// streamNDJSON drives one NDJSON event stream — replay everything emitted
// so far, then live until the source terminates or the client disconnects
// — shared by the job and group event endpoints. since returns the events
// after the first seen ones, the channel signalling the next change, and
// whether the source reached a terminal state.
//
// Methods cannot be generic, so the Service-dependent knobs (heartbeat
// interval, chaos injection) ride in on s and the event type on since.
func (s *Service) streamNDJSON(w http.ResponseWriter, r *http.Request, since func(seen int) ([]Event, <-chan struct{}, bool)) {
	streamLines(w, r, s.cfg.HeartbeatInterval, s.chaos, since)
}

// streamLines is streamNDJSON's generic engine, shared with the group
// stream's event type.
func streamLines[E any](w http.ResponseWriter, r *http.Request, hb time.Duration, inj *chaos.Injector, since func(seen int) ([]E, <-chan struct{}, bool)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seen := 0
	var hbTimer *time.Timer
	defer func() {
		if hbTimer != nil {
			hbTimer.Stop()
		}
	}()
	for {
		evs, changed, terminal := since(seen)
		if len(evs) > 0 {
			if inj.DropStream() {
				// Sever the connection mid-stream the hard way — no clean
				// close, no terminal event — the failure a resilient
				// consumer must tolerate by re-reading from the start.
				panic(http.ErrAbortHandler)
			}
			rc.SetWriteDeadline(time.Now().Add(streamWriteSlack))
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			seen += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if terminal {
			return
		}
		if hb <= 0 {
			select {
			case <-changed:
			case <-r.Context().Done():
				return
			}
			continue
		}
		if hbTimer == nil {
			hbTimer = time.NewTimer(hb)
		} else {
			hbTimer.Reset(hb)
		}
		select {
		case <-changed:
			if !hbTimer.Stop() {
				<-hbTimer.C
			}
		case <-hbTimer.C:
			rc.SetWriteDeadline(time.Now().Add(streamWriteSlack))
			if err := enc.Encode(heartbeatLine{Heartbeat: true}); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleGroups serves the group collection: POST submits, GET lists.
func (s *Service) handleGroups(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleGroupSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Groups())
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/groups", r.Method)
	}
}

// handleGroupSubmit parses the group body — one spec object (with or
// without a sweep block) or a JSON array of specs, each strictly parsed
// and expanded — submits the flattened variants as one group, and answers
// with the group status (201 for a fresh group, 200 once terminal).
func (s *Service) handleGroupSubmit(w http.ResponseWriter, r *http.Request) {
	reps, priority, deadline, ok := s.submitParams(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGroupBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "group body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	name, variants, err := parseGroupBody(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Group admission runs after expansion, unlike the single-job fast
	// path: the load a group carries is its full variant count, so the
	// body must be parsed to know what to charge against the SLO.
	if retryAfter, ok := s.admitHTTP(priority, len(variants)); !ok {
		s.shed(w, retryAfter)
		return
	}
	g, err := s.SubmitGroupWithDeadline(name, variants, reps, priority, deadline)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		select {
		case <-g.Done():
			// Same WriteTimeout extension as the single-job wait path.
			http.NewResponseController(w).SetWriteDeadline(time.Now().Add(streamWriteSlack))
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while waiting for %s", g.ID)
			return
		}
	}
	st := g.Status()
	w.Header().Set("Location", "/v1/groups/"+g.ID)
	code := http.StatusCreated
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// parseGroupBody turns a group submission body into a base name plus
// sweep-free variant specs: a single spec object expands its sweep (if
// any) and names the group; a JSON array strictly parses and expands each
// element, flattening in order, with the first element naming the group.
// Unlike directory runs, an array may legitimately repeat a variant —
// duplicates dedupe to one computation through the singleflight cache.
func parseGroupBody(body []byte) (string, []*scenario.Spec, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return "", nil, errors.New("empty group body")
	}
	if trimmed[0] != '[' {
		spec, err := scenario.Parse(bytes.NewReader(body))
		if err != nil {
			return "", nil, err
		}
		variants, err := spec.Expand()
		return spec.Name, variants, err
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var elems []json.RawMessage
	if err := dec.Decode(&elems); err != nil {
		return "", nil, fmt.Errorf("scenario array: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return "", nil, errors.New("trailing data after scenario array")
	}
	name := ""
	var variants []*scenario.Spec
	for i, raw := range elems {
		spec, err := scenario.Parse(bytes.NewReader(raw))
		if err != nil {
			return "", nil, fmt.Errorf("scenario array element %d: %v", i, err)
		}
		if i == 0 {
			name = spec.Name
		}
		vs, err := spec.Expand()
		if err != nil {
			return "", nil, fmt.Errorf("scenario array element %d: %v", i, err)
		}
		variants = append(variants, vs...)
	}
	return name, variants, nil
}

// handleGroup routes /v1/groups/{id}[/result|/events]. In coordinator
// mode a group minted by another peer is proxied to it (groups live on
// their entry peer; only their children's computations fan out).
func (s *Service) handleGroup(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/groups/")
	id, sub, _ := strings.Cut(rest, "/")
	if peer, remote := s.routeRemote(id); remote {
		s.proxyToPeer(w, r, peer)
		return
	}
	g, ok := s.Group(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no group %q", id)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, g.Status())
		case http.MethodDelete:
			s.handleGroupCancel(w, g)
		default:
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a group", r.Method)
		}
	case "result":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a group result", r.Method)
			return
		}
		s.handleGroupResult(w, r, g)
	case "events":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on an event stream", r.Method)
			return
		}
		streamLines(w, r, s.cfg.HeartbeatInterval, s.chaos, g.eventsSince)
	default:
		httpError(w, http.StatusNotFound, "no resource %q under group %s", sub, id)
	}
}

// handleGroupCancel cancels a group over the API, fanning out to its
// children.
func (s *Service) handleGroupCancel(w http.ResponseWriter, g *JobGroup) {
	if !s.cancelGroup(g) {
		httpError(w, http.StatusConflict, "group %s already %s", g.ID, g.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, g.Status())
}

// groupResultWire is the JSON shape of the group result endpoint's default
// document: one entry per variant with its result document spliced in.
type groupResultWire struct {
	// ID / Name identify the group.
	ID   string `json:"id"`
	Name string `json:"name"`
	// Replicates is the per-variant replicate count.
	Replicates int `json:"replicates"`
	// Variants holds one entry per variant in expansion order.
	Variants []groupVariantWire `json:"variants"`
}

// groupVariantWire is one variant's slot in the group result document.
type groupVariantWire struct {
	// ID is the child job, Name the variant scenario, Key its cache key.
	ID   string `json:"id"`
	Name string `json:"name"`
	Key  string `json:"key"`
	// CacheHit reports whether the variant was served without
	// recomputation.
	CacheHit bool `json:"cacheHit"`
	// Result is the variant's result document (the job result endpoint's
	// default JSON).
	Result json.RawMessage `json:"result"`
}

// handleGroupResult serves the completed group: the aggregate JSON
// document by default, or — with ?csv= — the per-variant CSV artifacts of
// that kind concatenated in expansion order, which is byte-identical to
// concatenating the files `scda-bench -scenario-dir` writes for the same
// pre-expanded specs (each variant's artifact already is that file's
// bytes). Results exist only once every variant is done.
func (s *Service) handleGroupResult(w http.ResponseWriter, r *http.Request, g *JobGroup) {
	jobs, ok := g.doneJobs()
	if !ok {
		httpError(w, http.StatusConflict, "group %s is %s; the result exists only once every variant is done", g.ID, g.Status().State)
		return
	}
	kind := r.URL.Query().Get("csv")
	if kind == "" {
		doc := groupResultWire{ID: g.ID, Name: g.Name, Replicates: g.Reps, Variants: make([]groupVariantWire, 0, len(jobs))}
		for _, j := range jobs {
			art, ok := j.Artifacts()
			if !ok {
				httpError(w, http.StatusConflict, "variant %s has no artifacts", j.ID)
				return
			}
			b, _ := art.file(artResult)
			doc.Variants = append(doc.Variants, groupVariantWire{
				// TrimSpace drops the artifact's trailing newline, which is
				// not part of the JSON value being spliced.
				ID: j.ID, Name: j.Spec.Name, Key: j.Key, CacheHit: j.Status().CacheHit, Result: bytes.TrimSpace(b),
			})
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	name := kind + ".csv"
	parts := make([][]byte, 0, len(jobs))
	total := 0
	for _, j := range jobs {
		art, ok := j.Artifacts()
		if !ok {
			httpError(w, http.StatusConflict, "variant %s has no artifacts", j.ID)
			return
		}
		b, ok := art.file(name)
		if !ok {
			httpError(w, http.StatusNotFound, "variant %s has no %s artifact (have summary, %s)",
				j.Spec.Name, name, strings.Join(art.seriesKinds(), ", "))
			return
		}
		parts = append(parts, b)
		total += len(b)
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(total))
	for _, b := range parts {
		w.Write(b)
	}
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
