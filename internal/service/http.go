package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                submit a scenario spec (the body is the
//	                               scenario JSON; query: reps, priority,
//	                               wait=true to block until terminal)
//	GET    /v1/jobs                list job statuses in submission order
//	GET    /v1/jobs/{id}           one job's status
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /v1/jobs/{id}/result    the completed result: JSON by default,
//	                               ?csv=summary|throughput|fct-cdf|afct for
//	                               the CLI's byte-identical CSVs
//	GET    /v1/jobs/{id}/events    NDJSON progress stream: full replay,
//	                               then live until the job terminates
//	GET    /healthz                liveness
//	GET    /metrics                Prometheus text metrics
//
// Errors are JSON objects {"error": "..."} with conventional status codes
// (400 invalid spec, 404 unknown job or path, 405 wrong method, 409
// conflict with the job's state).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	return mux
}

// maxSpecBytes bounds a submitted spec body (1 MiB is orders of magnitude
// above any real spec).
const maxSpecBytes = 1 << 20

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealthz answers liveness probes.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeTo(w, s.pool.Workers(), s.cfg.JobRunners, s.CacheLen())
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/jobs", r.Method)
	}
}

// handleSubmit parses the spec body and query knobs, submits, and answers
// with the job status (201 for a fresh job, 200 when served from cache or
// after ?wait=true).
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	reps, err := intParam(q.Get("reps"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reps: %v", err)
		return
	}
	priority, err := intParam(q.Get("priority"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "priority: %v", err)
		return
	}
	spec, err := scenario.Parse(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.Submit(spec, reps, priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.Get("wait") == "true" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while waiting for %s", j.ID)
			return
		}
	}
	st := j.Status()
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	code := http.StatusCreated
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleJob routes /v1/jobs/{id}[/result|/events].
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, j.Status())
		case http.MethodDelete:
			s.handleCancel(w, j)
		default:
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a job", r.Method)
		}
	case "result":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a result", r.Method)
			return
		}
		s.handleResult(w, r, j)
	case "events":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on an event stream", r.Method)
			return
		}
		s.handleEvents(w, r, j)
	default:
		httpError(w, http.StatusNotFound, "no resource %q under job %s", sub, id)
	}
}

// handleCancel cancels a job over the API.
func (s *Service) handleCancel(w http.ResponseWriter, j *Job) {
	cancelled, _ := s.Cancel(j.ID)
	if !cancelled {
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult serves the completed result document or one of its CSVs.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request, j *Job) {
	art, ok := j.Artifacts()
	if !ok {
		httpError(w, http.StatusConflict, "job %s is %s; the result exists only once it is done", j.ID, j.Status().State)
		return
	}
	name, contentType := artResult, "application/json"
	if kind := r.URL.Query().Get("csv"); kind != "" {
		name, contentType = kind+".csv", "text/csv; charset=utf-8"
	}
	b, ok := art.file(name)
	if !ok {
		httpError(w, http.StatusNotFound, "job %s has no %s artifact (have summary, %s)",
			j.ID, name, strings.Join(art.seriesKinds(), ", "))
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// handleEvents streams the job's events as NDJSON: a full replay first
// (cheap — event logs are short and bounded by the replicate count), then
// live events until the job reaches a terminal state or the client
// disconnects. Each line is one Event; flushed per line so curl shows
// progress as it happens.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seen := 0
	for {
		evs, changed, terminal := j.eventsSince(seen)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		seen += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
