package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/scenario"
)

// State is a job's lifecycle position. The machine is
// queued → running → {done, failed, cancelled}; a queued job may also jump
// straight to done (submit-time cache hit) or cancelled (DELETE before any
// runner picked it up).
type State string

// The job states, in lifecycle order.
const (
	// StateQueued: accepted and waiting in the priority queue.
	StateQueued State = "queued"
	// StateRunning: a job runner is executing (or deduplicating) it.
	StateRunning State = "running"
	// StateDone: the result is available from the result endpoint.
	StateDone State = "done"
	// StateFailed: the run errored; Event.Error / the status carry why.
	StateFailed State = "failed"
	// StateCancelled: stopped by DELETE or service shutdown before a
	// result was produced.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one NDJSON record on a job's event stream. Events carry no
// wall-clock time, so a replayed stream is deterministic for a cached or
// re-run job — sequence numbers order them.
type Event struct {
	// Seq numbers events from 1 within one job.
	Seq int `json:"seq"`
	// State is the job's state when the event fired.
	State State `json:"state"`
	// RepsDone / RepsTotal report replication progress.
	RepsDone  int `json:"repsDone"`
	RepsTotal int `json:"repsTotal"`
	// CacheHit marks a terminal done event served without recomputation.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Error carries the failure reason on a failed event.
	Error string `json:"error,omitempty"`
}

// Job is one submitted scenario run moving through the service. The
// identity fields are immutable after Submit; everything else is guarded
// by mu and observed through Status and the event stream.
type Job struct {
	// ID is the service-assigned handle ("j000001", ...).
	ID string
	// Spec is the validated scenario (sweepless; see Service.Submit).
	Spec *scenario.Spec
	// Key is the result-cache key: spec hash × replicate count.
	Key string
	// Reps is the replicate count the result aggregates over.
	Reps int
	// Priority orders the queue; higher runs first, FIFO within a level.
	Priority int
	// Deadline, when non-zero, is the absolute completion deadline: the
	// run is cut off at the next replicate boundary past it and the job
	// fails with a deadline error. Immutable after Submit.
	Deadline time.Time

	// group, when non-nil, is the job group this job is a variant of; the
	// group observes every event the job emits. Immutable after newJob.
	group *JobGroup

	// hash is the bare canonical spec hash (Key without the reps suffix),
	// the coordinator's routing key. Immutable after newJob.
	hash string

	mu       sync.Mutex
	state    State
	err      string
	repsDone int
	cacheHit bool
	events   []Event
	changed  chan struct{} // closed and replaced on every event
	done     chan struct{} // closed once, on reaching a terminal state
	cancel   context.CancelFunc
	art      *artifacts
}

// Status is the wire snapshot of a job, served by the status and list
// endpoints and returned from Submit.
type Status struct {
	// ID is the job handle; the job's URLs derive from it.
	ID string `json:"id"`
	// Name is the scenario name from the spec.
	Name string `json:"name"`
	// Key is the result-cache key (also `scda-sim -hash` plus the reps).
	Key string `json:"key"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Priority echoes the submit-time queue priority.
	Priority int `json:"priority"`
	// Reps / RepsDone report replication progress.
	Reps     int `json:"reps"`
	RepsDone int `json:"repsDone"`
	// CacheHit reports whether the result was served without recomputation.
	CacheHit bool `json:"cacheHit"`
	// Error carries the failure reason for a failed job.
	Error string `json:"error,omitempty"`
}

func newJob(id string, spec *scenario.Spec, key, hash string, reps, priority int, deadline time.Time, g *JobGroup) *Job {
	j := &Job{
		ID:       id,
		Spec:     spec,
		Key:      key,
		hash:     hash,
		Reps:     reps,
		Priority: priority,
		Deadline: deadline,
		group:    g,
		state:    StateQueued,
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.emitLocked() // the initial queued event
	return j
}

// Status returns a consistent snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:       j.ID,
		Name:     j.Spec.Name,
		Key:      j.Key,
		State:    j.state,
		Priority: j.Priority,
		Reps:     j.Reps,
		RepsDone: j.repsDone,
		CacheHit: j.cacheHit,
		Error:    j.err,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// terminal reports whether the job has reached a terminal state, without
// building a full Status snapshot.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// Artifacts returns the rendered result files once the job is done.
func (j *Job) Artifacts() (*artifacts, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.art == nil {
		return nil, false
	}
	return j.art, true
}

// emitLocked appends an event reflecting the current state, wakes stream
// watchers, and forwards the event to the owning group (if any). Callers
// hold j.mu; the lock order j.mu → group.mu is part of the service's lock
// hierarchy (the group never calls back into a job while holding its own
// lock).
func (j *Job) emitLocked() {
	ev := Event{
		Seq:       len(j.events) + 1,
		State:     j.state,
		RepsDone:  j.repsDone,
		RepsTotal: j.Reps,
		CacheHit:  j.cacheHit && j.state == StateDone,
		Error:     j.err,
	}
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
	if j.state.Terminal() {
		close(j.done)
	}
	if j.group != nil {
		j.group.childEvent(j, ev)
	}
}

// eventsSince returns the events after fromSeq, the channel that signals
// the next change, and whether the job has terminated — the polling
// primitive behind the NDJSON stream (replay then wait, no subscriber
// bookkeeping, no dropped events).
func (j *Job) eventsSince(fromSeq int) (evs []Event, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if fromSeq < len(j.events) {
		evs = append(evs, j.events[fromSeq:]...)
	}
	return evs, j.changed, j.state.Terminal()
}

// begin moves queued → running and installs the cancel hook; it fails if
// the job was cancelled while waiting in the queue.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.emitLocked()
	return true
}

// progress records done completed replicates.
func (j *Job) progress(done int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || done <= j.repsDone {
		return
	}
	j.repsDone = done
	j.emitLocked()
}

// complete moves the job to done with the rendered artifacts.
func (j *Job) complete(art *artifacts, cacheHit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateDone
	j.art = art
	j.cacheHit = cacheHit
	j.repsDone = j.Reps
	j.emitLocked()
}

// fail moves the job to failed with the error message.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateFailed
	j.err = msg
	j.emitLocked()
}

// requestCancel asks the job to stop: a queued job cancels immediately
// (fromQueued reports that, so the caller can account for the terminal
// transition no runner will see), a running job has its context cancelled
// (taking effect at the next replicate boundary). ok is false —
// cancellation impossible — for a job already in a terminal state.
func (j *Job) requestCancel() (ok, fromQueued bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.emitLocked()
		return true, true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true, false
	default:
		return false, false
	}
}

// finishCancelled marks a running job cancelled after its context fired.
func (j *Job) finishCancelled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateCancelled
	j.emitLocked()
}
