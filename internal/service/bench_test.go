package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkServiceSubmitCached measures the cache hot path end to end over
// HTTP: POST an already-cached spec and read the completed status back.
// This is the million-user trajectory the service exists for — strict spec
// parse, canonical hash, memory-cache Peek, response encode — with zero
// simulation work. Recorded in BENCH_hotpath.json by scripts/bench.sh.
func BenchmarkServiceSubmitCached(b *testing.B) {
	svc := New(Config{Workers: 1, JobRunners: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Warm the cache with one real run.
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json", strings.NewReader(testSpec))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup submit status %d", resp.StatusCode)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json", strings.NewReader(testSpec))
		if err != nil {
			b.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("submit status %d", resp.StatusCode)
		}
		if !strings.Contains(string(body), `"cacheHit": true`) {
			b.Fatalf("submission %d missed the cache: %s", i, body)
		}
	}
}

// BenchmarkServiceGroupSubmitCached measures the group cache hot path end
// to end over HTTP: POST an already-cached sweep spec to /v1/groups and
// read the born-done group status back. Per iteration that is one strict
// parse, a server-side sweep expansion, and one hash + memory-cache Peek
// per variant — zero simulation work. Recorded in BENCH_hotpath.json by
// scripts/bench.sh.
func BenchmarkServiceGroupSubmitCached(b *testing.B) {
	svc := New(Config{Workers: 1, JobRunners: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Warm the cache with one real run of every variant.
	resp, err := http.Post(ts.URL+"/v1/groups?wait=true", "application/json", strings.NewReader(sweepSpec))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup group submit status %d", resp.StatusCode)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/groups?wait=true", "application/json", strings.NewReader(sweepSpec))
		if err != nil {
			b.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("group submission %d status %d", i, resp.StatusCode)
		}
		if !strings.Contains(string(body), `"cacheHits": 3`) {
			b.Fatalf("group submission %d missed the cache: %s", i, body)
		}
	}
}

// BenchmarkServiceSearchCached measures an adaptive search replay end to
// end over HTTP: POST a search spec whose every evaluation is already
// cached and wait for convergence. Per iteration that is a strict parse,
// search compilation, and a full engine run — one round submitted as a
// job group whose variants are all born-done cache hits — with zero
// simulation work. This is the cost of asking an already-answered
// optimization question. Recorded in BENCH_hotpath.json by
// scripts/bench.sh.
func BenchmarkServiceSearchCached(b *testing.B) {
	svc := New(Config{Workers: 1, JobRunners: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Warm the cache with one real run of the search's evaluations.
	resp, err := http.Post(ts.URL+"/v1/searches?wait=true", "application/json", strings.NewReader(searchSpec))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup search submit status %d", resp.StatusCode)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/searches?wait=true", "application/json", strings.NewReader(searchSpec))
		if err != nil {
			b.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("search submission %d status %d", i, resp.StatusCode)
		}
		if !strings.Contains(string(body), `"cacheHits": 2`) {
			b.Fatalf("search submission %d missed the cache: %s", i, body)
		}
	}
}

// BenchmarkServiceSubmitShed measures the rejection fast path: a service
// pinned into overload (1ms SLO against a seeded 10s cost estimate) must
// answer every submission 429 before touching the body — the whole point
// of shedding is that saying no stays cheap while the server is drowning.
// Recorded in BENCH_hotpath.json by scripts/bench.sh.
func BenchmarkServiceSubmitShed(b *testing.B) {
	svc := New(Config{Workers: 1, JobRunners: 1, SLO: time.Millisecond})
	defer svc.Close()
	svc.adm.observe(10 * time.Second)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(testSpec))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			b.Fatalf("submission %d got %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			b.Fatal("429 without Retry-After")
		}
	}
}
