package service

import (
	"container/heap"
	"sync"
)

// jobQueue is the priority-ordered submission queue: Pop returns the
// highest-priority waiting job, FIFO within a priority level (ordered by
// submission sequence), and blocks while the queue is empty. Close wakes
// every blocked Pop; a closed queue's Pop reports ok=false immediately so
// runner goroutines drain out during shutdown (the Service cancels the
// still-queued jobs itself).
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  queueHeap
	depths map[int]int // waiting-job count per priority level, for admission
	seq    uint64
	closed bool
}

// newJobQueue returns an empty open queue.
func newJobQueue() *jobQueue {
	q := &jobQueue{depths: make(map[int]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job, reporting false when the queue has been closed so
// the caller can cancel the job instead of orphaning it.
func (q *jobQueue) Push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, seq: q.seq})
	q.depths[j.Priority]++
	q.cond.Signal()
	return true
}

// Pop blocks until a job is available or the queue is closed.
func (q *jobQueue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	it := heap.Pop(&q.items).(queued)
	q.dropDepth(it.job.Priority)
	return it.job, true
}

// dropDepth decrements the per-priority depth count, deleting emptied
// levels so the map tracks only priorities actually present. Caller holds
// q.mu.
func (q *jobQueue) dropDepth(priority int) {
	if q.depths[priority]--; q.depths[priority] <= 0 {
		delete(q.depths, priority)
	}
}

// DepthAtOrAbove reports how many waiting jobs would run before (or
// alongside) a new submission at the given priority — the queue share that
// admission control charges against the latency SLO. Counting only levels
// >= priority is what makes shedding hit the lowest-priority traffic
// first: a high-priority submission sees a shorter effective queue and is
// admitted deeper into overload. The map holds one entry per distinct
// waiting priority (a handful in practice), so the scan is cheap enough
// for the submit path.
func (q *jobQueue) DepthAtOrAbove(priority int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	depth := 0
	for p, n := range q.depths {
		if p >= priority {
			depth += n
		}
	}
	return depth
}

// Remove deletes the job's entry from the heap, if present, so a job
// cancelled while queued releases its memory immediately instead of
// lingering as a dead entry until a runner pops it. O(n) scan — fine for
// a cancel path.
func (q *jobQueue) Remove(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.items {
		if q.items[i].job == j {
			heap.Remove(&q.items, i)
			q.dropDepth(j.Priority)
			return
		}
	}
}

// Close marks the queue closed, wakes all blocked Pops, and returns the
// jobs still waiting (in pop order) so the caller can cancel them.
func (q *jobQueue) Close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	rest := make([]*Job, 0, len(q.items))
	for len(q.items) > 0 {
		rest = append(rest, heap.Pop(&q.items).(queued).job)
	}
	q.depths = make(map[int]int)
	q.cond.Broadcast()
	return rest
}

// Len reports the waiting-job count.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// queued is one heap entry: the job plus its submission sequence number,
// which breaks priority ties first-come-first-served.
type queued struct {
	job *Job
	seq uint64
}

// queueHeap orders by descending priority, then ascending sequence.
type queueHeap []queued

// Len implements heap.Interface.
func (h queueHeap) Len() int { return len(h) }

// Less implements heap.Interface: higher priority first, then FIFO.
func (h queueHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h queueHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *queueHeap) Push(x any) { *h = append(*h, x.(queued)) }

// Pop implements heap.Interface.
func (h *queueHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
