package service

import (
	"math"
	"sync"
	"time"
)

// admission is the service's load-shedding decision maker. It tracks an
// exponentially weighted moving average of per-job compute cost (wall time
// of fresh computations only — cache hits and joined flights cost nothing
// and would drag the estimate toward zero) and, on every HTTP submission,
// predicts how long the new work would wait behind the queue:
//
//	estimated wait = mean_cost × (depth_at_or_above_priority + n) / runners
//
// where n is the submission's job count (a group counts at its full
// expansion size — a 100-variant sweep is 100 jobs of load the moment it
// is accepted, not one). When the estimate exceeds the configured latency
// SLO the submission is rejected with 429 and a Retry-After computed from
// the excess, so a burst past capacity degrades into fast, honest
// rejections instead of an unbounded heap and collapsing latency. Charging
// only the queue at-or-above the submission's priority sheds the
// lowest-priority traffic first.
//
// Before the first completed computation there is no cost estimate and
// everything is admitted: an empty, idle service must not reject its first
// job, and the estimate exists by the time a queue can have formed.
type admission struct {
	slo     time.Duration // 0 = shedding disabled
	runners int

	mu      sync.Mutex
	mean    float64 // EWMA of per-job compute seconds
	samples int64
}

// admissionAlpha is the EWMA smoothing factor: ~0.2 means the estimate
// reflects roughly the last five jobs, adapting within a few completions
// when traffic shifts between cheap and expensive specs.
const admissionAlpha = 0.2

// retryAfterMin / retryAfterMax clamp the Retry-After hint: at least one
// second (clients should not hammer), at most five minutes (past that the
// estimate is noise).
const (
	retryAfterMin = time.Second
	retryAfterMax = 5 * time.Minute
)

// newAdmission returns a controller enforcing slo over runners job
// runners; slo <= 0 disables shedding (decide always admits).
func newAdmission(slo time.Duration, runners int) *admission {
	if runners < 1 {
		runners = 1
	}
	return &admission{slo: slo, runners: runners}
}

// observe folds one fresh computation's wall time into the cost estimate.
func (a *admission) observe(d time.Duration) {
	if d < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := d.Seconds()
	if a.samples == 0 {
		a.mean = s
	} else {
		a.mean = admissionAlpha*s + (1-admissionAlpha)*a.mean
	}
	a.samples++
}

// meanCost reports the current per-job cost estimate and whether any
// sample backs it.
func (a *admission) meanCost() (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.mean * float64(time.Second)), a.samples > 0
}

// decide admits or sheds a submission of n jobs that would wait behind
// depth queued jobs at or above its priority. ok=false means shed;
// retryAfter is then the suggested client backoff — the time for the
// excess queue to drain at the current cost estimate, clamped to
// [1s, 5m].
func (a *admission) decide(depth, n int) (retryAfter time.Duration, ok bool) {
	if a.slo <= 0 {
		return 0, true
	}
	a.mu.Lock()
	mean, samples := a.mean, a.samples
	a.mu.Unlock()
	if samples == 0 {
		return 0, true
	}
	wait := mean * float64(depth+n) / float64(a.runners)
	if wait <= a.slo.Seconds() {
		return 0, true
	}
	excess := time.Duration((wait - a.slo.Seconds()) * float64(time.Second))
	return clampRetryAfter(excess), false
}

// overloaded reports whether the total queue depth alone already exceeds
// the SLO — the /readyz criterion. It intentionally ignores priority:
// readiness is a node-level signal for load balancers, not a per-request
// decision.
func (a *admission) overloaded(totalDepth int) bool {
	if a.slo <= 0 {
		return false
	}
	a.mu.Lock()
	mean, samples := a.mean, a.samples
	a.mu.Unlock()
	if samples == 0 {
		return false
	}
	return mean*float64(totalDepth)/float64(a.runners) > a.slo.Seconds()
}

// clampRetryAfter bounds a Retry-After hint to [retryAfterMin,
// retryAfterMax], rounding up to whole seconds (the header's unit).
func clampRetryAfter(d time.Duration) time.Duration {
	if d < retryAfterMin {
		return retryAfterMin
	}
	if d > retryAfterMax {
		return retryAfterMax
	}
	return time.Duration(math.Ceil(d.Seconds())) * time.Second
}
