package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// distinctSpecs returns n copies of testSpec at distinct seeds, so each
// occupies its own cache entry.
func distinctSpecs(n, base int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strings.Replace(testSpec, `"seed": 3`, fmt.Sprintf(`"seed": %d`, base+i), 1)
	}
	return out
}

// cacheDirs lists the non-temporary entry directories under dir.
func cacheDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".tmp-") {
			keys = append(keys, e.Name())
		}
	}
	return keys
}

func TestDiskCacheEntryBound(t *testing.T) {
	// Three distinct specs through a 2-entry disk bound: the oldest entry
	// is removed from disk, the recent two survive, and the evicted spec
	// recomputes (and re-persists) on resubmission.
	dir := t.TempDir()
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheDir: dir, CacheMaxEntries: 2, CacheMaxBytes: -1})
	specs := distinctSpecs(3, 200)
	var keys []string
	for i, spec := range specs {
		st, code := submit(t, ts, spec, "?wait=true")
		if code != http.StatusOK || st.State != StateDone {
			t.Fatalf("submit %d: %d %+v", i, code, st)
		}
		keys = append(keys, st.Key)
	}
	if got := cacheDirs(t, dir); len(got) != 2 {
		t.Fatalf("disk cache holds %d entries, want 2: %v", len(got), got)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0])); !os.IsNotExist(err) {
		t.Fatalf("oldest entry %s still on disk (err %v)", keys[0], err)
	}
	for _, k := range keys[1:] {
		if _, err := os.Stat(filepath.Join(dir, k)); err != nil {
			t.Fatalf("recent entry %s evicted: %v", k, err)
		}
	}
	if entries, bytes := svc.disk.stats(); entries != 2 || bytes <= 0 {
		t.Fatalf("disk stats = (%d, %d)", entries, bytes)
	}
}

func TestDiskCacheByteBound(t *testing.T) {
	// A byte cap smaller than one entry: every save is evicted right after
	// it lands, the response is still served, and the directory stays
	// empty — the bound holds even in the degenerate case.
	dir := t.TempDir()
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheDir: dir, CacheMaxEntries: -1, CacheMaxBytes: 1})
	st, code := submit(t, ts, testSpec, "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: %d %+v", code, st)
	}
	if got := cacheDirs(t, dir); len(got) != 0 {
		t.Fatalf("byte-capped disk cache holds %v", got)
	}
	if entries, bytes := svc.disk.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("disk stats = (%d, %d), want empty", entries, bytes)
	}
	// The memory layer still has it.
	if st2, _ := submit(t, ts, testSpec, "?wait=true"); !st2.CacheHit {
		t.Fatal("memory layer lost the result")
	}
}

func TestDiskCacheStartupTrimAndTmpSweep(t *testing.T) {
	// A restarted server adopts persisted entries oldest-first by mtime,
	// trims beyond the configured bound immediately, and sweeps stale
	// ".tmp-" write debris a crash left behind.
	dir := t.TempDir()
	svc1 := New(Config{Workers: 1, JobRunners: 1, CacheDir: dir, CacheMaxEntries: -1, CacheMaxBytes: -1})
	ts1 := newServerFor(t, svc1)
	specs := distinctSpecs(3, 300)
	var keys []string
	for i, spec := range specs {
		st, code := submit(t, ts1, spec, "?wait=true")
		if code != http.StatusOK {
			t.Fatalf("submit %d: %d", i, code)
		}
		keys = append(keys, st.Key)
	}
	ts1.Close()
	svc1.Close()

	// Force a recognizable age order and drop crash debris.
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k), when, when); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-"+keys[0]+"-crashed"), 0o755); err != nil {
		t.Fatal(err)
	}

	svc2, _ := newTestServer(t, Config{Workers: 1, JobRunners: 1, CacheDir: dir, CacheMaxEntries: 2, CacheMaxBytes: -1})
	got := cacheDirs(t, dir)
	if len(got) != 2 {
		t.Fatalf("startup trim left %d entries: %v", len(got), got)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0])); !os.IsNotExist(err) {
		t.Fatalf("oldest persisted entry survived the startup trim (err %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stale tmp dir %s not swept", e.Name())
		}
	}
	if n, _ := svc2.disk.stats(); n != 2 {
		t.Fatalf("adopted %d entries, want 2", n)
	}
}

// newServerFor wraps an already-created service in an httptest server the
// caller closes itself (for restart tests where Close order matters).
func newServerFor(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	return httptest.NewServer(svc.Handler())
}
