// End-to-end coordinator-mode tests: real multi-peer rings built by the
// servicetest harness, driven over HTTP exactly as external clients and
// peers drive each other. The external test package keeps these honest —
// everything here goes through the public API surface.
package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/service/servicetest"
)

// ringSpec renders a cheap distinct scenario per seed: one fig6 run
// small enough that a whole fleet of them stays in test-suite budget.
func ringSpec(seed int) string {
	return fmt.Sprintf(`{
  "version": 1,
  "name": "ring-e2e",
  "seed": %d,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput", "fct-cdf"]}
}`, seed)
}

// specHash computes the canonical hash a submission of body routes by.
func specHash(t *testing.T, body string) string {
	t.Helper()
	spec, err := scenario.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// postJob submits a spec body to base and decodes the job status.
func postJob(t *testing.T, base, body, query string) (service.Status, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var st service.Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decoding %s: %v", b, err)
		}
	}
	return st, resp.StatusCode
}

// getBytes fetches a URL and returns body and status code.
func getBytes(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return b, resp.StatusCode
}

// metricValue reads one unlabeled metric family's value from a peer's
// /metrics exposition (0 when absent).
func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	b, code := getBytes(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics from %s: %d", base, code)
	}
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// nodeOf parses the node index prefix off a fleet job or group ID.
func nodeOf(t *testing.T, id string) int {
	t.Helper()
	if len(id) < 2 || id[0] != 'n' {
		t.Fatalf("id %q carries no node prefix", id)
	}
	dash := strings.IndexByte(id, '-')
	n, err := strconv.Atoi(id[1:dash])
	if err != nil {
		t.Fatalf("id %q: %v", id, err)
	}
	return n
}

// singleNode starts a plain single-node reference service.
func singleNode(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// TestRingParityAndFleetDedup is the core coordinator-mode guarantee:
// the same specs submitted to a 3-peer ring through rotating entry
// peers produce results byte-identical to a single node, every
// forwarded submission lands on the spec's owner in one hop (the ID's
// node prefix proves where it ran), results are fetchable from any
// peer, and the fleet computes each spec exactly once no matter where
// it was submitted.
func TestRingParityAndFleetDedup(t *testing.T) {
	fleet := servicetest.StartRing(t, 3, nil)
	ref := singleNode(t, service.Config{Workers: 1, JobRunners: 2})

	const nSpecs = 4
	kinds := []string{"", "?csv=summary", "?csv=throughput", "?csv=fct-cdf"}
	for i := 0; i < nSpecs; i++ {
		body := ringSpec(100 + i)
		owner := fleet.OwnerIndex(specHash(t, body))
		entry := fleet.Peers[i%3]

		// Single-node reference bytes for every artifact kind.
		refSt, code := postJob(t, ref.URL, body, "?wait=true")
		if code != http.StatusOK || refSt.State != service.StateDone {
			t.Fatalf("reference submit %d: %d %+v", i, code, refSt)
		}
		want := make([][]byte, len(kinds))
		for k, q := range kinds {
			b, code := getBytes(t, ref.URL+"/v1/jobs/"+refSt.ID+"/result"+q)
			if code != http.StatusOK {
				t.Fatalf("reference result %s: %d", q, code)
			}
			want[k] = b
		}

		st, code := postJob(t, entry.URL, body, "?wait=true")
		if code != http.StatusOK || st.State != service.StateDone {
			t.Fatalf("ring submit %d via n%d: %d %+v", i, entry.Index, code, st)
		}
		if st.CacheHit {
			t.Fatalf("spec %d: first fleet submission must compute, got a cache hit", i)
		}
		// Single hop, right peer: the job was minted by the spec's owner,
		// whether the entry peer owned it or forwarded exactly once.
		if got := nodeOf(t, st.ID); got != owner {
			t.Fatalf("spec %d entered via n%d but ran on n%d; owner is n%d", i, entry.Index, got, owner)
		}
		// Results are served byte-identically from every peer, owner or
		// not — remote fetches exercise the transparent proxy.
		for _, p := range fleet.Peers {
			for k, q := range kinds {
				b, code := getBytes(t, p.URL+"/v1/jobs/"+st.ID+"/result"+q)
				if code != http.StatusOK {
					t.Fatalf("spec %d result %s via n%d: %d", i, q, p.Index, code)
				}
				if !bytes.Equal(b, want[k]) {
					t.Fatalf("spec %d result %s via n%d differs from single-node bytes", i, q, p.Index)
				}
			}
		}
	}

	// Resubmitting every spec through a different entry peer is a fleet
	// cache hit: N more submissions, zero more computes.
	for i := 0; i < nSpecs; i++ {
		entry := fleet.Peers[(i+1)%3]
		st, code := postJob(t, entry.URL, ringSpec(100+i), "?wait=true")
		if code != http.StatusOK || st.State != service.StateDone || !st.CacheHit {
			t.Fatalf("resubmit %d via n%d: %d %+v, want a cache hit", i, entry.Index, code, st)
		}
	}

	// Fleet-wide dedup: across all peers, each distinct spec was computed
	// exactly once (remote fetches count on neither side's miss counter).
	var misses int64
	for _, p := range fleet.Peers {
		misses += metricValue(t, p.URL, "scda_cache_misses_total")
	}
	if misses != nSpecs {
		t.Fatalf("fleet computed %d times for %d distinct specs", misses, nSpecs)
	}
}

// TestRingShippedScenarioParity runs the shipped scenarios/ specs
// through a 3-peer ring via rotating entry peers and byte-diffs every
// artifact — the result document and each CSV kind — against a
// single-node service. -short keeps only the sub-100ms specs, and the
// race detector drops the multi-second ones (see race_on_test.go);
// fluid-100k.json (~8 min single-core) is never run here, its
// service-path parity is covered by scripts/service-smoke.sh.
func TestRingShippedScenarioParity(t *testing.T) {
	specs := []struct {
		file    string
		inShort bool // cheap enough for -short
		inRace  bool // cheap enough for -race
	}{
		{"paper-fig6.json", true, true},
		{"failure-storm.json", true, true},
		{"flash-crowd.json", false, true},
		{"diurnal-cdn.json", false, false},
		{"mixed-sla.json", false, false},
	}
	// power-save.json is a sweep; it runs in the group leg below.
	fleet := servicetest.StartRing(t, 3, nil)
	ref := singleNode(t, service.Config{JobRunners: 2})

	kinds := []string{"", "?csv=summary", "?csv=throughput", "?csv=fct-cdf", "?csv=afct", "?csv=trace"}
	for i, sp := range specs {
		if testing.Short() && !sp.inShort {
			t.Logf("skipping %s in -short mode", sp.file)
			continue
		}
		if raceEnabled && !sp.inRace {
			t.Logf("skipping %s under -race", sp.file)
			continue
		}
		raw, err := os.ReadFile(filepath.Join("..", "..", "scenarios", sp.file))
		if err != nil {
			t.Fatal(err)
		}
		body := string(raw)
		entry := fleet.Peers[i%3]

		refSt, code := postJob(t, ref.URL, body, "?wait=true")
		if code != http.StatusOK || refSt.State != service.StateDone {
			t.Fatalf("%s reference: %d %+v", sp.file, code, refSt)
		}
		st, code := postJob(t, entry.URL, body, "?wait=true")
		if code != http.StatusOK || st.State != service.StateDone {
			t.Fatalf("%s via n%d: %d %+v", sp.file, entry.Index, code, st)
		}
		fetch := fleet.Peers[(i+1)%3] // never the entry: exercise routing
		for _, q := range kinds {
			want, refCode := getBytes(t, ref.URL+"/v1/jobs/"+refSt.ID+"/result"+q)
			got, ringCode := getBytes(t, fetch.URL+"/v1/jobs/"+st.ID+"/result"+q)
			if refCode != ringCode {
				t.Fatalf("%s result %q: single-node %d vs ring %d", sp.file, q, refCode, ringCode)
			}
			if refCode == http.StatusOK && !bytes.Equal(got, want) {
				t.Fatalf("%s result %q via n%d differs from single-node bytes", sp.file, q, fetch.Index)
			}
		}
	}

	if testing.Short() || raceEnabled {
		t.Log("skipping the power-save group leg in -short mode / under -race")
		return
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "power-save.json"))
	if err != nil {
		t.Fatal(err)
	}
	postGroup := func(base string) service.GroupStatus {
		resp, err := http.Post(base+"/v1/groups?wait=true", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		var st service.GroupStatus
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("power-save group: %d %s", resp.StatusCode, b)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	refG := postGroup(ref.URL)
	ringG := postGroup(fleet.Peers[1].URL)
	if refG.State != service.StateDone || ringG.State != service.StateDone {
		t.Fatalf("power-save groups ended %s (single-node) / %s (ring)", refG.State, ringG.State)
	}
	for _, q := range []string{"?csv=summary", "?csv=throughput", "?csv=fct-cdf"} {
		want, refCode := getBytes(t, ref.URL+"/v1/groups/"+refG.ID+"/result"+q)
		got, ringCode := getBytes(t, fleet.Peers[2].URL+"/v1/groups/"+ringG.ID+"/result"+q)
		if refCode != ringCode {
			t.Fatalf("power-save group %q: single-node %d vs ring %d", q, refCode, ringCode)
		}
		if refCode == http.StatusOK && !bytes.Equal(got, want) {
			t.Fatalf("power-save group %q differs from single-node bytes", q)
		}
	}
}

// TestRingOwnerDownFallback pins the degraded mode: with a spec's owner
// dead, any other peer serves the submission locally (available, never
// wrong), and once the owner passes probes again new submissions route
// back to it.
func TestRingOwnerDownFallback(t *testing.T) {
	fleet := servicetest.StartRing(t, 3, nil)

	// Find two specs owned by the same non-zero peer, entered via a
	// different peer; seeds are cheap, so scan until placement fits.
	var bodyA, bodyB string
	owner := -1
	for seed := 200; bodyB == ""; seed++ {
		body := ringSpec(seed)
		o := fleet.OwnerIndex(specHash(t, body))
		switch {
		case bodyA == "" && o != 0:
			bodyA, owner = body, o
		case bodyA != "" && o == owner:
			bodyB = body
		}
		if seed > 400 {
			t.Fatal("no suitable seeds in 200 tries; placement is broken")
		}
	}
	entry := fleet.Peers[0]

	fleet.Peers[owner].Crash()
	fleet.ProbeAll(2) // two failed rounds eject the peer everywhere

	st, code := postJob(t, entry.URL, bodyA, "?wait=true")
	if code != http.StatusOK || st.State != service.StateDone {
		t.Fatalf("submit with owner down: %d %+v", code, st)
	}
	if got := nodeOf(t, st.ID); got != entry.Index {
		t.Fatalf("owner n%d is down; job ran on n%d, want local fallback on n%d", owner, got, entry.Index)
	}
	if v := metricValue(t, entry.URL, "scda_ring_local_fallbacks_total"); v == 0 {
		t.Fatal("local fallback not counted")
	}

	// Recovery: the owner comes back, one successful round restores it,
	// and the next submission it owns routes to it again.
	fleet.Peers[owner].Restart(t)
	fleet.ProbeAll(1)
	st, code = postJob(t, entry.URL, bodyB, "?wait=true")
	if code != http.StatusOK || st.State != service.StateDone {
		t.Fatalf("submit after owner recovery: %d %+v", code, st)
	}
	if got := nodeOf(t, st.ID); got != owner {
		t.Fatalf("owner n%d recovered but the job ran on n%d", owner, got)
	}
}

// TestRingLoopGuard pins the single-hop invariant: a request that
// already crossed a peer hop is answered 502 when it lands on a peer
// that does not own it — never forwarded again — for both submissions
// and ID-routed proxying.
func TestRingLoopGuard(t *testing.T) {
	fleet := servicetest.StartRing(t, 3, nil)

	// A spec and a peer that does not own it.
	body := ringSpec(300)
	owner := fleet.OwnerIndex(specHash(t, body))
	wrong := fleet.Peers[(owner+1)%3]

	req, err := http.NewRequest(http.MethodPost, wrong.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Scda-Forwarded", "http://mis.configured.peer")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("forwarded submit to a non-owner answered %d, want 502", resp.StatusCode)
	}

	// An already-forwarded request for a remote peer's ID must not hop on.
	remoteID := fmt.Sprintf("n%d-j000001", (wrong.Index+1)%3)
	req, err = http.NewRequest(http.MethodGet, wrong.URL+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Scda-Forwarded", "http://mis.configured.peer")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("forwarded proxy request answered %d, want 502", resp.StatusCode)
	}
	if v := metricValue(t, wrong.URL, "scda_ring_loop_rejects_total"); v != 2 {
		t.Fatalf("loop rejects counted %d, want 2", v)
	}
}

// TestRingOwnerCrashMidJobRecovery crashes a peer while it is executing
// a job it owns and proves the fleet converges: on restart the write-
// ahead journal resurrects the work (recomputed, or carried whole by the
// disk cache when the interrupted replicate had already landed there),
// and the same spec then resolves through the surviving peer to the
// owner with byte-identical results and no duplicate compute on the
// survivor.
func TestRingOwnerCrashMidJobRecovery(t *testing.T) {
	fleet := servicetest.StartRing(t, 2, nil)

	// A spec owned by peer 1, heavy enough per replicate (~2s without the
	// race detector) that the 10ms status polls reliably observe it
	// running before the crash lands.
	var body string
	owner := -1
	for seed := 500; owner != 1; seed++ {
		body = fmt.Sprintf(`{
  "version": 1,
  "name": "ring-crash",
  "seed": %d,
  "duration": 1200,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 6}}],
  "outputs": {"series": ["throughput"]}
}`, seed)
		owner = fleet.OwnerIndex(specHash(t, body))
		if seed > 700 {
			t.Fatal("no seed owned by peer 1 in 200 tries")
		}
	}
	victim, survivor := fleet.Peers[1], fleet.Peers[0]

	// Submit straight to the owner, async, and wait until it is running.
	st, code := postJob(t, victim.URL, body, "")
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %+v", code, st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, code := getBytes(t, victim.URL+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		var cur service.Status
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == service.StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job settled %s before the crash; spec too cheap for this test", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	victim.Crash()
	victim.Restart(t)
	if v := metricValue(t, victim.URL, "scda_jobs_recovered_total"); v != 1 {
		t.Fatalf("restarted owner recovered %d journaled jobs, want 1", v)
	}

	// The recovered job reaches done on its own (fresh ID, same spec).
	deadline = time.Now().Add(60 * time.Second)
	for {
		b, code := getBytes(t, victim.URL+"/v1/jobs")
		if code != http.StatusOK {
			t.Fatalf("job list poll: %d", code)
		}
		var sts []service.Status
		if err := json.Unmarshal(b, &sts); err != nil {
			t.Fatal(err)
		}
		if len(sts) != 1 {
			t.Fatalf("restarted ledger has %d jobs, want the 1 recovered", len(sts))
		}
		if sts[0].State == service.StateDone {
			break
		}
		if sts[0].State.Terminal() {
			t.Fatalf("recovered job ended %s (%s)", sts[0].State, sts[0].Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Convergence: the same spec through the surviving peer routes to the
	// owner and is served from its cache — fleet state as if the crash
	// never happened, with no compute on the survivor.
	fleet.ProbeAll(1)
	st2, code := postJob(t, survivor.URL, body, "?wait=true")
	if code != http.StatusOK || st2.State != service.StateDone || !st2.CacheHit {
		t.Fatalf("post-recovery submit: %d %+v, want a cached done on the owner", code, st2)
	}
	if got := nodeOf(t, st2.ID); got != victim.Index {
		t.Fatalf("post-recovery submission ran on n%d, want the recovered owner n%d", got, victim.Index)
	}
	a, code := getBytes(t, survivor.URL+"/v1/jobs/"+st2.ID+"/result?csv=summary")
	if code != http.StatusOK {
		t.Fatalf("summary via survivor: %d", code)
	}
	b, code := getBytes(t, victim.URL+"/v1/jobs/"+st2.ID+"/result?csv=summary")
	if code != http.StatusOK {
		t.Fatalf("summary via restarted owner: %d", code)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("peers disagree on the recovered result's bytes")
	}
	if misses := metricValue(t, survivor.URL, "scda_cache_misses_total"); misses != 0 {
		t.Fatalf("survivor computed %d times; the owner's recovery should have carried the work", misses)
	}
}

// TestRingGroupFanout pins sweep groups in coordinator mode: the group
// lives on its entry peer, each variant's computation runs on that
// variant's owner, the concatenated group CSV is byte-identical to a
// single node's, and the fleet computes each variant exactly once.
func TestRingGroupFanout(t *testing.T) {
	groupBody := `{
  "version": 1,
  "name": "ring-sweep",
  "seed": 3,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput"]},
  "sweep": {"parameter": "seed", "values": [41, 42, 43]}
}`
	fleet := servicetest.StartRing(t, 3, nil)
	ref := singleNode(t, service.Config{Workers: 1, JobRunners: 2})

	postGroup := func(base string) (service.GroupStatus, int) {
		resp, err := http.Post(base+"/v1/groups?wait=true", "application/json", strings.NewReader(groupBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		var st service.GroupStatus
		if resp.StatusCode < 300 {
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatalf("decoding %s: %v", b, err)
			}
		}
		return st, resp.StatusCode
	}

	refSt, code := postGroup(ref.URL)
	if code != http.StatusOK || refSt.State != service.StateDone {
		t.Fatalf("reference group: %d %+v", code, refSt)
	}
	want, code := getBytes(t, ref.URL+"/v1/groups/"+refSt.ID+"/result?csv=summary")
	if code != http.StatusOK {
		t.Fatalf("reference group csv: %d", code)
	}

	st, code := postGroup(fleet.Peers[0].URL)
	if code != http.StatusOK || st.State != service.StateDone || st.Done != 3 {
		t.Fatalf("fleet group: %d %+v", code, st)
	}
	if got := nodeOf(t, st.ID); got != 0 {
		t.Fatalf("group minted on n%d, want the entry peer n0", got)
	}
	// The group CSV is served byte-identically from every peer.
	for _, p := range fleet.Peers {
		got, code := getBytes(t, p.URL+"/v1/groups/"+st.ID+"/result?csv=summary")
		if code != http.StatusOK {
			t.Fatalf("group csv via n%d: %d", p.Index, code)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("group csv via n%d differs from single-node bytes", p.Index)
		}
	}

	// Each variant computed exactly once fleet-wide, on its owner.
	var misses int64
	for _, p := range fleet.Peers {
		misses += metricValue(t, p.URL, "scda_cache_misses_total")
	}
	if misses != int64(st.Variants) {
		t.Fatalf("fleet computed %d times for %d variants", misses, st.Variants)
	}

	// A second submission through a different peer is pure cache: every
	// variant a hit, no new computes anywhere.
	st2, code := postGroup(fleet.Peers[1].URL)
	if code != http.StatusOK || st2.State != service.StateDone || st2.CacheHits != st2.Variants {
		t.Fatalf("resubmitted group: %d %+v, want all variants cached", code, st2)
	}
	var after int64
	for _, p := range fleet.Peers {
		after += metricValue(t, p.URL, "scda_cache_misses_total")
	}
	if after != misses {
		t.Fatalf("resubmission recomputed: misses %d -> %d", misses, after)
	}
}
