package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/scenario"
	"repro/internal/search"
)

// ErrSearch rejects specs with a search block on the job and group
// endpoints: those endpoints run concrete experiments. Searches are
// first-class on /v1/searches, which compiles the block and drives the
// optimization server-side.
var ErrSearch = errors.New("service: spec has a search block; submit it to /v1/searches to run the optimization server-side")

// SearchJob is one adaptive search moving through the service: the
// compiled problem plus the engine goroutine driving rounds through the
// ordinary job-group machinery. Each round is a group of synthesized
// variant specs — queued, cached, deduplicated and (in coordinator mode)
// fanned across the ring exactly like any client-submitted group — so the
// search layer adds zero new execution paths; it only decides what to run
// next. Identity fields are immutable after SubmitSearch; everything else
// is guarded by mu.
type SearchJob struct {
	// ID is the service-assigned handle ("s000001", ...).
	ID string
	// Name is the base scenario name the search optimizes.
	Name string
	// Reps is the per-evaluation replicate count (halving's first rung).
	Reps int
	// Priority is the queue priority every round's jobs are submitted at.
	Priority int

	problem *search.Problem
	met     *metrics

	mu          sync.Mutex
	state       State
	err         string
	rounds      []search.Round
	result      *search.Result
	evaluations int
	cacheHits   int
	group       *JobGroup // the in-flight round's group, for cancel fan-out
	cancelReq   bool
	cancel      context.CancelFunc
	events      []SearchEvent
	changed     chan struct{} // closed and replaced on every event
	done        chan struct{} // closed once, on reaching a terminal state
}

// SearchEvent is one NDJSON record on a search's event stream: a state
// transition, or a completed round with its variants and incumbent. Like
// job and group events it carries no wall-clock time, job IDs or cache
// information, so replaying a finished search's stream is deterministic —
// byte-identical for an identical resubmitted search.
type SearchEvent struct {
	// Seq numbers events from 1 within one search.
	Seq int `json:"seq"`
	// State is the search's state when the event fired.
	State State `json:"state"`
	// Round, when present, is the round that just completed.
	Round *search.Round `json:"round,omitempty"`
	// Error carries the failure reason on a failed event.
	Error string `json:"error,omitempty"`
}

// SearchStatus is the wire snapshot of a search, served by the status and
// list endpoints and returned from SubmitSearch. Evaluations and
// CacheHits are operational (they differ between a first run and a cache
// replay of the same search) and therefore live here, never in the result
// document or the event stream.
type SearchStatus struct {
	// ID is the search handle; the search's URLs derive from it.
	ID string `json:"id"`
	// Name is the base scenario name.
	Name string `json:"name"`
	// State is the lifecycle state (queued → running → terminal).
	State State `json:"state"`
	// Strategy, Objective, Metric and Parameter echo the compiled search.
	Strategy  string `json:"strategy"`
	Objective string `json:"objective"`
	Metric    string `json:"metric"`
	Parameter string `json:"parameter"`
	// Reps / Priority echo the submission knobs.
	Reps     int `json:"reps"`
	Priority int `json:"priority"`
	// Rounds counts completed rounds so far.
	Rounds int `json:"rounds"`
	// Evaluations counts variant evaluations submitted as child jobs —
	// equal to the number of distinct cache keys the search touched.
	Evaluations int `json:"evaluations"`
	// CacheHits counts evaluations served without simulation work; a
	// resubmitted identical search reports CacheHits == Evaluations.
	CacheHits int `json:"cacheHits"`
	// Pruned counts variants dropped from contention across rounds.
	Pruned int `json:"pruned"`
	// Incumbent is the best feasible variant so far.
	Incumbent *search.Variant `json:"incumbent,omitempty"`
	// Error carries the failure reason for a failed search.
	Error string `json:"error,omitempty"`
}

// newSearchJob builds a search in state queued and emits its initial
// event.
func newSearchJob(id string, p *search.Problem, reps, priority int, met *metrics) *SearchJob {
	sj := &SearchJob{
		ID:       id,
		Name:     p.Base.Name,
		Reps:     reps,
		Priority: priority,
		problem:  p,
		met:      met,
		state:    StateQueued,
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	sj.emitLocked(nil)
	return sj
}

// Status returns a consistent snapshot.
func (sj *SearchJob) Status() SearchStatus {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	st := SearchStatus{
		ID:          sj.ID,
		Name:        sj.Name,
		State:       sj.state,
		Strategy:    sj.problem.Strategy,
		Objective:   sj.problem.Objective,
		Metric:      sj.problem.Metric,
		Parameter:   sj.problem.Parameter,
		Reps:        sj.Reps,
		Priority:    sj.Priority,
		Rounds:      len(sj.rounds),
		Evaluations: sj.evaluations,
		CacheHits:   sj.cacheHits,
		Error:       sj.err,
	}
	for _, rd := range sj.rounds {
		st.Pruned += rd.Pruned
		if rd.Incumbent != nil {
			st.Incumbent = rd.Incumbent
		}
	}
	return st
}

// Done returns a channel closed when the search reaches a terminal state.
func (sj *SearchJob) Done() <-chan struct{} { return sj.done }

// terminal reports whether the search has reached a terminal state.
func (sj *SearchJob) terminal() bool {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.state.Terminal()
}

// Result returns the final search result once the search is done.
func (sj *SearchJob) Result() (*search.Result, bool) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state != StateDone || sj.result == nil {
		return nil, false
	}
	return sj.result, true
}

// emitLocked appends an event reflecting the current state and wakes
// stream watchers. Caller holds sj.mu.
func (sj *SearchJob) emitLocked(round *search.Round) {
	sj.events = append(sj.events, SearchEvent{
		Seq:   len(sj.events) + 1,
		State: sj.state,
		Round: round,
		Error: sj.err,
	})
	close(sj.changed)
	sj.changed = make(chan struct{})
	if sj.state.Terminal() {
		close(sj.done)
	}
}

// eventsSince is the NDJSON stream's polling primitive, mirroring
// Job.eventsSince.
func (sj *SearchJob) eventsSince(fromSeq int) (evs []SearchEvent, changed <-chan struct{}, terminal bool) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if fromSeq < len(sj.events) {
		evs = append(evs, sj.events[fromSeq:]...)
	}
	return evs, sj.changed, sj.state.Terminal()
}

// begin moves queued → running and installs the engine's cancel hook; it
// fails if a DELETE raced the engine goroutine's start.
func (sj *SearchJob) begin(cancel context.CancelFunc) bool {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state != StateQueued || sj.cancelReq {
		if !sj.state.Terminal() {
			sj.state = StateCancelled
			sj.met.searchesActive.Add(-1)
			sj.met.searchesCancelled.Add(1)
			sj.emitLocked(nil)
		}
		return false
	}
	sj.state = StateRunning
	sj.cancel = cancel
	sj.emitLocked(nil)
	return true
}

// observeRound records one completed round and streams it.
func (sj *SearchJob) observeRound(rd search.Round) {
	sj.met.searchRounds.Add(1)
	sj.met.searchPruned.Add(int64(rd.Pruned))
	sj.mu.Lock()
	defer sj.mu.Unlock()
	sj.rounds = append(sj.rounds, rd)
	sj.emitLocked(&rd)
}

// setGroup publishes the in-flight round's group so a concurrent cancel
// can fan out to it; clearing (nil) marks the gap between rounds.
func (sj *SearchJob) setGroup(g *JobGroup) {
	sj.mu.Lock()
	sj.group = g
	sj.mu.Unlock()
}

// addTallies folds one round's operational counts into the status.
func (sj *SearchJob) addTallies(evaluations, cacheHits int) {
	sj.mu.Lock()
	sj.evaluations += evaluations
	sj.cacheHits += cacheHits
	sj.mu.Unlock()
}

// complete moves the search to done with its final result.
func (sj *SearchJob) complete(res *search.Result) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state.Terminal() {
		return
	}
	sj.state = StateDone
	sj.result = res
	sj.met.searchesActive.Add(-1)
	sj.met.searchesDone.Add(1)
	sj.emitLocked(nil)
}

// fail moves the search to failed with the error message.
func (sj *SearchJob) fail(msg string) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state.Terminal() {
		return
	}
	sj.state = StateFailed
	sj.err = msg
	sj.met.searchesActive.Add(-1)
	sj.met.searchesFailed.Add(1)
	sj.emitLocked(nil)
}

// finishCancelled marks the search cancelled after its context fired.
func (sj *SearchJob) finishCancelled() {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state.Terminal() {
		return
	}
	sj.state = StateCancelled
	sj.met.searchesActive.Add(-1)
	sj.met.searchesCancelled.Add(1)
	sj.emitLocked(nil)
}

// requestCancel asks the search to stop, returning the in-flight round's
// group (if any) for the caller to fan the cancel out to. ok is false
// once terminal.
func (sj *SearchJob) requestCancel() (g *JobGroup, ok bool) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.state.Terminal() {
		return nil, false
	}
	sj.cancelReq = true
	if sj.cancel != nil {
		sj.cancel()
	}
	return sj.group, true
}

// SubmitSearch compiles a spec with a search block and starts the engine,
// returning the search handle immediately. reps is the per-evaluation
// replicate count (<= 0 means the server default); the engine may grow it
// per round up to MaxReps under the halving strategy. The engine goroutine
// submits each round as an ordinary job group, so every evaluation flows
// through the queue, cache, singleflight and — in coordinator mode — the
// ring, and a resubmitted identical search is a pure cache replay.
func (s *Service) SubmitSearch(spec *scenario.Spec, reps, priority int) (*SearchJob, error) {
	if spec.Search == nil {
		return nil, errors.New("service: spec has no search block")
	}
	if s.draining.Load() {
		// A search's engine goroutine joins s.wg, which Close may already
		// be waiting on; refusing here keeps the shutdown contract simple.
		return nil, errors.New("service: draining; not accepting searches")
	}
	if reps <= 0 {
		reps = s.cfg.DefaultReps
	}
	if reps > s.cfg.MaxReps {
		return nil, fmt.Errorf("service: reps %d exceeds the limit %d", reps, s.cfg.MaxReps)
	}
	p, err := search.Compile(spec, reps, s.cfg.MaxReps)
	if err != nil {
		return nil, err
	}
	if n := searchRoundBound(p); n > s.cfg.MaxGroupVariants {
		return nil, fmt.Errorf("service: search rounds may reach %d variants, more than the group limit %d", n, s.cfg.MaxGroupVariants)
	}

	s.mu.Lock()
	s.nextSearchID++
	id := fmt.Sprintf("%ss%06d", s.idPrefix, s.nextSearchID)
	sj := newSearchJob(id, p, reps, priority, &s.met)
	s.met.searchesSubmitted.Add(1)
	s.met.searchesActive.Add(1)
	s.searches[id] = sj
	s.searchOrder = append(s.searchOrder, id)
	s.pruneSearchesLocked()
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runSearch(sj)
	}()
	return sj, nil
}

// searchRoundBound is the largest candidate count any single round of the
// compiled search can propose — what one round charges against the group
// limit.
func searchRoundBound(p *search.Problem) int {
	n := p.Points
	if len(p.Values) > 0 && n < len(p.Values) {
		n = len(p.Values)
	}
	return n
}

// runSearch is the engine goroutine: run to completion, then settle the
// terminal state.
func (s *Service) runSearch(sj *SearchJob) {
	ctx, cancel := context.WithCancel(s.base)
	defer cancel()
	if !sj.begin(cancel) {
		return
	}
	res, err := search.Run(ctx, sj.problem, &groupEvaluator{s: s, sj: sj}, sj.observeRound)
	switch {
	case err == nil:
		sj.complete(res)
	case errors.Is(err, context.Canceled):
		// DELETE or shutdown; either way the search was stopped, not
		// broken.
		sj.finishCancelled()
	default:
		sj.fail(err.Error())
	}
}

// groupEvaluator adapts one search's round submissions onto the service's
// job-group machinery: submit, wait, read summaries back out of the child
// artifacts. It implements search.Evaluator.
type groupEvaluator struct {
	s  *Service
	sj *SearchJob
}

// EvaluateRound submits the round's candidates as one job group and
// blocks until every variant settles, returning each candidate's summary
// metrics in order. A context cut (DELETE, shutdown, MaxSeconds) cancels
// the in-flight group before returning.
func (e *groupEvaluator) EvaluateRound(ctx context.Context, round int, cands []Candidate) ([]map[string]float64, error) {
	specs := make([]*scenario.Spec, len(cands))
	for i, c := range cands {
		specs[i] = c.Spec
	}
	g, err := e.s.SubmitGroup(fmt.Sprintf("%s-r%d", e.sj.Name, round), specs, cands[0].Reps, e.sj.Priority)
	if err != nil {
		return nil, fmt.Errorf("search round %d: %w", round, err)
	}
	e.sj.setGroup(g)
	defer e.sj.setGroup(nil)
	select {
	case <-g.Done():
	case <-ctx.Done():
		e.s.cancelGroup(g)
		<-g.Done()
		return nil, ctx.Err()
	}
	st := g.Status()
	e.sj.addTallies(len(cands), st.CacheHits)
	switch st.State {
	case StateDone:
	case StateCancelled:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	default:
		return nil, fmt.Errorf("search round %d: group %s failed: %s", round, g.ID, groupFailure(st))
	}
	jobs, ok := g.doneJobs()
	if !ok {
		return nil, fmt.Errorf("search round %d: group %s lost its results", round, g.ID)
	}
	out := make([]map[string]float64, len(jobs))
	for i, j := range jobs {
		summary, err := jobSummary(j)
		if err != nil {
			return nil, fmt.Errorf("search round %d: %w", round, err)
		}
		out[i] = summary
	}
	return out, nil
}

// Candidate re-exports the engine's candidate type for the evaluator
// signature.
type Candidate = search.Candidate

// groupFailure digs the most useful failure reason out of a failed
// group's status: the group-level error, else the first failed variant's.
func groupFailure(st GroupStatus) string {
	if st.Error != "" {
		return st.Error
	}
	for _, js := range st.Jobs {
		if js.State == StateFailed && js.Error != "" {
			return fmt.Sprintf("variant %s: %s", js.Name, js.Error)
		}
	}
	return "variant failed"
}

// jobSummary reads a done child job's summary metrics back out of its
// rendered result artifact — identical bytes whether the job computed
// locally, was served from cache, or executed on a remote peer.
func jobSummary(j *Job) (map[string]float64, error) {
	art, ok := j.Artifacts()
	if !ok {
		return nil, fmt.Errorf("variant %s has no artifacts", j.Spec.Name)
	}
	b, ok := art.file(artResult)
	if !ok {
		return nil, fmt.Errorf("variant %s has no %s artifact", j.Spec.Name, artResult)
	}
	var doc struct {
		Summary map[string]float64 `json:"summary"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("variant %s result: %w", j.Spec.Name, err)
	}
	return doc.Summary, nil
}

// Search looks a search up by ID.
func (s *Service) Search(id string) (*SearchJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.searches[id]
	return sj, ok
}

// Searches returns status snapshots of every search in submission order.
func (s *Service) Searches() []SearchStatus {
	s.mu.Lock()
	searches := make([]*SearchJob, len(s.searchOrder))
	for i, id := range s.searchOrder {
		searches[i] = s.searches[id]
	}
	s.mu.Unlock()
	out := make([]SearchStatus, len(searches))
	for i, sj := range searches {
		out[i] = sj.Status()
	}
	return out
}

// CancelSearch stops the identified search: the engine context is
// cancelled (no further rounds) and the cancel fans out to the in-flight
// round's group, stopping its queued and running children. The second
// return reports whether the search existed; the first whether
// cancellation was possible (false once terminal).
func (s *Service) CancelSearch(id string) (cancelled, found bool) {
	sj, ok := s.Search(id)
	if !ok {
		return false, false
	}
	g, ok := sj.requestCancel()
	if g != nil {
		s.cancelGroup(g)
	}
	return ok, true
}

// pruneSearchesLocked evicts the oldest terminal searches while the
// ledger exceeds SearchHistory, mirroring the job ledger's policy: active
// searches and the newest entry are never evicted. Caller holds s.mu.
func (s *Service) pruneSearchesLocked() {
	over := len(s.searchOrder) - s.cfg.SearchHistory
	if over <= 0 {
		return
	}
	kept := s.searchOrder[:0]
	for i, id := range s.searchOrder {
		if over <= 0 || i == len(s.searchOrder)-1 {
			kept = append(kept, s.searchOrder[i:]...)
			break
		}
		if s.searches[id].terminal() {
			delete(s.searches, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	s.searchOrder = kept
}
