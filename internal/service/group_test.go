package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// sweepSpec expands testSpec into three seed variants — small enough that
// a whole group runs in about the time of three testSpec jobs.
const sweepSpec = `{
  "version": 1,
  "name": "svc-test",
  "seed": 3,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput", "fct-cdf"]},
  "sweep": {"parameter": "seed", "values": [31, 32, 33]}
}`

// submitGroup posts a group body and decodes the GroupStatus response.
func submitGroup(t *testing.T, ts *httptest.Server, body, query string) (GroupStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/groups"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var st GroupStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decoding %s: %v", b, err)
		}
	}
	return st, resp.StatusCode
}

func TestGroupSweepLifecycle(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 2})

	st, code := submitGroup(t, ts, sweepSpec, "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("group submit status %d", code)
	}
	if st.State != StateDone || st.Variants != 3 || st.Done != 3 || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("group %+v, want all three variants done", st)
	}
	if st.Name != "svc-test" || len(st.Jobs) != 3 {
		t.Fatalf("group fields %+v", st)
	}
	wantNames := []string{"svc-test-seed-31", "svc-test-seed-32", "svc-test-seed-33"}
	for i, js := range st.Jobs {
		if js.Name != wantNames[i] || js.State != StateDone || js.ID == "" {
			t.Fatalf("variant %d = %+v, want done %s", i, js, wantNames[i])
		}
	}

	// Status endpoint and list agree.
	if b, code := get(t, ts.URL+"/v1/groups/"+st.ID); code != http.StatusOK || !bytes.Contains(b, []byte(`"state": "done"`)) {
		t.Fatalf("group status fetch: %d %s", code, b)
	}
	b, code := get(t, ts.URL+"/v1/groups")
	if code != http.StatusOK {
		t.Fatalf("group list: %d", code)
	}
	var list []GroupStatus
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("group list %+v", list)
	}

	// The aggregate result document carries one spliced result per variant.
	b, code = get(t, ts.URL+"/v1/groups/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("group result: %d %s", code, b)
	}
	var doc groupResultWire
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Name != "svc-test" || len(doc.Variants) != 3 {
		t.Fatalf("group result doc %+v", doc)
	}
	for i, v := range doc.Variants {
		if v.Name != wantNames[i] || len(v.Result) == 0 {
			t.Fatalf("variant result %d = %+v", i, v)
		}
	}

	// The group CSV is the per-variant job CSVs concatenated in expansion
	// order, for every kind the spec requests.
	for _, kind := range []string{"summary", "throughput", "fct-cdf"} {
		var want bytes.Buffer
		for _, js := range st.Jobs {
			b, code := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result?csv="+kind)
			if code != http.StatusOK {
				t.Fatalf("variant csv %s: %d", kind, code)
			}
			want.Write(b)
		}
		got, code := get(t, ts.URL+"/v1/groups/"+st.ID+"/result?csv="+kind)
		if code != http.StatusOK {
			t.Fatalf("group csv %s: %d", kind, code)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("group %s CSV is not the concatenation of its variants'", kind)
		}
	}
	if _, code := get(t, ts.URL+"/v1/groups/"+st.ID+"/result?csv=afct"); code != http.StatusNotFound {
		t.Fatalf("unrequested series kind served: %d", code)
	}

	// Event stream: queued first, terminal done last, contiguous sequence,
	// one terminal event per variant in expansion order (the group ran
	// jobs through one queue, but the replayed log is what it is — assert
	// the variant set, not interleaving).
	evs := readGroupEvents(t, ts.URL+"/v1/groups/"+st.ID+"/events")
	if len(evs) < 5 {
		t.Fatalf("only %d group events", len(evs))
	}
	if evs[0].State != StateQueued || evs[0].Seq != 1 || evs[0].Total != 3 {
		t.Fatalf("first group event %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.State != StateDone || last.Done != 3 {
		t.Fatalf("last group event %+v", last)
	}
	var variantEvents []string
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("group event %d has seq %d", i, ev.Seq)
		}
		if ev.Variant != "" {
			variantEvents = append(variantEvents, ev.Variant)
		}
	}
	if len(variantEvents) != 3 {
		t.Fatalf("variant terminal events %v, want one per variant", variantEvents)
	}

	// Re-submitting the same sweep is all cache hits: zero new simulation
	// work, group born done.
	misses := svc.met.cacheMisses.Load()
	st2, code := submitGroup(t, ts, sweepSpec, "")
	if code != http.StatusOK {
		t.Fatalf("cached group submit status %d, want 200 (born done)", code)
	}
	if st2.State != StateDone || st2.CacheHits != 3 {
		t.Fatalf("cached group %+v, want 3 cache hits", st2)
	}
	if svc.met.cacheMisses.Load() != misses {
		t.Fatal("cached group resubmission recomputed a variant")
	}

	// Group metrics recorded both groups.
	m, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{"scda_groups_active 0", `scda_groups_done_total{state="done"} 2`} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// readGroupEvents consumes one group NDJSON stream to termination.
func readGroupEvents(t *testing.T, url string) []GroupEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var evs []GroupEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev GroupEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestGroupDuplicateVariantsSingleCompute(t *testing.T) {
	// An explicit array of N identical specs is legal on the group
	// endpoint (unlike a sweep, whose variant names must be unique) and
	// must cost exactly one computation: the first variant computes, the
	// rest join its singleflight or hit the cache.
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 2})
	arr := "[" + testSpec + "," + testSpec + "," + testSpec + "]"
	st, code := submitGroup(t, ts, arr, "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("group submit status %d", code)
	}
	if st.State != StateDone || st.Variants != 3 || st.Done != 3 {
		t.Fatalf("group %+v", st)
	}
	if misses := svc.met.cacheMisses.Load(); misses != 1 {
		t.Fatalf("%d computations for three identical variants, want 1", misses)
	}
	// All three served the same bytes.
	var bodies [][]byte
	for _, js := range st.Jobs {
		b, code := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("variant result: %d", code)
		}
		bodies = append(bodies, b)
	}
	if !bytes.Equal(bodies[0], bodies[1]) || !bytes.Equal(bodies[1], bodies[2]) {
		t.Fatal("deduplicated variants returned different bytes")
	}
}

func TestGroupCancelMidExpansion(t *testing.T) {
	// Deterministic interleaving of the expansion loop with a cancel: the
	// service publishes the group before submitting children, so a DELETE
	// can land while the expansion is still in flight. A blocker job pins
	// the only runner so the two attached variants sit in the queue (and
	// cancel instantly); the two variants submitted after the cancel must
	// be skipped without ever becoming jobs.
	svc, _ := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	blockSpec, err := scenario.Parse(strings.NewReader(strings.Replace(testSpec, `"seed": 3`, `"seed": 999`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := svc.Submit(blockSpec, 8, 100)
	if err != nil {
		t.Fatal(err)
	}

	sweep, err := scenario.Parse(strings.NewReader(strings.Replace(sweepSpec, "[31, 32, 33]", "[41, 42, 43, 44]", 1)))
	if err != nil {
		t.Fatal(err)
	}
	variants, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	g := svc.publishGroup(sweep.Name, variants, 1, 0, time.Time{})
	svc.submitVariants(g, variants[:2]) // two children, queued behind the blocker
	if cancelled, found := svc.CancelGroup(g.ID); !cancelled || !found {
		t.Fatalf("cancel mid-expansion: cancelled=%v found=%v", cancelled, found)
	}
	svc.submitVariants(g, variants[2:]) // expansion resumes, sees the cancel, skips

	select {
	case <-g.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled group never terminated")
	}
	st := g.Status()
	if st.State != StateCancelled || st.Cancelled != 4 || st.Done != 0 {
		t.Fatalf("group %+v, want all four variants cancelled", st)
	}
	if len(st.Jobs) != 4 {
		t.Fatalf("%d variant rows, want 4", len(st.Jobs))
	}
	for i, js := range st.Jobs {
		if js.State != StateCancelled {
			t.Fatalf("variant %d state %s", i, js.State)
		}
		if submitted := i < 2; (js.ID != "") != submitted {
			t.Fatalf("variant %d ID %q, want submitted=%v", i, js.ID, submitted)
		}
	}
	// The two attached children were cancelled exactly once each; the two
	// skipped variants never became jobs, so the job counters don't see
	// them.
	if n := svc.met.doneCancelled.Load(); n != 2 {
		t.Fatalf("doneCancelled = %d, want 2 (attached children only)", n)
	}
	if n := svc.met.groupsCancelled.Load(); n != 1 {
		t.Fatalf("groupsCancelled = %d", n)
	}
	if n := svc.met.groupsActive.Load(); n != 0 {
		t.Fatalf("groupsActive = %d", n)
	}

	// A second cancel conflicts: the group is terminal.
	if cancelled, _ := svc.CancelGroup(g.ID); cancelled {
		t.Fatal("terminal group accepted a cancel")
	}
	svc.Cancel(blocker.ID)
}

func TestGroupCancelFansOutOverHTTP(t *testing.T) {
	// DELETE on a running group cancels every child: the running variant
	// at its next replicate boundary, the queued ones instantly.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	arr := "[" + slowSpec + "," + testSpec + "]"
	st, code := submitGroup(t, ts, arr, "?reps=4")
	if code != http.StatusCreated {
		t.Fatalf("group submit status %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/groups/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("group cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, _ := get(t, ts.URL+"/v1/groups/"+st.ID)
		var gst GroupStatus
		if err := json.Unmarshal(b, &gst); err != nil {
			t.Fatal(err)
		}
		if gst.State.Terminal() {
			if gst.State != StateCancelled {
				t.Fatalf("group ended %s, want cancelled", gst.State)
			}
			for i, js := range gst.Jobs {
				if !js.State.Terminal() {
					t.Fatalf("variant %d still %s after group terminal", i, js.State)
				}
			}
			// No result for a cancelled group.
			if _, code := get(t, ts.URL+"/v1/groups/"+st.ID+"/result"); code != http.StatusConflict {
				t.Fatalf("cancelled group served a result: %d", code)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled group never terminated")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestGroupResultCSVMatchesScenarioBench(t *testing.T) {
	// The acceptance criterion: the power-save sweep submitted as one
	// group yields aggregate CSVs byte-identical to concatenating the
	// files `scda-bench -scenario-dir` writes for the pre-expanded
	// variants (scenario.RunAll + Result.WriteFiles is exactly the bench's
	// code path).
	if testing.Short() {
		t.Skip("power-save sweep is seconds of simulation; skipped with -short")
	}
	spec, err := scenario.Load(filepath.Join("..", "..", "scenarios", "power-save.json"))
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results, err := scenario.RunAll(variants, 1, runner.New(0))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, r := range results {
		if _, err := r.WriteFiles(dir); err != nil {
			t.Fatal(err)
		}
	}

	svc, ts := newTestServer(t, Config{Workers: 0, JobRunners: 3})
	raw, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "power-save.json"))
	if err != nil {
		t.Fatal(err)
	}
	st, code := submitGroup(t, ts, string(raw), "?wait=true")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("group submit: %d %+v", code, st)
	}
	for _, kind := range []string{"summary", "throughput", "fct-cdf"} {
		var want bytes.Buffer
		for _, v := range variants {
			b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s-%s.csv", v.Name, kind)))
			if err != nil {
				t.Fatal(err)
			}
			want.Write(b)
		}
		got, code := get(t, ts.URL+"/v1/groups/"+st.ID+"/result?csv="+kind)
		if code != http.StatusOK {
			t.Fatalf("group csv %s: %d", kind, code)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("group %s CSV differs from scda-bench files", kind)
		}
	}
	// All-variant cache hits on resubmission: zero simulation work.
	misses := svc.met.cacheMisses.Load()
	st2, _ := submitGroup(t, ts, string(raw), "")
	if st2.State != StateDone || st2.CacheHits != len(variants) || svc.met.cacheMisses.Load() != misses {
		t.Fatalf("resubmitted sweep not fully cached: %+v", st2)
	}
}

func TestGroupHistoryEviction(t *testing.T) {
	// GroupHistory counts retained *variants*, not groups: three 3-variant
	// groups against a 6-variant bound keep the two newest groups.
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, GroupHistory: 6})
	var ids []string
	for i := 0; i < 3; i++ {
		st, code := submitGroup(t, ts, sweepSpec, "?wait=true")
		if code != http.StatusOK {
			t.Fatalf("group submit %d status %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	if _, code := get(t, ts.URL+"/v1/groups/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest group still served: %d, want 404 after eviction", code)
	}
	for _, id := range ids[1:] {
		if _, code := get(t, ts.URL+"/v1/groups/"+id); code != http.StatusOK {
			t.Fatalf("recent group %s evicted: %d", id, code)
		}
	}
	// A tighter bound still never evicts the just-submitted group.
	_, ts2 := newTestServer(t, Config{Workers: 1, JobRunners: 1, GroupHistory: 1})
	st, code := submitGroup(t, ts2, sweepSpec, "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("group submit status %d", code)
	}
	if _, code := get(t, ts2.URL+"/v1/groups/"+st.ID); code != http.StatusOK {
		t.Fatalf("just-submitted group evicted: %d", code)
	}
}

func TestGroupSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1, MaxGroupVariants: 3})
	cases := map[string]struct {
		body  string
		query string
	}{
		"empty body":          {body: "   ", query: ""},
		"malformed array":     {body: "[{not json]", query: ""},
		"bad array element":   {body: `[{"version":1,"name":"x","seed":1,"duration":-5,"workload":[{"generator":"dc"}]}]`, query: ""},
		"trailing data":       {body: "[" + testSpec + "] garbage", query: ""},
		"too many variants":   {body: "[" + testSpec + "," + testSpec + "," + testSpec + "," + testSpec + "]", query: ""},
		"negative reps":       {body: sweepSpec, query: "?reps=-1"},
		"reps over limit":     {body: sweepSpec, query: "?reps=65"},
		"absurd priority":     {body: sweepSpec, query: "?priority=1048577"},
		"absurd neg priority": {body: sweepSpec, query: "?priority=-1048577"},
	}
	for name, tc := range cases {
		if _, code := submitGroup(t, ts, tc.body, tc.query); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if _, code := get(t, ts.URL+"/v1/groups/g999999"); code != http.StatusNotFound {
		t.Errorf("unknown group: %d, want 404", code)
	}
	// A rejected submission publishes nothing.
	b, _ := get(t, ts.URL+"/v1/groups")
	var list []GroupStatus
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("rejected submissions left %d groups behind", len(list))
	}
}

func TestCloseRaceLosesNoJobs(t *testing.T) {
	// The satellite assertion for the queue shutdown edge: when Close
	// races a burst of submissions, every job must still settle exactly
	// once — terminal state, terminal counter, ledger entry — and the
	// queue gauge must come back to zero. Run several rounds to give the
	// race detector surface.
	const rounds, n = 6, 12
	tiny := `{"version":1,"name":"svc-tiny","seed":%d,"duration":1,
	  "topology":{"kind":"fig6","x":1e7,"k":3},
	  "workload":[{"generator":"dc","params":{"ArrivalRate":1}}],
	  "outputs":{"series":["throughput"]}}`
	for round := 0; round < rounds; round++ {
		specs := make([]*scenario.Spec, n)
		for i := range specs {
			sp, err := scenario.Parse(strings.NewReader(fmt.Sprintf(tiny, 1000+round*n+i)))
			if err != nil {
				t.Fatal(err)
			}
			specs[i] = sp
		}
		svc := New(Config{Workers: 1, JobRunners: 2})
		jobs := make([]*Job, n)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				j, err := svc.Submit(specs[i], 1, i%3)
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				jobs[i] = j
			}(i)
		}
		close(start)
		svc.Close()
		wg.Wait()

		var terminalSum int64
		terminalSum = svc.met.doneOK.Load() + svc.met.doneFailed.Load() + svc.met.doneCancelled.Load()
		if terminalSum != n {
			t.Fatalf("round %d: terminal counters sum to %d, want %d (a job was lost or double-counted)", round, terminalSum, n)
		}
		if q := svc.met.jobsQueued.Load(); q != 0 {
			t.Fatalf("round %d: queue gauge %d after Close", round, q)
		}
		if r := svc.met.jobsRunning.Load(); r != 0 {
			t.Fatalf("round %d: running gauge %d after Close", round, r)
		}
		for i, j := range jobs {
			if j == nil {
				t.Fatalf("round %d: job %d missing", round, i)
			}
			if !j.terminal() {
				t.Fatalf("round %d: job %s not terminal after Close", round, j.ID)
			}
			if _, ok := svc.Job(j.ID); !ok {
				t.Fatalf("round %d: job %s silently dropped from the ledger", round, j.ID)
			}
		}
	}
}
