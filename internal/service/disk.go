package service

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// diskCache bounds the -cache-dir layer: PR 4 shipped it unbounded, so a
// long-lived server under distinct-spec traffic (sweep variants, fuzzed
// seeds) would eventually fill the disk. The bound is an entry-count cap
// plus a total-byte cap, enforced together with oldest-first (FIFO)
// eviction — an evicted entry is simply recomputed (and re-persisted) on
// the next miss, so eviction can never be wrong, only slow. Writes keep
// the tmp+rename protocol from artifacts.save, so a crash mid-eviction or
// mid-write still never leaves a half-written entry behind.
//
// Ordering: entries written this process are ordered by write time;
// entries found on disk at startup are ordered by directory mtime, which
// is when their rename landed. The in-memory ledger (order, sizes) is
// authoritative afterwards — loadArtifacts races with a concurrent
// eviction at worst read a vanishing directory and report a miss.
type diskCache struct {
	dir        string
	maxEntries int   // <0 = unbounded
	maxBytes   int64 // <0 = unbounded

	mu    sync.Mutex
	order []string // entry keys, oldest first
	sizes map[string]int64
	total int64
}

// newDiskCache opens the bound over dir, adopting entries a previous
// process persisted (oldest first by mtime), sweeping stale ".tmp-"
// write debris a crash may have left, and trimming anything beyond the
// configured caps immediately so a restarted server starts within bounds.
func newDiskCache(dir string, maxEntries int, maxBytes int64) *diskCache {
	c := &diskCache{dir: dir, maxEntries: maxEntries, maxBytes: maxBytes, sizes: make(map[string]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return c // nothing persisted yet; MkdirAll happens at first save
	}
	type found struct {
		key  string
		size int64
		mod  int64
	}
	var adopt []found
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			os.RemoveAll(filepath.Join(dir, e.Name()))
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		adopt = append(adopt, found{key: e.Name(), size: entrySize(filepath.Join(dir, e.Name())), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(adopt, func(i, j int) bool { return adopt[i].mod < adopt[j].mod })
	for _, f := range adopt {
		c.order = append(c.order, f.key)
		c.sizes[f.key] = f.size
		c.total += f.size
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return c
}

// record registers a freshly persisted entry of the given byte size (the
// writer already knows it — entries are content-addressed, so the renamed
// directory holds exactly the bytes that were rendered; no directory walk
// under the lock) and evicts the oldest entries beyond the caps.
// Re-recording a key (a concurrent writer lost the rename race, or a
// recompute after memory eviction re-saved the same content-addressed
// bytes) keeps the original position. Safe on a nil receiver so call
// sites need no disk-layer-enabled guard.
func (c *diskCache) record(key string, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sizes[key]; ok {
		return
	}
	c.order = append(c.order, key)
	c.sizes[key] = size
	c.total += size
	c.evictLocked()
}

// evictLocked removes oldest-first until both caps hold. Caller holds
// c.mu; removal I/O happens under the lock, which is fine off the hot
// path (eviction is one RemoveAll per displaced entry).
func (c *diskCache) evictLocked() {
	for len(c.order) > 0 {
		overEntries := c.maxEntries >= 0 && len(c.order) > c.maxEntries
		overBytes := c.maxBytes >= 0 && c.total > c.maxBytes
		if !overEntries && !overBytes {
			return
		}
		oldest := c.order[0]
		c.order = c.order[1:]
		c.total -= c.sizes[oldest]
		delete(c.sizes, oldest)
		os.RemoveAll(filepath.Join(c.dir, oldest))
	}
}

// forget evicts one entry by key — the corruption path: a load that found
// a damaged directory removes it from the ledger and the filesystem so the
// next miss recomputes into a clean entry. Safe on a nil receiver and on
// keys the ledger never tracked (the directory is removed regardless, so a
// corrupt entry found before the disk layer adopted it is still cleared).
func (c *diskCache) forget(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.sizes[key]; ok {
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		c.total -= c.sizes[key]
		delete(c.sizes, key)
	}
	c.mu.Unlock()
	os.RemoveAll(filepath.Join(c.dir, key))
}

// stats reports the tracked entry count and total bytes, for /metrics.
// Safe on a nil receiver (disk layer disabled): both gauges read zero.
func (c *diskCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order), c.total
}

// entrySize sums the file sizes under one entry directory — used only at
// startup adoption, where the bytes are not known in memory.
func entrySize(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
